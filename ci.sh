#!/usr/bin/env bash
# Repo CI gate: build, tests, formatting, lints. Everything runs offline
# against the committed Cargo.lock — no network, no new dependencies.
set -euo pipefail
cd "$(dirname "$0")"

echo "== build (release, locked, offline) =="
cargo build --release --locked --offline

echo "== tests (wall-clock budget: ${TEST_BUDGET_SECS:=600}s) =="
# Everything is a simulated-clock test; real time only grows if something
# spins or deadlocks. Fail loudly rather than letting CI hang.
test_start=$(date +%s)
cargo test -q
test_elapsed=$(( $(date +%s) - test_start ))
echo "test suite took ${test_elapsed}s"
if [ "$test_elapsed" -gt "$TEST_BUDGET_SECS" ]; then
  echo "FAIL: test suite exceeded its ${TEST_BUDGET_SECS}s wall-clock budget" >&2
  exit 1
fi

echo "== benches compile (not run) =="
# Criterion benches are exercised manually (EXPERIMENTS.md); CI only
# guarantees they still build against the current API.
cargo bench --no-run --locked --offline --quiet

echo "== e13 wire fast-path bench (smoke) =="
# The one bench CI *runs*: it asserts the zero-copy wire fast path stays
# >= 2x the baseline in frames/sec on the RMI hot path. Smoke mode shrinks
# the iteration count; the assertion is identical to the full run.
E13_SMOKE=1 cargo bench -p rafda-bench --bench e13_wire_throughput --locked --offline --quiet

echo "== e15 sharding + replica-read bench (smoke) =="
# Runs the placement experiment end to end: the sharded + replica-read
# policy must beat the single-owner baseline by >= 30% on wire messages
# and on simulated p95 latency, with identical observable values and all
# four invariant monitors silent. Smoke mode shrinks the Zipf stream; the
# assertions are identical to the full run.
E15_SMOKE=1 cargo bench -p rafda-bench --bench e15_sharding --locked --offline --quiet

echo "== e16 production-day soak (smoke, budget ${SOAK_BUDGET_SECS:=15}s) =="
# The standing "does the whole system survive production traffic" gate:
# a 10⁴-op slice of the seeded churn schedule — sharding, replica reads,
# caching, batching, k=2 crash-stop replication, migrations, adaptation
# and rebalance under a 5% drop rate — must match the single-address-space
# oracle op-for-op with every invariant monitor silent. The wall-clock
# budget doubles as the O(dirty) sweep regression gate: with the
# incremental dirty-replica sweep and the indexed span-tree check the
# smoke runs in well under a second (the budget is mostly cargo
# overhead); a reversion to the full-export-table walk or the O(spans²)
# monitor scan (~24 s combined at this depth, superlinear beyond it)
# trips the budget immediately.
# Full-depth multi-seed sweeps: SOAK_OPS=100000 SOAK_SEEDS=1,2,3 against
# the same bench; SOAK_OPS=1000000 is the mega tier (~31 s). Each run
# appends ops/s to target/BENCH_e16_soak.json.
soak_start=$(date +%s)
SOAK_SMOKE=1 cargo bench -p rafda-bench --bench e16_soak --locked --offline --quiet
soak_elapsed=$(( $(date +%s) - soak_start ))
echo "soak smoke took ${soak_elapsed}s"
if [ "$soak_elapsed" -gt "$SOAK_BUDGET_SECS" ]; then
  echo "FAIL: soak smoke exceeded its ${SOAK_BUDGET_SECS}s wall-clock budget" >&2
  exit 1
fi

echo "== rustfmt =="
cargo fmt --check

echo "== clippy =="
cargo clippy -- -D warnings

echo "== rustdoc (warnings denied) =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --locked --offline --quiet

echo "== determinism (same-seed run-twice diff) =="
# The full experiment report (covers RPC, retries, migration, adaptation,
# caching, crash-stop failover, batched invocation, telemetry and the E16
# SoakReport text) must be byte-identical across two runs of the same
# build — any hash-order or wall-clock leak shows up as a diff here.
run_report() {
  cargo run -q -p rafda --example experiments_report --release > "$1"
  cp target/e9_trace.json "$1.trace" 2>/dev/null || true
  cp target/e14_metrics.prom "$1.prom" 2>/dev/null || true
  cp target/e14_metrics.jsonl "$1.jsonl" 2>/dev/null || true
}
run_report target/ci_determinism_a.txt
run_report target/ci_determinism_b.txt
diff target/ci_determinism_a.txt target/ci_determinism_b.txt
diff target/ci_determinism_a.txt.trace target/ci_determinism_b.txt.trace
# The observability plane is part of the gate: the Prometheus snapshot and
# the JSON-lines time series must also be byte-identical across runs.
diff target/ci_determinism_a.txt.prom target/ci_determinism_b.txt.prom
diff target/ci_determinism_a.txt.jsonl target/ci_determinism_b.txt.jsonl

echo "== chaos soak, monitor-enabled smoke =="
# The full 24-case soak already ran under `cargo test` above; this repeats
# it at 2 cases purely to exercise the CHAOS_CASES knob the soak exposes
# for quick local iteration (all four watchdogs stay enabled).
CHAOS_CASES=2 cargo test -q -p rafda --test chaos_soak

echo "CI OK"
