#!/usr/bin/env bash
# Repo CI gate: build, tests, formatting, lints. Everything runs offline
# against the committed Cargo.lock — no network, no new dependencies.
set -euo pipefail
cd "$(dirname "$0")"

echo "== build (release, locked, offline) =="
cargo build --release --locked --offline

echo "== tests =="
cargo test -q

echo "== rustfmt =="
cargo fmt --check

echo "== clippy =="
cargo clippy -- -D warnings

echo "CI OK"
