//! Garbage-collection tests: unreachable objects are reclaimed, while
//! everything the distributed runtime can still reach — exports, proxy
//! imports, singletons, statics, and whole object graphs hanging off them —
//! survives collection with identical behaviour.

use rafda_classmodel::builder::{ClassBuilder, MethodBuilder};
use rafda_classmodel::{sample, ClassKind, ClassUniverse, Field, Ty};
use rafda_net::NodeId;
use rafda_policy::{LocalPolicy, Placement, StaticPolicy};
use rafda_runtime::Cluster;
use rafda_transform::Transformer;
use rafda_vm::{Value, Vm};
use std::sync::Arc;

const N0: NodeId = NodeId(0);
const N1: NodeId = NodeId(1);

#[test]
fn vm_gc_frees_unreachable_keeps_reachable() {
    let mut u = ClassUniverse::new();
    let ids = sample::build_figure2(&mut u);
    rafda_classmodel::verify_universe(&u).unwrap();
    let vm = Vm::new(Arc::new(u));
    // Reachable: y2 (passed as root). Unreachable: ten loose Ys.
    for i in 0..10 {
        vm.new_instance(ids.y, 0, vec![Value::Int(i)]).unwrap();
    }
    let y2 = vm.new_instance(ids.y, 0, vec![Value::Int(42)]).unwrap();
    let root = y2.as_ref_handle().unwrap();
    let live_before = vm.stats().heap.live;
    let freed = vm.gc(&[root]);
    assert!(freed >= 10, "freed {freed}");
    assert!(vm.stats().heap.live < live_before);
    // The root still works.
    assert_eq!(
        vm.call_virtual_by_name(y2, "n", vec![Value::Long(0)])
            .unwrap(),
        Value::Int(42)
    );
}

#[test]
fn vm_gc_traces_through_object_graphs_and_statics() {
    let mut u = ClassUniverse::new();
    let ids = sample::build_figure2(&mut u);
    let vm = Vm::new(Arc::new(u));
    // X.p forces X.<clinit>, which stores a Z into X's statics.
    vm.call_static_by_name("X", "p", vec![Value::Int(1)])
        .unwrap();
    // x -> y chain rooted only at `x`.
    let y = vm.new_instance(ids.y, 0, vec![Value::Int(5)]).unwrap();
    let x = vm.new_instance(ids.x, 0, vec![y]).unwrap();
    let freed = vm.gc(&[x.as_ref_handle().unwrap()]);
    assert_eq!(freed, 0, "statics-referenced Z and x->y graph are all live");
    // Everything still functions.
    assert_eq!(
        vm.call_virtual_by_name(x, "m", vec![Value::Long(4)])
            .unwrap(),
        Value::Int(9)
    );
    assert_eq!(
        vm.call_static_by_name("X", "p", vec![Value::Int(2)])
            .unwrap(),
        Value::Int(14)
    );
}

fn counter_cluster() -> Cluster {
    let mut u = ClassUniverse::new();
    let c = u.declare("K", ClassKind::Class);
    {
        let mut cb = ClassBuilder::new(&u, c);
        let v = cb.field(Field::new("v", Ty::Int));
        let mut mb = MethodBuilder::new(2);
        mb.load_this().load_local(1).put_field(c, v).ret();
        cb.ctor(&mut u, vec![Ty::Int], Some(mb.finish()));
        let mut mb = MethodBuilder::new(1);
        mb.load_this().get_field(c, v).ret_value();
        cb.method(&mut u, "get", vec![], Ty::Int, Some(mb.finish()));
        cb.finish(&mut u);
    }
    let outcome = Transformer::new().protocols(&["RMI"]).run(&mut u).unwrap();
    Cluster::new(u, outcome.plan, 2, 5, Box::new(LocalPolicy::default()))
}

#[test]
fn cluster_gc_preserves_exports_and_proxies() {
    let cluster = counter_cluster();
    // One migrated object (export on node 1, proxy on node 0) plus litter.
    let k = cluster
        .new_instance(N0, "K", 0, vec![Value::Int(9)])
        .unwrap();
    let h = k.as_ref_handle().unwrap();
    cluster.migrate(N0, h, N1).unwrap();
    for i in 0..8 {
        cluster
            .new_instance(N0, "K", 0, vec![Value::Int(i)])
            .unwrap();
    }
    let freed = cluster.gc();
    assert!(freed[0] >= 8, "node 0 litter collected: {freed:?}");
    // The migrated object and its proxy both survived.
    assert_eq!(
        cluster.call_method(N0, k, "get", vec![]).unwrap(),
        Value::Int(9)
    );
}

#[test]
fn cluster_gc_keeps_remote_singletons_working() {
    let mut u = ClassUniverse::new();
    sample::build_figure2(&mut u);
    let outcome = Transformer::new().protocols(&["RMI"]).run(&mut u).unwrap();
    let policy = StaticPolicy::new()
        .default_statics(N1)
        .place("Y", Placement::Node(N1));
    let cluster = Cluster::new(u, outcome.plan, 2, 5, Box::new(policy));
    assert_eq!(
        cluster
            .call_static(N0, "X", "p", vec![Value::Int(6)])
            .unwrap(),
        Value::Int(42)
    );
    cluster.gc();
    // Singletons (local on node 1, proxied on node 0) survive collection.
    assert_eq!(
        cluster
            .call_static(N0, "X", "p", vec![Value::Int(2)])
            .unwrap(),
        Value::Int(14)
    );
    assert_eq!(
        cluster
            .call_static(N1, "X", "p", vec![Value::Int(3)])
            .unwrap(),
        Value::Int(21)
    );
}

#[test]
fn gc_then_chaos_keeps_working() {
    // Collection interleaved with boundary changes. Host-held references
    // must be pinned to survive collection.
    let cluster = counter_cluster();
    let ks: Vec<Value> = (0..4)
        .map(|i| {
            cluster
                .new_instance(N0, "K", 0, vec![Value::Int(i)])
                .unwrap()
        })
        .collect();
    for k in &ks {
        cluster.pin(N0, k);
    }
    for (i, k) in ks.iter().enumerate() {
        let h = k.as_ref_handle().unwrap();
        if i % 2 == 0 {
            cluster.migrate(N0, h, N1).unwrap();
        }
        cluster.gc();
        assert_eq!(
            cluster.call_method(N0, k.clone(), "get", vec![]).unwrap(),
            Value::Int(i as i32)
        );
        if i % 2 == 0 {
            cluster.pull_local(N0, h).unwrap();
            cluster.gc();
            assert_eq!(
                cluster.call_method(N0, k.clone(), "get", vec![]).unwrap(),
                Value::Int(i as i32)
            );
        }
    }
}

#[test]
fn unpinned_host_references_are_collected() {
    let cluster = counter_cluster();
    let k = cluster
        .new_instance(N0, "K", 0, vec![Value::Int(1)])
        .unwrap();
    let pinned = cluster
        .new_instance(N0, "K", 0, vec![Value::Int(2)])
        .unwrap();
    cluster.pin(N0, &pinned);
    let freed = cluster.gc();
    assert!(freed[0] >= 1, "{freed:?}");
    // The unpinned reference is now stale — detected, not misread.
    assert!(cluster.call_method(N0, k, "get", vec![]).is_err());
    assert_eq!(
        cluster
            .call_method(N0, pinned.clone(), "get", vec![])
            .unwrap(),
        Value::Int(2)
    );
    // After unpinning, the next collection reclaims it too.
    cluster.unpin(N0, &pinned);
    let freed = cluster.gc();
    assert!(freed[0] >= 1, "{freed:?}");
}
