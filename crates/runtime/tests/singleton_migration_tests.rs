//! Migration of *static-member* singletons — the case the paper singles out
//! as harder than persistence: "In the RAFDA project the static component
//! of a class must be handled in a more complex fashion as instances of a
//! class may be spread across multiple address spaces" (Section 3).
//! Migrating the `A_C_Local` singleton moves the class's static state while
//! every node keeps observing one coherent copy.

use rafda_classmodel::builder::{ClassBuilder, MethodBuilder};
use rafda_classmodel::{ClassKind, ClassUniverse, Field, Ty};
use rafda_net::NodeId;
use rafda_policy::StaticPolicy;
use rafda_runtime::Cluster;
use rafda_transform::Transformer;
use rafda_vm::Value;

const N0: NodeId = NodeId(0);
const N1: NodeId = NodeId(1);

fn build() -> Cluster {
    let mut u = ClassUniverse::new();
    let reg = u.declare("Registry", ClassKind::Class);
    {
        let mut cb = ClassBuilder::new(&u, reg);
        let total = cb.static_field(Field::new("total", Ty::Int));
        let mut mb = MethodBuilder::new(1);
        mb.get_static(reg, total);
        mb.load_local(0).add();
        mb.put_static(reg, total);
        mb.get_static(reg, total);
        mb.ret_value();
        cb.static_method(&mut u, "add", vec![Ty::Int], Ty::Int, Some(mb.finish()));
        let mut mb = MethodBuilder::new(0);
        mb.const_int(1000).put_static(reg, total).ret();
        cb.clinit(&mut u, mb.finish());
        cb.finish(&mut u);
    }
    let outcome = Transformer::new().protocols(&["RMI"]).run(&mut u).unwrap();
    let policy = StaticPolicy::new().default_statics(N0);
    Cluster::new(u, outcome.plan, 2, 17, Box::new(policy))
}

/// Find the Registry singleton's handle on `node`.
fn singleton_handle(cluster: &Cluster, node: NodeId) -> rafda_vm::Handle {
    let vm = cluster.vm(node);
    let mut found = None;
    vm.with_heap(|heap| {
        for h in heap.handles() {
            if let Some(class) = heap.class_of(h) {
                if cluster.universe().class(class).name == "Registry_C_Local" {
                    found = Some(h);
                }
            }
        }
    });
    found.expect("singleton lives here")
}

#[test]
fn static_singleton_migrates_and_stays_coherent() {
    let cluster = build();
    // Touch the singleton from both nodes (owner = node 0).
    assert_eq!(
        cluster
            .call_static(N0, "Registry", "add", vec![Value::Int(1)])
            .unwrap(),
        Value::Int(1001)
    );
    assert_eq!(
        cluster
            .call_static(N1, "Registry", "add", vec![Value::Int(2)])
            .unwrap(),
        Value::Int(1003)
    );
    // Migrate the static state to node 1.
    let h = singleton_handle(&cluster, N0);
    let event = cluster.migrate(N0, h, N1).unwrap();
    assert_eq!(event.class, "Registry");
    // All nodes still see ONE coherent total; node 1 is now local for it.
    assert_eq!(
        cluster
            .call_static(N1, "Registry", "add", vec![Value::Int(4)])
            .unwrap(),
        Value::Int(1007)
    );
    assert_eq!(
        cluster
            .call_static(N0, "Registry", "add", vec![Value::Int(8)])
            .unwrap(),
        Value::Int(1015)
    );
    // Node 0's path now forwards (its cached singleton handle was rewritten
    // in place into a proxy).
    let net = cluster.network();
    net.reset_stats();
    cluster
        .call_static(N0, "Registry", "add", vec![Value::Int(1)])
        .unwrap();
    assert!(net.stats().link(N0, N1).messages >= 1, "{:?}", net.stats());
}

#[test]
fn describe_reports_singleton_placement() {
    let cluster = build();
    cluster
        .call_static(N0, "Registry", "add", vec![Value::Int(1)])
        .unwrap();
    cluster
        .call_static(N1, "Registry", "add", vec![Value::Int(1)])
        .unwrap();
    let summary = cluster.describe();
    assert_eq!(summary.len(), 2);
    // Both nodes have resolved the Registry singleton (one locally, one as
    // a proxy).
    for s in &summary {
        assert!(s.singletons.iter().any(|c| c == "Registry"), "{s}");
    }
    // Node 0 (the owner) exports the singleton to node 1.
    assert!(summary[0].exports >= 1);
    assert!(summary[1].imports >= 1);
    assert!(summary[0].to_string().contains("Registry"));
}
