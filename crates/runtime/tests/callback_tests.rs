//! Remote callback (re-entrant RPC) tests: a remote call that calls *back*
//! into the originating node mid-execution — the pattern that forces the
//! runtime's synchronous RPC to be re-entrant, and the reason proxies can
//! appear on both sides of one call chain.

use rafda_classmodel::builder::{ClassBuilder, MethodBuilder};
use rafda_classmodel::{ClassKind, ClassUniverse, CmpOp, Field, Ty};
use rafda_net::NodeId;
use rafda_policy::{Placement, StaticPolicy};
use rafda_runtime::Cluster;
use rafda_transform::Transformer;
use rafda_vm::Value;

const N0: NodeId = NodeId(0);
const N1: NodeId = NodeId(1);

/// `Server.ping(d)` calls `client.pong(d)` back; `Client.pong(d)` returns
/// `d * 2`. A `Server.bounce(n)` ping-pongs n times through mutual
/// recursion between the two objects.
fn build() -> Cluster {
    let mut u = ClassUniverse::new();
    let client = u.declare("Client", ClassKind::Class);
    let server = u.declare("Server", ClassKind::Class);
    {
        let mut cb = ClassBuilder::new(&u, client);
        let peer = cb.field(Field::new("peer", Ty::Object(server)));
        let mut mb = MethodBuilder::new(1);
        mb.ret();
        cb.ctor(&mut u, vec![], Some(mb.finish()));
        let mut mb = MethodBuilder::new(2);
        mb.load_local(1).const_int(2).mul().ret_value();
        cb.method(&mut u, "pong", vec![Ty::Int], Ty::Int, Some(mb.finish()));
        // int volley(int n) { if (n <= 0) return 0; return peer.bounce(n); }
        let bounce_sig = u.sig("bounce", vec![Ty::Int]);
        let mut mb = MethodBuilder::new(2);
        let base = mb.label();
        mb.load_local(1).const_int(0).cmp(CmpOp::Le);
        mb.jump_if(base);
        mb.load_this().get_field(client, peer);
        mb.load_local(1);
        mb.invoke(bounce_sig, 1);
        mb.ret_value();
        mb.bind(base);
        mb.const_int(0).ret_value();
        cb.method(&mut u, "volley", vec![Ty::Int], Ty::Int, Some(mb.finish()));
        cb.finish(&mut u);
    }
    {
        let mut cb = ClassBuilder::new(&u, server);
        let back = cb.field(Field::new("back", Ty::Object(client)));
        let mut mb = MethodBuilder::new(1);
        mb.ret();
        cb.ctor(&mut u, vec![], Some(mb.finish()));
        // int ping(int d) { return back.pong(d) + 1; }
        let pong_sig = u.sig("pong", vec![Ty::Int]);
        let mut mb = MethodBuilder::new(2);
        mb.load_this().get_field(server, back);
        mb.load_local(1);
        mb.invoke(pong_sig, 1);
        mb.const_int(1).add();
        mb.ret_value();
        cb.method(&mut u, "ping", vec![Ty::Int], Ty::Int, Some(mb.finish()));
        // int bounce(int n) { return back.volley(n - 1) + 1; }  — mutual
        // recursion hopping between nodes every level.
        let volley_sig = u.sig("volley", vec![Ty::Int]);
        let mut mb = MethodBuilder::new(2);
        mb.load_this().get_field(server, back);
        mb.load_local(1).const_int(1).sub();
        mb.invoke(volley_sig, 1);
        mb.const_int(1).add();
        mb.ret_value();
        cb.method(&mut u, "bounce", vec![Ty::Int], Ty::Int, Some(mb.finish()));
        cb.finish(&mut u);
    }
    let outcome = Transformer::new().protocols(&["RMI"]).run(&mut u).unwrap();
    let policy = StaticPolicy::new()
        .place("Server", Placement::Node(N1))
        .place("Client", Placement::Creator);
    Cluster::new(u, outcome.plan, 2, 13, Box::new(policy))
}

#[test]
fn remote_call_calls_back_into_caller_node() {
    let cluster = build();
    // Client lives on node 0, server on node 1, each referencing the other.
    let client = cluster.new_instance(N0, "Client", 0, vec![]).unwrap();
    let server = cluster.new_instance(N0, "Server", 0, vec![]).unwrap();
    assert_eq!(cluster.location_of(N0, &client), Some(N0));
    assert_eq!(cluster.location_of(N0, &server), Some(N1));
    cluster
        .call_method(N0, server.clone(), "set_back", vec![client.clone()])
        .unwrap();
    // ping(20): node0 -> node1 (ping) -> node0 (pong) -> back. 20*2+1.
    let r = cluster
        .call_method(N0, server, "ping", vec![Value::Int(20)])
        .unwrap();
    assert_eq!(r, Value::Int(41));
    let stats = cluster.network().stats();
    assert!(stats.link(N0, N1).messages >= 2, "{stats:?}");
    assert!(stats.link(N1, N0).messages >= 2, "callback leg: {stats:?}");
}

#[test]
fn deep_mutual_recursion_across_nodes() {
    let cluster = build();
    let client = cluster.new_instance(N0, "Client", 0, vec![]).unwrap();
    let server = cluster.new_instance(N0, "Server", 0, vec![]).unwrap();
    cluster
        .call_method(N0, server.clone(), "set_back", vec![client.clone()])
        .unwrap();
    cluster
        .call_method(N0, client.clone(), "set_peer", vec![server])
        .unwrap();
    // volley(8): 8 cross-node hops of mutual recursion, each frame
    // suspended mid-RPC on its own node.
    let r = cluster
        .call_method(N0, client, "volley", vec![Value::Int(8)])
        .unwrap();
    assert_eq!(r, Value::Int(8));
    let messages = cluster.network().stats().messages;
    assert!(messages >= 16, "8 round trips: {messages}");
}

#[test]
fn callback_depth_is_bounded_by_vm_limit() {
    // Unbounded mutual recursion across nodes must hit the depth limit, not
    // blow the host stack: volley(-1) never reaches the base case… but n
    // decreases, so use a huge n with a small VM depth limit instead.
    let cluster = build();
    let client = cluster.new_instance(N0, "Client", 0, vec![]).unwrap();
    let server = cluster.new_instance(N0, "Server", 0, vec![]).unwrap();
    cluster
        .call_method(N0, server.clone(), "set_back", vec![client.clone()])
        .unwrap();
    cluster
        .call_method(N0, client.clone(), "set_peer", vec![server])
        .unwrap();
    cluster.vm(N0).set_max_depth(40);
    cluster.vm(N1).set_max_depth(40);
    let err = cluster
        .call_method(N0, client, "volley", vec![Value::Int(1_000_000)])
        .unwrap_err();
    // The overflow happens on one of the nodes; by the time it crosses the
    // wire it is reported as a fault (native error), locally as a trap.
    let msg = err.to_string();
    assert!(
        msg.contains("depth") || msg.contains("stack") || msg.contains("call depth"),
        "{msg}"
    );
}
