//! Marshalling-semantics tests: arrays by value, reference identity across
//! the wire, by-value transfer of untransformed classes, remote exceptions
//! caught by local handlers, and statics coherence — the RMI-style rules
//! the paper's proxies assume.

use rafda_classmodel::builder::{ClassBuilder, MethodBuilder};
use rafda_classmodel::{sample, ClassKind, ClassUniverse, CmpOp, Field, Ty};
use rafda_net::NodeId;
use rafda_policy::{Placement, StaticPolicy};
use rafda_runtime::Cluster;
use rafda_transform::Transformer;
use rafda_vm::{Value, Vm, VmError};

const N0: NodeId = NodeId(0);
const N1: NodeId = NodeId(1);

/// A universe with classes exercising arrays, exceptions, statics and
/// by-value payloads:
///
/// * `Summer.sum_array(int[]) -> int` and `make_array(int n) -> int[]`
/// * `Summer.risky(int)` throws `AppError(code)` when `code > 0`, and
///   `guarded(int)` catches it and returns `code + 1000`
/// * `Counter` with static `total` and static `bump(v)`
fn build_universe() -> ClassUniverse {
    let mut u = ClassUniverse::new();
    let (_t, app_error) = sample::build_throwables(&mut u);

    let summer = u.declare("Summer", ClassKind::Class);
    {
        let mut cb = ClassBuilder::new(&u, summer);
        let mut mb = MethodBuilder::new(1);
        mb.ret();
        cb.ctor(&mut u, vec![], Some(mb.finish()));

        // int sum_array(int[] a) { int s=0; int i=0; while (i<a.length) { s+=a[i]; i+=1; } return s; }
        let mut mb = MethodBuilder::new(2);
        let s = mb.alloc_local();
        let i = mb.alloc_local();
        mb.const_int(0).store_local(s);
        mb.const_int(0).store_local(i);
        let top = mb.label();
        let done = mb.label();
        mb.bind(top);
        mb.load_local(i);
        mb.load_local(1).array_len();
        mb.cmp(CmpOp::Lt);
        mb.jump_if_not(done);
        mb.load_local(s);
        mb.load_local(1).load_local(i).array_get();
        mb.add().store_local(s);
        mb.load_local(i).const_int(1).add().store_local(i);
        mb.jump(top);
        mb.bind(done);
        mb.load_local(s).ret_value();
        cb.method(
            &mut u,
            "sum_array",
            vec![Ty::Int.array_of()],
            Ty::Int,
            Some(mb.finish()),
        );

        // int[] make_array(int n) { int[] a = new int[n]; int i=0; while(i<n){a[i]=i*2;i+=1;} return a; }
        let mut mb = MethodBuilder::new(2);
        let a = mb.alloc_local();
        let i = mb.alloc_local();
        mb.load_local(1).new_array(Ty::Int).store_local(a);
        mb.const_int(0).store_local(i);
        let top = mb.label();
        let done = mb.label();
        mb.bind(top);
        mb.load_local(i).load_local(1).cmp(CmpOp::Lt);
        mb.jump_if_not(done);
        mb.load_local(a).load_local(i);
        mb.load_local(i).const_int(2).mul();
        mb.array_set();
        mb.load_local(i).const_int(1).add().store_local(i);
        mb.jump(top);
        mb.bind(done);
        mb.load_local(a).ret_value();
        cb.method(
            &mut u,
            "make_array",
            vec![Ty::Int],
            Ty::Int.array_of(),
            Some(mb.finish()),
        );

        // int risky(int code) { if (code > 0) throw new AppError(code); return -code; }
        let mut mb = MethodBuilder::new(2);
        let ok = mb.label();
        mb.load_local(1).const_int(0).cmp(CmpOp::Gt);
        mb.jump_if_not(ok);
        mb.load_local(1).new_init(app_error, 0, 1).throw();
        mb.bind(ok);
        mb.load_local(1)
            .unop(rafda_classmodel::UnOp::Neg)
            .ret_value();
        cb.method(&mut u, "risky", vec![Ty::Int], Ty::Int, Some(mb.finish()));

        // int guarded(int code) {
        //   try { return this.risky(code); } catch (AppError e) { return e.code() + 1000; }
        // }
        let risky_sig = u.sig("risky", vec![Ty::Int]);
        let code_sig = u.sig("code", vec![]);
        let mut mb = MethodBuilder::new(2);
        mb.load_local(0); // 0
        mb.load_local(1); // 1
        mb.invoke(risky_sig, 1); // 2
        mb.ret_value(); // 3
        let handler = mb.pc(); // 4
        mb.invoke(code_sig, 0);
        mb.const_int(1000).add().ret_value();
        mb.handler(0, handler, handler, Some(app_error));
        cb.method(&mut u, "guarded", vec![Ty::Int], Ty::Int, Some(mb.finish()));
        cb.finish(&mut u);
    }

    let counter = u.declare("Counter", ClassKind::Class);
    {
        let mut cb = ClassBuilder::new(&u, counter);
        let total = cb.static_field(Field::new("total", Ty::Int));
        let mut mb = MethodBuilder::new(1);
        mb.get_static(counter, total);
        mb.load_local(0).add();
        mb.put_static(counter, total);
        mb.get_static(counter, total);
        mb.ret_value();
        cb.static_method(&mut u, "bump", vec![Ty::Int], Ty::Int, Some(mb.finish()));
        let mut mb = MethodBuilder::new(0);
        mb.const_int(100).put_static(counter, total).ret();
        cb.clinit(&mut u, mb.finish());
        cb.finish(&mut u);
    }
    u
}

fn deploy(policy: StaticPolicy) -> Cluster {
    let mut u = build_universe();
    let outcome = Transformer::new()
        .protocols(&["RMI", "SOAP"])
        .run(&mut u)
        .unwrap();
    Cluster::new(u, outcome.plan, 2, 9, Box::new(policy))
}

#[test]
fn arrays_cross_the_wire_by_value() {
    let cluster = deploy(StaticPolicy::new().place("Summer", Placement::Node(N1)));
    let summer = cluster.new_instance(N0, "Summer", 0, vec![]).unwrap();
    assert_eq!(cluster.location_of(N0, &summer), Some(N1));

    // Build an array locally on node 0 and pass it to the remote object.
    let vm0: Vm = cluster.vm(N0);
    let arr = vm0.with_heap(|h| {
        h.alloc_array(
            Ty::Int,
            vec![Value::Int(1), Value::Int(2), Value::Int(3), Value::Int(4)],
        )
    });
    let r = cluster
        .call_method(N0, summer.clone(), "sum_array", vec![Value::Ref(arr)])
        .unwrap();
    assert_eq!(r, Value::Int(10));

    // And receive an array built remotely.
    let r = cluster
        .call_method(N0, summer, "make_array", vec![Value::Int(5)])
        .unwrap();
    let h = r.as_ref_handle().unwrap();
    let local_copy = vm0.with_heap(|heap| match heap.get(h) {
        Some(rafda_vm::HeapEntry::Array { data, .. }) => data.clone(),
        other => panic!("expected array, got {other:?}"),
    });
    assert_eq!(
        local_copy,
        vec![
            Value::Int(0),
            Value::Int(2),
            Value::Int(4),
            Value::Int(6),
            Value::Int(8)
        ]
    );
}

#[test]
fn by_value_array_mutations_do_not_propagate() {
    // RMI semantics: the callee sees a copy.
    let cluster = deploy(StaticPolicy::new().place("Summer", Placement::Node(N1)));
    let summer = cluster.new_instance(N0, "Summer", 0, vec![]).unwrap();
    let vm0: Vm = cluster.vm(N0);
    let arr = vm0.with_heap(|h| h.alloc_array(Ty::Int, vec![Value::Int(7)]));
    cluster
        .call_method(N0, summer, "sum_array", vec![Value::Ref(arr)])
        .unwrap();
    // The local array is untouched (trivially true for sum, but the copy
    // semantics are what we assert: the remote side held its own array).
    let local = vm0.with_heap(|heap| match heap.get(arr) {
        Some(rafda_vm::HeapEntry::Array { data, .. }) => data.clone(),
        _ => panic!(),
    });
    assert_eq!(local, vec![Value::Int(7)]);
}

#[test]
fn remote_exception_is_caught_by_local_handler() {
    // guarded() runs locally on node 0 but calls risky() through a proxy —
    // wait, guarded calls this.risky, so both run remotely and the handler
    // is also remote. To exercise a *local* handler catching a *remote*
    // exception we call risky directly and catch in Rust, then guarded for
    // the in-model handler.
    let cluster = deploy(StaticPolicy::new().place("Summer", Placement::Node(N1)));
    let summer = cluster.new_instance(N0, "Summer", 0, vec![]).unwrap();

    // Raw call: exception materialises on node 0 with its state.
    let err = cluster
        .call_method(N0, summer.clone(), "risky", vec![Value::Int(42)])
        .unwrap_err();
    let rafda_runtime::RuntimeError::Vm(VmError::Exception(h)) = err else {
        panic!("expected exception: {err:?}");
    };
    let vm0 = cluster.vm(N0);
    assert_eq!(
        vm0.call_virtual_by_name(Value::Ref(h), "code", vec![]),
        Ok(Value::Int(42))
    );

    // In-model handler: works identically whether local or remote.
    assert_eq!(
        cluster
            .call_method(N0, summer.clone(), "guarded", vec![Value::Int(5)])
            .unwrap(),
        Value::Int(1005)
    );
    assert_eq!(
        cluster
            .call_method(N0, summer, "guarded", vec![Value::Int(-5)])
            .unwrap(),
        Value::Int(5)
    );
}

#[test]
fn statics_are_coherent_across_nodes() {
    // Counter's singleton lives on node 1; bumps from both nodes see one
    // shared total (the paper's uniqueness-of-statics requirement).
    let cluster = deploy(StaticPolicy::new().statics("Counter", N1));
    assert_eq!(
        cluster
            .call_static(N0, "Counter", "bump", vec![Value::Int(1)])
            .unwrap(),
        Value::Int(101)
    );
    assert_eq!(
        cluster
            .call_static(N1, "Counter", "bump", vec![Value::Int(2)])
            .unwrap(),
        Value::Int(103)
    );
    assert_eq!(
        cluster
            .call_static(N0, "Counter", "bump", vec![Value::Int(3)])
            .unwrap(),
        Value::Int(106)
    );
}

#[test]
fn without_shared_placement_statics_would_diverge_per_node() {
    // Control experiment: placing statics at each node's *own* node gives
    // two independent singletons — exactly the incoherence the paper's
    // single-owner discover() design avoids.
    let mut u = build_universe();
    let outcome = Transformer::new().protocols(&["RMI"]).run(&mut u).unwrap();

    #[derive(Debug)]
    struct PerNodeStatics;
    impl rafda_policy::DistributionPolicy for PerNodeStatics {
        fn instance_node(&self, _c: &str, n: NodeId) -> NodeId {
            n
        }
        fn statics_node(&self, _c: &str) -> NodeId {
            // Not meaningful: resolved per calling node in discover(); we
            // abuse it by returning node 0 here and calling only via node
            // ids (see below).
            NodeId(0)
        }
        fn protocol(&self, _c: &str) -> String {
            "RMI".to_owned()
        }
    }
    let cluster = Cluster::new(u, outcome.plan, 2, 9, Box::new(PerNodeStatics));
    // Owner is node 0 for everyone -> coherent; this is the designed
    // behaviour, so totals accumulate across nodes.
    let a = cluster
        .call_static(N0, "Counter", "bump", vec![Value::Int(1)])
        .unwrap();
    let b = cluster
        .call_static(N1, "Counter", "bump", vec![Value::Int(1)])
        .unwrap();
    assert_eq!(a, Value::Int(101));
    assert_eq!(b, Value::Int(102));
}

#[test]
fn repeated_marshalling_reuses_the_same_proxy() {
    // Passing the same remote reference twice must materialise ONE proxy
    // (imports cache), so in-model reference equality is preserved.
    let cluster = deploy(StaticPolicy::new().place("Summer", Placement::Node(N1)));
    let s1 = cluster.new_instance(N0, "Summer", 0, vec![]).unwrap();
    let s2 = cluster.new_instance(N0, "Summer", 0, vec![]).unwrap();
    // Different remote objects -> different proxies.
    assert_ne!(s1, s2);
    let h1 = s1.as_ref_handle().unwrap();
    // Fetch the same remote object again through a second call path: the
    // result of migrating it back and forth must land on the same handle.
    let vm0 = cluster.vm(N0);
    let class_before = vm0.class_of(h1).unwrap();
    cluster.pull_local(N0, h1).unwrap();
    let class_after = vm0.class_of(h1).unwrap();
    assert_ne!(class_before, class_after, "proxy became local in place");
    assert_eq!(cluster.location_of(N0, &s1), Some(N0));
}

#[test]
fn untransformed_payload_classes_travel_by_value() {
    // AppError is special (non-transformable): passing one as an argument
    // copies its state instead of proxying (it has no proxy classes).
    let cluster = deploy(StaticPolicy::new().place("Summer", Placement::Node(N1)));
    let summer = cluster.new_instance(N0, "Summer", 0, vec![]).unwrap();
    // risky(7) throws remotely; the exception arrives as a by-value copy
    // living on node 0's heap.
    let err = cluster
        .call_method(N0, summer, "risky", vec![Value::Int(7)])
        .unwrap_err();
    let rafda_runtime::RuntimeError::Vm(VmError::Exception(h)) = err else {
        panic!()
    };
    let vm0 = cluster.vm(N0);
    let class = vm0.class_of(h).unwrap();
    let name = &cluster.universe().class(class).name;
    assert_eq!(name, "AppError", "copy, not proxy: {name}");
}

#[test]
fn wan_links_slow_remote_calls_proportionally() {
    use rafda_net::LinkSpec;
    let run = |spec: LinkSpec| {
        let cluster = deploy(StaticPolicy::new().place("Summer", Placement::Node(N1)));
        cluster.network().set_default_link(spec);
        let summer = cluster.new_instance(N0, "Summer", 0, vec![]).unwrap();
        let t0 = cluster.network().now();
        for _ in 0..10 {
            cluster
                .call_method(N0, summer.clone(), "risky", vec![Value::Int(-1)])
                .unwrap();
        }
        (cluster.network().now() - t0).as_ns() / 10
    };
    let lan = run(LinkSpec::lan());
    let wan = run(LinkSpec::wan());
    assert!(wan > 20 * lan, "wan {wan} vs lan {lan}");
}
