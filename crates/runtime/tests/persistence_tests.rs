//! Tests of the persistence extension (paper Section 4: the transformed,
//! componentised program "can be extended … to provide requirements such as
//! distribution or persistence"): graph capture/restore including cycles,
//! sharing, arrays and distribution boundaries.

use rafda_classmodel::builder::{ClassBuilder, MethodBuilder};
use rafda_classmodel::{ClassKind, ClassUniverse, Field, Ty};
use rafda_net::NodeId;
use rafda_policy::LocalPolicy;
use rafda_runtime::Cluster;
use rafda_transform::Transformer;
use rafda_vm::Value;

const N0: NodeId = NodeId(0);
const N1: NodeId = NodeId(1);

/// class Node { int v; Node next; … } — a linked structure that can be
/// made cyclic.
fn build() -> Cluster {
    let mut u = ClassUniverse::new();
    let node = u.declare("LinkNode", ClassKind::Class);
    {
        let mut cb = ClassBuilder::new(&u, node);
        let v = cb.field(Field::new("v", Ty::Int));
        let next = cb.field(Field::new("next", Ty::Object(node)));
        let mut mb = MethodBuilder::new(2);
        mb.load_this().load_local(1).put_field(node, v).ret();
        cb.ctor(&mut u, vec![Ty::Int], Some(mb.finish()));
        // int sum(int budget) { if (budget <= 0 || next == null) return v;
        //                       return v + next.sum(budget - 1); }
        let sum_sig = u.sig("sum", vec![Ty::Int]);
        let mut mb = MethodBuilder::new(2);
        let base = mb.label();
        mb.load_local(1)
            .const_int(0)
            .cmp(rafda_classmodel::CmpOp::Le);
        mb.jump_if(base);
        mb.load_this()
            .get_field(node, next)
            .const_null()
            .cmp(rafda_classmodel::CmpOp::Eq);
        mb.jump_if(base);
        mb.load_this().get_field(node, v);
        mb.load_this().get_field(node, next);
        mb.load_local(1).const_int(1).sub();
        mb.invoke(sum_sig, 1);
        mb.add().ret_value();
        mb.bind(base);
        mb.load_this().get_field(node, v).ret_value();
        cb.method(&mut u, "sum", vec![Ty::Int], Ty::Int, Some(mb.finish()));
        cb.finish(&mut u);
    }
    let outcome = Transformer::new().protocols(&["RMI"]).run(&mut u).unwrap();
    Cluster::new(u, outcome.plan, 2, 3, Box::new(LocalPolicy::default()))
}

fn set_next(cluster: &Cluster, node: NodeId, from: &Value, to: Value) {
    cluster
        .call_method(node, from.clone(), "set_next", vec![to])
        .unwrap();
}

#[test]
fn snapshot_restores_chain_with_state() {
    let cluster = build();
    let a = cluster
        .new_instance(N0, "LinkNode", 0, vec![Value::Int(1)])
        .unwrap();
    let b = cluster
        .new_instance(N0, "LinkNode", 0, vec![Value::Int(2)])
        .unwrap();
    let c = cluster
        .new_instance(N0, "LinkNode", 0, vec![Value::Int(4)])
        .unwrap();
    set_next(&cluster, N0, &a, b.clone());
    set_next(&cluster, N0, &b, c);
    assert_eq!(
        cluster
            .call_method(N0, a.clone(), "sum", vec![Value::Int(10)])
            .unwrap(),
        Value::Int(7)
    );

    let snap = cluster.snapshot(N0, a.as_ref_handle().unwrap()).unwrap();
    assert_eq!(snap.len(), 3);

    // Mutate the original; the restored copy is unaffected (it is a copy).
    cluster
        .call_method(N0, b, "set_v", vec![Value::Int(100)])
        .unwrap();
    let restored = cluster.restore(N0, &snap).unwrap();
    assert_eq!(
        cluster
            .call_method(N0, restored, "sum", vec![Value::Int(10)])
            .unwrap(),
        Value::Int(7)
    );
    assert_eq!(
        cluster
            .call_method(N0, a, "sum", vec![Value::Int(10)])
            .unwrap(),
        Value::Int(105)
    );
}

#[test]
fn cycles_survive_snapshot_restore() {
    let cluster = build();
    let a = cluster
        .new_instance(N0, "LinkNode", 0, vec![Value::Int(1)])
        .unwrap();
    let b = cluster
        .new_instance(N0, "LinkNode", 0, vec![Value::Int(2)])
        .unwrap();
    set_next(&cluster, N0, &a, b.clone());
    set_next(&cluster, N0, &b, a.clone()); // cycle a -> b -> a
                                           // Budget-limited sum walks the cycle: 1+2+1+2+1 = 7 with budget 4.
    assert_eq!(
        cluster
            .call_method(N0, a.clone(), "sum", vec![Value::Int(4)])
            .unwrap(),
        Value::Int(7)
    );
    let snap = cluster.snapshot(N0, a.as_ref_handle().unwrap()).unwrap();
    assert_eq!(snap.len(), 2, "cycle must not duplicate objects");
    let restored = cluster.restore(N1, &snap).unwrap();
    assert_eq!(
        cluster
            .call_method(N1, restored.clone(), "sum", vec![Value::Int(4)])
            .unwrap(),
        Value::Int(7)
    );
    // The restored cycle is closed: next.next == self shape (walk 2 gives
    // 1+2+1).
    assert_eq!(
        cluster
            .call_method(N1, restored, "sum", vec![Value::Int(2)])
            .unwrap(),
        Value::Int(4)
    );
}

#[test]
fn shared_subobjects_stay_shared() {
    let cluster = build();
    // a -> c, b -> c; snapshot of an array [a, b] keeps c shared.
    let a = cluster
        .new_instance(N0, "LinkNode", 0, vec![Value::Int(1)])
        .unwrap();
    let b = cluster
        .new_instance(N0, "LinkNode", 0, vec![Value::Int(2)])
        .unwrap();
    let c = cluster
        .new_instance(N0, "LinkNode", 0, vec![Value::Int(8)])
        .unwrap();
    set_next(&cluster, N0, &a, c.clone());
    set_next(&cluster, N0, &b, c);
    let vm = cluster.vm(N0);
    let arr = vm.with_heap(|h| {
        h.alloc_array(
            Ty::Object(cluster.universe().by_name("LinkNode_O_Int").unwrap()),
            vec![a, b],
        )
    });
    let snap = cluster.snapshot(N0, arr).unwrap();
    assert_eq!(snap.len(), 4, "array + a + b + shared c");
    let restored = cluster.restore(N0, &snap).unwrap();
    // Pull the two roots back out and check the shared tail: mutating c
    // through a's chain must be visible through b's chain.
    let rh = restored.as_ref_handle().unwrap();
    let (ra, rb) = vm.with_heap(|h| match h.get(rh) {
        Some(rafda_vm::HeapEntry::Array { data, .. }) => (data[0].clone(), data[1].clone()),
        _ => panic!("array"),
    });
    let rc = cluster.call_method(N0, ra, "get_next", vec![]).unwrap();
    cluster
        .call_method(N0, rc, "set_v", vec![Value::Int(50)])
        .unwrap();
    assert_eq!(
        cluster
            .call_method(N0, rb, "sum", vec![Value::Int(5)])
            .unwrap(),
        Value::Int(52)
    );
}

#[test]
fn distribution_boundaries_are_reconnected() {
    let cluster = build();
    // a (node 0) -> remote (node 1 after migration); snapshot a on node 0;
    // restore: the new graph points at the SAME remote object.
    let a = cluster
        .new_instance(N0, "LinkNode", 0, vec![Value::Int(1)])
        .unwrap();
    let r = cluster
        .new_instance(N0, "LinkNode", 0, vec![Value::Int(2)])
        .unwrap();
    set_next(&cluster, N0, &a, r.clone());
    cluster.migrate(N0, r.as_ref_handle().unwrap(), N1).unwrap();
    let snap = cluster.snapshot(N0, a.as_ref_handle().unwrap()).unwrap();
    assert_eq!(
        snap.len(),
        1,
        "remote tail is a boundary marker, not captured"
    );
    let restored = cluster.restore(N0, &snap).unwrap();
    // Mutate the remote object; BOTH graphs see it.
    cluster
        .call_method(N0, r, "set_v", vec![Value::Int(41)])
        .unwrap();
    assert_eq!(
        cluster
            .call_method(N0, restored, "sum", vec![Value::Int(5)])
            .unwrap(),
        Value::Int(42)
    );
}

#[test]
fn snapshotting_a_proxy_root_is_rejected() {
    let cluster = build();
    let a = cluster
        .new_instance(N0, "LinkNode", 0, vec![Value::Int(1)])
        .unwrap();
    let h = a.as_ref_handle().unwrap();
    cluster.migrate(N0, h, N1).unwrap();
    let err = cluster.snapshot(N0, h).unwrap_err();
    assert!(err.to_string().contains("home node"), "{err}");
}
