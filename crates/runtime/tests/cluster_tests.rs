//! End-to-end tests of the distributed runtime: the transformed Figure 2
//! program deployed over a simulated cluster, exercising factories,
//! proxies, marshalling, exceptions, failures, migration and adaptation.

use rafda_classmodel::builder::{ClassBuilder, MethodBuilder};
use rafda_classmodel::{sample, ClassKind, ClassUniverse, Field, Ty};
use rafda_net::NodeId;
use rafda_policy::{AffinityConfig, LocalPolicy, Placement, StaticPolicy};
use rafda_runtime::{Cluster, LocalRuntime, RuntimeError};
use rafda_transform::Transformer;
use rafda_vm::{ObserverIds, Value, Vm, VmError};

const N0: NodeId = NodeId(0);
const N1: NodeId = NodeId(1);
const N2: NodeId = NodeId(2);

/// Build Figure 2 (+ observer + throwables + a driver class), transform it,
/// and return the transformed universe, plan and observer ids.
fn transformed_figure2() -> (ClassUniverse, rafda_transform::TransformPlan, ObserverIds) {
    let mut u = ClassUniverse::new();
    let ids = sample::build_figure2(&mut u);
    let obs = Vm::install_observer(&mut u);
    let (_t, app_error) = sample::build_throwables(&mut u);

    // class Driver {
    //   static int run(int seed) {
    //     Y y = new Y(seed); X x = new X(y);
    //     Observer.emit(x.m(4)); Observer.emit(X.p(6));
    //     return x.m(10);
    //   }
    //   static int boom(int code) { throw new AppError(code); }
    // }
    let mut cb = ClassBuilder::declare(&mut u, "Driver", ClassKind::Class);
    let m_sig = u.sig("m", vec![Ty::Long]);
    let p_sig = u.sig("p", vec![Ty::Int]);
    let mut mb = MethodBuilder::new(1);
    let y = mb.alloc_local();
    let x = mb.alloc_local();
    mb.load_local(0);
    mb.new_init(ids.y, 0, 1);
    mb.store_local(y);
    mb.load_local(y);
    mb.new_init(ids.x, 0, 1);
    mb.store_local(x);
    mb.load_local(x);
    mb.const_long(4);
    mb.invoke(m_sig, 1);
    mb.unop(rafda_classmodel::UnOp::Convert("long"));
    mb.invoke_static(obs.class, obs.emit, 1);
    mb.pop();
    mb.const_int(6);
    mb.invoke_static(ids.x, p_sig, 1);
    mb.unop(rafda_classmodel::UnOp::Convert("long"));
    mb.invoke_static(obs.class, obs.emit, 1);
    mb.pop();
    mb.load_local(x);
    mb.const_long(10);
    mb.invoke(m_sig, 1);
    mb.ret_value();
    cb.static_method(&mut u, "run", vec![Ty::Int], Ty::Int, Some(mb.finish()));

    let mut mb = MethodBuilder::new(1);
    mb.load_local(0);
    mb.new_init(app_error, 0, 1);
    mb.throw();
    cb.static_method(&mut u, "boom", vec![Ty::Int], Ty::Int, Some(mb.finish()));
    cb.finish(&mut u);

    let outcome = Transformer::new()
        .protocols(&["RMI", "SOAP", "CORBA"])
        .run(&mut u)
        .unwrap();
    (u, outcome.plan, obs)
}

// ----------------------------------------------------------------------
// Local (single address space) — the paper's Section 4 milestone
// ----------------------------------------------------------------------

#[test]
fn transformed_program_runs_locally_with_same_results() {
    let (u, plan, _obs) = transformed_figure2();
    let rt = LocalRuntime::new(u, plan);
    // X.p(6) == 42 through discover() + singleton.
    assert_eq!(
        rt.call_static("X", "p", vec![Value::Int(6)]).unwrap(),
        Value::Int(42)
    );
    // new X(new Y(3)).m(4) == 7 through make() + init$0.
    let y = rt.new_instance("Y", 0, vec![Value::Int(3)]).unwrap();
    let x = rt.new_instance("X", 0, vec![y]).unwrap();
    assert_eq!(
        rt.call_method(x, "m", vec![Value::Long(4)]).unwrap(),
        Value::Int(7)
    );
}

#[test]
fn local_traces_match_original_program() {
    // Original program.
    let mut u = ClassUniverse::new();
    sample::build_figure2(&mut u);
    let obs = Vm::install_observer(&mut u);
    sample::build_throwables(&mut u);
    // (Driver must exist identically in both universes; rebuild via helper.)
    let (tu, plan, tobs) = transformed_figure2();

    // The helper built its own universe; rebuild the original for comparison.
    let mut ou = ClassUniverse::new();
    let ids = sample::build_figure2(&mut ou);
    let oobs = Vm::install_observer(&mut ou);
    let (_t, app_error) = sample::build_throwables(&mut ou);
    let mut cb = ClassBuilder::declare(&mut ou, "Driver", ClassKind::Class);
    let m_sig = ou.sig("m", vec![Ty::Long]);
    let p_sig = ou.sig("p", vec![Ty::Int]);
    let mut mb = MethodBuilder::new(1);
    let y = mb.alloc_local();
    let x = mb.alloc_local();
    mb.load_local(0);
    mb.new_init(ids.y, 0, 1);
    mb.store_local(y);
    mb.load_local(y);
    mb.new_init(ids.x, 0, 1);
    mb.store_local(x);
    mb.load_local(x);
    mb.const_long(4);
    mb.invoke(m_sig, 1);
    mb.unop(rafda_classmodel::UnOp::Convert("long"));
    mb.invoke_static(oobs.class, oobs.emit, 1);
    mb.pop();
    mb.const_int(6);
    mb.invoke_static(ids.x, p_sig, 1);
    mb.unop(rafda_classmodel::UnOp::Convert("long"));
    mb.invoke_static(oobs.class, oobs.emit, 1);
    mb.pop();
    mb.load_local(x);
    mb.const_long(10);
    mb.invoke(m_sig, 1);
    mb.ret_value();
    cb.static_method(&mut ou, "run", vec![Ty::Int], Ty::Int, Some(mb.finish()));
    let mut mb = MethodBuilder::new(1);
    mb.load_local(0);
    mb.new_init(app_error, 0, 1);
    mb.throw();
    cb.static_method(&mut ou, "boom", vec![Ty::Int], Ty::Int, Some(mb.finish()));
    cb.finish(&mut ou);
    let _ = obs;
    drop(u);

    // Original run.
    let ovm = Vm::new(std::sync::Arc::new(ou));
    ovm.bind_observer(&oobs);
    let original = ovm.run_observed("Driver", "run", vec![Value::Int(3)]);

    // Transformed local run.
    let rt = LocalRuntime::new(tu, plan);
    rt.bind_observer(&tobs);
    let transformed = rt.run_observed("Driver", "run", vec![Value::Int(3)]);

    assert_eq!(original, transformed, "semantic equivalence (local)");
    assert_eq!(original.len(), 2);
}

// ----------------------------------------------------------------------
// Distributed
// ----------------------------------------------------------------------

#[test]
fn remote_statics_work_through_proxies() {
    let (u, plan, _obs) = transformed_figure2();
    let policy = StaticPolicy::new().default_statics(N1);
    let cluster = Cluster::new(u, plan, 2, 7, Box::new(policy));
    let r = cluster
        .call_static(N0, "X", "p", vec![Value::Int(6)])
        .unwrap();
    assert_eq!(r, Value::Int(42));
    let net = cluster.network().stats();
    assert!(net.messages >= 2, "must have gone remote: {net:?}");
    assert!(cluster.stats().rpc_discovers >= 1);
    assert!(cluster.stats().rpc_calls >= 1);
}

#[test]
fn remote_instances_and_reference_arguments() {
    let (u, plan, _obs) = transformed_figure2();
    // Y instances on node 2; X instances local to creator.
    let policy = StaticPolicy::new().place("Y", Placement::Node(N2));
    let cluster = Cluster::new(u, plan, 3, 7, Box::new(policy));
    let y = cluster
        .new_instance(N0, "Y", 0, vec![Value::Int(3)])
        .unwrap();
    // y is a proxy on node 0 for an object on node 2.
    assert_eq!(cluster.location_of(N0, &y), Some(N2));
    // Passing the proxy into a locally created X: X.m goes through y's
    // proxy to node 2.
    let x = cluster.new_instance(N0, "X", 0, vec![y.clone()]).unwrap();
    assert_eq!(cluster.location_of(N0, &x), Some(N0));
    let r = cluster
        .call_method(N0, x, "m", vec![Value::Long(4)])
        .unwrap();
    assert_eq!(r, Value::Int(7));
    // Calling y.n directly also works.
    let r = cluster
        .call_method(N0, y, "n", vec![Value::Long(39)])
        .unwrap();
    assert_eq!(r, Value::Int(42));
}

#[test]
fn colocation_unwraps_to_local_object() {
    let (u, plan, _obs) = transformed_figure2();
    let policy = StaticPolicy::new().place("Y", Placement::Node(N1));
    let cluster = Cluster::new(u, plan, 2, 7, Box::new(policy));
    // Create a Y from node 1 itself: must be a plain local object.
    let y = cluster
        .new_instance(N1, "Y", 0, vec![Value::Int(5)])
        .unwrap();
    assert_eq!(cluster.location_of(N1, &y), Some(N1));
    let before = cluster.network().stats().messages;
    let r = cluster
        .call_method(N1, y, "n", vec![Value::Long(1)])
        .unwrap();
    assert_eq!(r, Value::Int(6));
    assert_eq!(
        cluster.network().stats().messages,
        before,
        "local call must not touch the network"
    );
}

#[test]
fn distributed_trace_equals_local_trace() {
    let (u1, plan1, obs1) = transformed_figure2();
    let rt = LocalRuntime::new(u1, plan1);
    rt.bind_observer(&obs1);
    let local = rt.run_observed("Driver", "run", vec![Value::Int(3)]);

    let (u2, plan2, obs2) = transformed_figure2();
    let policy = StaticPolicy::new()
        .default_statics(N1)
        .place("Y", Placement::Node(N2))
        .place("X", Placement::Node(N1));
    let cluster = Cluster::new(u2, plan2, 3, 7, Box::new(policy));
    cluster.bind_observer(&obs2);
    let distributed = cluster.run_observed(N0, "Driver", "run", vec![Value::Int(3)]);

    assert_eq!(local, distributed, "semantic equivalence (distributed)");
    assert!(cluster.network().stats().messages > 4);
}

#[test]
fn exceptions_propagate_across_the_wire() {
    let (u, plan, _obs) = transformed_figure2();
    // Driver is substitutable, so calling Driver.boom from node 0 with
    // Driver statics on node 1 crosses the network and the AppError must
    // come back.
    let policy = StaticPolicy::new().default_statics(N1);
    let cluster = Cluster::new(u, plan, 2, 7, Box::new(policy));
    let err = cluster
        .call_static(N0, "Driver", "boom", vec![Value::Int(9)])
        .unwrap_err();
    let RuntimeError::Vm(VmError::Exception(h)) = err else {
        panic!("expected remote exception, got {err:?}");
    };
    let vm = cluster.vm(N0);
    let class = vm.class_of(h).unwrap();
    assert_eq!(cluster.universe().class(class).name, "AppError");
    // The exception's state travelled by value.
    let code = vm
        .call_virtual_by_name(Value::Ref(h), "code", vec![])
        .unwrap();
    assert_eq!(code, Value::Int(9));
}

#[test]
fn network_partition_surfaces_as_network_failure() {
    let (u, plan, _obs) = transformed_figure2();
    let policy = StaticPolicy::new().default_statics(N1);
    let cluster = Cluster::new(u, plan, 2, 7, Box::new(policy));
    cluster.network().fault_plan(|f| f.partition(N0, N1));
    let err = cluster
        .call_static(N0, "X", "p", vec![Value::Int(6)])
        .unwrap_err();
    assert!(err.is_network(), "{err}");
    // Heal and retry: works.
    cluster.network().fault_plan(|f| f.heal_all());
    assert_eq!(
        cluster
            .call_static(N0, "X", "p", vec![Value::Int(6)])
            .unwrap(),
        Value::Int(42)
    );
}

// ----------------------------------------------------------------------
// Figure 1: dynamic boundary changes
// ----------------------------------------------------------------------

/// Build the Figure 1 scenario: objects A and B share an instance of C.
/// C counts invocations, so state migration is observable.
fn figure1_universe() -> (ClassUniverse, rafda_transform::TransformPlan) {
    let mut u = ClassUniverse::new();
    let c = u.declare("C", ClassKind::Class);
    {
        let mut cb = ClassBuilder::new(&u, c);
        let count = cb.field(Field::new("count", Ty::Int));
        let mut mb = MethodBuilder::new(1);
        mb.ret();
        cb.ctor(&mut u, vec![], Some(mb.finish()));
        // int tick() { count = count + 1; return count; }
        let mut mb = MethodBuilder::new(1);
        mb.load_this();
        mb.load_this().get_field(c, count);
        mb.const_int(1).add();
        mb.put_field(c, count);
        mb.load_this().get_field(c, count);
        mb.ret_value();
        cb.method(&mut u, "tick", vec![], Ty::Int, Some(mb.finish()));
        cb.finish(&mut u);
    }
    for holder in ["A", "B"] {
        let id = u.declare(holder, ClassKind::Class);
        let mut cb = ClassBuilder::new(&u, id);
        let f = cb.field(Field::new("c", Ty::Object(c)));
        let mut mb = MethodBuilder::new(2);
        mb.load_this().load_local(1).put_field(id, f).ret();
        cb.ctor(&mut u, vec![Ty::Object(c)], Some(mb.finish()));
        // int use() { return c.tick(); }
        let tick = u.sig("tick", vec![]);
        let mut mb = MethodBuilder::new(1);
        mb.load_this().get_field(id, f);
        mb.invoke(tick, 0);
        mb.ret_value();
        cb.method(&mut u, "use", vec![], Ty::Int, Some(mb.finish()));
        cb.finish(&mut u);
    }
    let outcome = Transformer::new()
        .protocols(&["RMI", "SOAP"])
        .run(&mut u)
        .unwrap();
    (u, outcome.plan)
}

#[test]
fn figure1_redistribution_scenario() {
    let (u, plan) = figure1_universe();
    let cluster = Cluster::new(u, plan, 2, 7, Box::new(LocalPolicy::default()));

    // Everything starts on node 0: A and B share C.
    let c = cluster.new_instance(N0, "C", 0, vec![]).unwrap();
    let a = cluster.new_instance(N0, "A", 0, vec![c.clone()]).unwrap();
    let b = cluster.new_instance(N0, "B", 0, vec![c.clone()]).unwrap();
    assert_eq!(
        cluster.call_method(N0, a.clone(), "use", vec![]).unwrap(),
        Value::Int(1)
    );
    assert_eq!(
        cluster.call_method(N0, b.clone(), "use", vec![]).unwrap(),
        Value::Int(2)
    );
    let before = cluster.network().stats().messages;
    assert_eq!(before, 0, "all-local phase must be network-free");

    // Re-distribute: C becomes remote (C' on node 1, Cp in place).
    let ch = c.as_ref_handle().unwrap();
    let event = cluster.migrate(N0, ch, N1).unwrap();
    assert_eq!(event.class, "C");
    assert_eq!(event.from, N0);
    assert_eq!(event.to, N1);
    assert_eq!(cluster.location_of(N0, &c), Some(N1));

    // A and B still hold the SAME references — state carried over (count=2),
    // and calls now cross the network.
    assert_eq!(
        cluster.call_method(N0, a.clone(), "use", vec![]).unwrap(),
        Value::Int(3)
    );
    assert_eq!(
        cluster.call_method(N0, b.clone(), "use", vec![]).unwrap(),
        Value::Int(4)
    );
    assert!(cluster.network().stats().messages > before);

    // And back again: pull C local; calls stop touching the network.
    cluster.pull_local(N0, ch).unwrap();
    assert_eq!(cluster.location_of(N0, &c), Some(N0));
    let msgs = cluster.network().stats().messages;
    assert_eq!(
        cluster.call_method(N0, a, "use", vec![]).unwrap(),
        Value::Int(5)
    );
    assert_eq!(cluster.network().stats().messages, msgs);
    assert_eq!(cluster.stats().migrations, 1);
    assert_eq!(cluster.stats().pulls, 1);
}

#[test]
fn migration_preserves_reference_identity_semantics() {
    // After migration, node-1 holders of the object and node-0 proxies see
    // the same state.
    let (u, plan) = figure1_universe();
    let cluster = Cluster::new(u, plan, 2, 7, Box::new(LocalPolicy::default()));
    let c = cluster.new_instance(N0, "C", 0, vec![]).unwrap();
    let ch = c.as_ref_handle().unwrap();
    for _ in 0..3 {
        cluster.call_method(N0, c.clone(), "tick", vec![]).unwrap();
    }
    cluster.migrate(N0, ch, N1).unwrap();
    // Call through the proxy: 4.
    assert_eq!(
        cluster.call_method(N0, c.clone(), "tick", vec![]).unwrap(),
        Value::Int(4)
    );
}

#[test]
fn adaptation_moves_chatty_objects_to_their_caller() {
    let (u, plan) = figure1_universe();
    // C is placed on node 1; the caller works on node 0.
    let policy = StaticPolicy::new().place("C", Placement::Node(N1));
    let cluster = Cluster::new(u, plan, 2, 7, Box::new(policy));
    let c = cluster.new_instance(N0, "C", 0, vec![]).unwrap();
    assert_eq!(cluster.location_of(N0, &c), Some(N1));
    // Hammer it from node 0.
    for _ in 0..32 {
        cluster.call_method(N0, c.clone(), "tick", vec![]).unwrap();
    }
    let events = cluster.adapt(&AffinityConfig::default());
    assert_eq!(events.len(), 1, "{events:?}");
    assert_eq!(events[0].to, N0);
    assert_eq!(cluster.location_of(N0, &c), Some(N0));
    // Calls keep working and stay local now.
    let msgs = cluster.network().stats().messages;
    assert_eq!(
        cluster.call_method(N0, c.clone(), "tick", vec![]).unwrap(),
        Value::Int(33)
    );
    assert_eq!(cluster.network().stats().messages, msgs);
    // A second adaptation round does nothing.
    assert!(cluster.adapt(&AffinityConfig::default()).is_empty());
}

#[test]
fn protocol_interchangeability_same_results() {
    for proto in ["RMI", "SOAP", "CORBA"] {
        let (u, plan, _obs) = transformed_figure2();
        let policy = StaticPolicy::new()
            .default_statics(N1)
            .default_protocol(proto);
        let cluster = Cluster::new(u, plan, 2, 7, Box::new(policy));
        let r = cluster
            .call_static(N0, "X", "p", vec![Value::Int(6)])
            .unwrap();
        assert_eq!(r, Value::Int(42), "{proto}");
        assert!(cluster.network().stats().bytes > 0);
    }
}

#[test]
fn soap_costs_more_wire_bytes_and_time_than_rmi() {
    let run = |proto: &str| {
        let (u, plan, _obs) = transformed_figure2();
        let policy = StaticPolicy::new()
            .default_statics(N1)
            .default_protocol(proto);
        let cluster = Cluster::new(u, plan, 2, 7, Box::new(policy));
        cluster
            .call_static(N0, "X", "p", vec![Value::Int(6)])
            .unwrap();
        let stats = cluster.network().stats();
        (stats.bytes, cluster.network().now().as_ns())
    };
    let (rmi_bytes, rmi_time) = run("RMI");
    let (soap_bytes, soap_time) = run("SOAP");
    assert!(
        soap_bytes > 2 * rmi_bytes,
        "soap {soap_bytes} vs rmi {rmi_bytes}"
    );
    assert!(soap_time > rmi_time, "soap {soap_time} vs rmi {rmi_time}");
}

#[test]
fn round_robin_policy_spreads_instances() {
    let (u, plan, _obs) = transformed_figure2();
    let policy = rafda_policy::RoundRobinPolicy::new(3, "RMI");
    let cluster = Cluster::new(u, plan, 3, 7, Box::new(policy));
    let mut locations = std::collections::HashSet::new();
    let mut ys = Vec::new();
    for i in 0..6 {
        let y = cluster
            .new_instance(N0, "Y", 0, vec![Value::Int(i)])
            .unwrap();
        locations.insert(cluster.location_of(N0, &y).unwrap());
        ys.push(y);
    }
    assert_eq!(locations.len(), 3, "instances spread over all nodes");
    // All of them behave identically regardless of placement.
    for (i, y) in ys.into_iter().enumerate() {
        assert_eq!(
            cluster
                .call_method(N0, y, "n", vec![Value::Long(10)])
                .unwrap(),
            Value::Int(i as i32 + 10)
        );
    }
}
