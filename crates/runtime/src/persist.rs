//! Orthogonal persistence over the transformed object model.
//!
//! The paper's conclusions position the transformation as a general
//! componentisation: "This transformed version can be extended while
//! retaining program semantics in order to provide requirements such as
//! distribution **or persistence**" (Section 4; the related-work section
//! compares against Orthogonally Persistent Java). This module implements
//! that second extension: a [`Snapshot`] captures the object graph
//! reachable from a root — including cycles and shared sub-objects — and
//! can be restored into any node's heap, preserving the graph's shape.
//!
//! Like OPJ, persistence piggybacks on the same property the distribution
//! runtime relies on: after transformation every object is a flat record of
//! interface-typed slots, so state capture needs no per-class code.
//!
//! Proxies are snapshotted *as boundary markers* ([`SnapSlot::Remote`]):
//! a persisted graph that referred to a remote object reconnects to the
//! same remote object on restore (if it still exists) — the persistence
//! analogue of RAFDA's remote references.

use crate::cluster::{gen_info, read_proxy_state, Shared};
use crate::error::RuntimeError;
use crate::Cluster;
use rafda_net::NodeId;
use rafda_vm::{Handle, HeapEntry, Value, Vm};
use std::collections::HashMap;
use std::fmt;

/// One field slot of a persisted object.
#[derive(Debug, Clone, PartialEq)]
pub enum SnapSlot {
    /// The `null` reference.
    Null,
    /// A boolean, by value.
    Bool(bool),
    /// A 32-bit integer, by value.
    Int(i32),
    /// A 64-bit integer, by value.
    Long(i64),
    /// A 32-bit float as IEEE-754 bits (exact round trip).
    Float(u32),
    /// A 64-bit float as IEEE-754 bits (exact round trip).
    Double(u64),
    /// A string, by value.
    Str(String),
    /// Reference to another object *within* the snapshot (by index) —
    /// this is what makes cycles and sharing round-trip.
    Intern(usize),
    /// A distribution boundary: a reference to an object exported by
    /// another node, reconnected on restore.
    Remote {
        /// The owning node.
        node: u32,
        /// The export id there.
        oid: u64,
        /// The implementation class name (picks the proxy family).
        class: String,
    },
}

/// One persisted object: class name plus slots.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapObject {
    /// Class name (`"[]"` for arrays).
    pub class: String,
    /// Whether this entry is an array (slots are then elements).
    pub is_array: bool,
    /// Field slots or array elements.
    pub slots: Vec<SnapSlot>,
}

/// A persisted object graph.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    objects: Vec<SnapObject>,
    root: usize,
}

impl Snapshot {
    /// Number of objects captured.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether the snapshot is empty (never true for a successful capture).
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// The captured objects (root first).
    pub fn objects(&self) -> &[SnapObject] {
        &self.objects
    }
}

impl fmt::Display for Snapshot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "snapshot of {} objects (root #{}):",
            self.objects.len(),
            self.root
        )?;
        for (i, o) in self.objects.iter().enumerate() {
            writeln!(f, "  #{i}: {} ({} slots)", o.class, o.slots.len())?;
        }
        Ok(())
    }
}

impl Cluster {
    /// Capture the object graph reachable from `root` on `node`.
    ///
    /// Cycles and shared references are preserved exactly; proxies become
    /// [`SnapSlot::Remote`] boundary markers.
    ///
    /// # Errors
    /// [`RuntimeError::Bad`] for stale handles.
    pub fn snapshot(&self, node: NodeId, root: Handle) -> Result<Snapshot, RuntimeError> {
        snapshot(self.shared(), node, root)
    }

    /// Restore a snapshot into `node`'s heap, returning the new root.
    ///
    /// # Errors
    /// [`RuntimeError::Bad`] for unknown classes or dangling remote
    /// references.
    pub fn restore(&self, node: NodeId, snapshot: &Snapshot) -> Result<Value, RuntimeError> {
        restore(self.shared(), node, snapshot)
    }
}

pub(crate) fn snapshot(
    shared: &Shared,
    node: NodeId,
    root: Handle,
) -> Result<Snapshot, RuntimeError> {
    let vm: &Vm = &shared.vms[node.0 as usize];
    let mut index: HashMap<Handle, usize> = HashMap::new();
    let mut objects: Vec<SnapObject> = Vec::new();
    let mut work: Vec<Handle> = vec![root];

    // First pass: discover all reachable local objects & reserve indices.
    while let Some(h) = work.pop() {
        if index.contains_key(&h) {
            continue;
        }
        let entry = vm
            .with_heap(|heap| heap.get(h).cloned())
            .ok_or_else(|| RuntimeError::Bad("stale handle in snapshot".into()))?;
        match &entry {
            HeapEntry::Object { class, fields } => {
                // Proxies are boundary markers, not captured objects —
                // unless they are the root, which we reject.
                if gen_info(shared, *class).is_some_and(|i| i.proto.is_some()) {
                    if h == root {
                        return Err(RuntimeError::Bad(
                            "cannot snapshot a proxy root; snapshot at its home node".into(),
                        ));
                    }
                    continue;
                }
                index.insert(h, objects.len());
                objects.push(SnapObject {
                    class: shared.universe.class(*class).name.clone(),
                    is_array: false,
                    slots: Vec::new(),
                });
                for f in fields {
                    if let Value::Ref(next) = f {
                        work.push(*next);
                    }
                }
            }
            HeapEntry::Array { data, .. } => {
                index.insert(h, objects.len());
                objects.push(SnapObject {
                    class: "[]".to_owned(),
                    is_array: true,
                    slots: Vec::new(),
                });
                for f in data {
                    if let Value::Ref(next) = f {
                        work.push(*next);
                    }
                }
            }
        }
    }

    // Second pass: fill slots now that every reachable object has an index.
    for (&h, &i) in &index {
        let entry = vm
            .with_heap(|heap| heap.get(h).cloned())
            .expect("still live");
        let fields = match entry {
            HeapEntry::Object { fields, .. } => fields,
            HeapEntry::Array { data, .. } => data,
        };
        let mut slots = Vec::with_capacity(fields.len());
        for f in &fields {
            slots.push(match f {
                Value::Null => SnapSlot::Null,
                Value::Bool(b) => SnapSlot::Bool(*b),
                Value::Int(v) => SnapSlot::Int(*v),
                Value::Long(v) => SnapSlot::Long(*v),
                Value::Float(x) => SnapSlot::Float(x.to_bits()),
                Value::Double(x) => SnapSlot::Double(x.to_bits()),
                Value::Str(s) => SnapSlot::Str(s.to_string()),
                Value::Ref(r) => {
                    if let Some(&j) = index.get(r) {
                        SnapSlot::Intern(j)
                    } else {
                        // Must be a proxy (skipped above): boundary marker.
                        let class = vm
                            .class_of(*r)
                            .ok_or_else(|| RuntimeError::Bad("stale ref in snapshot".into()))?;
                        let info = gen_info(shared, class)
                            .filter(|i| i.proto.is_some())
                            .ok_or_else(|| {
                                RuntimeError::Bad("unreachable non-proxy in snapshot".into())
                            })?;
                        let (n, oid) = read_proxy_state(vm, *r)
                            .ok_or_else(|| RuntimeError::Bad("stale proxy in snapshot".into()))?;
                        let family = shared.plan.family(info.base).expect("family");
                        let logical = match info.side {
                            crate::cluster::Side::Obj => family.obj_local,
                            crate::cluster::Side::Cls => {
                                family.cls_local.expect("cls side implies statics")
                            }
                        };
                        SnapSlot::Remote {
                            node: n,
                            oid,
                            class: shared.universe.class(logical).name.clone(),
                        }
                    }
                }
            });
        }
        objects[i].slots = slots;
    }

    let root_index = index[&root];
    Ok(Snapshot {
        objects,
        root: root_index,
    })
}

pub(crate) fn restore(
    shared: &Shared,
    node: NodeId,
    snapshot: &Snapshot,
) -> Result<Value, RuntimeError> {
    let vm: &Vm = &shared.vms[node.0 as usize];
    // Phase 1: allocate every object with null slots (arrays sized).
    let mut handles = Vec::with_capacity(snapshot.objects.len());
    for o in &snapshot.objects {
        let h = if o.is_array {
            vm.with_heap(|heap| {
                heap.alloc_array(rafda_classmodel::Ty::Int, vec![Value::Null; o.slots.len()])
            })
        } else {
            let class = shared
                .universe
                .by_name(&o.class)
                .ok_or_else(|| RuntimeError::Bad(format!("unknown class {}", o.class)))?;
            vm.alloc_raw(class, vec![Value::Null; o.slots.len()])
        };
        handles.push(h);
    }
    // Phase 2: patch slots (including cycles).
    for (i, o) in snapshot.objects.iter().enumerate() {
        for (k, slot) in o.slots.iter().enumerate() {
            let value = match slot {
                SnapSlot::Null => Value::Null,
                SnapSlot::Bool(b) => Value::Bool(*b),
                SnapSlot::Int(v) => Value::Int(*v),
                SnapSlot::Long(v) => Value::Long(*v),
                SnapSlot::Float(bits) => Value::Float(f32::from_bits(*bits)),
                SnapSlot::Double(bits) => Value::Double(f64::from_bits(*bits)),
                SnapSlot::Str(s) => Value::str(s),
                SnapSlot::Intern(j) => Value::Ref(handles[*j]),
                SnapSlot::Remote {
                    node: n,
                    oid,
                    class,
                } => crate::marshal::wire_to_value(
                    shared,
                    node,
                    &rafda_wire::WireValue::Remote {
                        node: *n,
                        object: *oid,
                        class: class.clone(),
                    },
                )
                .map_err(RuntimeError::Marshal)?,
            };
            if o.is_array {
                vm.with_heap(|heap| {
                    if let Some(HeapEntry::Array { data, .. }) = heap.get_mut(handles[i]) {
                        data[k] = value;
                    }
                });
            } else {
                vm.with_heap(|heap| heap.set_field(handles[i], k, value));
            }
        }
    }
    Ok(Value::Ref(handles[snapshot.root]))
}
