//! Soak-run accounting: per-phase op counts, metric deltas and monitor
//! verdicts, rendered as one deterministic text report.
//!
//! The production-day soak gate (see `tests/soak.rs` and the E16 bench)
//! drives a cluster through a phased churn schedule; this module is the
//! bookkeeping around that drive. A [`SoakRecorder`] snapshots the
//! cluster's counters at every phase boundary, counts the ops applied per
//! kind, and [`SoakRecorder::finish`] runs the quiescent-point invariant
//! sweep ([`Cluster::check_invariants`]) to fold the monitor verdicts into
//! a [`SoakReport`].
//!
//! Everything in the report derives from the simulated clock and the
//! deterministic counters, so equal seeds render byte-identical reports —
//! `ci.sh` diffs the text across two runs, exactly as it does for the
//! experiment report and the metric exports.

use crate::cluster::{Cluster, RuntimeStats};
use rafda_telemetry::{standard_monitors, Violation};
use std::collections::BTreeMap;
use std::fmt;

/// Counter snapshot at a phase boundary.
#[derive(Debug, Clone, Copy)]
struct Snapshot {
    stats: RuntimeStats,
    messages: u64,
    clock_ns: u64,
}

impl Snapshot {
    fn take(cluster: &Cluster) -> Self {
        Snapshot {
            stats: cluster.stats(),
            messages: cluster.network().stats().messages,
            clock_ns: cluster.network().now().as_ns(),
        }
    }
}

/// One completed soak phase: what was applied and what it cost.
#[derive(Debug, Clone)]
pub struct PhaseStats {
    /// Phase label (from the churn schedule).
    pub name: String,
    /// Ops applied, counted per kind label (`rafda_corpus::ops::SoakOp::kind`).
    pub ops: BTreeMap<&'static str, u64>,
    /// Wire messages this phase added.
    pub messages: u64,
    /// Simulated nanoseconds this phase consumed.
    pub clock_ns: u64,
    /// Runtime counter deltas over the phase.
    pub stats: RuntimeStats,
}

impl PhaseStats {
    /// Total ops applied in this phase.
    pub fn total_ops(&self) -> u64 {
        self.ops.values().sum()
    }
}

/// Records a soak run phase by phase; [`SoakRecorder::finish`] turns it
/// into a [`SoakReport`].
#[derive(Debug)]
pub struct SoakRecorder {
    seed: u64,
    origin: Snapshot,
    mark: Snapshot,
    open: Option<(String, BTreeMap<&'static str, u64>)>,
    phases: Vec<PhaseStats>,
}

impl SoakRecorder {
    /// Start recording against a freshly deployed cluster. `seed` is the
    /// schedule seed, echoed in the report so any run is reproducible
    /// from its rendered text alone.
    pub fn begin(cluster: &Cluster, seed: u64) -> Self {
        let origin = Snapshot::take(cluster);
        SoakRecorder {
            seed,
            origin,
            mark: origin,
            open: None,
            phases: Vec::new(),
        }
    }

    /// Open the named phase, closing the currently open one (its counter
    /// deltas are computed at this boundary).
    pub fn phase(&mut self, cluster: &Cluster, name: &str) {
        self.close(cluster);
        self.open = Some((name.to_string(), BTreeMap::new()));
    }

    /// Count one applied op under its kind label. Must be inside a phase.
    pub fn record(&mut self, kind: &'static str) {
        let (_, ops) = self
            .open
            .as_mut()
            .expect("SoakRecorder::record outside a phase");
        *ops.entry(kind).or_insert(0) += 1;
    }

    fn close(&mut self, cluster: &Cluster) {
        if let Some((name, ops)) = self.open.take() {
            let now = Snapshot::take(cluster);
            self.phases.push(PhaseStats {
                name,
                ops,
                messages: now.messages - self.mark.messages,
                clock_ns: now.clock_ns - self.mark.clock_ns,
                stats: now.stats.delta_from(&self.mark.stats),
            });
            self.mark = now;
        }
    }

    /// Close the last phase, run the quiescent-point invariant sweep and
    /// assemble the report.
    pub fn finish(mut self, cluster: &Cluster) -> SoakReport {
        self.close(cluster);
        let violations = cluster.check_invariants();
        let end = Snapshot::take(cluster);
        let mut monitors: Vec<(&'static str, u64)> =
            standard_monitors().iter().map(|m| (m.name(), 0)).collect();
        monitors.push(("stale-affinity", 0));
        for v in &violations {
            if let Some(slot) = monitors.iter_mut().find(|(n, _)| *n == v.monitor) {
                slot.1 += 1;
            } else {
                monitors.push((v.monitor, 1));
            }
        }
        SoakReport {
            seed: self.seed,
            phases: self.phases,
            monitors,
            violations,
            stats: end.stats.delta_from(&self.origin.stats),
            messages: end.messages - self.origin.messages,
            clock_ns: end.clock_ns - self.origin.clock_ns,
        }
    }
}

/// The outcome of one soak run: per-phase op counts and cost, whole-run
/// metric deltas, and the verdict of every invariant monitor. Rendered
/// deterministically by its [`Display`](fmt::Display) impl.
#[derive(Debug, Clone)]
pub struct SoakReport {
    /// The schedule seed the run replayed.
    pub seed: u64,
    /// Completed phases in execution order.
    pub phases: Vec<PhaseStats>,
    /// `(monitor name, violation count)` for every standing monitor plus
    /// the structural stale-affinity sweep, in a fixed order.
    pub monitors: Vec<(&'static str, u64)>,
    /// Every violation the quiescent-point sweep returned.
    pub violations: Vec<Violation>,
    /// Whole-run runtime counter deltas.
    pub stats: RuntimeStats,
    /// Whole-run wire messages.
    pub messages: u64,
    /// Whole-run simulated nanoseconds.
    pub clock_ns: u64,
}

impl SoakReport {
    /// Total ops across all phases.
    pub fn total_ops(&self) -> u64 {
        self.phases.iter().map(PhaseStats::total_ops).sum()
    }

    /// `true` when every monitor stayed silent.
    pub fn clean(&self) -> bool {
        self.violations.is_empty()
    }
}

impl fmt::Display for SoakReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "soak report: seed {} | {} ops in {} phases | {} messages | {:.3} sim ms",
            self.seed,
            self.total_ops(),
            self.phases.len(),
            self.messages,
            self.clock_ns as f64 / 1e6,
        )?;
        for p in &self.phases {
            let ops: Vec<String> = p.ops.iter().map(|(k, v)| format!("{k}={v}")).collect();
            writeln!(
                f,
                "  {:<8} {:>7} ops | {:>8} msgs | {:>9.3} sim ms | {}",
                p.name,
                p.total_ops(),
                p.messages,
                p.clock_ns as f64 / 1e6,
                ops.join(" "),
            )?;
        }
        writeln!(f, "  totals: {}", self.stats)?;
        let verdicts: Vec<String> = self
            .monitors
            .iter()
            .map(|(name, count)| {
                if *count == 0 {
                    format!("{name}=silent")
                } else {
                    format!("{name}={count}")
                }
            })
            .collect();
        writeln!(f, "  monitors: {}", verdicts.join(" "))?;
        for v in &self.violations {
            writeln!(f, "    violation: {v}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rafda_classmodel::builder::{ClassBuilder, MethodBuilder};
    use rafda_classmodel::{ClassKind, ClassUniverse, Field, Ty};
    use rafda_net::NodeId;
    use rafda_policy::StaticPolicy;
    use rafda_transform::Transformer;
    use rafda_vm::{Value, Vm};

    fn counter_cluster() -> Cluster {
        let mut universe = ClassUniverse::new();
        Vm::install_observer(&mut universe);
        let c = universe.declare("C", ClassKind::Class);
        let mut cb = ClassBuilder::new(&universe, c);
        let v = cb.field(Field::new("v", Ty::Int));
        let mut mb = MethodBuilder::new(1);
        mb.ret();
        cb.ctor(&mut universe, vec![], Some(mb.finish()));
        let mut mb = MethodBuilder::new(2);
        mb.load_this();
        mb.load_this().get_field(c, v);
        mb.load_local(1).add();
        mb.put_field(c, v);
        mb.load_this().get_field(c, v).ret_value();
        cb.method(
            &mut universe,
            "add",
            vec![Ty::Int],
            Ty::Int,
            Some(mb.finish()),
        );
        cb.finish(&mut universe);
        let outcome = Transformer::new()
            .protocols(&["RMI"])
            .run(&mut universe)
            .unwrap();
        let policy = StaticPolicy::new().place("C", rafda_policy::Placement::Node(NodeId(1)));
        Cluster::new(universe, outcome.plan, 2, 7, Box::new(policy))
    }

    #[test]
    fn recorder_attributes_ops_and_costs_to_phases() {
        let cluster = counter_cluster();
        cluster.enable_monitors();
        let obj = cluster.new_instance(NodeId(0), "C", 0, vec![]).unwrap();
        let mut rec = SoakRecorder::begin(&cluster, 99);
        rec.phase(&cluster, "warm");
        for _ in 0..3 {
            cluster
                .call_method(NodeId(0), obj.clone(), "add", vec![Value::Int(1)])
                .unwrap();
            rec.record("call");
        }
        rec.phase(&cluster, "main");
        cluster
            .call_method(NodeId(0), obj.clone(), "add", vec![Value::Int(1)])
            .unwrap();
        rec.record("call");
        let report = rec.finish(&cluster);

        assert_eq!(report.total_ops(), 4);
        assert_eq!(report.phases.len(), 2);
        assert_eq!(report.phases[0].ops.get("call"), Some(&3));
        assert_eq!(report.phases[1].ops.get("call"), Some(&1));
        assert!(report.phases[0].messages > 0, "remote calls cross the wire");
        assert_eq!(report.stats.rpc_calls, 4);
        assert!(report.clean(), "{report}");
        // Every standing verdict is present and silent.
        let names: Vec<&str> = report.monitors.iter().map(|(n, _)| *n).collect();
        assert_eq!(
            names,
            [
                "stale-read",
                "at-most-once",
                "span-tree",
                "replica-divergence",
                "stale-affinity"
            ]
        );
        assert!(report.monitors.iter().all(|(_, c)| *c == 0));
    }

    #[test]
    fn report_text_is_deterministic_and_self_identifying() {
        let render = || {
            let cluster = counter_cluster();
            cluster.enable_monitors();
            let obj = cluster.new_instance(NodeId(0), "C", 0, vec![]).unwrap();
            let mut rec = SoakRecorder::begin(&cluster, 1234);
            rec.phase(&cluster, "only");
            cluster
                .call_method(NodeId(0), obj, "add", vec![Value::Int(2)])
                .unwrap();
            rec.record("call");
            rec.finish(&cluster).to_string()
        };
        let a = render();
        assert_eq!(a, render(), "same seed must render identical text");
        assert!(a.contains("seed 1234"), "{a}");
        assert!(a.contains("monitors:"), "{a}");
    }
}
