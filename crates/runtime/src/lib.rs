//! # rafda-runtime
//!
//! The RAFDA distributed runtime: it takes a *transformed* class universe
//! (`rafda-transform`) and deploys it over a simulated cluster
//! (`rafda-net`), implementing the pieces the paper leaves to the runtime:
//!
//! * the **factory hooks** — the generated `make()` and `discover()` methods
//!   are `native`; this crate installs their implementations, which consult
//!   the [`DistributionPolicy`](rafda_policy::DistributionPolicy) ("the
//!   object creation method contains the policy determining which of the
//!   classes implementing `A_O_Int` will be used", Section 2);
//! * the **proxy hooks** — every method of a generated `A_O_Proxy_<P>` /
//!   `A_C_Proxy_<P>` class marshals the call with protocol `P`
//!   (`rafda-wire`), ships it over the simulated network, and the owning
//!   node's VM executes the real method, with results, remote references
//!   and exceptions marshalled back;
//! * **object registries** — exported objects, imported proxies, and the
//!   per-node singletons implementing static members;
//! * **dynamic boundary changes** — [`Cluster::migrate`] moves a live
//!   object to another node, rewriting the local instance *in place* into a
//!   proxy (the paper's Figure 1: `C` becomes `Cp`), and
//!   [`Cluster::pull_local`] reverses it; [`Cluster::adapt`] runs the
//!   affinity loop that re-draws boundaries automatically.
//!
//! ## Example
//!
//! ```
//! use rafda_classmodel::{ClassUniverse, sample};
//! use rafda_transform::Transformer;
//! use rafda_runtime::Cluster;
//! use rafda_policy::StaticPolicy;
//! use rafda_vm::Value;
//!
//! let mut universe = ClassUniverse::new();
//! sample::build_figure2(&mut universe);
//! let outcome = Transformer::new().protocols(&["RMI"]).run(&mut universe).unwrap();
//! // Statics of X, Y, Z live on node 1; the driver runs on node 0.
//! let policy = StaticPolicy::new().default_statics(rafda_net::NodeId(1));
//! let cluster = Cluster::new(universe, outcome.plan, 2, 42, Box::new(policy));
//! let r = cluster
//!     .call_static(rafda_net::NodeId(0), "X", "p", vec![Value::Int(6)])
//!     .unwrap();
//! assert_eq!(r, Value::Int(42)); // same answer as the original program
//! assert!(cluster.network().stats().messages > 0); // …but it went remote
//! ```

#![warn(missing_docs)]

pub mod cluster;
pub mod error;
pub mod introspect;
pub mod local;
pub mod marshal;
mod obs;
pub mod persist;
pub mod soak;

pub use cluster::{Cluster, MigrationEvent, NodeSummary, RemoteRef, RetryPolicy, RuntimeStats};
pub use error::RuntimeError;
pub use introspect::{declare_introspection, INTROSPECTION_CLASS};
pub use local::LocalRuntime;
pub use persist::{SnapObject, SnapSlot, Snapshot};
pub use soak::{PhaseStats, SoakRecorder, SoakReport};
