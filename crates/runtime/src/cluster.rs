//! The distributed runtime proper: nodes, registries, factory & proxy
//! hooks, RPC dispatch, migration and adaptation.

use crate::error::RuntimeError;
use crate::introspect;
use crate::marshal;
use crate::obs::{Met, Obs};
use rafda_classmodel::{ClassId, ClassUniverse, SigId, Ty};
use rafda_net::{BufPool, NetError, Network, NodeId, SimTime};
use rafda_policy::{AffinityConfig, DistributionPolicy};
use rafda_telemetry::{
    standard_monitors, MonitorEvent, SpanLog, SpanOutcome, TraceContext, Violation,
};
use rafda_transform::TransformPlan;
use rafda_vm::{Handle, NetFailure, NetFailureKind, Trace, TraceEvent, Value, Vm, VmError};
use rafda_wire::{
    FrameHeader, Protocol, ProtocolKind, Reply, Request, RequestKind, SigTable, WireValue,
};
use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, BTreeSet, HashMap, VecDeque};
use std::fmt;
use std::rc::{Rc, Weak};
use std::sync::Arc;

/// Which half of an artefact family a generated class belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Side {
    /// Instance members (`_O_` family).
    Obj,
    /// Static members (`_C_` family).
    Cls,
}

/// What the runtime knows about a generated implementation class.
#[derive(Debug, Clone)]
pub(crate) struct GenInfo {
    pub base: ClassId,
    pub side: Side,
    /// `Some(protocol)` for proxy classes, `None` for `*_Local`.
    pub proto: Option<String>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SingletonState {
    InProgress(Handle),
    Ready(Handle),
}

impl SingletonState {
    fn handle(self) -> Handle {
        match self {
            SingletonState::InProgress(h) | SingletonState::Ready(h) => h,
        }
    }
}

/// How many served replies each node remembers for duplicate suppression.
/// Bounded FIFO: old entries are evicted once the cache is full, which is
/// safe because a client only retransmits while its call is still open —
/// ids far in the past can no longer be retried.
const REPLY_CACHE_CAP: usize = 1024;

/// How many property values each node's proxy-side cache holds. Bounded
/// FIFO like the reply cache; a modest cap keeps the per-node footprint
/// proportional to its working set of remote reads.
const PROP_CACHE_CAP: usize = 1024;

/// Version tag marking a `(node, oid)` location as permanently uncacheable:
/// the object migrated away and the export now forwards. Reads through a
/// forwarding chain must always go remote, otherwise a reader that never
/// exchanges with the new owner could keep serving the pre-move value.
const VERSION_TOMBSTONE: u64 = u64::MAX;

/// Per-node registry state.
#[derive(Debug, Default)]
pub(crate) struct NodeState {
    exports: HashMap<u64, Handle>,
    export_ids: HashMap<Handle, u64>,
    /// Forwarding stubs left behind by a migration or pull: the export id
    /// still resolves (through [`lookup_export`]) to the in-place-rewritten
    /// proxy so transparent forwarding keeps working, but the entry is
    /// *purged* from [`NodeState::exports`] — sweeps, affinity purges and
    /// registry summaries see only live objects. The reverse
    /// [`NodeState::export_ids`] mapping is kept so re-exporting the same
    /// handle (the object migrating back home) reuses its original id.
    forwards: HashMap<u64, Handle>,
    /// Export ids on this node that are locally implemented *and* belong to
    /// a replicated class — the only locations a dirty-set mark can ever
    /// make shippable. A `BTreeSet` so node-level conservative marks insert
    /// in ascending id order.
    replicated: BTreeSet<u64>,
    next_oid: u64,
    imports: HashMap<(u32, u64), Handle>,
    singletons: HashMap<ClassId, SingletonState>,
    /// Per-exported-object incoming call counts by caller node.
    call_counts: HashMap<u64, HashMap<u32, u64>>,
    /// Host-pinned GC roots (references held outside the simulation, e.g.
    /// by embedding Rust code).
    pins: std::collections::HashSet<Handle>,
    /// At-most-once reply cache: replies already sent, keyed by
    /// `(caller node, message id)`, each paired with the addressed export's
    /// property version **at serve time**. A retransmitted request is
    /// answered from here instead of re-running the method, and it replays
    /// the stored version too: the reply describes the state the method ran
    /// against, and recomputing the version at retransmit time would let a
    /// dedup hit validate a cache entry against state the original
    /// execution never saw.
    reply_cache: HashMap<(u32, u64), (Reply, u64)>,
    /// Insertion order of `reply_cache` keys, for FIFO eviction.
    reply_cache_order: VecDeque<(u32, u64)>,
    /// Proxy-side property cache: values returned by remote `get_f` calls,
    /// keyed `(owner node, export id, getter sig)` and tagged with the
    /// owner's property version at reply time. An entry is served only
    /// while its tag still equals the owner's current version. Values are
    /// kept in wire form so each hit re-materialises exactly like a fresh
    /// reply (arrays copy by value, references resolve via the import
    /// cache — and hold no GC-visible handles).
    prop_cache: HashMap<(u32, u64, SigId), (u64, WireValue)>,
    /// Insertion order of `prop_cache` keys, for FIFO eviction.
    prop_cache_order: VecDeque<(u32, u64, SigId)>,
    /// Backup copies of replicated exports owned by *other* nodes, keyed by
    /// the primary's location `(owner node, export id)`. The value is the
    /// owner's property version plus the object's class name and marshalled
    /// fields, exactly as shipped by the last [`Request::ReplicaSync`]. The
    /// state stays in wire form until a [`Request::Promote`] materialises
    /// it — a backup that never promotes costs no heap objects.
    replica_store: HashMap<(u32, u64), (u64, String, Vec<WireValue>)>,
    /// The property version and marshalled state each local export last
    /// shipped to its backups. [`sync_replicas`] skips the per-target
    /// exchanges when both are unchanged — repeated `Discover`/`Create`
    /// serves of an unmutated object would otherwise re-ship identical
    /// state. When the *state* moved but the version did not (a local call
    /// mutated a promoted or pulled replica without a serve in between),
    /// the sync bumps the version itself before shipping. Cleared
    /// cluster-wide on every restart so a rejoining backup is re-seeded at
    /// the owner's next sync.
    synced_versions: HashMap<u64, (u64, Vec<WireValue>)>,
}

/// Client-side fault tolerance for one request/reply exchange.
///
/// Only *transient* failures (dropped messages) are retried; partitions,
/// crashes and bad addresses fail fast — retrying cannot help until an
/// operator-level event heals them. Each retry charges `backoff_ns` to the
/// **simulated** clock, so runs stay deterministic per seed and the time
/// cost of fault tolerance is visible in the experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total transmission attempts per exchange (≥ 1; 1 disables retry).
    pub max_attempts: u32,
    /// Simulated backoff before the first retry, in nanoseconds.
    pub base_backoff_ns: u64,
    /// Exponential backoff multiplier applied per further retry.
    pub multiplier: u32,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 6,
            base_backoff_ns: 200_000,
            multiplier: 2,
        }
    }
}

impl RetryPolicy {
    /// No fault tolerance: a single attempt, any failure surfaces at once.
    /// (The pre-retry behaviour, useful for failure-injection tests.)
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_backoff_ns: 0,
            multiplier: 1,
        }
    }

    /// Backoff charged before retry number `retry` (1-based): exponential
    /// in the number of failures seen so far, saturating instead of
    /// overflowing.
    pub fn backoff_ns(&self, retry: u32) -> u64 {
        let exp = retry.saturating_sub(1);
        (self.multiplier as u64)
            .saturating_pow(exp)
            .saturating_mul(self.base_backoff_ns)
    }
}

/// Aggregate runtime statistics.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct RuntimeStats {
    /// Remote method invocations served.
    pub rpc_calls: u64,
    /// Remote creations served.
    pub rpc_creates: u64,
    /// Remote singleton discoveries served.
    pub rpc_discovers: u64,
    /// State fetches served (migration).
    pub rpc_fetches: u64,
    /// State installs served (migration).
    pub rpc_installs: u64,
    /// Forward swaps served (boundary pulls).
    pub rpc_forwards: u64,
    /// Objects migrated (including adaptation).
    pub migrations: u64,
    /// Objects pulled local.
    pub pulls: u64,
    /// Requests answered with a fault (server-side errors; network-level
    /// failures are counted separately in [`RuntimeStats::net_failures`]).
    pub faults: u64,
    /// Client-side retry rounds: transmission attempts beyond each
    /// exchange's first.
    pub retries: u64,
    /// Retransmitted requests that reached the server (a retry whose
    /// request transmission succeeded).
    pub retransmits: u64,
    /// Retransmissions answered from the reply cache instead of re-running
    /// the method (the at-most-once guarantee doing its job).
    pub dedup_hits: u64,
    /// Exchanges that exhausted the retry budget or hit a non-transient
    /// network failure. Distinct from `faults`: the server never answered.
    pub net_failures: u64,
    /// Property (`get_f`) reads answered from the proxy-side cache —
    /// no network exchange happened at all.
    pub cache_hits: u64,
    /// Cacheable property reads that had to go remote (no entry, or a
    /// stale entry that was refreshed by the exchange).
    pub cache_misses: u64,
    /// Cached property entries found stale — the owner's version moved
    /// past the tag — and dropped before going remote.
    pub cache_invalidations: u64,
    /// Replica state syncs served: one per backup shipped after a served
    /// mutation (or export) of a replicated object.
    pub replica_syncs: u64,
    /// Replica promotions served: a backup materialised its stored state
    /// and became the new owner after the primary crashed.
    pub promotions: u64,
    /// Client-side failovers: calls re-homed from a crashed owner to a
    /// (promoted) replica and retried successfully.
    pub failovers: u64,
    /// Operations deferred onto a per-`(caller, owner)` outcall queue
    /// instead of being sent as their own exchange (void calls on batched
    /// classes, plus replica shipments of batched classes).
    pub batched_ops: u64,
    /// Outcall queues drained: each flush ships one queue as a single
    /// [`Request::Batch`] exchange at a synchronization point.
    pub flushes: u64,
    /// Sharded instances placed onto their shard's node after construction
    /// (a `shard by` policy rule routing a fresh object).
    pub shard_placements: u64,
    /// Whole shards moved between nodes by the rebalance tick reacting to
    /// hot-key skew in the observed call counts.
    pub shard_rebalances: u64,
    /// Getter calls served from a same-version local replica copy instead
    /// of an owner exchange (a `reads from replicas` policy rule).
    pub replica_reads: u64,
    /// Dirty-set entries the replica sweep offered to
    /// [`sync_replicas`](crate::cluster) — each one a state comparison
    /// against the last shipment, charged to the owner. The sweep's cost
    /// measure: O(dirty) per synchronization point, not O(exports).
    pub replica_sweep_probes: u64,
    /// `(node, oid)` dirty-set insertions recorded (version bumps, served
    /// mutations, fresh replicated exports, and conservative node-level
    /// marks while application code runs locally). Marks bound probes:
    /// every probe was a mark first.
    pub dirty_marks: u64,
    /// Histogram of attempts used per finished exchange: bucket `i` counts
    /// exchanges that took `i + 1` attempts (the last bucket saturates).
    pub attempts: [u64; 8],
    /// Signature-position strings sent as an interned reference instead of
    /// inline text (summed over every directed link's table).
    pub sig_refs: u64,
    /// Signature-position strings defined (sent inline and interned) —
    /// each one a table entry later frames reference.
    pub sig_defs: u64,
    /// Frame encodes served by a pooled buffer instead of a fresh
    /// allocation.
    pub wire_buf_reuses: u64,
}

impl RuntimeStats {
    /// Add every counter of `other` into `self` — the merge
    /// [`Cluster::stats`] folds per-node breakdowns with.
    pub fn merge(&mut self, other: &RuntimeStats) {
        let RuntimeStats {
            rpc_calls,
            rpc_creates,
            rpc_discovers,
            rpc_fetches,
            rpc_installs,
            rpc_forwards,
            migrations,
            pulls,
            faults,
            retries,
            retransmits,
            dedup_hits,
            net_failures,
            cache_hits,
            cache_misses,
            cache_invalidations,
            replica_syncs,
            promotions,
            failovers,
            batched_ops,
            flushes,
            shard_placements,
            shard_rebalances,
            replica_reads,
            replica_sweep_probes,
            dirty_marks,
            attempts,
            sig_refs,
            sig_defs,
            wire_buf_reuses,
        } = other;
        self.rpc_calls += rpc_calls;
        self.rpc_creates += rpc_creates;
        self.rpc_discovers += rpc_discovers;
        self.rpc_fetches += rpc_fetches;
        self.rpc_installs += rpc_installs;
        self.rpc_forwards += rpc_forwards;
        self.migrations += migrations;
        self.pulls += pulls;
        self.faults += faults;
        self.retries += retries;
        self.retransmits += retransmits;
        self.dedup_hits += dedup_hits;
        self.net_failures += net_failures;
        self.cache_hits += cache_hits;
        self.cache_misses += cache_misses;
        self.cache_invalidations += cache_invalidations;
        self.replica_syncs += replica_syncs;
        self.promotions += promotions;
        self.failovers += failovers;
        self.batched_ops += batched_ops;
        self.flushes += flushes;
        self.shard_placements += shard_placements;
        self.shard_rebalances += shard_rebalances;
        self.replica_reads += replica_reads;
        self.replica_sweep_probes += replica_sweep_probes;
        self.dirty_marks += dirty_marks;
        for (slot, c) in self.attempts.iter_mut().zip(attempts) {
            *slot += c;
        }
        self.sig_refs += sig_refs;
        self.sig_defs += sig_defs;
        self.wire_buf_reuses += wire_buf_reuses;
    }

    /// Counter-wise difference `self − earlier` (saturating), for
    /// reporting what a bounded run added on top of its setup — the soak
    /// report's per-phase metric deltas are computed with this.
    pub fn delta_from(&self, earlier: &RuntimeStats) -> RuntimeStats {
        let mut d = *self;
        let RuntimeStats {
            rpc_calls,
            rpc_creates,
            rpc_discovers,
            rpc_fetches,
            rpc_installs,
            rpc_forwards,
            migrations,
            pulls,
            faults,
            retries,
            retransmits,
            dedup_hits,
            net_failures,
            cache_hits,
            cache_misses,
            cache_invalidations,
            replica_syncs,
            promotions,
            failovers,
            batched_ops,
            flushes,
            shard_placements,
            shard_rebalances,
            replica_reads,
            replica_sweep_probes,
            dirty_marks,
            attempts,
            sig_refs,
            sig_defs,
            wire_buf_reuses,
        } = earlier;
        d.rpc_calls = d.rpc_calls.saturating_sub(*rpc_calls);
        d.rpc_creates = d.rpc_creates.saturating_sub(*rpc_creates);
        d.rpc_discovers = d.rpc_discovers.saturating_sub(*rpc_discovers);
        d.rpc_fetches = d.rpc_fetches.saturating_sub(*rpc_fetches);
        d.rpc_installs = d.rpc_installs.saturating_sub(*rpc_installs);
        d.rpc_forwards = d.rpc_forwards.saturating_sub(*rpc_forwards);
        d.migrations = d.migrations.saturating_sub(*migrations);
        d.pulls = d.pulls.saturating_sub(*pulls);
        d.faults = d.faults.saturating_sub(*faults);
        d.retries = d.retries.saturating_sub(*retries);
        d.retransmits = d.retransmits.saturating_sub(*retransmits);
        d.dedup_hits = d.dedup_hits.saturating_sub(*dedup_hits);
        d.net_failures = d.net_failures.saturating_sub(*net_failures);
        d.cache_hits = d.cache_hits.saturating_sub(*cache_hits);
        d.cache_misses = d.cache_misses.saturating_sub(*cache_misses);
        d.cache_invalidations = d.cache_invalidations.saturating_sub(*cache_invalidations);
        d.replica_syncs = d.replica_syncs.saturating_sub(*replica_syncs);
        d.promotions = d.promotions.saturating_sub(*promotions);
        d.failovers = d.failovers.saturating_sub(*failovers);
        d.batched_ops = d.batched_ops.saturating_sub(*batched_ops);
        d.flushes = d.flushes.saturating_sub(*flushes);
        d.shard_placements = d.shard_placements.saturating_sub(*shard_placements);
        d.shard_rebalances = d.shard_rebalances.saturating_sub(*shard_rebalances);
        d.replica_reads = d.replica_reads.saturating_sub(*replica_reads);
        d.replica_sweep_probes = d.replica_sweep_probes.saturating_sub(*replica_sweep_probes);
        d.dirty_marks = d.dirty_marks.saturating_sub(*dirty_marks);
        for (slot, c) in d.attempts.iter_mut().zip(attempts) {
            *slot = slot.saturating_sub(*c);
        }
        d.sig_refs = d.sig_refs.saturating_sub(*sig_refs);
        d.sig_defs = d.sig_defs.saturating_sub(*sig_defs);
        d.wire_buf_reuses = d.wire_buf_reuses.saturating_sub(*wire_buf_reuses);
        d
    }

    /// Total finished exchanges recorded in the attempts histogram.
    pub fn exchanges(&self) -> u64 {
        self.attempts.iter().sum()
    }

    /// Mean transmission attempts per finished exchange (1.0 when no
    /// exchange ever retried; 0.0 before any exchange finished).
    pub fn mean_attempts(&self) -> f64 {
        let exchanges = self.exchanges();
        if exchanges == 0 {
            return 0.0;
        }
        let total: u64 = self
            .attempts
            .iter()
            .enumerate()
            .map(|(i, &c)| (i as u64 + 1) * c)
            .sum();
        total as f64 / exchanges as f64
    }
}

impl fmt::Display for RuntimeStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} rpc exchanges (mean {:.2} attempts), {} retries, \
             {} retransmits, {} dedup hits, {} net failures, {} faults, \
             property cache {} hits / {} misses / {} invalidations, \
             {} replica syncs / {} promotions / {} failovers, \
             {} batched ops / {} flushes, \
             {} shard placements / {} shard rebalances / {} replica reads",
            self.exchanges(),
            self.mean_attempts(),
            self.retries,
            self.retransmits,
            self.dedup_hits,
            self.net_failures,
            self.faults,
            self.cache_hits,
            self.cache_misses,
            self.cache_invalidations,
            self.replica_syncs,
            self.promotions,
            self.failovers,
            self.batched_ops,
            self.flushes,
            self.shard_placements,
            self.shard_rebalances,
            self.replica_reads
        )
    }
}

/// A per-node registry summary returned by [`Cluster::describe`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeSummary {
    /// The node described.
    pub node: NodeId,
    /// Objects this node exports to others.
    pub exports: usize,
    /// Remote objects this node holds proxies for.
    pub imports: usize,
    /// Class singletons resolved on this node (local or proxied).
    pub singletons: Vec<String>,
    /// Live heap entries.
    pub live_objects: usize,
    /// Replies remembered for at-most-once duplicate suppression.
    pub cached_replies: usize,
    /// Whether the node is currently crashed in the fault plan.
    pub crashed: bool,
}

impl fmt::Display for NodeSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}: {} exports, {} imports, {} live objects, {} cached replies, singletons: [{}]",
            self.node,
            if self.crashed { " (crashed)" } else { "" },
            self.exports,
            self.imports,
            self.live_objects,
            self.cached_replies,
            self.singletons.join(", ")
        )
    }
}

/// A reference to an object exported by a node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RemoteRef {
    /// The exporting node.
    pub node: NodeId,
    /// The export id on that node.
    pub oid: u64,
}

/// One boundary change performed by [`Cluster::adapt`] or
/// [`Cluster::migrate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MigrationEvent {
    /// The original class of the migrated object.
    pub class: String,
    /// The node the object left.
    pub from: NodeId,
    /// The node it moved to.
    pub to: NodeId,
    /// The object's new export on the destination.
    pub target: RemoteRef,
}

impl fmt::Display for MigrationEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "migrated {} from {} to {} (now {}#{})",
            self.class, self.from, self.to, self.target.node, self.target.oid
        )
    }
}

/// Shard placement state for classes with a `shard by <getter> modulo N`
/// policy rule. Both maps iterate in sorted order wherever they feed a
/// decision, so placement and rebalancing are deterministic per seed.
#[derive(Debug, Default)]
pub(crate) struct ShardState {
    /// `(class name, shard index)` → owning node. Seeded lazily as
    /// `shard % node_count` the first time an instance hashes into the
    /// shard; rewritten by [`Cluster::rebalance_shards`].
    pub owners: BTreeMap<(String, u32), u32>,
    /// `(class name, shard index)` → the member instances currently routed
    /// there, at their live `(node, export id)` locations.
    pub members: BTreeMap<(String, u32), Vec<(u32, u64)>>,
}

/// Stable 64-bit hash of a shard key value (FNV-1a over the value's
/// canonical bytes). Int/Long keys hash their two's-complement bits, so a
/// key getter returning either width places identically.
fn shard_hash(key: &Value) -> u64 {
    const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const FNV_PRIME: u64 = 0x100_0000_01b3;
    let mut h = FNV_OFFSET;
    let mut eat = |bytes: &[u8]| {
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(FNV_PRIME);
        }
    };
    match key {
        Value::Int(i) => eat(&(*i as i64).to_le_bytes()),
        Value::Long(l) => eat(&l.to_le_bytes()),
        Value::Bool(b) => eat(&[*b as u8]),
        Value::Str(s) => eat(s.as_bytes()),
        _ => eat(&[0]),
    }
    h
}

/// Maximum nested (re-entrant) RPC depth across the whole cluster — a
/// distributed call chain deeper than this is almost certainly unbounded
/// mutual recursion, and each level consumes host stack.
const MAX_RPC_DEPTH: u32 = 64;

pub(crate) struct Shared {
    pub universe: Arc<ClassUniverse>,
    pub plan: TransformPlan,
    pub net: Network,
    pub vms: Vec<Vm>,
    pub protocols: HashMap<String, Box<dyn Protocol>>,
    pub policy: Box<dyn DistributionPolicy>,
    pub nodes: RefCell<Vec<NodeState>>,
    pub trace: RefCell<Trace>,
    /// The observability plane: metrics registry (the single write path
    /// for every runtime counter, labeled per node), time-series recorder,
    /// and the optional invariant monitors. Never borrowed across a
    /// nested exchange.
    pub obs: RefCell<Obs>,
    /// Test-only fault injection: when set, the next
    /// [`tombstone_version`] call is silently skipped — simulating a
    /// runtime that forgot to mark a moved-away export uncacheable, the
    /// exact bug the stale-read monitor exists to catch.
    pub skip_next_tombstone: Cell<bool>,
    pub gen_info: HashMap<ClassId, GenInfo>,
    pub rpc_depth: Cell<u32>,
    pub retry: Cell<RetryPolicy>,
    /// Cluster-wide message id counter: every request/reply exchange gets a
    /// fresh id, reused verbatim by its retransmissions (the dedup key).
    pub next_msg_id: Cell<u64>,
    /// Causal span log: every RPC exchange, transmission attempt, server
    /// dispatch, migration and boundary pull, charged to the simulated
    /// clock. Never borrowed across a nested exchange (RPCs re-enter).
    pub spans: RefCell<SpanLog>,
    /// Authoritative per-object property versions, keyed by `(owner node,
    /// export id)`. Absent means version 0 (never mutated through the
    /// runtime since export). Every served mutation bumps the owner's
    /// entry; the current value piggybacks on reply frames so proxy-side
    /// property caches can tag and later revalidate their entries.
    /// [`VERSION_TOMBSTONE`] marks a location the object migrated away
    /// from.
    pub versions: RefCell<HashMap<(u32, u64), u64>>,
    /// Failover forwarding map: `(old owner, old export id)` of a promoted
    /// object → its new home. Written by the [`Request::Promote`] handler;
    /// followed by clients before they attempt a promotion of their own, so
    /// a second caller re-homes to the already-promoted copy instead of
    /// promoting a stale backup twice.
    pub homes: RefCell<HashMap<(u32, u64), (u32, u64)>>,
    /// Canonical singleton exports: class name → the `(node, oid)` its
    /// statics singleton was first exported under. Singleton resolution
    /// follows the [`Shared::homes`] chain from here, so a statics owner
    /// that crash-restarted after a promotion is never allowed to mint a
    /// fresh, amnesiac singleton while the promoted copy lives on.
    pub statics_exports: RefCell<HashMap<String, (u32, u64)>>,
    /// Shard placement state for classes with a `shard by` policy rule: the
    /// deterministic shard→node map (kept alongside the failover `homes`
    /// map) and the live members routed to each shard.
    pub shards: RefCell<ShardState>,
    /// Whether the policy shards any transformed class — computed once at
    /// deployment, like [`Shared::any_replication`], so unsharded
    /// workloads pay one boolean test.
    pub any_sharding: bool,
    /// Span id of the most recent exchange that ended in a network failure.
    /// A failover span chains to it via `retry_of`, linking the re-homed
    /// call to the exchange against the crashed owner it retries.
    pub last_exchange_span: Cell<u64>,
    /// Per-`(caller node, owner node)` outcall queues of deferred
    /// operations (batched remote invocation). Drained by
    /// [`flush_outqueues`] at every synchronization point; permanently
    /// empty unless the policy batches some class.
    pub outqueues: RefCell<HashMap<(u32, u32), PendingBatch>>,
    /// Re-entrancy guard for [`flush_outqueues`]: the flush itself performs
    /// top-level exchanges, which are synchronization points of their own.
    pub in_flush: Cell<bool>,
    /// Whether the policy replicates any transformed class — computed once
    /// at deployment so [`sync_dirty_replicas`] is a single boolean test
    /// for the (common) workloads with no replication.
    pub any_replication: bool,
    /// Re-entrancy guard for [`sync_dirty_replicas`]: the sweep's shipments
    /// are exchanges, and every exchange is a synchronization point.
    pub in_replica_sweep: Cell<bool>,
    /// The dirty-replica set: `(owner node, export id)` locations whose
    /// state may have moved past what [`NodeState::synced_versions`] last
    /// shipped. Every version bump, served mutation, promotion and
    /// post-pull local call inserts here; [`sync_dirty_replicas`] drains
    /// *only* these entries — in sorted order, so the shipment sequence is
    /// byte-identical to the full-table sweep it replaces — instead of
    /// enumerating every export of every node. A `BTreeSet` keeps the
    /// drain deterministic without a sort per sweep.
    pub dirty: RefCell<BTreeSet<(u32, u64)>>,
    /// Per-node application-frame nesting counters. A frame is open while
    /// *non-getter* application code runs locally on that node (a served
    /// `Call`, or a top-level entry like [`Cluster::call_method`]); any
    /// synchronization point reached while a node's frame is open
    /// conservatively marks that node's replicated exports dirty, because
    /// the in-progress app code may have mutated local state bare — the
    /// runtime never sees plain method calls on pulled, promoted or
    /// installed-in-place objects. Getter-only traffic opens no frames, so
    /// read-only phases sweep nothing.
    pub app_frames: RefCell<Vec<u32>>,
    /// Reusable encode buffers, keyed by directed link. Checked out for
    /// the lifetime of one frame (request frames live across every
    /// retransmission of their exchange) and returned cleared. Never
    /// borrowed across a serve — RPCs re-enter.
    pub wire_bufs: RefCell<BufPool>,
    /// Per-directed-link signature interning tables, keyed `(from node,
    /// to node)`. The simulation runs both ends in one process, so a
    /// single table per link serves as the encoder's and the decoder's
    /// state: in-order frame processing plus idempotent interning keeps
    /// the two views identical without a handshake. Never borrowed across
    /// a serve.
    pub sig_tables: RefCell<HashMap<(u32, u32), SigTable>>,
}

/// A simulated cluster running one transformed application.
///
/// Cheap to clone; all clones share the same state.
#[derive(Clone)]
pub struct Cluster {
    shared: Rc<Shared>,
}

impl fmt::Debug for Cluster {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Cluster")
            .field("nodes", &self.shared.vms.len())
            .field("families", &self.shared.plan.families.len())
            .finish()
    }
}

impl Cluster {
    /// Deploy a transformed universe over `nodes` simulated nodes.
    ///
    /// Protocol codecs are instantiated for every protocol the plan
    /// generated proxies for.
    pub fn new(
        mut universe: ClassUniverse,
        plan: TransformPlan,
        nodes: u32,
        seed: u64,
        policy: Box<dyn DistributionPolicy>,
    ) -> Self {
        // If the application registered `rafda.Introspection`, flip its
        // generated `_O_Local` methods to native *before* the universe is
        // frozen — deployment wires the hooks below.
        introspect::prepare(&mut universe, &plan);
        let universe = Arc::new(universe);
        let net = Network::new(nodes, seed);
        let vms: Vec<Vm> = (0..nodes).map(|_| Vm::new(universe.clone())).collect();
        let mut protocols: HashMap<String, Box<dyn Protocol>> = HashMap::new();
        for p in &plan.protocols {
            if let Some(kind) = ProtocolKind::from_name(p) {
                protocols.insert(p.clone(), kind.codec());
            }
        }
        let mut gen_info = HashMap::new();
        for family in plan.families.values() {
            gen_info.insert(
                family.obj_local,
                GenInfo {
                    base: family.base,
                    side: Side::Obj,
                    proto: None,
                },
            );
            for (p, c) in &family.obj_proxies {
                gen_info.insert(
                    *c,
                    GenInfo {
                        base: family.base,
                        side: Side::Obj,
                        proto: Some(p.clone()),
                    },
                );
            }
            if let Some(cl) = family.cls_local {
                gen_info.insert(
                    cl,
                    GenInfo {
                        base: family.base,
                        side: Side::Cls,
                        proto: None,
                    },
                );
            }
            for (p, c) in &family.cls_proxies {
                gen_info.insert(
                    *c,
                    GenInfo {
                        base: family.base,
                        side: Side::Cls,
                        proto: Some(p.clone()),
                    },
                );
            }
        }
        let any_replication = plan
            .families
            .values()
            .any(|f| policy.replicas(&universe.class(f.base).name) > 0);
        let any_sharding = plan
            .families
            .values()
            .any(|f| policy.shard_spec(&universe.class(f.base).name).is_some());
        let shared = Rc::new(Shared {
            universe,
            plan,
            net,
            vms,
            protocols,
            policy,
            nodes: RefCell::new((0..nodes).map(|_| NodeState::default()).collect()),
            trace: RefCell::new(Trace::new()),
            obs: RefCell::new(Obs::new(nodes)),
            skip_next_tombstone: Cell::new(false),
            gen_info,
            rpc_depth: Cell::new(0),
            retry: Cell::new(RetryPolicy::default()),
            next_msg_id: Cell::new(1),
            spans: RefCell::new(SpanLog::new()),
            versions: RefCell::new(HashMap::new()),
            homes: RefCell::new(HashMap::new()),
            statics_exports: RefCell::new(HashMap::new()),
            shards: RefCell::new(ShardState::default()),
            any_sharding,
            last_exchange_span: Cell::new(0),
            outqueues: RefCell::new(HashMap::new()),
            in_flush: Cell::new(false),
            any_replication,
            in_replica_sweep: Cell::new(false),
            dirty: RefCell::new(BTreeSet::new()),
            app_frames: RefCell::new(vec![0; nodes as usize]),
            wire_bufs: RefCell::new(BufPool::new()),
            sig_tables: RefCell::new(HashMap::new()),
        });
        let cluster = Cluster { shared };
        cluster.install_hooks();
        cluster
    }

    pub(crate) fn shared(&self) -> &Shared {
        &self.shared
    }

    /// The shared class universe.
    pub fn universe(&self) -> &Arc<ClassUniverse> {
        &self.shared.universe
    }

    /// The transformation plan this cluster was deployed from.
    pub fn plan(&self) -> &TransformPlan {
        &self.shared.plan
    }

    /// The simulated network (clock, traffic stats, fault injection).
    pub fn network(&self) -> Network {
        self.shared.net.clone()
    }

    /// The VM of one node.
    pub fn vm(&self, node: NodeId) -> Vm {
        self.shared.vms[node.0 as usize].clone()
    }

    /// Number of nodes.
    pub fn node_count(&self) -> u32 {
        self.shared.vms.len() as u32
    }

    /// Cluster-wide runtime statistics: the documented merge of every
    /// node's [`Cluster::node_stats`] breakdown via
    /// [`RuntimeStats::merge`]. Each counter is charged to exactly one
    /// node, so per-node sums always equal this view.
    pub fn stats(&self) -> RuntimeStats {
        merged_stats(&self.shared)
    }

    /// One node's runtime statistics breakdown. Counters are charged to
    /// the node that did the work: client-side counters (retries, cache
    /// hits, batched ops, the attempts histogram, wire encode counters) to
    /// the caller, server-side counters (`rpc_*`, faults, dedup hits,
    /// retransmits received, promotions) to the server.
    pub fn node_stats(&self, node: NodeId) -> RuntimeStats {
        node_stats_of(&self.shared, node.0)
    }

    /// The metrics registry rendered in Prometheus text exposition format,
    /// with the wire-layer per-node counters appended. Deterministic: same
    /// seed, same bytes.
    pub fn prometheus_text(&self) -> String {
        prometheus_text_of(&self.shared)
    }

    /// The metrics registry, wire-layer counters and time-series rings as
    /// JSON lines (one object per line). Deterministic: same seed, same
    /// bytes.
    pub fn metrics_json(&self) -> String {
        metrics_json_of(&self.shared)
    }

    /// Switch on the four standing invariant monitors (stale-read,
    /// at-most-once, span-tree, replica-divergence). Monitors are pure
    /// consumers of runtime events: enabling them never perturbs the
    /// simulated clock or any observable behaviour.
    pub fn enable_monitors(&self) {
        self.shared.obs.borrow_mut().monitors = Some(standard_monitors());
    }

    /// Violations accumulated by the enabled monitors so far (empty when
    /// monitors are off).
    pub fn monitor_violations(&self) -> Vec<Violation> {
        let obs = self.shared.obs.borrow();
        match &obs.monitors {
            Some(monitors) => monitors
                .iter()
                .flat_map(|m| m.violations().iter().cloned())
                .collect(),
            None => Vec::new(),
        }
    }

    /// Run the quiescent-point checks and return every violation known.
    ///
    /// Flushes pending batches and re-ships drifted replicas first (a
    /// quiescent point must not have deferred operations or unshipped
    /// replicated state in flight), then hands the span log to the
    /// monitors' structural check, probes every replica against its
    /// primary, and sweeps the affinity counters for entries referencing
    /// a moved or dead location (`stale-affinity`). A clean run returns
    /// an empty vector; tests assert exactly that, and on failure each
    /// [`Violation`] identifies the offending span and exchange.
    pub fn check_invariants(&self) -> Vec<Violation> {
        let shared = &self.shared;
        let _ = flush_outqueues(shared);
        // A quiescent check probes *every* replicated export, not just
        // recently-marked ones — mark everything, then let the sweep's
        // no-op settling clear the set again. This is the full-table
        // behavior the incremental sweep otherwise avoids, and it is what
        // keeps the invariant check independent of marking completeness.
        for n in 0..shared.vms.len() as u32 {
            mark_node_dirty(shared, n);
        }
        sync_dirty_replicas(shared);
        if shared.obs.borrow().monitors.is_none() {
            return Vec::new();
        }
        {
            // Borrow, don't clone: the log holds the whole run's spans, and
            // copying it at every quiescent point costs linear time and a
            // 2x memory spike on deep soaks. `spans` and `obs` are separate
            // cells, so the shared borrow is safe alongside the obs borrow.
            let log = shared.spans.borrow();
            let mut obs = shared.obs.borrow_mut();
            if let Some(monitors) = obs.monitors.as_mut() {
                for m in monitors.iter_mut() {
                    m.check_span_log(&log);
                }
            }
        }
        for probe in collect_replica_probes(shared) {
            shared.obs.borrow_mut().emit(&probe);
        }
        let mut violations = self.monitor_violations();
        violations.extend(self.stale_affinity_violations());
        violations
    }

    /// Structural quiescent-point sweep over the affinity counters: every
    /// counter on a live node must reference an export that is still
    /// locally implemented there. A counter pointing at a forwarding
    /// proxy (the object moved) or a wiped registry (the node died) would
    /// feed the adaptation loops locations they must never act on —
    /// [`purge_call_counts`] maintains this invariant and the soak gate
    /// checks it at every phase boundary.
    fn stale_affinity_violations(&self) -> Vec<Violation> {
        let shared = &self.shared;
        let mut out = Vec::new();
        let nodes = shared.nodes.borrow();
        for (n, state) in nodes.iter().enumerate() {
            if shared.net.fault_plan(|f| f.is_crashed(NodeId(n as u32))) {
                continue;
            }
            let mut oids: Vec<u64> = state.call_counts.keys().copied().collect();
            oids.sort_unstable();
            for oid in oids {
                let fail = |message: String| Violation {
                    monitor: "stale-affinity",
                    message,
                    span_id: 0,
                    trace_id: 0,
                };
                match state.exports.get(&oid) {
                    // A demoted entry (the object moved away) lives in the
                    // forwards side-table now; report it exactly as the
                    // forwarding proxy it is, not as a vanished export.
                    None if state.forwards.contains_key(&oid) => out.push(fail(format!(
                        "node {n}: affinity counter references \
                         moved-away export {oid}"
                    ))),
                    None => out.push(fail(format!(
                        "node {n}: affinity counter for vanished export {oid}"
                    ))),
                    Some(&h) => {
                        let local = shared.vms[n]
                            .class_of(h)
                            .and_then(|c| shared.gen_info.get(&c))
                            .is_some_and(|info| info.proto.is_none());
                        if !local {
                            out.push(fail(format!(
                                "node {n}: affinity counter references \
                                 moved-away export {oid}"
                            )));
                        }
                    }
                }
            }
        }
        out
    }

    /// Test-only fault injection: silently skip the next
    /// [`tombstone_version`] call, simulating a runtime that forgot to
    /// mark a moved-away export uncacheable. Exists so the stale-read
    /// monitor's canary test can prove the watchdog catches the bug it was
    /// built for; never use outside tests.
    #[doc(hidden)]
    pub fn debug_skip_next_tombstone(&self) {
        self.shared.skip_next_tombstone.set(true);
    }

    /// Per-object incoming-call affinity recorded on `node`: `(export id,
    /// total calls)` pairs, sorted by export id. Entries are purged
    /// cluster-wide when their object migrates or is pulled, so the
    /// adaptive loop never acts on traffic observed at a previous home.
    pub fn affinity_snapshot(&self, node: NodeId) -> Vec<(u64, u64)> {
        let nodes = self.shared.nodes.borrow();
        let mut v: Vec<(u64, u64)> = nodes[node.0 as usize]
            .call_counts
            .iter()
            .map(|(&oid, counts)| (oid, counts.values().sum()))
            .collect();
        v.sort_unstable();
        v
    }

    /// Snapshot of the causal span log. Deterministic per seed: same
    /// universe, policy and fault plan produce a byte-identical log.
    pub fn span_log(&self) -> SpanLog {
        self.shared.spans.borrow().clone()
    }

    /// Write the span log in Chrome trace-event JSON, loadable by
    /// `chrome://tracing` and Perfetto (nodes become processes, traces
    /// become tracks).
    ///
    /// # Errors
    /// Any I/O error from writing `path`.
    pub fn export_chrome_trace(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        std::fs::write(path, self.shared.spans.borrow().chrome_trace_json())
    }

    /// Deterministic text report over the span log: top slowest spans,
    /// hottest methods, per-link latency percentiles.
    pub fn telemetry_report(&self, top: usize) -> String {
        self.shared.spans.borrow().report(top)
    }

    /// The fault-tolerance policy applied to every RPC exchange.
    pub fn retry_policy(&self) -> RetryPolicy {
        self.shared.retry.get()
    }

    /// Replace the fault-tolerance policy (applies to subsequent RPCs).
    pub fn set_retry_policy(&self, policy: RetryPolicy) {
        self.shared.retry.set(policy);
    }

    /// Number of objects node `n` currently exports.
    pub fn export_count(&self, n: NodeId) -> usize {
        self.shared.nodes.borrow()[n.0 as usize].exports.len()
    }

    /// Per-node registry summary (for diagnostics and examples).
    pub fn describe(&self) -> Vec<NodeSummary> {
        let nodes = self.shared.nodes.borrow();
        nodes
            .iter()
            .enumerate()
            .map(|(i, state)| {
                let singletons = state
                    .singletons
                    .keys()
                    .map(|&base| self.shared.universe.class(base).name.clone())
                    .collect::<Vec<_>>();
                NodeSummary {
                    node: NodeId(i as u32),
                    exports: state.exports.len(),
                    imports: state.imports.len(),
                    singletons,
                    live_objects: self.shared.vms[i].stats().heap.live as usize,
                    cached_replies: state.reply_cache.len(),
                    crashed: self
                        .shared
                        .net
                        .fault_plan(|f| f.is_crashed(NodeId(i as u32))),
                }
            })
            .collect()
    }

    // ------------------------------------------------------------------
    // Hook installation
    // ------------------------------------------------------------------

    fn install_hooks(&self) {
        let families: Vec<ClassId> = self.shared.plan.families.keys().copied().collect();
        for node_index in 0..self.shared.vms.len() {
            let node = NodeId(node_index as u32);
            let vm = &self.shared.vms[node_index];
            for &base in &families {
                let family = self.shared.plan.families[&base].clone();
                // make()
                let weak = Rc::downgrade(&self.shared);
                vm.register_native(family.obj_factory, family.make_sig, move |_vm, _args| {
                    let shared = upgrade(&weak)?;
                    make_value(&shared, node, base)
                });
                // discover()
                if let (Some(cls_factory), Some(discover_sig)) =
                    (family.cls_factory, family.discover_sig)
                {
                    let weak = Rc::downgrade(&self.shared);
                    vm.register_native(cls_factory, discover_sig, move |_vm, _args| {
                        let shared = upgrade(&weak)?;
                        discover_value(&shared, node, base)
                    });
                }
                // Proxy methods.
                for (_proto, proxy) in family.obj_proxies.iter().chain(family.cls_proxies.iter()) {
                    self.install_proxy_hooks(node, *proxy);
                }
            }
        }
        self.install_introspection_hooks();
    }

    /// Wire the native halves of `rafda.Introspection`'s `refresh` and
    /// `node_stats` methods on every node (no-op when the class was never
    /// declared). The getters stay ordinary generated accessors — remote
    /// reads of the snapshot fields travel the normal RMI path and are
    /// counted like any other property read.
    fn install_introspection_hooks(&self) {
        let Some(base) = self
            .shared
            .universe
            .by_name(introspect::INTROSPECTION_CLASS)
        else {
            return;
        };
        let Some(family) = self.shared.plan.family(base) else {
            return;
        };
        let local = family.obj_local;
        let sig_of = |name: &str| {
            self.shared
                .universe
                .class(local)
                .methods
                .iter()
                .find(|m| m.name == name)
                .map(|m| m.sig)
        };
        let (refresh_sig, node_stats_sig) = (sig_of("refresh"), sig_of("node_stats"));
        for node_index in 0..self.shared.vms.len() {
            let node = NodeId(node_index as u32);
            let vm = &self.shared.vms[node_index];
            if let Some(sig) = refresh_sig {
                let weak = Rc::downgrade(&self.shared);
                vm.register_native(local, sig, move |_vm, args| {
                    let shared = upgrade(&weak)?;
                    introspect::refresh_native(&shared, node, args)
                });
            }
            if let Some(sig) = node_stats_sig {
                let weak = Rc::downgrade(&self.shared);
                vm.register_native(local, sig, move |_vm, args| {
                    let shared = upgrade(&weak)?;
                    introspect::node_stats_native(&shared, args)
                });
            }
        }
    }

    fn install_proxy_hooks(&self, node: NodeId, proxy: ClassId) {
        let vm = &self.shared.vms[node.0 as usize];
        let methods: Vec<(String, SigId)> = self
            .shared
            .universe
            .class(proxy)
            .methods
            .iter()
            .filter(|m| m.is_native)
            .map(|m| (m.name.clone(), m.sig))
            .collect();
        for (name, sig) in methods {
            let weak = Rc::downgrade(&self.shared);
            vm.register_native(proxy, sig, move |_vm, args| {
                let shared = upgrade(&weak)?;
                proxy_call(&shared, node, &name, sig, args)
            });
        }
    }

    // ------------------------------------------------------------------
    // Entry points
    // ------------------------------------------------------------------

    /// Call a static method of the original program on `node`. For a
    /// substitutable class this goes through `discover()` and the singleton
    /// (possibly remotely); otherwise it is a plain static call.
    ///
    /// # Errors
    /// Any [`RuntimeError`], including in-model exceptions and network
    /// failures.
    pub fn call_static(
        &self,
        node: NodeId,
        class: &str,
        method: &str,
        args: Vec<Value>,
    ) -> Result<Value, RuntimeError> {
        let shared = &self.shared;
        let id = shared
            .universe
            .by_name(class)
            .ok_or_else(|| RuntimeError::Bad(format!("unknown class {class}")))?;
        let vm = &shared.vms[node.0 as usize];
        if shared.plan.is_substitutable(id) {
            let singleton = discover_value(shared, node, id)?;
            // The singleton may be local (statics owner, or an adopted
            // promotion): a non-getter call on it is bare app code.
            let _frame = (!entry_is_getter(shared, node, &singleton, method))
                .then(|| AppFrame::enter(shared, node.0));
            Ok(vm.call_virtual_by_name(singleton, method, args)?)
        } else {
            // Untransformed static app code always runs locally.
            let _frame = AppFrame::enter(shared, node.0);
            Ok(vm.call_static_by_name(class, method, args)?)
        }
    }

    /// Create an instance of original class `class` on `node` via the
    /// generated factory (`make` + `init$k`), returning the interface-typed
    /// reference (a local object or a proxy, decided by policy).
    ///
    /// # Errors
    /// Any [`RuntimeError`].
    pub fn new_instance(
        &self,
        node: NodeId,
        class: &str,
        ctor: u16,
        args: Vec<Value>,
    ) -> Result<Value, RuntimeError> {
        let shared = &self.shared;
        let id = shared
            .universe
            .by_name(class)
            .ok_or_else(|| RuntimeError::Bad(format!("unknown class {class}")))?;
        let vm = &shared.vms[node.0 as usize];
        match shared.plan.family(id) {
            Some(family) => {
                // Factory `make` + `init$k` run app code (the constructor
                // body) on this node whenever placement keeps the instance
                // local.
                let _frame = AppFrame::enter(shared, node.0);
                let that = vm.call_static(family.obj_factory, family.make_sig, vec![])?;
                let init_sig = *family
                    .init_sigs
                    .get(ctor as usize)
                    .ok_or_else(|| RuntimeError::Bad(format!("no ctor {ctor} on {class}")))?;
                let mut all = vec![that.clone()];
                all.extend(args);
                vm.call_static(family.obj_factory, init_sig, all)?;
                // Shard placement must run *after* init: the remote create
                // path ships a default-constructed instance and applies the
                // constructor through the reference, so the shard key is
                // only readable once init has landed.
                if shared.any_sharding {
                    self.place_sharded(node, class, &that)?;
                }
                Ok(that)
            }
            None => Ok(vm.new_instance(id, ctor, args)?),
        }
    }

    /// Invoke `method` on a receiver (local object or proxy) on `node`.
    ///
    /// # Errors
    /// Any [`RuntimeError`].
    pub fn call_method(
        &self,
        node: NodeId,
        recv: Value,
        method: &str,
        args: Vec<Value>,
    ) -> Result<Value, RuntimeError> {
        let shared = &self.shared;
        // A local receiver (a pulled or promoted object living in this
        // node's VM) takes the call bare — open an app frame unless the
        // method is a pure property read, so the mutation is marked for
        // the next sweep. Getter-only traffic stays frameless: read-only
        // phases must not cause a single sweep probe.
        let _frame = (!entry_is_getter(shared, node, &recv, method))
            .then(|| AppFrame::enter(shared, node.0));
        Ok(shared.vms[node.0 as usize].call_virtual_by_name(recv, method, args)?)
    }

    /// Bind the `Observer` built-in on every node to a **cluster-wide**
    /// trace, so distributed runs produce one comparable event stream.
    pub fn bind_observer(&self, ids: &rafda_vm::vm::ObserverIds) {
        for vm in &self.shared.vms {
            let weak = Rc::downgrade(&self.shared);
            vm.register_native(ids.class, ids.emit, move |_vm, args| {
                let shared = upgrade(&weak)?;
                let v = match args {
                    [Value::Long(v)] => *v,
                    [Value::Int(v)] => i64::from(*v),
                    _ => return Err(VmError::type_error("Observer.emit expects long")),
                };
                shared.trace.borrow_mut().push(TraceEvent::Emit(v));
                Ok(Value::Null)
            });
            let weak = Rc::downgrade(&self.shared);
            vm.register_native(ids.class, ids.emit_str, move |_vm, args| {
                let shared = upgrade(&weak)?;
                match args {
                    [Value::Str(s)] => {
                        shared
                            .trace
                            .borrow_mut()
                            .push(TraceEvent::EmitStr(s.to_string()));
                        Ok(Value::Null)
                    }
                    _ => Err(VmError::type_error("Observer.emit_str expects String")),
                }
            });
            let weak = Rc::downgrade(&self.shared);
            vm.register_native(ids.class, ids.emit_double, move |_vm, args| {
                let shared = upgrade(&weak)?;
                match args {
                    [Value::Double(d)] => {
                        shared
                            .trace
                            .borrow_mut()
                            .push(TraceEvent::EmitDouble(d.to_bits()));
                        Ok(Value::Null)
                    }
                    _ => Err(VmError::type_error("Observer.emit_double expects double")),
                }
            });
        }
    }

    /// Run an entry point and return the cluster-wide observation trace,
    /// with uncaught exceptions and network failures appended as terminal
    /// events (the comparison format of the equivalence experiments).
    pub fn run_observed(&self, node: NodeId, class: &str, method: &str, args: Vec<Value>) -> Trace {
        *self.shared.trace.borrow_mut() = Trace::new();
        // The end of the run is a synchronization point: operations still
        // deferred on an outcall queue are applied before the trace is
        // compared, exactly as a single-address-space run would have
        // applied them inline.
        let result =
            self.call_static(node, class, method, args).and_then(|v| {
                match flush_outqueues(&self.shared) {
                    Ok(()) => Ok(v),
                    Err(e) => Err(RuntimeError::from(e)),
                }
            });
        match result {
            Ok(_) => {}
            Err(RuntimeError::Vm(VmError::Exception(h))) => {
                let name = self.shared.vms[node.0 as usize]
                    .class_of(h)
                    .map(|c| self.shared.universe.class(c).name.clone())
                    .unwrap_or_else(|| "<stale>".to_owned());
                self.shared
                    .trace
                    .borrow_mut()
                    .push(TraceEvent::UncaughtException(name));
            }
            Err(e) if e.is_network() => {
                self.shared
                    .trace
                    .borrow_mut()
                    .push(TraceEvent::NetworkFailure(e.to_string()));
            }
            Err(other) => {
                self.shared
                    .trace
                    .borrow_mut()
                    .push(TraceEvent::EmitStr(format!("<error: {other}>")));
            }
        }
        std::mem::take(&mut self.shared.trace.borrow_mut())
    }

    /// Where the object behind a reference held on `node` actually lives:
    /// `node` itself for local objects, the proxy's target for proxies.
    pub fn location_of(&self, node: NodeId, value: &Value) -> Option<NodeId> {
        let h = value.as_ref_handle()?;
        let vm = &self.shared.vms[node.0 as usize];
        let class = vm.class_of(h)?;
        match self.shared.gen_info.get(&class) {
            Some(info) if info.proto.is_some() => {
                let (target, _) = read_proxy_state(vm, h)?;
                Some(NodeId(target))
            }
            _ => Some(node),
        }
    }

    /// Resolve a reference to the node that owns the live object *and* the
    /// owner's local handle for it — the pair [`Cluster::migrate`] needs,
    /// which lets a driver move an object between two other nodes without
    /// first pulling it to itself. A reference that is already local
    /// resolves to `(node, handle)` unchanged; a proxy is chased one hop
    /// to its recorded owner. Returns `None` for non-references, stale
    /// handles, or an owner that no longer exports the object (it died or
    /// the export was forwarded on).
    pub fn home_of(&self, node: NodeId, value: &Value) -> Option<(NodeId, Handle)> {
        let h = value.as_ref_handle()?;
        let vm = &self.shared.vms[node.0 as usize];
        let class = vm.class_of(h)?;
        match self.shared.gen_info.get(&class) {
            Some(info) if info.proto.is_some() => {
                let (owner, oid) = read_proxy_state(vm, h)?;
                let nodes = self.shared.nodes.borrow();
                let handle = *nodes[owner as usize].exports.get(&oid)?;
                // The export may itself be a forwarding proxy (the object
                // moved on); only a locally implemented object counts.
                let owner_vm = &self.shared.vms[owner as usize];
                let owner_class = owner_vm.class_of(handle)?;
                match self.shared.gen_info.get(&owner_class) {
                    Some(info) if info.proto.is_none() => Some((NodeId(owner), handle)),
                    _ => None,
                }
            }
            _ => Some((node, h)),
        }
    }

    // ------------------------------------------------------------------
    // Boundary changes
    // ------------------------------------------------------------------

    /// Move a live object to another node. The local instance is rewritten
    /// **in place** into a proxy, so every existing reference on `from`
    /// transparently becomes remote (Figure 1: `C` → `Cp`).
    ///
    /// # Errors
    /// [`RuntimeError`] if the handle is not a live `*_Local` object or the
    /// transfer fails.
    pub fn migrate(
        &self,
        from: NodeId,
        object: Handle,
        to: NodeId,
    ) -> Result<MigrationEvent, RuntimeError> {
        let shared = &self.shared;
        let span = {
            let mut spans = shared.spans.borrow_mut();
            let h = spans.start_span("migrate", from.0, shared.net.now().as_ns());
            spans.set_attr(h, "from", from.0);
            spans.set_attr(h, "to", to.0);
            h
        };
        let result = self.migrate_inner(from, object, to);
        let mut spans = shared.spans.borrow_mut();
        let outcome = match &result {
            Ok(event) => {
                spans.set_attr(span, "class", event.class.clone());
                SpanOutcome::Ok
            }
            Err(e) if e.is_network() => SpanOutcome::NetFailure,
            Err(_) => SpanOutcome::Fault,
        };
        spans.end_span(span, shared.net.now().as_ns(), outcome);
        result
    }

    fn migrate_inner(
        &self,
        from: NodeId,
        object: Handle,
        to: NodeId,
    ) -> Result<MigrationEvent, RuntimeError> {
        let shared = &self.shared;
        if from == to {
            return Err(RuntimeError::Bad("migration to the same node".into()));
        }
        // A migration is a synchronization point, and it must flush *before*
        // the state snapshot below: a deferred call still queued against
        // this object has to land while the object is at its old home, or
        // the shipped state would miss it.
        flush_outqueues(shared).map_err(RuntimeError::from)?;
        let vm = &shared.vms[from.0 as usize];
        let (class, fields) = vm
            .read_object(object)
            .ok_or_else(|| RuntimeError::Bad("stale handle".into()))?;
        let info = shared
            .gen_info
            .get(&class)
            .ok_or_else(|| RuntimeError::Bad("only transformed objects can migrate".into()))?
            .clone();
        if info.proto.is_some() {
            return Err(RuntimeError::Bad(
                "object is already remote (a proxy); migrate it from its owner".into(),
            ));
        }
        let base_name = shared.universe.class(info.base).name.clone();
        let proto = shared.policy.protocol(&base_name);
        let mut wire_fields = Vec::with_capacity(fields.len());
        for f in &fields {
            wire_fields
                .push(marshal::value_to_wire(shared, from, f).map_err(RuntimeError::Marshal)?);
        }
        let state = WireValue::ObjectState {
            class: shared.universe.class(class).name.clone(),
            fields: wire_fields,
        };
        let source_oid = export(shared, from, object);
        let (reply, _) = rpc(
            shared,
            from,
            to,
            &proto,
            &base_name,
            &Request::Install {
                state,
                source: Some((from.0, source_oid)),
            },
        )
        .map_err(RuntimeError::from)?;
        let target = match reply {
            Reply::Value(WireValue::Remote { node, object, .. }) => RemoteRef {
                node: NodeId(node),
                oid: object,
            },
            Reply::Fault(m) => return Err(RuntimeError::Bad(m)),
            other => return Err(RuntimeError::Bad(format!("unexpected reply {other:?}"))),
        };
        let proxy_class = proxy_class_for(shared, info.base, info.side, &proto)
            .ok_or_else(|| RuntimeError::Bad(format!("no {proto} proxy for {base_name}")))?;
        vm.replace_object(
            object,
            proxy_class,
            vec![
                Value::Int(target.node.0 as i32),
                Value::Long(target.oid as i64),
            ],
        );
        {
            let mut nodes = shared.nodes.borrow_mut();
            nodes[from.0 as usize]
                .imports
                .insert((target.node.0, target.oid), object);
        }
        // The old export now forwards: no read through it may ever be
        // cached again, and affinity data about the old home is obsolete
        // cluster-wide. The move is also recorded cluster-wide — the
        // forwarding proxy alone would be lost if this node restarts.
        tombstone_version(shared, from.0, source_oid);
        // The moved-away export leaves the exports table for the forwards
        // side-table: lookups still resolve the forwarding proxy, but the
        // replica sweep and placement accounting stop treating the old
        // home as a live export.
        demote_export_to_forward(shared, from.0, source_oid);
        record_home(shared, (from.0, source_oid), (target.node.0, target.oid));
        purge_call_counts(shared, &[(from.0, source_oid), (target.node.0, target.oid)]);
        bump(shared, from.0, Met::Migrations);
        Ok(MigrationEvent {
            class: base_name,
            from,
            to,
            target,
        })
    }

    /// Pull a remote object local: fetch its state from the owner, rewrite
    /// the local proxy in place into the real object, and leave a
    /// forwarding proxy at the previous owner.
    ///
    /// # Errors
    /// [`RuntimeError`] if the handle is not a proxy or the transfer fails.
    pub fn pull_local(&self, node: NodeId, proxy: Handle) -> Result<MigrationEvent, RuntimeError> {
        let shared = &self.shared;
        let span = {
            let mut spans = shared.spans.borrow_mut();
            let h = spans.start_span("pull", node.0, shared.net.now().as_ns());
            spans.set_attr(h, "to", node.0);
            h
        };
        let result = self.pull_inner(node, proxy);
        let mut spans = shared.spans.borrow_mut();
        let outcome = match &result {
            Ok(event) => {
                spans.set_attr(span, "class", event.class.clone());
                spans.set_attr(span, "from", event.from.0);
                SpanOutcome::Ok
            }
            Err(e) if e.is_network() => SpanOutcome::NetFailure,
            Err(_) => SpanOutcome::Fault,
        };
        spans.end_span(span, shared.net.now().as_ns(), outcome);
        result
    }

    fn pull_inner(&self, node: NodeId, proxy: Handle) -> Result<MigrationEvent, RuntimeError> {
        let shared = &self.shared;
        // Synchronization point, before the owner snapshots state for the
        // fetch (see [`Cluster::migrate`] for why the order matters).
        flush_outqueues(shared).map_err(RuntimeError::from)?;
        let vm = &shared.vms[node.0 as usize];
        let class = vm
            .class_of(proxy)
            .ok_or_else(|| RuntimeError::Bad("stale handle".into()))?;
        let info = shared
            .gen_info
            .get(&class)
            .cloned()
            .filter(|i| i.proto.is_some())
            .ok_or_else(|| RuntimeError::Bad("pull_local needs a proxy".into()))?;
        let proto = info.proto.clone().expect("filtered");
        let base_name = shared.universe.class(info.base).name.clone();
        let (owner_raw, oid) =
            read_proxy_state(vm, proxy).ok_or_else(|| RuntimeError::Bad("stale proxy".into()))?;
        let owner = NodeId(owner_raw);
        // Fetch the state.
        let (reply, _) = rpc(
            shared,
            node,
            owner,
            &proto,
            &base_name,
            &Request::Fetch { object: oid },
        )
        .map_err(RuntimeError::from)?;
        let (class_name, wire_fields) = match reply {
            Reply::Value(WireValue::ObjectState { class, fields }) => (class, fields),
            Reply::Fault(m) => return Err(RuntimeError::Bad(m)),
            other => return Err(RuntimeError::Bad(format!("unexpected reply {other:?}"))),
        };
        let local_class = shared
            .universe
            .by_name(&class_name)
            .ok_or_else(|| RuntimeError::Bad(format!("unknown class {class_name}")))?;
        let mut fields = Vec::with_capacity(wire_fields.len());
        for wf in &wire_fields {
            fields.push(marshal::wire_to_value(shared, node, wf).map_err(RuntimeError::Marshal)?);
        }
        vm.replace_object(proxy, local_class, fields);
        let my_oid = export(shared, node, proxy);
        // Owner-side swap: the old object becomes a forwarding proxy here.
        let (reply, _) = rpc(
            shared,
            node,
            owner,
            &proto,
            &base_name,
            &Request::Forward {
                object: oid,
                to_node: node.0,
                to_object: my_oid,
            },
        )
        .map_err(RuntimeError::from)?;
        if let Reply::Fault(m) = reply {
            return Err(RuntimeError::Bad(m));
        }
        // The pulled copy is a fresh export with fresh state; the old home
        // has been tombstoned by the Forward handler. Affinity counts that
        // referenced either location are stale now, and the move is
        // recorded cluster-wide so failover can chase it even after the
        // old owner's forwarding proxy is wiped by a restart.
        bump_version(shared, node.0, my_oid);
        record_home(shared, (owner.0, oid), (node.0, my_oid));
        purge_call_counts(shared, &[(owner.0, oid), (node.0, my_oid)]);
        sync_replicas(shared, node, my_oid);
        bump(shared, node.0, Met::Pulls);
        Ok(MigrationEvent {
            class: base_name,
            from: owner,
            to: node,
            target: RemoteRef { node, oid: my_oid },
        })
    }

    /// One round of the adaptive affinity loop: every exported object whose
    /// incoming calls are dominated by a single remote node (per `config`)
    /// is migrated to that node. Returns the boundary changes made.
    pub fn adapt(&self, config: &AffinityConfig) -> Vec<MigrationEvent> {
        let shared = &self.shared;
        // An adaptation tick is a synchronization point: deferred calls are
        // traffic too, and must land (and be counted) before affinity is
        // judged. Flush failures surface at the callers' next sync point.
        let _ = flush_outqueues(shared);
        // Snapshot candidates without holding the borrow across migrations.
        let mut candidates: Vec<(NodeId, u64, Handle, NodeId)> = Vec::new();
        {
            let nodes = shared.nodes.borrow();
            for (n, state) in nodes.iter().enumerate() {
                // HashMap iteration order varies run to run; candidates must
                // be discovered in a stable order or the migration sequence
                // (and thus clocks, traces and stats) differs per run.
                let mut oids: Vec<u64> = state.call_counts.keys().copied().collect();
                oids.sort_unstable();
                for oid in oids {
                    let counts = &state.call_counts[&oid];
                    let total: u64 = counts.values().sum();
                    if total < config.min_calls {
                        continue;
                    }
                    // Ties on count go to the highest caller id — any fixed
                    // rule works, it just must not depend on map order.
                    let Some((&caller, &count)) =
                        counts.iter().max_by_key(|&(&caller, &c)| (c, caller))
                    else {
                        continue;
                    };
                    if caller == n as u32 {
                        continue;
                    }
                    if (count as f64) / (total as f64) < config.min_fraction {
                        continue;
                    }
                    let Some(&h) = state.exports.get(&oid) else {
                        continue;
                    };
                    candidates.push((NodeId(n as u32), oid, h, NodeId(caller)));
                }
            }
        }
        let mut events = Vec::new();
        for (owner, _oid, handle, target) in candidates {
            // Only migrate objects still locally implemented.
            let vm = &shared.vms[owner.0 as usize];
            let Some(class) = vm.class_of(handle) else {
                continue;
            };
            match shared.gen_info.get(&class) {
                Some(info) if info.proto.is_none() => {
                    // Shard placement is policy-owned: the affinity loop
                    // must not fight the shard map by dragging a sharded
                    // instance toward its chattiest caller.
                    if shared.any_sharding {
                        let base = &shared.universe.class(info.base).name;
                        if shared.policy.shard_spec(base).is_some() {
                            continue;
                        }
                    }
                }
                _ => continue,
            }
            // migrate() purges the stale counts cluster-wide, so no
            // owner-local cleanup is needed here.
            if let Ok(event) = self.migrate(owner, handle, target) {
                events.push(event);
            }
        }
        events
    }

    // ------------------------------------------------------------------
    // Policy-driven shard placement (E15)
    // ------------------------------------------------------------------

    /// Route a freshly constructed instance of a `shard by` class onto its
    /// shard's node: read the key getter, hash the key, look up (or lazily
    /// seed, as `shard % node_count`) the shard's owner in the shard map,
    /// and migrate the instance there when it was created elsewhere. The
    /// creator's reference keeps working either way — a local instance is
    /// rewritten in place into a proxy by [`Cluster::migrate`], and an
    /// existing proxy is re-pointed at the shard home directly.
    fn place_sharded(&self, node: NodeId, class: &str, that: &Value) -> Result<(), RuntimeError> {
        let shared = &self.shared;
        let Some(spec) = shared.policy.shard_spec(class) else {
            return Ok(());
        };
        let Value::Ref(h) = *that else {
            return Ok(());
        };
        let vm = &shared.vms[node.0 as usize];
        let key = vm.call_virtual_by_name(that.clone(), &spec.key_getter, vec![])?;
        let shard = (shard_hash(&key) % u64::from(spec.modulo)) as u32;
        let owner = *shared
            .shards
            .borrow_mut()
            .owners
            .entry((class.to_string(), shard))
            .or_insert(shard % shared.vms.len() as u32);
        let Some(info) = vm
            .class_of(h)
            .and_then(|c| shared.gen_info.get(&c))
            .cloned()
        else {
            return Ok(());
        };
        let member = if info.proto.is_some() {
            let (tn, toid) =
                read_proxy_state(vm, h).ok_or_else(|| RuntimeError::Bad("stale proxy".into()))?;
            if tn == owner {
                (tn, toid)
            } else {
                let src = lookup_export(shared, NodeId(tn), toid)
                    .ok_or_else(|| RuntimeError::Bad(format!("unknown object {tn}#{toid}")))?;
                let event = self.migrate(NodeId(tn), src, NodeId(owner))?;
                // Re-point the creator's proxy at the shard home directly,
                // skipping the forwarding hop left at the old location.
                vm.replace_object(
                    h,
                    vm.class_of(h).expect("live proxy"),
                    vec![
                        Value::Int(event.target.node.0 as i32),
                        Value::Long(event.target.oid as i64),
                    ],
                );
                cache_import(shared, node, event.target.node.0, event.target.oid, h);
                (event.target.node.0, event.target.oid)
            }
        } else if node.0 == owner {
            // Created straight onto its shard's node: export it so the
            // membership list can reference (and later move) it.
            (node.0, export(shared, node, h))
        } else {
            let event = self.migrate(node, h, NodeId(owner))?;
            (event.target.node.0, event.target.oid)
        };
        record_shard_member(shared, class, shard, member);
        bump(shared, node.0, Met::ShardPlacements);
        Ok(())
    }

    /// One adaptation tick for policy-driven sharding. In order:
    ///
    /// 1. adopt exported sharded instances the creation hook never saw
    ///    (objects that became visible through marshaling),
    /// 2. prune members that moved away or whose node crashed,
    /// 3. detect hot-key skew from the same `call_counts` the affinity
    ///    loop reads and greedily reassign hot shards from the most- to the
    ///    least-loaded node while that strictly narrows the spread,
    /// 4. enforce the map: migrate every member not at its shard's owner.
    ///
    /// Deterministic by construction: shard maps are `BTreeMap`s iterated
    /// in key order, load ties break toward the lowest node id (and the
    /// lowest shard key), and every move ships state through the same
    /// Install path migration uses — a synchronization point that drains
    /// the E12 outcall queues first.
    pub fn rebalance_shards(&self, config: &AffinityConfig) -> Vec<MigrationEvent> {
        let shared = &self.shared;
        if !shared.any_sharding {
            return Vec::new();
        }
        let _ = flush_outqueues(shared);
        self.adopt_sharded_exports();
        prune_shard_members(shared);
        // Per-shard load: calls served for its members at their current
        // homes. Absent counters mean a quiet shard, not an error.
        let mut loads: BTreeMap<(String, u32), u64> = BTreeMap::new();
        {
            let nodes = shared.nodes.borrow();
            let shards = shared.shards.borrow();
            for (key, members) in &shards.members {
                let mut load = 0u64;
                for &(n, oid) in members {
                    if let Some(counts) = nodes[n as usize].call_counts.get(&oid) {
                        load += counts.values().sum::<u64>();
                    }
                }
                loads.insert(key.clone(), load);
            }
        }
        if loads.values().sum::<u64>() >= config.min_calls {
            let mut node_load = vec![0u64; shared.vms.len()];
            {
                let shards = shared.shards.borrow();
                for (key, &owner) in &shards.owners {
                    node_load[owner as usize] += loads.get(key).copied().unwrap_or(0);
                }
            }
            // Greedy reassignment with synthetic load deltas (the physical
            // moves below purge the underlying counters).
            for _ in 0..loads.len() {
                let (max_n, max_l) = node_load
                    .iter()
                    .enumerate()
                    .max_by_key(|&(n, &l)| (l, usize::MAX - n))
                    .map(|(n, &l)| (n as u32, l))
                    .expect("at least one node");
                let (min_n, min_l) = node_load
                    .iter()
                    .enumerate()
                    .min_by_key(|&(n, &l)| (l, n))
                    .map(|(n, &l)| (n as u32, l))
                    .expect("at least one node");
                let gap = max_l - min_l;
                if max_n == min_n || gap < 2 {
                    break;
                }
                // Hottest shard on the overloaded node that fits in half
                // the gap (so neither endpoint overshoots); ties go to the
                // lowest (class, shard) key because the map is sorted.
                let mut best: Option<((String, u32), u64)> = None;
                {
                    let shards = shared.shards.borrow();
                    for (key, &owner) in &shards.owners {
                        if owner != max_n {
                            continue;
                        }
                        let l = loads.get(key).copied().unwrap_or(0);
                        if l == 0 || l > gap / 2 {
                            continue;
                        }
                        if best.as_ref().is_none_or(|(_, bl)| l > *bl) {
                            best = Some((key.clone(), l));
                        }
                    }
                }
                let Some((key, l)) = best else { break };
                shared.shards.borrow_mut().owners.insert(key, min_n);
                node_load[max_n as usize] -= l;
                node_load[min_n as usize] += l;
                bump(shared, max_n, Met::ShardRebalances);
            }
        }
        self.enforce_shard_map()
    }

    /// Record exported instances of sharded classes that creation-time
    /// placement never saw, reading their shard key at their current home.
    /// Purely bookkeeping — physical moves happen in the enforcement pass.
    fn adopt_sharded_exports(&self) {
        let shared = &self.shared;
        let known: std::collections::HashSet<(u32, u64)> = shared
            .shards
            .borrow()
            .members
            .values()
            .flatten()
            .copied()
            .collect();
        let mut found: Vec<(String, u32, (u32, u64))> = Vec::new();
        let nodes = shared.nodes.borrow();
        for (n, state) in nodes.iter().enumerate() {
            let n = n as u32;
            if shared.net.fault_plan(|f| f.is_crashed(NodeId(n))) {
                continue;
            }
            let mut oids: Vec<u64> = state.exports.keys().copied().collect();
            oids.sort_unstable();
            for oid in oids {
                if known.contains(&(n, oid)) {
                    continue;
                }
                let h = state.exports[&oid];
                let vm = &shared.vms[n as usize];
                let Some(info) = vm.class_of(h).and_then(|c| shared.gen_info.get(&c)) else {
                    continue;
                };
                if info.proto.is_some() || info.side != Side::Obj {
                    continue;
                }
                let base = shared.universe.class(info.base).name.clone();
                let Some(spec) = shared.policy.shard_spec(&base) else {
                    continue;
                };
                let Ok(key) = vm.call_virtual_by_name(Value::Ref(h), &spec.key_getter, vec![])
                else {
                    continue;
                };
                let shard = (shard_hash(&key) % u64::from(spec.modulo)) as u32;
                found.push((base, shard, (n, oid)));
            }
        }
        drop(nodes);
        for (class, shard, member) in found {
            shared
                .shards
                .borrow_mut()
                .owners
                .entry((class.clone(), shard))
                .or_insert(shard % shared.vms.len() as u32);
            record_shard_member(shared, &class, shard, member);
        }
    }

    /// Enforcement pass: migrate every shard member that is not at its
    /// shard's owner. A member that cannot move right now (its node or the
    /// owner is down) is left in place for the next tick.
    fn enforce_shard_map(&self) -> Vec<MigrationEvent> {
        let shared = &self.shared;
        let plan: Vec<((String, u32), u32)> = shared
            .shards
            .borrow()
            .owners
            .iter()
            .map(|(k, &o)| (k.clone(), o))
            .collect();
        let mut events = Vec::new();
        for (key, owner) in plan {
            if shared.net.fault_plan(|f| f.is_crashed(NodeId(owner))) {
                continue;
            }
            let members = shared
                .shards
                .borrow()
                .members
                .get(&key)
                .cloned()
                .unwrap_or_default();
            for (i, &(n, oid)) in members.iter().enumerate() {
                if n == owner || shared.net.fault_plan(|f| f.is_crashed(NodeId(n))) {
                    continue;
                }
                let Some(h) = lookup_export(shared, NodeId(n), oid) else {
                    continue;
                };
                if let Ok(event) = self.migrate(NodeId(n), h, NodeId(owner)) {
                    let moved = (event.target.node.0, event.target.oid);
                    if let Some(ms) = shared.shards.borrow_mut().members.get_mut(&key) {
                        ms[i] = moved;
                    }
                    events.push(event);
                }
            }
        }
        events
    }

    /// Pin a host-held reference as a GC root on `node`. References
    /// returned by [`Cluster::new_instance`] or [`Cluster::call_method`]
    /// are invisible to the collector unless pinned (or reachable from an
    /// export, import, singleton or static).
    pub fn pin(&self, node: NodeId, value: &Value) {
        if let Some(h) = value.as_ref_handle() {
            self.shared.nodes.borrow_mut()[node.0 as usize]
                .pins
                .insert(h);
        }
    }

    /// Remove a pin added by [`Cluster::pin`].
    pub fn unpin(&self, node: NodeId, value: &Value) {
        if let Some(h) = value.as_ref_handle() {
            self.shared.nodes.borrow_mut()[node.0 as usize]
                .pins
                .remove(&h);
        }
    }

    /// Garbage-collect every node: reachable roots are each node's exported
    /// objects, materialised proxy imports, resolved singletons and host
    /// pins (plus statics, handled by the VM). Returns entries freed per
    /// node.
    ///
    /// Collection is only safe between top-level calls (the synchronous
    /// runtime guarantees no frame is suspended once a call returns).
    pub fn gc(&self) -> Vec<usize> {
        let mut freed = Vec::with_capacity(self.shared.vms.len());
        for (i, vm) in self.shared.vms.iter().enumerate() {
            let roots: Vec<Handle> = {
                let nodes = self.shared.nodes.borrow();
                let state = &nodes[i];
                state
                    .exports
                    .values()
                    .chain(state.forwards.values())
                    .chain(state.imports.values())
                    .chain(state.pins.iter())
                    .copied()
                    .chain(state.singletons.values().map(|s| s.handle()))
                    .collect()
            };
            freed.push(vm.gc(&roots));
        }
        freed
    }

    /// Clear the per-object call statistics used by [`Cluster::adapt`].
    pub fn reset_call_stats(&self) {
        for state in self.shared.nodes.borrow_mut().iter_mut() {
            state.call_counts.clear();
        }
    }

    /// Crash-stop `node`: every message to or from it fails with
    /// [`NetFailureKind::NodeCrashed`] until [`Cluster::restart`]. The
    /// node's memory is untouched while down (nobody can observe it), but a
    /// restart wipes it — crash-stop nodes lose volatile state.
    ///
    /// Calls in flight are unaffected: the runtime is synchronous, so the
    /// crash takes effect between top-level operations, never mid-exchange.
    pub fn crash(&self, node: NodeId) {
        // A crash is a synchronization point: operations already deferred
        // are flushed while every party is still up, so "the owner
        // acknowledged it" keeps meaning "a replica has it". Ops deferred
        // *after* this point fail at their own flush, like any other call
        // to a crashed node.
        let _ = flush_outqueues(&self.shared);
        self.shared.net.fault_plan(|f| f.crash(node));
    }

    /// Restart a crashed node with empty volatile state, as a crash-stop
    /// process would: exports, imports, singletons, caches and backup
    /// replica state are all gone. Only the export-id counter survives, so
    /// ids handed out before the crash are never reused — a stale proxy
    /// addressing a pre-crash export gets a typed fault, not a different
    /// object. The node rejoins as a replication target at the owner's next
    /// sync.
    pub fn restart(&self, node: NodeId) {
        // Synchronization point, as for [`Cluster::crash`].
        let _ = flush_outqueues(&self.shared);
        self.shared.net.fault_plan(|f| f.recover(node));
        let mut nodes = self.shared.nodes.borrow_mut();
        // The rejoining node holds no backups any more: every owner must
        // re-seed it at its next sync, even if the shipped version has not
        // moved since the last one.
        for state in nodes.iter_mut() {
            state.synced_versions.clear();
        }
        let state = &mut nodes[node.0 as usize];
        let next_oid = state.next_oid;
        *state = NodeState::default();
        state.next_oid = next_oid;
        drop(nodes);
        // The restarted node's pre-crash dirty entries describe state that
        // no longer exists; shipping from them would resurrect stale
        // backups. Purge them, then re-seed the sweep from every live
        // node's replicated exports — the cleared `synced_versions` above
        // means each owner owes the rejoined node a fresh shipment even at
        // an unmoved version, and the sweep only probes marked locations.
        self.shared.dirty.borrow_mut().retain(|&(n, _)| n != node.0);
        for n in 0..self.shared.vms.len() as u32 {
            mark_node_dirty(&self.shared, n);
        }
    }

    /// Drain every pending batched outcall queue now — an explicit
    /// synchronization point. A no-op unless the policy marks some class
    /// `batch on` and deferrable operations are actually pending.
    ///
    /// # Errors
    /// The first failure any flushed batch hit: a network failure shipping
    /// a queue, a server-side fault, or an exception a deferred operation
    /// threw when it finally ran (re-thrown here, at the synchronization
    /// point).
    pub fn flush(&self) -> Result<(), RuntimeError> {
        flush_outqueues(&self.shared).map_err(RuntimeError::from)
    }

    /// Read the simulated clock. Reading the time is a synchronization
    /// point: pending batches are flushed first, so the reading covers the
    /// cost of every operation issued before it.
    pub fn now(&self) -> SimTime {
        let _ = flush_outqueues(&self.shared);
        self.shared.net.now()
    }
}

fn upgrade(weak: &Weak<Shared>) -> Result<Rc<Shared>, VmError> {
    weak.upgrade()
        .ok_or_else(|| VmError::Native("cluster torn down".into()))
}

// ----------------------------------------------------------------------
// Registry helpers (short borrows only)
// ----------------------------------------------------------------------

pub(crate) fn export(shared: &Shared, node: NodeId, h: Handle) -> u64 {
    let oid = {
        let mut nodes = shared.nodes.borrow_mut();
        let state = &mut nodes[node.0 as usize];
        if let Some(&oid) = state.export_ids.get(&h) {
            // The object migrated away and came back: its id was demoted to
            // a forwarding stub, and re-exporting the (in-place-rewritten)
            // handle promotes the entry back to a live export under the
            // original id.
            if state.forwards.remove(&oid).is_some() {
                state.exports.insert(oid, h);
            }
            oid
        } else {
            state.next_oid += 1;
            let oid = state.next_oid;
            state.exports.insert(oid, h);
            state.export_ids.insert(h, oid);
            oid
        }
    };
    classify_export(shared, node, oid, h);
    oid
}

/// (Re)classify the export `(node, oid)`: a locally implemented instance
/// of a replicated class joins [`NodeState::replicated`] and is marked
/// dirty — the old full-table sweep shipped a fresh replicated export's
/// initial state at the next synchronization point, so the dirty set must
/// contain it too. Runs on every [`export`] call (not just fresh inserts)
/// because `Install` and `Promote` rewrite previously-exported proxies
/// into local objects in place, changing the classification under an
/// unchanged id.
fn classify_export(shared: &Shared, node: NodeId, oid: u64, h: Handle) {
    if !shared.any_replication {
        return;
    }
    let replicated = shared.vms[node.0 as usize]
        .class_of(h)
        .and_then(|c| shared.gen_info.get(&c))
        .filter(|info| info.proto.is_none())
        .is_some_and(|info| {
            let base_name = &shared.universe.class(info.base).name;
            shared.policy.replicas(base_name) > 0
        });
    let mut nodes = shared.nodes.borrow_mut();
    let state = &mut nodes[node.0 as usize];
    if replicated {
        state.replicated.insert(oid);
        drop(nodes);
        mark_dirty(shared, node.0, oid);
    } else {
        state.replicated.remove(&oid);
    }
}

pub(crate) fn lookup_export(shared: &Shared, node: NodeId, oid: u64) -> Option<Handle> {
    let nodes = shared.nodes.borrow();
    let state = &nodes[node.0 as usize];
    state
        .exports
        .get(&oid)
        .or_else(|| state.forwards.get(&oid))
        .copied()
}

pub(crate) fn cached_import(shared: &Shared, node: NodeId, owner: u32, oid: u64) -> Option<Handle> {
    shared.nodes.borrow()[node.0 as usize]
        .imports
        .get(&(owner, oid))
        .copied()
}

pub(crate) fn cache_import(shared: &Shared, node: NodeId, owner: u32, oid: u64, h: Handle) {
    shared.nodes.borrow_mut()[node.0 as usize]
        .imports
        .insert((owner, oid), h);
}

pub(crate) fn proxy_class_for(
    shared: &Shared,
    base: ClassId,
    side: Side,
    proto: &str,
) -> Option<ClassId> {
    let family = shared.plan.family(base)?;
    let list = match side {
        Side::Obj => &family.obj_proxies,
        Side::Cls => &family.cls_proxies,
    };
    list.iter().find(|(p, _)| p == proto).map(|(_, c)| *c)
}

/// The current property version of the export `(node, oid)` (0 if never
/// mutated).
pub(crate) fn version_of(shared: &Shared, node: u32, oid: u64) -> u64 {
    shared
        .versions
        .borrow()
        .get(&(node, oid))
        .copied()
        .unwrap_or(0)
}

/// Record a (possible) mutation of the export `(node, oid)`: any cached
/// property read tagged with an older version becomes stale. Tombstoned
/// locations stay tombstoned.
pub(crate) fn bump_version(shared: &Shared, node: u32, oid: u64) {
    {
        let mut versions = shared.versions.borrow_mut();
        let v = versions.entry((node, oid)).or_insert(0);
        if *v != VERSION_TOMBSTONE {
            *v = v.saturating_add(1).min(VERSION_TOMBSTONE - 1);
        }
    }
    // A version bump is a (possible) mutation: the backups are behind
    // until the next sync, so the sweep must know to probe this location.
    mark_dirty(shared, node, oid);
}

/// Mark the export `(node, oid)` permanently uncacheable — the object
/// migrated away and this export now forwards.
pub(crate) fn tombstone_version(shared: &Shared, node: u32, oid: u64) {
    if shared.skip_next_tombstone.replace(false) {
        // Test-only injected fault (`Cluster::debug_skip_next_tombstone`):
        // the runtime "forgets" to poison the moved-away location, which
        // is exactly the coherence bug the stale-read monitor detects.
        return;
    }
    shared
        .versions
        .borrow_mut()
        .insert((node, oid), VERSION_TOMBSTONE);
}

// ----------------------------------------------------------------------
// Dirty-replica marking
// ----------------------------------------------------------------------
//
// The sweep ([`sync_dirty_replicas`]) probes exactly the locations marked
// here since their last shipment. Marking must therefore cover every way
// replicated state can drift: version bumps (served mutations, installs,
// promotions), fresh replicated exports (whose initial state the old
// full-table sweep shipped at the next synchronization point), and bare
// local mutations — application code running outside the serve path, which
// the per-node app frames track conservatively.

/// Mark the export `(node, oid)` dirty: its next sweep probe will compare
/// live state against the last shipment. A no-op for locations that are
/// not locally implemented instances of a replicated class — only those
/// can ever ship.
pub(crate) fn mark_dirty(shared: &Shared, node: u32, oid: u64) {
    if !shared.any_replication {
        return;
    }
    if !shared.nodes.borrow()[node as usize]
        .replicated
        .contains(&oid)
    {
        return;
    }
    shared.dirty.borrow_mut().insert((node, oid));
    bump(shared, node, Met::DirtyMarks);
}

/// Conservatively mark every replicated export of `node` dirty — used when
/// application code ran locally on the node and may have mutated any of
/// its objects bare (the runtime never sees plain local calls), and to
/// re-seed the sweep after a restart cleared `synced_versions`.
pub(crate) fn mark_node_dirty(shared: &Shared, node: u32) {
    if !shared.any_replication {
        return;
    }
    let marked = {
        let nodes = shared.nodes.borrow();
        let st = &nodes[node as usize];
        if st.replicated.is_empty() {
            return;
        }
        let mut dirty = shared.dirty.borrow_mut();
        for &oid in &st.replicated {
            dirty.insert((node, oid));
        }
        st.replicated.len() as u64
    };
    let mut obs = shared.obs.borrow_mut();
    for _ in 0..marked {
        obs.inc(node, Met::DirtyMarks);
    }
}

/// Mark `node` dirty iff application code is currently executing on it (an
/// open app frame). Called at every synchronization point, so state a
/// frame mutated *before* a nested exchange is shipped at that exchange —
/// exactly when the old full-table sweep would have shipped it.
pub(crate) fn mark_if_framed(shared: &Shared, node: u32) {
    if !shared.any_replication {
        return;
    }
    if shared.app_frames.borrow()[node as usize] > 0 {
        mark_node_dirty(shared, node);
    }
}

/// RAII guard for one nested level of local application execution on a
/// node. Entered around every non-getter app-code call site (served
/// `Call`s, entry points, clinit); exiting conservatively marks the node
/// dirty, so trailing bare mutations are shipped at the next
/// synchronization point.
pub(crate) struct AppFrame<'a> {
    shared: &'a Shared,
    node: u32,
}

impl<'a> AppFrame<'a> {
    pub(crate) fn enter(shared: &'a Shared, node: u32) -> AppFrame<'a> {
        if shared.any_replication {
            shared.app_frames.borrow_mut()[node as usize] += 1;
        }
        AppFrame { shared, node }
    }
}

impl Drop for AppFrame<'_> {
    fn drop(&mut self) {
        if self.shared.any_replication {
            self.shared.app_frames.borrow_mut()[self.node as usize] -= 1;
            mark_node_dirty(self.shared, self.node);
        }
    }
}

/// Whether invoking `method` on `recv` at an entry point is a pure
/// property read — resolved against the receiver's family by accessor
/// *name*, since entry points take human method names, not wire
/// signatures. Getter calls open no app frame: they cannot mutate, so a
/// read-only workload leaves the dirty set untouched and sweeps nothing.
fn entry_is_getter(shared: &Shared, node: NodeId, recv: &Value, method: &str) -> bool {
    let Some(h) = recv.as_ref_handle() else {
        return false;
    };
    shared.vms[node.0 as usize]
        .class_of(h)
        .and_then(|c| shared.gen_info.get(&c))
        .and_then(|info| shared.plan.family(info.base).map(|f| (f, info.side)))
        .is_some_and(|(f, side)| {
            let accessors = match side {
                Side::Obj => &f.getters,
                Side::Cls => &f.static_getters,
            };
            accessors
                .iter()
                .any(|&g| shared.universe.sig_info(g).name == method)
        })
}

/// Demote the export `(node, oid)` to a forwarding stub: the object
/// migrated (or was pulled) away and the in-place-rewritten proxy now only
/// forwards. The entry leaves [`NodeState::exports`] — sweeps, affinity
/// checks and registry summaries stop seeing it — but stays resolvable
/// through [`lookup_export`], so transparent forwarding, liveness checks
/// and the stale-location monitor behave exactly as before.
pub(crate) fn demote_export_to_forward(shared: &Shared, node: u32, oid: u64) {
    let mut nodes = shared.nodes.borrow_mut();
    let st = &mut nodes[node as usize];
    if let Some(h) = st.exports.remove(&oid) {
        st.forwards.insert(oid, h);
    }
    st.replicated.remove(&oid);
    drop(nodes);
    shared.dirty.borrow_mut().remove(&(node, oid));
}

/// Drop call-count affinity data referring to a moved object, cluster-wide:
/// the entries for its old and new locations on the nodes themselves, and
/// any node's entry whose exported handle is a proxy pointing at either
/// location. Without this, an `adapt` pass after a migration can act on
/// pre-move affinity data (the counts describe calls the object received at
/// a home it no longer has).
pub(crate) fn purge_call_counts(shared: &Shared, locations: &[(u32, u64)]) {
    let mut nodes = shared.nodes.borrow_mut();
    for (i, state) in nodes.iter_mut().enumerate() {
        let vm = &shared.vms[i];
        let exports = &state.exports;
        state.call_counts.retain(|&oid, _| {
            if locations.contains(&(i as u32, oid)) {
                return false;
            }
            let Some(&h) = exports.get(&oid) else {
                return true;
            };
            let is_proxy = vm
                .class_of(h)
                .and_then(|c| shared.gen_info.get(&c))
                .is_some_and(|info| info.proto.is_some());
            if !is_proxy {
                return true;
            }
            match read_proxy_state(vm, h) {
                Some(loc) => !locations.contains(&loc),
                None => true,
            }
        });
    }
}

/// Add `member` to the shard membership list of `(class, shard)`, once.
fn record_shard_member(shared: &Shared, class: &str, shard: u32, member: (u32, u64)) {
    let mut shards = shared.shards.borrow_mut();
    let members = shards
        .members
        .entry((class.to_string(), shard))
        .or_default();
    if !members.contains(&member) {
        members.push(member);
    }
}

/// Drop shard members that no longer resolve to a live, locally
/// implemented object: crashed nodes, restarted registries, and exports
/// rewritten into forwarding proxies (the instance will be re-adopted at
/// its new home on the next tick).
fn prune_shard_members(shared: &Shared) {
    let mut shards = shared.shards.borrow_mut();
    for members in shards.members.values_mut() {
        members.retain(|&(n, oid)| {
            if shared.net.fault_plan(|f| f.is_crashed(NodeId(n))) {
                return false;
            }
            let Some(h) = lookup_export(shared, NodeId(n), oid) else {
                return false;
            };
            shared.vms[n as usize]
                .class_of(h)
                .and_then(|c| shared.gen_info.get(&c))
                .is_some_and(|info| info.proto.is_none())
        });
    }
    shards.members.retain(|_, ms| !ms.is_empty());
}

pub(crate) fn read_proxy_state(vm: &Vm, h: Handle) -> Option<(u32, u64)> {
    let (_, fields) = vm.read_object(h)?;
    match (fields.first(), fields.get(1)) {
        (Some(Value::Int(node)), Some(Value::Long(oid))) => Some((*node as u32, *oid as u64)),
        _ => None,
    }
}

/// The deterministic replication targets for an export owned by `owner` in
/// a cluster of `nodes` nodes: the `k` lowest-numbered node ids other than
/// the owner. A pure function of the topology — there is no replica
/// registry to keep consistent or repair, and a restarted backup re-enters
/// the target set automatically at the owner's next sync. Failover tries
/// the same list in the same order, so every client re-homes to the same
/// replica.
pub(crate) fn replica_targets(k: u32, owner: u32, nodes: u32) -> Vec<u32> {
    (0..nodes)
        .filter(|&n| n != owner)
        .take(k as usize)
        .collect()
}

/// Ship the current state of export `oid` on `owner` to its replication
/// targets, if its class is replicated by policy. Called after every served
/// operation that may have mutated the object (and after exports that
/// create one), so a live backup is never behind the last mutation the
/// owner served.
///
/// Crashed targets are skipped outright — the fault-plan lookup stands in
/// for the failure detector a real owner would run — and other sync
/// failures are swallowed: replication is best-effort per sync and repaired
/// by the next one. Only the authoritative copy is shipped; proxies and
/// forwarding exports never sync.
pub(crate) fn sync_replicas(shared: &Shared, owner: NodeId, oid: u64) {
    let Some(h) = lookup_export(shared, owner, oid) else {
        return;
    };
    let vm = &shared.vms[owner.0 as usize];
    let Some(class) = vm.class_of(h) else {
        return;
    };
    let Some(info) = shared.gen_info.get(&class) else {
        return;
    };
    if info.proto.is_some() {
        return;
    }
    let base_name = shared.universe.class(info.base).name.clone();
    let k = shared.policy.replicas(&base_name);
    if k == 0 {
        return;
    }
    let Some((_, fields)) = vm.read_object(h) else {
        return;
    };
    let mut wire_fields = Vec::with_capacity(fields.len());
    for f in &fields {
        match marshal::value_to_wire(shared, owner, f) {
            Ok(wv) => wire_fields.push(wv),
            Err(_) => return,
        }
    }
    // Skip the no-op sync outright: if neither the version nor the state
    // has moved since the last shipment, the backups already hold exactly
    // this state and k exchanges would buy nothing. Repeated `Discover`
    // and `Create` serves of an unmutated singleton hit this constantly.
    //
    // State drift at an *unchanged* version means the object was mutated
    // outside the serve path — a promoted or pulled replica living in the
    // caller's own VM takes plain local calls that never bump the version.
    // Bump it here before shipping: the backups must not hold two
    // different states under one version tag, and stale property-cache
    // entries tagged with the old version must stop validating.
    let version = version_of(shared, owner.0, oid);
    let prior = shared.nodes.borrow()[owner.0 as usize]
        .synced_versions
        .get(&oid)
        .cloned();
    let version = match prior {
        Some((v, ref shipped)) if v == version && *shipped == wire_fields => {
            // Nothing drifted: the probe settled this location, so a
            // pending dirty mark for it is spent.
            shared.dirty.borrow_mut().remove(&(owner.0, oid));
            return;
        }
        Some((v, _)) if v == version => {
            bump_version(shared, owner.0, oid);
            version_of(shared, owner.0, oid)
        }
        _ => version,
    };
    let class_name = shared.universe.class(class).name.clone();
    let proto = shared.policy.protocol(&base_name);
    let batched = shared.policy.batched(&base_name);
    // Record the shipment *before* the exchanges below: each one is a
    // top-level rpc, which runs the dirty-replica sweep, which would see an
    // unrecorded (or stale-recorded) entry for this very object and ship it
    // a second time.
    shared.nodes.borrow_mut()[owner.0 as usize]
        .synced_versions
        .insert(oid, (version, wire_fields.clone()));
    // This shipment spends the dirty mark (including the re-mark the
    // drift bump above just made): state and record agree again.
    shared.dirty.borrow_mut().remove(&(owner.0, oid));
    for t in replica_targets(k, owner.0, shared.vms.len() as u32) {
        if shared.net.fault_plan(|f| f.is_crashed(NodeId(t))) {
            continue;
        }
        let req = Request::ReplicaSync {
            object: oid,
            version,
            state: WireValue::ObjectState {
                class: class_name.clone(),
                fields: wire_fields.clone(),
            },
        };
        if batched {
            // Replica shipments of a batched class are deferrable: they
            // ride the owner's outcall queue to each backup and land at the
            // next synchronization point.
            enqueue_outcall(shared, owner, NodeId(t), &proto, &base_name, req);
        } else {
            let _ = rpc(shared, owner, NodeId(t), &proto, &base_name, &req);
        }
    }
}

/// Re-ship every **dirty** replicated export whose live state drifted from
/// its last shipment — the dirty-replica sweep run at synchronization
/// points.
///
/// Mutations served over the wire trigger [`sync_replicas`] inline, but a
/// promoted (or pulled) object lives in its caller's VM and takes plain
/// local calls the runtime never sees. The sweep closes that gap: at every
/// top-level exchange and at quiescent points, the locations marked dirty
/// since their last shipment are offered to [`sync_replicas`], which ships
/// (and version-bumps) exactly those whose state moved and no-ops on the
/// rest.
///
/// The sweep drains [`Shared::dirty`] instead of enumerating every export
/// of every node — O(dirty) per synchronization point, not O(exports) —
/// and iterates it in `(node, oid)` order, the exact order the old
/// full-table sweep enumerated, so the shipment sequence (and with it
/// every message id, clock reading and report byte) is unchanged for any
/// run. Marking covers everything the full sweep could ship: version
/// bumps, fresh replicated exports, restart re-seeds, and conservative
/// app-frame marks for bare local mutations (see the marking helpers
/// around [`mark_dirty`]). Gated on `any_replication` so workloads
/// without a `replicate` policy pay one boolean test, and guarded against
/// re-entry because the shipments are themselves exchanges.
pub(crate) fn sync_dirty_replicas(shared: &Shared) {
    if !shared.any_replication || shared.in_replica_sweep.get() {
        return;
    }
    if shared.dirty.borrow().is_empty() {
        return;
    }
    shared.in_replica_sweep.set(true);
    // Take the set whole: marks made *during* the sweep (nested exchanges
    // re-marking an open app frame, the drift bump inside a shipment) are
    // next sweep's work, exactly like mutations made during the old full
    // enumeration.
    let targets = std::mem::take(&mut *shared.dirty.borrow_mut());
    for (n, oid) in targets {
        // A crashed owner cannot ship; its backups are exactly what the
        // failover machinery is for. The entry is dropped, not kept: a
        // restart wipes the owner's state and re-seeds the sweep for every
        // node, so nothing stale survives to ship.
        if shared.net.fault_plan(|f| f.is_crashed(NodeId(n))) {
            continue;
        }
        bump(shared, n, Met::ReplicaSweepProbes);
        sync_replicas(shared, NodeId(n), oid);
    }
    shared.in_replica_sweep.set(false);
}

/// Allocate an object of `class` with JVM-default field values.
pub(crate) fn default_instance(shared: &Shared, node: NodeId, class: ClassId) -> Handle {
    let defaults: Vec<Value> = shared
        .universe
        .field_layout(class)
        .iter()
        .map(|&(owner, idx)| {
            Value::default_for(&shared.universe.class(owner).fields[idx as usize].ty)
        })
        .collect();
    shared.vms[node.0 as usize].alloc_raw(class, defaults)
}

// ----------------------------------------------------------------------
// Factory hook implementations
// ----------------------------------------------------------------------

/// `A_O_Factory.make()` on `node`: policy decides where the instance lives.
pub(crate) fn make_value(shared: &Shared, node: NodeId, base: ClassId) -> Result<Value, VmError> {
    let base_name = shared.universe.class(base).name.clone();
    let target = shared.policy.instance_node(&base_name, node);
    let family = shared.plan.family(base).expect("substitutable").clone();
    if target == node {
        // `new` triggers class initialisation, as in the JVM.
        if family.has_statics {
            discover_value(shared, node, base)?;
        }
        let h = default_instance(shared, node, family.obj_local);
        Ok(Value::Ref(h))
    } else {
        let proto = shared.policy.protocol(&base_name);
        let (reply, _) = rpc(
            shared,
            node,
            target,
            &proto,
            &base_name,
            &Request::Create {
                class: base_name.clone(),
                ctor: 0,
                args: vec![],
            },
        )?;
        match reply {
            Reply::Value(wv) => marshal::wire_to_value(shared, node, &wv).map_err(VmError::Native),
            Reply::Fault(m) => Err(VmError::Native(m)),
            Reply::Exception { .. } => Err(VmError::Native("exception during create".into())),
            Reply::Batch(_) => Err(VmError::Native("unexpected batch reply to create".into())),
        }
    }
}

/// `A_C_Factory.discover()` on `node`: per-node singleton, local or remote
/// per policy, with JVM-style in-progress semantics.
pub(crate) fn discover_value(
    shared: &Shared,
    node: NodeId,
    base: ClassId,
) -> Result<Value, VmError> {
    if let Some(state) = shared.nodes.borrow()[node.0 as usize].singletons.get(&base) {
        return Ok(Value::Ref(state.handle()));
    }
    let base_name = shared.universe.class(base).name.clone();
    let family = shared.plan.family(base).expect("substitutable").clone();
    let owner = shared.policy.statics_node(&base_name);
    // Stale-promotion guard (bugfix): if this class's singleton was
    // promoted after a crash, every resolution must follow the promoted
    // copy — even (and especially) on the restarted pre-crash owner, whose
    // wiped registry would otherwise mint a fresh singleton with default
    // state, silently diverging from the copy the survivors still use.
    let canonical = shared.statics_exports.borrow().get(&base_name).copied();
    if let Some(start) = canonical {
        let (tn, toid) = follow_homes(shared, start);
        if (tn, toid) != start {
            if let Some(h) = lookup_export(shared, NodeId(tn), toid) {
                if tn == node.0 {
                    // The promoted copy lives on this very node: adopt it
                    // as the local singleton.
                    shared.nodes.borrow_mut()[node.0 as usize]
                        .singletons
                        .insert(base, SingletonState::Ready(h));
                    return Ok(Value::Ref(h));
                }
                let class_name = shared.vms[tn as usize]
                    .class_of(h)
                    .map(|c| shared.universe.class(c).name.clone());
                if let Some(class) = class_name {
                    let value = marshal::wire_to_value(
                        shared,
                        node,
                        &WireValue::Remote {
                            node: tn,
                            object: toid,
                            class,
                        },
                    )
                    .map_err(VmError::Native)?;
                    if let Value::Ref(h) = value {
                        shared.nodes.borrow_mut()[node.0 as usize]
                            .singletons
                            .insert(base, SingletonState::Ready(h));
                    }
                    return Ok(value);
                }
            }
            // The promoted copy vanished too (its node also restarted):
            // fall through to policy resolution; the first proxy call will
            // re-promote from the copy's own backups.
        }
    }
    if owner == node {
        let cls_local = family.cls_local.expect("has statics");
        let h = default_instance(shared, node, cls_local);
        shared.nodes.borrow_mut()[node.0 as usize]
            .singletons
            .insert(base, SingletonState::InProgress(h));
        if let (Some(cls_factory), Some(clinit_sig)) = (family.cls_factory, family.clinit_sig) {
            // The class initializer is app code running bare on this node.
            let _frame = AppFrame::enter(shared, node.0);
            shared.vms[node.0 as usize].call_static(
                cls_factory,
                clinit_sig,
                vec![Value::Ref(h)],
            )?;
        }
        shared.nodes.borrow_mut()[node.0 as usize]
            .singletons
            .insert(base, SingletonState::Ready(h));
        Ok(Value::Ref(h))
    } else {
        let proto = shared.policy.protocol(&base_name);
        let (reply, _) = rpc(
            shared,
            node,
            owner,
            &proto,
            &base_name,
            &Request::Discover {
                class: base_name.clone(),
            },
        )?;
        let value = match reply {
            Reply::Value(wv) => {
                marshal::wire_to_value(shared, node, &wv).map_err(VmError::Native)?
            }
            Reply::Fault(m) => return Err(VmError::Native(m)),
            Reply::Exception { .. } => {
                return Err(VmError::Native("exception during discover".into()))
            }
            Reply::Batch(_) => {
                return Err(VmError::Native("unexpected batch reply to discover".into()))
            }
        };
        if let Value::Ref(h) = value {
            shared.nodes.borrow_mut()[node.0 as usize]
                .singletons
                .insert(base, SingletonState::Ready(h));
        }
        Ok(value)
    }
}

// ----------------------------------------------------------------------
// Proxy call path
// ----------------------------------------------------------------------

/// A proxy method invoked on `node`: marshal, ship, execute remotely,
/// unmarshal (or re-throw).
fn proxy_call(
    shared: &Shared,
    node: NodeId,
    method_name: &str,
    sig: SigId,
    args: &[Value],
) -> Result<Value, VmError> {
    let vm = &shared.vms[node.0 as usize];
    let recv = args
        .first()
        .and_then(Value::as_ref_handle)
        .ok_or_else(|| VmError::type_error("proxy call without receiver"))?;
    let class = vm
        .class_of(recv)
        .ok_or_else(|| VmError::Native("stale proxy".into()))?;
    let info = shared.gen_info.get(&class).cloned().ok_or_else(|| {
        VmError::Native(format!(
            "no proxy info for {}",
            shared.universe.class(class).name
        ))
    })?;
    let proto = info.proto.clone().expect("hooked on a proxy");
    let (mut target, mut oid) =
        read_proxy_state(vm, recv).ok_or_else(|| VmError::Native("stale proxy".into()))?;
    let mut wire_args = Vec::with_capacity(args.len().saturating_sub(1));
    for a in &args[1..] {
        wire_args.push(marshal::value_to_wire(shared, node, a).map_err(VmError::Native)?);
    }
    let method = format!("{method_name}@{}", sig.0);
    let base_name = shared.universe.class(info.base).name.clone();
    // Property-cache fast path: a cacheable getter whose cached tag still
    // equals the owner's current version is served locally — no exchange,
    // no clock advance. Coherence rests on the tag check: every mutation
    // on the owner bumps the version, so a hit can never observe a value
    // older than the last write the owner served.
    let is_getter = shared
        .plan
        .family(info.base)
        .is_some_and(|f| match info.side {
            Side::Obj => f.getters.contains(&sig),
            Side::Cls => f.static_getters.contains(&sig),
        });
    // Replica-read fast path (E15): getters of `reads from replicas`
    // classes are served from this node's own replica copy when — and only
    // when — the copy carries the owner's *current* property version. The
    // tag check makes staleness impossible by construction (same argument
    // as the property cache): any acknowledged mutation bumped the owner's
    // version before its reply left, so a lagging copy simply fails the
    // check and the read falls through to a normal owner exchange.
    if is_getter
        && shared.any_replication
        && shared.policy.reads_from_replicas(&base_name)
        && shared.policy.replicas(&base_name) > 0
    {
        if let Some(v) = replica_read(shared, node, &base_name, &proto, &method, sig, target, oid)?
        {
            return Ok(v);
        }
    }
    let cache_on = is_getter && shared.policy.cacheable(&base_name);
    let cache_key = (target, oid, sig);
    if cache_on {
        let current = version_of(shared, target, oid);
        let cached = shared.nodes.borrow()[node.0 as usize]
            .prop_cache
            .get(&cache_key)
            .cloned();
        match cached {
            Some((tag, wv)) if tag == current && current != VERSION_TOMBSTONE => {
                bump(shared, node.0, Met::CacheHits);
                // A zero-duration exchange span keeps the read visible in
                // traces, tagged as served from the property cache.
                let now = shared.net.now().as_ns();
                let ctx = {
                    let mut spans = shared.spans.borrow_mut();
                    let h = spans.start_span("rpc.call", node.0, now);
                    spans.set_attr(h, "class", base_name.as_str());
                    spans.set_attr(h, "method", method.clone());
                    spans.set_attr(h, "protocol", proto.as_str());
                    spans.set_attr(h, "from", node.0);
                    spans.set_attr(h, "to", target);
                    spans.set_attr(h, "cached", true);
                    spans.end_span(h, now, SpanOutcome::Ok);
                    spans.context_of(h)
                };
                if monitors_on(shared) {
                    // A hit is a stale read when the authoritative object
                    // has moved: the export now forwards, or a promotion
                    // re-homed it. A merely *missing* export (restart
                    // amnesia) is legitimate — the version survived, the
                    // state did not move.
                    let forwards = lookup_export(shared, NodeId(target), oid)
                        .and_then(|h| shared.vms[target as usize].class_of(h))
                        .and_then(|c| shared.gen_info.get(&c))
                        .is_some_and(|i| i.proto.is_some());
                    let promoted = shared.homes.borrow().contains_key(&(target, oid));
                    shared.obs.borrow_mut().emit(&MonitorEvent::CacheHit {
                        node: node.0,
                        owner: target,
                        oid,
                        stale_location: forwards || promoted,
                        span_id: ctx.span_id,
                        trace_id: ctx.trace_id,
                    });
                }
                return marshal::wire_to_value(shared, node, &wv).map_err(VmError::Native);
            }
            Some(_) => bump(shared, node.0, Met::CacheInvalidations),
            None => bump(shared, node.0, Met::CacheMisses),
        }
    }
    // Batched remote invocation: a void-returning call on a `batch on`
    // class has no result to wait for, so it is deferred onto the
    // `(caller, owner)` outcall queue instead of paying a full exchange.
    // It ships as part of a single [`Request::Batch`] frame at the next
    // synchronization point — and every value-returning call to any owner
    // *is* one, so a later read always observes the deferred writes.
    // Deferral is decided against the proxy class's own method table (the
    // generated setters only exist there, not on the base class;
    // signatures are interned globally, so the ids agree).
    if shared.policy.batched(&base_name) {
        let is_void = shared
            .universe
            .class(class)
            .methods
            .iter()
            .find(|m| m.sig == sig)
            .is_some_and(|m| m.ret == Ty::Void);
        if is_void {
            // Read-your-writes: this node's cached property reads of the
            // object no longer reflect the queue, and the version tag
            // cannot catch that (the owner has not served the write yet).
            // Drop them; the next read goes remote, which flushes first.
            {
                let mut nodes = shared.nodes.borrow_mut();
                let state = &mut nodes[node.0 as usize];
                state
                    .prop_cache
                    .retain(|&(t, o, _), _| !(t == target && o == oid));
                state
                    .prop_cache_order
                    .retain(|&(t, o, _)| !(t == target && o == oid));
            }
            enqueue_outcall(
                shared,
                node,
                NodeId(target),
                &proto,
                &base_name,
                Request::Call {
                    object: oid,
                    method,
                    args: wire_args,
                },
            );
            return Ok(Value::Null);
        }
    }
    let mut req = Request::Call {
        object: oid,
        method: method.clone(),
        args: wire_args,
    };
    // Crash-stop failover: when the owner turns out to be crashed — or has
    // restarted with amnesia and no longer knows the export — re-home the
    // proxy to a (promoted) replica and retry. At most one hop per node:
    // each hop either follows an already-recorded promotion forward or
    // performs a new one, and crash states only change between top-level
    // operations, so the loop cannot cycle.
    let mut hops = 0u32;
    let (reply, obj_version) = loop {
        let outcome = rpc(shared, node, NodeId(target), &proto, &base_name, &req);
        let rehome = match &outcome {
            Err(VmError::Unreachable(nf)) => {
                matches!(nf.kind, NetFailureKind::NodeCrashed(_))
            }
            Ok((Reply::Fault(m), _)) => m.starts_with("unknown object "),
            _ => false,
        };
        if rehome && hops <= shared.vms.len() as u32 {
            if let Some((nn, noid)) =
                failover(shared, node, recv, class, &proto, &base_name, target, oid)
            {
                hops += 1;
                (target, oid) = (nn, noid);
                let Request::Call { method, args, .. } = req else {
                    unreachable!("proxy calls only send Call requests")
                };
                req = Request::Call {
                    object: oid,
                    method,
                    args,
                };
                continue;
            }
        }
        break outcome?;
    };
    let cache_key = (target, oid, sig);
    match reply {
        Reply::Value(wv) => {
            if cache_on && obj_version != VERSION_TOMBSTONE {
                let mut nodes = shared.nodes.borrow_mut();
                let state = &mut nodes[node.0 as usize];
                if !state.prop_cache.contains_key(&cache_key) {
                    if state.prop_cache_order.len() >= PROP_CACHE_CAP {
                        if let Some(evict) = state.prop_cache_order.pop_front() {
                            state.prop_cache.remove(&evict);
                        }
                    }
                    state.prop_cache_order.push_back(cache_key);
                }
                state
                    .prop_cache
                    .insert(cache_key, (obj_version, wv.clone()));
            }
            marshal::wire_to_value(shared, node, &wv).map_err(VmError::Native)
        }
        Reply::Exception { class, fields } => {
            let exc_class = shared
                .universe
                .by_name(&class)
                .ok_or_else(|| VmError::Native(format!("unknown exception class {class}")))?;
            let mut values = Vec::with_capacity(fields.len());
            for f in &fields {
                values.push(marshal::wire_to_value(shared, node, f).map_err(VmError::Native)?);
            }
            let h = vm.alloc_raw(exc_class, values);
            Err(VmError::Exception(h))
        }
        Reply::Fault(m) => Err(VmError::Native(m)),
        Reply::Batch(_) => Err(VmError::Native("unexpected batch reply to a call".into())),
    }
}

/// Serve a getter from `node`'s own replica copy of `(owner, oid)`, iff
/// the copy's version equals the owner's current property version (and the
/// export has not been tombstoned by a move). `Ok(None)` means the node
/// holds no copy or the copy lags — the caller falls through to a normal
/// owner exchange, whose served reply restores the replica's currency.
///
/// In the simulated topology every inter-node link costs the same, so the
/// nearest *profitable* replica is always the caller's own store: remote
/// replicas would cost exactly what the owner does.
#[allow(clippy::too_many_arguments)]
fn replica_read(
    shared: &Shared,
    node: NodeId,
    base_name: &str,
    proto: &str,
    method: &str,
    sig: SigId,
    owner: u32,
    oid: u64,
) -> Result<Option<Value>, VmError> {
    if owner == node.0 {
        return Ok(None);
    }
    let current = version_of(shared, owner, oid);
    if current == VERSION_TOMBSTONE {
        return Ok(None);
    }
    let copy = shared.nodes.borrow()[node.0 as usize]
        .replica_store
        .get(&(owner, oid))
        .cloned();
    let Some((version, class_name, fields)) = copy else {
        return Ok(None);
    };
    if version != current {
        return Ok(None);
    }
    let Some(local_class) = shared.universe.by_name(&class_name) else {
        return Ok(None);
    };
    // Materialise a throwaway local instance from the replica's wire-form
    // state and run the real getter bytecode against it — no field-layout
    // knowledge needed here, and the temporary is unrooted garbage after
    // the call returns.
    let vm = &shared.vms[node.0 as usize];
    let mut values = Vec::with_capacity(fields.len());
    for f in &fields {
        values.push(marshal::wire_to_value(shared, node, f).map_err(VmError::Native)?);
    }
    let h = vm.alloc_raw(local_class, values);
    let result = vm.call_virtual(Value::Ref(h), sig, vec![])?;
    bump(shared, node.0, Met::ReplicaReads);
    // A zero-duration span keeps the read visible in traces; the CacheHit
    // monitor event puts it under the E14 stale-read oracle like every
    // other locally served read.
    let now = shared.net.now().as_ns();
    let ctx = {
        let mut spans = shared.spans.borrow_mut();
        let sh = spans.start_span("rpc.call", node.0, now);
        spans.set_attr(sh, "class", base_name);
        spans.set_attr(sh, "method", method.to_owned());
        spans.set_attr(sh, "protocol", proto);
        spans.set_attr(sh, "from", node.0);
        spans.set_attr(sh, "to", owner);
        spans.set_attr(sh, "replica_read", true);
        spans.end_span(sh, now, SpanOutcome::Ok);
        spans.context_of(sh)
    };
    if monitors_on(shared) {
        let forwards = lookup_export(shared, NodeId(owner), oid)
            .and_then(|h| shared.vms[owner as usize].class_of(h))
            .and_then(|c| shared.gen_info.get(&c))
            .is_some_and(|i| i.proto.is_some());
        let promoted = shared.homes.borrow().contains_key(&(owner, oid));
        shared.obs.borrow_mut().emit(&MonitorEvent::CacheHit {
            node: node.0,
            owner,
            oid,
            stale_location: forwards || promoted,
            span_id: ctx.span_id,
            trace_id: ctx.trace_id,
        });
    }
    Ok(Some(result))
}

/// Client-side re-homing after the owner of `(target, oid)` turned out to
/// be crashed, or restarted with amnesia. Follows the chain of recorded
/// promotions first; only if it dead-ends on a dead (or amnesiac) location
/// does it ask that location's replicas — lowest node id first — to promote
/// their backup copy. On success the proxy `recv` is rewritten in place to
/// the new home, which is also returned; `None` means no live replica could
/// take over and the original failure stands.
///
/// The whole re-homing is wrapped in a `rpc.failover` span chained via
/// `retry_of` to the exchange that failed, so traces show the causal link
/// from the dead owner to the promoted copy.
#[allow(clippy::too_many_arguments)]
fn failover(
    shared: &Shared,
    node: NodeId,
    recv: Handle,
    proxy_class: ClassId,
    proto: &str,
    base_name: &str,
    target: u32,
    oid: u64,
) -> Option<(u32, u64)> {
    let start = shared.net.now().as_ns();
    let span = {
        let mut spans = shared.spans.borrow_mut();
        let h = spans.start_span("rpc.failover", node.0, start);
        spans.set_attr(h, "class", base_name);
        spans.set_attr(h, "protocol", proto);
        spans.set_attr(h, "from", node.0);
        spans.set_attr(h, "old_home", format!("{target}#{oid}"));
        let prior = shared.last_exchange_span.get();
        if prior != 0 {
            spans.set_retry_of(h, prior);
        }
        h
    };
    let home = locate_home(shared, node, proto, base_name, target, oid);
    let end = shared.net.now().as_ns();
    {
        let mut spans = shared.spans.borrow_mut();
        match home {
            Some((nn, noid)) => {
                spans.set_attr(span, "new_home", format!("{nn}#{noid}"));
                spans.end_span(span, end, SpanOutcome::Ok);
            }
            None => spans.end_span(span, end, SpanOutcome::NetFailure),
        }
    }
    let (nn, noid) = home?;
    // When this node itself promoted the object, the backup was materialised
    // straight into `recv` (the import rewritten in place, as with Install):
    // `recv` already IS the object, and re-proxying it would create a proxy
    // that points at itself.
    if !(nn == node.0 && lookup_export(shared, node, noid) == Some(recv)) {
        let vm = &shared.vms[node.0 as usize];
        vm.replace_object(
            recv,
            proxy_class,
            vec![Value::Int(nn as i32), Value::Long(noid as i64)],
        );
        // The old import entry stays: a reference to the dead location that
        // arrives later materialises through it and lands on this re-homed
        // proxy — the same logical object.
        cache_import(shared, node, nn, noid, recv);
    }
    bump(shared, node.0, Met::Failovers);
    Some((nn, noid))
}

/// Find the live home of `(target, oid)`: follow recorded promotions, then
/// ask the terminal location's replicas to promote their backup, lowest
/// node id first. Returns `None` when nobody can take over — the class is
/// unreplicated, or every backup is down or lost its copy.
fn locate_home(
    shared: &Shared,
    node: NodeId,
    proto: &str,
    base_name: &str,
    target: u32,
    oid: u64,
) -> Option<(u32, u64)> {
    let crashed = |n: u32| shared.net.fault_plan(|f| f.is_crashed(NodeId(n)));
    let (tn, toid) = follow_homes(shared, (target, oid));
    // Only route to the chain's end while the promoted copy is actually
    // there: a terminal node that crash-restarted has a wiped registry, and
    // sending callers to it would loop through "unknown object" faults
    // instead of promoting one of the copy's own backups below.
    if (tn, toid) != (target, oid)
        && !crashed(tn)
        && lookup_export(shared, NodeId(tn), toid).is_some()
    {
        return Some((tn, toid));
    }
    let k = shared.policy.replicas(base_name);
    if k == 0 {
        return None;
    }
    for c in replica_targets(k, tn, shared.vms.len() as u32) {
        // The fault-plan lookup stands in for a failure detector: known-dead
        // candidates are skipped instead of timed out against.
        if crashed(c) {
            continue;
        }
        let req = Request::Promote {
            node: tn,
            object: toid,
        };
        match rpc(shared, node, NodeId(c), proto, base_name, &req) {
            Ok((
                Reply::Value(WireValue::Remote {
                    node: nn,
                    object: noid,
                    ..
                }),
                _,
            )) => return Some((nn, noid)),
            // A fault (the backup restarted and lost its copy) or a network
            // failure both mean: try the next candidate.
            _ => continue,
        }
    }
    None
}

/// Record that the live copy of `old` now lives at `new`. Promotions
/// *and* migrations both register here: the forwarding proxy a migration
/// leaves behind lives only in the old node's heap and is lost when that
/// node crash-restarts, so failover needs a cluster-level record to chase.
/// The destination stops being a forwarding location the moment something
/// lands on it, so any stale entry keyed there is dropped — keeping every
/// chain acyclic and terminated at a live home.
pub(crate) fn record_home(shared: &Shared, old: (u32, u64), new: (u32, u64)) {
    let mut homes = shared.homes.borrow_mut();
    homes.insert(old, new);
    homes.remove(&new);
}

/// Follow the chain of recorded promotions and migrations from `start`
/// to its terminal location. Bounded: every hop was a distinct move,
/// each to a different location.
pub(crate) fn follow_homes(shared: &Shared, start: (u32, u64)) -> (u32, u64) {
    let (mut tn, mut toid) = start;
    for _ in 0..=shared.vms.len() {
        match shared.homes.borrow().get(&(tn, toid)) {
            Some(&(n, o)) => (tn, toid) = (n, o),
            None => break,
        }
    }
    (tn, toid)
}

// ----------------------------------------------------------------------
// Batched remote invocation
// ----------------------------------------------------------------------

/// Operations deferred toward one owner by one caller, flushed as a single
/// [`Request::Batch`] exchange at the next synchronization point. The
/// protocol and class recorded at first enqueue label the flush exchange
/// (all ops on one queue use the owner's protocol anyway).
#[derive(Debug)]
pub(crate) struct PendingBatch {
    proto: String,
    class: String,
    ops: Vec<Request>,
}

/// Defer `op` onto the `(from, to)` outcall queue instead of performing an
/// exchange now.
fn enqueue_outcall(
    shared: &Shared,
    from: NodeId,
    to: NodeId,
    proto: &str,
    class: &str,
    op: Request,
) {
    let mut queues = shared.outqueues.borrow_mut();
    let pending = queues
        .entry((from.0, to.0))
        .or_insert_with(|| PendingBatch {
            proto: proto.to_owned(),
            class: class.to_owned(),
            ops: Vec::new(),
        });
    // Replica shipments supersede each other: only the newest state of an
    // export needs to travel, so a queued sync of the same object is
    // replaced in place (keeping its slot preserves the order of the other
    // queued operations).
    let sync_of = match &op {
        Request::ReplicaSync { object, .. } => Some(*object),
        _ => None,
    };
    if let Some(target_oid) = sync_of {
        if let Some(slot) = pending
            .ops
            .iter_mut()
            .find(|q| matches!(**q, Request::ReplicaSync { object, .. } if object == target_oid))
        {
            *slot = op;
            drop(queues);
            bump(shared, from.0, Met::BatchedOps);
            return;
        }
    }
    pending.ops.push(op);
    drop(queues);
    bump(shared, from.0, Met::BatchedOps);
}

/// Drain every pending outcall queue, shipping each as one
/// [`Request::Batch`] exchange. Called at every synchronization point: any
/// top-level exchange, fetch/migrate/pull, an adaptation tick,
/// crash/restart, a clock read, and [`Cluster::flush`].
///
/// Serving a batch can enqueue follow-up operations (replica shipments of
/// the applied calls, ops re-deferred through a forwarding proxy), so the
/// drain loops until quiescent; queues go out in sorted key order so runs
/// stay deterministic. After the first failure the remaining queues still
/// drain — their operations must not be silently lost — and the first
/// error is reported.
///
/// With batching off the queues are permanently empty and this returns
/// after one emptiness check, leaving clocks, traces and telemetry
/// byte-identical to a runtime without batching.
pub(crate) fn flush_outqueues(shared: &Shared) -> Result<(), VmError> {
    if shared.in_flush.get() || shared.outqueues.borrow().is_empty() {
        return Ok(());
    }
    shared.in_flush.set(true);
    let mut first_err = None;
    loop {
        let mut keys: Vec<(u32, u32)> = shared.outqueues.borrow().keys().copied().collect();
        if keys.is_empty() {
            break;
        }
        keys.sort_unstable();
        for key in keys {
            let Some(pending) = shared.outqueues.borrow_mut().remove(&key) else {
                continue;
            };
            bump(shared, key.0, Met::Flushes);
            let (from, to) = (NodeId(key.0), NodeId(key.1));
            let outcome = rpc(
                shared,
                from,
                to,
                &pending.proto,
                &pending.class,
                &Request::Batch(pending.ops.clone()),
            );
            // The owner died between the deferral and this flush (delivery
            // refused, nothing applied). The accepted calls must not be
            // lost: re-home each onto the object's promoted backup — the
            // same failover a synchronous call would take — and re-defer
            // it there; this drain loop ships the new queues. Replica
            // shipments for the dead node are dropped: restart clears the
            // synced-version marks, so the owner re-seeds it at its next
            // sync anyway.
            let node_crashed = matches!(
                &outcome,
                Err(e) if matches!(
                    e.net_failure().map(|nf| nf.kind),
                    Some(NetFailureKind::NodeCrashed(_))
                )
            );
            if node_crashed {
                for op in pending.ops {
                    let Request::Call { object, .. } = &op else {
                        continue;
                    };
                    match locate_home(shared, from, &pending.proto, &pending.class, to.0, *object) {
                        Some((nn, noid)) => {
                            let Request::Call { method, args, .. } = op else {
                                unreachable!("matched above");
                            };
                            enqueue_outcall(
                                shared,
                                from,
                                NodeId(nn),
                                &pending.proto,
                                &pending.class,
                                Request::Call {
                                    object: noid,
                                    method,
                                    args,
                                },
                            );
                            bump(shared, from.0, Met::Failovers);
                        }
                        // Nobody can take over (unreplicated, or every
                        // backup is gone): the deferred call is lost for
                        // real — surface that at this synchronization
                        // point like any other flush failure.
                        None => {
                            if first_err.is_none() {
                                first_err =
                                    outcome.as_ref().err().cloned().or_else(|| {
                                        Some(VmError::Native("deferred call lost".into()))
                                    });
                            }
                        }
                    }
                }
            } else if first_err.is_none() {
                first_err = flush_error(shared, from, outcome);
            }
        }
    }
    shared.in_flush.set(false);
    match first_err {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// Surface the outcome of one flushed batch at the synchronization point
/// that triggered it: network failures and faults propagate as-is, and a
/// deferred operation that threw when it finally ran re-materialises its
/// exception on the flushing node.
fn flush_error(
    shared: &Shared,
    from: NodeId,
    outcome: Result<(Reply, u64), VmError>,
) -> Option<VmError> {
    let results = match outcome {
        Err(e) => return Some(e),
        Ok((Reply::Batch(results), _)) => results,
        Ok((Reply::Fault(m), _)) => return Some(VmError::Native(m)),
        Ok(_) => return None,
    };
    for (_, r) in results {
        match r {
            Reply::Value(_) => {}
            Reply::Exception { class, fields } => {
                let Some(exc_class) = shared.universe.by_name(&class) else {
                    return Some(VmError::Native(format!("unknown exception class {class}")));
                };
                let mut values = Vec::with_capacity(fields.len());
                for f in &fields {
                    match marshal::wire_to_value(shared, from, f) {
                        Ok(v) => values.push(v),
                        Err(m) => return Some(VmError::Native(m)),
                    }
                }
                let h = shared.vms[from.0 as usize].alloc_raw(exc_class, values);
                return Some(VmError::Exception(h));
            }
            Reply::Fault(m) => return Some(VmError::Native(m)),
            Reply::Batch(_) => return Some(VmError::Native("nested batch reply".into())),
        }
    }
    None
}

/// Perform one request/reply exchange, running the full encode → transmit →
/// decode → handle → encode → transmit → decode pipeline and charging the
/// protocol-stack overhead to the simulated clock.
///
/// Returns the reply together with the served object's property version as
/// piggybacked on the reply frame (0 for request kinds that do not address
/// a versioned export).
pub(crate) fn rpc(
    shared: &Shared,
    from: NodeId,
    to: NodeId,
    proto: &str,
    class: &str,
    req: &Request,
) -> Result<(Reply, u64), VmError> {
    // Every exchange is a synchronization point: pending batches drain
    // before this request goes out, so its server observes every operation
    // deferred before it in program order. This must hold at *any* rpc
    // depth — application code usually runs inside a serve already (the
    // driver's `main` is itself a remote call), so gating on depth 0 would
    // let nested value-returning calls read state whose mutations are still
    // queued. Re-entrancy is safe: `flush_outqueues` is a no-op while a
    // flush is already draining (`in_flush`), and the paths that snapshot
    // object state (migrate, pull, replica sync of batched classes) flush
    // or enqueue explicitly before snapshotting. With batching off the
    // queues are permanently empty and this is a single emptiness check.
    //
    // The time-series sample is taken first for the same reason in
    // reverse: queue-depth readings must see the work this flush is about
    // to drain.
    maybe_sample(shared);
    flush_outqueues(shared)?;
    // A promoted object's local mutations bypass the serve path entirely;
    // the next exchange is the first chance to notice its backups are
    // behind. If application code is mid-flight on the calling node (an
    // open app frame), anything it mutated bare so far must be probed by
    // this very sweep — the old full-table sweep shipped such state here,
    // and nested calls may observe it through their own replicas.
    mark_if_framed(shared, from.0);
    sync_dirty_replicas(shared);
    let codec = shared
        .protocols
        .get(proto)
        .ok_or_else(|| VmError::Native(format!("no codec for protocol {proto}")))?;
    if shared.rpc_depth.get() >= MAX_RPC_DEPTH {
        return Err(VmError::Native(
            "rpc depth limit exceeded (unbounded distributed recursion?)".into(),
        ));
    }
    shared.rpc_depth.set(shared.rpc_depth.get() + 1);
    let result = rpc_inner(shared, from, to, codec.as_ref(), class, req);
    shared.rpc_depth.set(shared.rpc_depth.get() - 1);
    result
}

/// The span name of an exchange for one request kind.
fn req_span_name(req: &Request) -> (&'static str, &'static str) {
    match req {
        Request::Call { .. } => ("rpc.call", "serve.call"),
        Request::Create { .. } => ("rpc.create", "serve.create"),
        Request::Discover { .. } => ("rpc.discover", "serve.discover"),
        Request::Fetch { .. } => ("rpc.fetch", "serve.fetch"),
        Request::Install { .. } => ("rpc.install", "serve.install"),
        Request::Forward { .. } => ("rpc.forward", "serve.forward"),
        Request::ReplicaSync { .. } => ("rpc.replica", "serve.replica"),
        Request::Promote { .. } => ("rpc.promote", "serve.promote"),
        Request::Batch(..) => ("rpc.batch", "serve.batch"),
    }
}

/// The method label recorded on an exchange span: the wire method string
/// for calls, a pseudo-method for the runtime-internal request kinds.
fn req_method_label(req: &Request) -> String {
    match req {
        Request::Call { method, .. } => method.clone(),
        Request::Create { ctor, .. } => format!("<create:{ctor}>"),
        Request::Discover { .. } => "<discover>".to_owned(),
        Request::Fetch { .. } => "<fetch>".to_owned(),
        Request::Install { .. } => "<install>".to_owned(),
        Request::Forward { .. } => "<forward>".to_owned(),
        Request::ReplicaSync { .. } => "<replica>".to_owned(),
        Request::Promote { .. } => "<promote>".to_owned(),
        Request::Batch(..) => "<batch>".to_owned(),
    }
}

/// The typed mirror of a transport error (same data, no crate dependency
/// from the VM on the network).
fn net_failure_kind(e: &NetError) -> NetFailureKind {
    match e {
        NetError::Dropped => NetFailureKind::Dropped,
        NetError::Partitioned { from, to } => NetFailureKind::Partitioned {
            from: from.0,
            to: to.0,
        },
        NetError::NodeCrashed(n) => NetFailureKind::NodeCrashed(n.0),
        NetError::NoSuchNode(n) => NetFailureKind::NoSuchNode(n.0),
    }
}

fn rpc_inner(
    shared: &Shared,
    from: NodeId,
    to: NodeId,
    codec: &dyn Protocol,
    class: &str,
    req: &Request,
) -> Result<(Reply, u64), VmError> {
    let msg_id = shared.next_msg_id.get();
    shared.next_msg_id.set(msg_id + 1);
    let (exch_name, _) = req_span_name(req);
    // The exchange span covers the whole request/reply exchange, retries
    // included. Its context travels in the frame header — the frame is
    // encoded once and retransmitted verbatim, so the wire cannot carry
    // per-attempt contexts; attempts are recorded as client-local children.
    let (exch, ctx) = {
        let mut spans = shared.spans.borrow_mut();
        let h = spans.start_span(exch_name, from.0, shared.net.now().as_ns());
        spans.set_attr(h, "class", class);
        spans.set_attr(h, "method", req_method_label(req));
        spans.set_attr(h, "protocol", codec.name());
        spans.set_attr(h, "from", from.0);
        spans.set_attr(h, "to", to.0);
        if let Request::Batch(ops) = req {
            spans.set_attr(h, "n_ops", ops.len());
        }
        let ctx = spans.context_of(h);
        (h, ctx)
    };
    // Encode once: every retransmission sends the same frame, same id
    // (which also makes re-interning on the decode side idempotent). The
    // buffer comes from the link's pool and goes back when the exchange
    // finishes; the signature table is the directed link's, so repeated
    // method/class names shrink to 5-byte references after their first
    // frame.
    let mut bytes = shared.wire_bufs.borrow_mut().checkout(from, to);
    let encoded = {
        let mut tables = shared.sig_tables.borrow_mut();
        let table = tables.entry((from.0, to.0)).or_default();
        codec.encode_request_into(msg_id, ctx, req, Some(table), &mut bytes)
    };
    if let Err(e) = encoded {
        shared.wire_bufs.borrow_mut().put_back(from, to, bytes);
        let end = shared.net.now().as_ns();
        let mut spans = shared.spans.borrow_mut();
        spans.end_span(exch, end, SpanOutcome::Fault);
        shared.last_exchange_span.set(spans.span_id_of(exch));
        return Err(VmError::Native(format!("request encode failed: {e}")));
    }
    shared
        .spans
        .borrow_mut()
        .set_attr(exch, "bytes_out", bytes.len());
    let policy = shared.retry.get();
    let max_attempts = policy.max_attempts.max(1);
    let mut attempt = 0u32;
    let mut prev_attempt_span: Option<u64> = None;
    let result = loop {
        attempt += 1;
        if attempt > 1 {
            // Back off on the simulated clock before retransmitting, so the
            // cost of fault tolerance is charged deterministically.
            shared.net.advance(policy.backoff_ns(attempt - 1));
            bump(shared, from.0, Met::Retries);
        }
        // Each transmission attempt is a child span: retransmissions get
        // fresh span ids within the same trace and point at the attempt
        // they retry via `retry_of`.
        let attempt_start = shared.net.now().as_ns();
        let att = {
            let mut spans = shared.spans.borrow_mut();
            let h = spans.start_span("rpc.attempt", from.0, attempt_start);
            spans.set_attr(h, "attempt", attempt);
            if let Some(prev) = prev_attempt_span {
                spans.set_retry_of(h, prev);
            }
            h
        };
        match attempt_exchange(shared, from, to, codec, msg_id, &bytes, attempt) {
            Ok((reply, obj_version)) => {
                let end = shared.net.now().as_ns();
                shared.obs.borrow_mut().record_attempts(from.0, attempt);
                let outcome = reply_outcome(&reply);
                let mut spans = shared.spans.borrow_mut();
                spans.end_span(att, end, SpanOutcome::Ok);
                spans.record_link(from.0, to.0, end.saturating_sub(attempt_start));
                spans.set_attr(exch, "attempts", attempt);
                spans.end_span(exch, end, outcome);
                shared.last_exchange_span.set(spans.span_id_of(exch));
                break Ok((reply, obj_version));
            }
            Err(kind) if kind.is_transient() && attempt < max_attempts => {
                let end = shared.net.now().as_ns();
                let mut spans = shared.spans.borrow_mut();
                spans.end_span(att, end, SpanOutcome::NetFailure);
                prev_attempt_span = Some(spans.span_id_of(att));
                continue;
            }
            Err(kind) => {
                let end = shared.net.now().as_ns();
                {
                    let mut obs = shared.obs.borrow_mut();
                    obs.inc(from.0, Met::NetFailures);
                    obs.record_attempts(from.0, attempt);
                }
                let mut spans = shared.spans.borrow_mut();
                spans.end_span(att, end, SpanOutcome::NetFailure);
                spans.set_attr(exch, "attempts", attempt);
                spans.end_span(exch, end, SpanOutcome::NetFailure);
                shared.last_exchange_span.set(spans.span_id_of(exch));
                break Err(VmError::Unreachable(NetFailure::new(kind, attempt)));
            }
        }
    };
    shared.wire_bufs.borrow_mut().put_back(from, to, bytes);
    result
}

/// One transmission attempt of an exchange: request over the wire, serve
/// (with duplicate suppression), reply back over the wire.
fn attempt_exchange(
    shared: &Shared,
    from: NodeId,
    to: NodeId,
    codec: &dyn Protocol,
    msg_id: u64,
    bytes: &[u8],
    attempt: u32,
) -> Result<(Reply, u64), NetFailureKind> {
    shared
        .net
        .transmit(from, to, bytes.len())
        .map_err(|e| net_failure_kind(&e))?;
    // Zero-copy fast path: only the header is parsed here. Whether this
    // attempt is a dedup hit (answered from the reply cache) is decided on
    // the borrowed header alone; the owned request tree is built inside
    // `serve_frame` only when the request is actually invoked.
    let header = codec
        .decode_request_header(bytes)
        .expect("own encoding must decode");
    debug_assert_eq!(header.msg_id, msg_id);
    if attempt > 1 {
        bump(shared, to.0, Met::Retransmits);
    }
    let (reply, reply_ctx, obj_version) = serve_frame(shared, to, from, &header);
    let mut reply_bytes = shared.wire_bufs.borrow_mut().checkout(to, from);
    let encoded = {
        let mut tables = shared.sig_tables.borrow_mut();
        let table = tables.entry((to.0, from.0)).or_default();
        codec.encode_reply_into(
            msg_id,
            reply_ctx,
            obj_version,
            &reply,
            Some(table),
            &mut reply_bytes,
        )
    };
    if let Err(e) = encoded {
        // The reply itself cannot be framed (e.g. a >4 GiB string): answer
        // a fault instead. The fallback is a short stateless frame, which
        // cannot itself fail to encode.
        let fault = Reply::Fault(format!("reply encode failed: {e}"));
        reply_bytes.clear();
        codec
            .encode_reply_into(
                msg_id,
                reply_ctx,
                obj_version,
                &fault,
                None,
                &mut reply_bytes,
            )
            .expect("fault reply must encode");
    }
    if let Err(e) = shared.net.transmit(to, from, reply_bytes.len()) {
        shared
            .wire_bufs
            .borrow_mut()
            .put_back(to, from, reply_bytes);
        return Err(net_failure_kind(&e));
    }
    shared.net.advance(2 * codec.overhead_ns());
    let decoded = {
        let mut tables = shared.sig_tables.borrow_mut();
        let table = tables.entry((to.0, from.0)).or_default();
        codec.decode_reply_with(&reply_bytes, Some(table))
    };
    let (_, _, obj_version, reply) = decoded.expect("own encoding must decode");
    shared
        .wire_bufs
        .borrow_mut()
        .put_back(to, from, reply_bytes);
    Ok((reply, obj_version))
}

/// Serve a delivered request with at-most-once semantics: if this
/// `(caller, message id)` was already answered, return the cached reply
/// without re-executing — a retransmission must never apply a mutating
/// method twice.
///
/// Records a `serve.*` span whose parent comes from the wire context, which
/// is what stitches the hops of a multi-node chain into one trace. Returns
/// the reply, the serve span's context, and the addressed export's current
/// property version (0 for request kinds that address no export) — both of
/// which ride back in the reply header.
#[cfg_attr(not(test), allow(dead_code))] // production traffic arrives as frames (`serve_frame`)
fn serve_request(
    shared: &Shared,
    node: NodeId,
    caller: NodeId,
    msg_id: u64,
    ctx: TraceContext,
    req: Request,
) -> (Reply, TraceContext, u64) {
    let kind = RequestKind::of(&req);
    serve_core(shared, node, caller, msg_id, ctx, kind, move |_| Ok(req))
}

/// The `serve.*` span name of one request discriminant. Decodable from a
/// borrowed frame header, so even a dedup-hit replay (which never builds
/// the owned request) records a correctly named span.
fn serve_span_name(kind: RequestKind) -> &'static str {
    match kind {
        RequestKind::Call => "serve.call",
        RequestKind::Create => "serve.create",
        RequestKind::Discover => "serve.discover",
        RequestKind::Fetch => "serve.fetch",
        RequestKind::Install => "serve.install",
        RequestKind::Forward => "serve.forward",
        RequestKind::ReplicaSync => "serve.replica",
        RequestKind::Promote => "serve.promote",
        RequestKind::Batch => "serve.batch",
    }
}

/// Serve a delivered frame: the dedup decision is made on the borrowed
/// header, and the owned request tree is only materialised (resolving
/// signature references against the link's table) when the request is
/// actually going to be invoked.
fn serve_frame(
    shared: &Shared,
    node: NodeId,
    caller: NodeId,
    header: &FrameHeader<'_>,
) -> (Reply, TraceContext, u64) {
    serve_core(
        shared,
        node,
        caller,
        header.msg_id,
        header.ctx,
        header.kind,
        |shared| {
            let mut tables = shared.sig_tables.borrow_mut();
            let table = tables.entry((caller.0, node.0)).or_default();
            header
                .materialise(Some(table))
                .map_err(|e| format!("malformed request frame: {e}"))
        },
    )
}

fn serve_core(
    shared: &Shared,
    node: NodeId,
    caller: NodeId,
    msg_id: u64,
    ctx: TraceContext,
    kind: RequestKind,
    materialise: impl FnOnce(&Shared) -> Result<Request, String>,
) -> (Reply, TraceContext, u64) {
    let serve_name = serve_span_name(kind);
    let (span, reply_ctx) = {
        let mut spans = shared.spans.borrow_mut();
        let h = spans.start_server_span(serve_name, node.0, shared.net.now().as_ns(), ctx);
        spans.set_attr(h, "caller", caller.0);
        let reply_ctx = spans.context_of(h);
        (h, reply_ctx)
    };
    let key = (caller.0, msg_id);
    let cached = shared.nodes.borrow()[node.0 as usize]
        .reply_cache
        .get(&key)
        .cloned();
    if let Some((reply, obj_version)) = cached {
        // A dedup hit replays the *stored* version, not the current one:
        // the object may have moved on since the original serve, and a
        // reply tagged with the newer version would let the client cache
        // the old value as if it were fresh — serving a stale read until
        // the next mutation. Note the request payload was never
        // materialised on this path — the decision used the header alone.
        bump(shared, node.0, Met::DedupHits);
        {
            let mut spans = shared.spans.borrow_mut();
            spans.set_attr(span, "cached", true);
            spans.end_span(span, shared.net.now().as_ns(), reply_outcome(&reply));
        }
        if monitors_on(shared) {
            shared.obs.borrow_mut().emit(&MonitorEvent::Execution {
                node: node.0,
                caller: caller.0,
                msg_id,
                replay: true,
                span_id: reply_ctx.span_id,
                trace_id: reply_ctx.trace_id,
            });
        }
        return (reply, reply_ctx, obj_version);
    }
    let req = match materialise(shared) {
        Ok(req) => req,
        Err(m) => {
            // The frame identified itself well enough to route but its
            // payload is malformed: answer a fault (not cached — a
            // retransmission carries the same bytes and faults the same
            // way, so caching would only occupy a dedup slot).
            bump(shared, node.0, Met::Faults);
            let reply = Reply::Fault(m);
            shared.spans.borrow_mut().end_span(
                span,
                shared.net.now().as_ns(),
                reply_outcome(&reply),
            );
            return (reply, reply_ctx, 0);
        }
    };
    if let Request::Batch(ops) = &req {
        shared.spans.borrow_mut().set_attr(span, "n_ops", ops.len());
    }
    // The export whose property version the reply piggybacks. Read *after*
    // handling, so a setter's own reply already carries the bumped version.
    let versioned_oid = match &req {
        Request::Call { object, .. } | Request::Fetch { object } => Some(*object),
        _ => None,
    };
    let version_now =
        |shared: &Shared| versioned_oid.map_or(0, |oid| version_of(shared, node.0, oid));
    let reply = handle_request(shared, node, caller, req);
    let obj_version = version_now(shared);
    if monitors_on(shared) {
        shared.obs.borrow_mut().emit(&MonitorEvent::Execution {
            node: node.0,
            caller: caller.0,
            msg_id,
            replay: false,
            span_id: reply_ctx.span_id,
            trace_id: reply_ctx.trace_id,
        });
    }
    {
        let mut nodes = shared.nodes.borrow_mut();
        let state = &mut nodes[node.0 as usize];
        if state
            .reply_cache
            .insert(key, (reply.clone(), obj_version))
            .is_none()
        {
            state.reply_cache_order.push_back(key);
            while state.reply_cache_order.len() > REPLY_CACHE_CAP {
                if let Some(old) = state.reply_cache_order.pop_front() {
                    state.reply_cache.remove(&old);
                }
            }
        }
    }
    shared
        .spans
        .borrow_mut()
        .end_span(span, shared.net.now().as_ns(), reply_outcome(&reply));
    (reply, reply_ctx, obj_version)
}

/// Span outcome of a served reply. A batch is `Ok` only if every batched
/// operation succeeded.
fn reply_outcome(reply: &Reply) -> SpanOutcome {
    match reply {
        Reply::Value(_) => SpanOutcome::Ok,
        Reply::Exception { .. } | Reply::Fault(_) => SpanOutcome::Fault,
        Reply::Batch(results) => {
            if results.iter().any(|(_, r)| !matches!(r, Reply::Value(_))) {
                SpanOutcome::Fault
            } else {
                SpanOutcome::Ok
            }
        }
    }
}

// ----------------------------------------------------------------------
// Server side
// ----------------------------------------------------------------------

/// Execute a request on `node` (the server side of the RPC).
pub(crate) fn handle_request(shared: &Shared, node: NodeId, caller: NodeId, req: Request) -> Reply {
    let reply = dispatch_request(shared, node, caller, req);
    if matches!(reply, Reply::Fault(_)) {
        bump(shared, node.0, Met::Faults);
    }
    reply
}

fn dispatch_request(shared: &Shared, node: NodeId, caller: NodeId, req: Request) -> Reply {
    let vm = &shared.vms[node.0 as usize];
    match req {
        Request::Call {
            object,
            method,
            args,
        } => {
            bump(shared, node.0, Met::RpcCalls);
            let Some(h) = lookup_export(shared, node, object) else {
                return Reply::Fault(format!("unknown object {object} on {node}"));
            };
            // Affinity is only meaningful where the object actually lives.
            // A forwarding proxy left behind by a migration serves nothing
            // itself; counting its forwarded traffic would hand the
            // adaptation loops a moved-away location to act on.
            let locally_implemented = vm
                .class_of(h)
                .and_then(|c| shared.gen_info.get(&c))
                .is_some_and(|info| info.proto.is_none());
            if locally_implemented {
                let mut nodes = shared.nodes.borrow_mut();
                *nodes[node.0 as usize]
                    .call_counts
                    .entry(object)
                    .or_default()
                    .entry(caller.0)
                    .or_default() += 1;
            }
            let Some(sig) = parse_method(&method) else {
                return Reply::Fault(format!("malformed method {method}"));
            };
            // Anything other than a property getter may mutate the object
            // (setters, init$k, arbitrary methods), so it bumps the property
            // version and invalidates every proxy-side cached read. Objects
            // whose class cannot be resolved bump conservatively.
            let is_getter = vm
                .class_of(h)
                .and_then(|c| shared.gen_info.get(&c))
                .and_then(|info| shared.plan.family(info.base).map(|f| (f, info.side)))
                .is_some_and(|(f, side)| match side {
                    Side::Obj => f.getters.contains(&sig),
                    Side::Cls => f.static_getters.contains(&sig),
                });
            if !is_getter {
                bump_version(shared, node.0, object);
            }
            let mut values = Vec::with_capacity(args.len());
            for a in &args {
                match marshal::wire_to_value(shared, node, a) {
                    Ok(v) => values.push(v),
                    Err(m) => return Reply::Fault(m),
                }
            }
            let reply = {
                // Non-getter app code runs under an app frame: any nested
                // exchange it makes probes this node's replicated state
                // first, and the frame's exit mark covers trailing bare
                // mutations (the method may touch local objects besides
                // the receiver, which `bump_version` above already marked).
                let _frame = (!is_getter).then(|| AppFrame::enter(shared, node.0));
                match vm.call_virtual(Value::Ref(h), sig, values) {
                    Ok(v) => match marshal::value_to_wire(shared, node, &v) {
                        Ok(wv) => Reply::Value(wv),
                        Err(m) => Reply::Fault(m),
                    },
                    Err(VmError::Exception(exc)) => exception_reply(shared, node, exc),
                    Err(other) => Reply::Fault(other.to_string()),
                }
            };
            // Anything that may have mutated the object re-ships it to its
            // backups before the reply leaves, so a replica promoted after
            // a later crash holds every mutation this owner acknowledged.
            if !is_getter {
                sync_replicas(shared, node, object);
            }
            reply
        }
        Request::Create { class, .. } => {
            bump(shared, node.0, Met::RpcCreates);
            let Some(base) = shared.universe.by_name(&class) else {
                return Reply::Fault(format!("unknown class {class}"));
            };
            let Some(family) = shared.plan.family(base).cloned() else {
                return Reply::Fault(format!("{class} is not substitutable"));
            };
            if family.has_statics {
                if let Err(e) = discover_value(shared, node, base) {
                    return Reply::Fault(e.to_string());
                }
            }
            let h = default_instance(shared, node, family.obj_local);
            let oid = export(shared, node, h);
            // Replicate the freshly created object at once: an owner that
            // crashes before serving any call must not take it along.
            sync_replicas(shared, node, oid);
            Reply::Value(WireValue::Remote {
                node: node.0,
                object: oid,
                class: shared.universe.class(family.obj_local).name.clone(),
            })
        }
        Request::Discover { class } => {
            bump(shared, node.0, Met::RpcDiscovers);
            let Some(base) = shared.universe.by_name(&class) else {
                return Reply::Fault(format!("unknown class {class}"));
            };
            match discover_value(shared, node, base) {
                Ok(Value::Ref(h)) => {
                    let rt_class = vm.class_of(h).expect("live singleton");
                    // The stale-promotion guard may have resolved to a
                    // *proxy* for a copy promoted onto another node. Reply
                    // with the copy's real location instead of exporting
                    // the proxy, which would add a pointless double hop
                    // (and re-anchor the singleton to this node).
                    let is_proxy = shared
                        .gen_info
                        .get(&rt_class)
                        .is_some_and(|i| i.proto.is_some());
                    if is_proxy {
                        if let Some((tn, toid)) = read_proxy_state(vm, h) {
                            let class = lookup_export(shared, NodeId(tn), toid)
                                .and_then(|th| shared.vms[tn as usize].class_of(th))
                                .map(|c| shared.universe.class(c).name.clone());
                            if let Some(class) = class {
                                return Reply::Value(WireValue::Remote {
                                    node: tn,
                                    object: toid,
                                    class,
                                });
                            }
                        }
                        return Reply::Fault(format!("promoted singleton of {class} vanished"));
                    }
                    let oid = export(shared, node, h);
                    // Record the canonical export the first time the
                    // singleton becomes remotely visible; singleton
                    // resolution follows the promotion chain from here.
                    shared
                        .statics_exports
                        .borrow_mut()
                        .entry(class.clone())
                        .or_insert((node.0, oid));
                    sync_replicas(shared, node, oid);
                    Reply::Value(WireValue::Remote {
                        node: node.0,
                        object: oid,
                        class: shared.universe.class(rt_class).name.clone(),
                    })
                }
                Ok(other) => Reply::Fault(format!("discover returned {other}")),
                Err(VmError::Exception(exc)) => exception_reply(shared, node, exc),
                Err(e) => Reply::Fault(e.to_string()),
            }
        }
        Request::Fetch { object } => {
            bump(shared, node.0, Met::RpcFetches);
            let Some(h) = lookup_export(shared, node, object) else {
                return Reply::Fault(format!("unknown object {object} on {node}"));
            };
            let Some((class, fields)) = vm.read_object(h) else {
                return Reply::Fault("stale export".into());
            };
            let mut wire_fields = Vec::with_capacity(fields.len());
            for f in &fields {
                match marshal::value_to_wire(shared, node, f) {
                    Ok(wv) => wire_fields.push(wv),
                    Err(m) => return Reply::Fault(m),
                }
            }
            Reply::Value(WireValue::ObjectState {
                class: shared.universe.class(class).name.clone(),
                fields: wire_fields,
            })
        }
        Request::Install { state, source } => {
            bump(shared, node.0, Met::RpcInstalls);
            let WireValue::ObjectState { class, fields } = state else {
                return Reply::Fault("install needs object state".into());
            };
            let Some(class_id) = shared.universe.by_name(&class) else {
                return Reply::Fault(format!("unknown class {class}"));
            };
            let mut values = Vec::with_capacity(fields.len());
            for f in &fields {
                match marshal::wire_to_value(shared, node, f) {
                    Ok(v) => values.push(v),
                    Err(m) => return Reply::Fault(m),
                }
            }
            // If this node already holds a proxy for the migrating object,
            // rewrite it in place — existing local references then see the
            // object as local, with no double hop through the old owner.
            let existing = source.and_then(|(n, o)| cached_import(shared, node, n, o));
            let h = match existing {
                Some(ph) if vm.class_of(ph).is_some() => {
                    vm.replace_object(ph, class_id, values);
                    ph
                }
                _ => vm.alloc_raw(class_id, values),
            };
            let oid = export(shared, node, h);
            // Freshly installed state supersedes anything cached about a
            // previous export under this id.
            bump_version(shared, node.0, oid);
            sync_replicas(shared, node, oid);
            Reply::Value(WireValue::Remote {
                node: node.0,
                object: oid,
                class,
            })
        }
        Request::Forward {
            object,
            to_node,
            to_object,
        } => {
            bump(shared, node.0, Met::RpcForwards);
            let Some(h) = lookup_export(shared, node, object) else {
                return Reply::Fault(format!("unknown object {object} on {node}"));
            };
            let Some(class) = vm.class_of(h) else {
                return Reply::Fault("stale export".into());
            };
            let Some(info) = shared.gen_info.get(&class).cloned() else {
                return Reply::Fault("cannot forward untransformed object".into());
            };
            let base_name = shared.universe.class(info.base).name.clone();
            let proto = shared.policy.protocol(&base_name);
            let Some(proxy_class) = proxy_class_for(shared, info.base, info.side, &proto) else {
                return Reply::Fault(format!("no {proto} proxy for {base_name}"));
            };
            vm.replace_object(
                h,
                proxy_class,
                vec![Value::Int(to_node as i32), Value::Long(to_object as i64)],
            );
            cache_import(shared, node, to_node, to_object, h);
            // The export now forwards; reads through this location must
            // never be served from a cache again, and the location moves
            // to the forwards side-table so the sweep stops probing it.
            tombstone_version(shared, node.0, object);
            demote_export_to_forward(shared, node.0, object);
            Reply::Value(WireValue::Null)
        }
        Request::ReplicaSync {
            object,
            version,
            state,
        } => {
            bump(shared, node.0, Met::ReplicaSyncs);
            let WireValue::ObjectState { class, fields } = state else {
                return Reply::Fault("replica sync needs object state".into());
            };
            // The state stays in wire form until promotion: a backup that
            // never promotes allocates nothing on its heap.
            shared.nodes.borrow_mut()[node.0 as usize]
                .replica_store
                .insert((caller.0, object), (version, class, fields));
            Reply::Value(WireValue::Null)
        }
        Request::Promote {
            node: old_node,
            object: old_object,
        } => {
            let key = (old_node, old_object);
            // Idempotency: if this object was already promoted, report the
            // recorded home instead of materialising a second copy from a
            // (possibly stale) backup. Consulting the shared homes table
            // stands in for the promotion registry a real system would
            // replicate alongside the data.
            let recorded = shared.homes.borrow().get(&key).copied();
            if let Some((hn, hoid)) = recorded {
                let home_vm = &shared.vms[hn as usize];
                let class = lookup_export(shared, NodeId(hn), hoid)
                    .and_then(|h| home_vm.class_of(h))
                    .map(|c| shared.universe.class(c).name.clone());
                return match class {
                    Some(class) => Reply::Value(WireValue::Remote {
                        node: hn,
                        object: hoid,
                        class,
                    }),
                    None => {
                        Reply::Fault(format!("promoted copy of {old_node}#{old_object} vanished"))
                    }
                };
            }
            let entry = shared.nodes.borrow_mut()[node.0 as usize]
                .replica_store
                .remove(&key);
            let Some((_, class, fields)) = entry else {
                return Reply::Fault(format!("no replica of {old_node}#{old_object} on {node}"));
            };
            let Some(class_id) = shared.universe.by_name(&class) else {
                return Reply::Fault(format!("unknown class {class}"));
            };
            let mut values = Vec::with_capacity(fields.len());
            for f in &fields {
                match marshal::wire_to_value(shared, node, f) {
                    Ok(v) => values.push(v),
                    Err(m) => return Reply::Fault(m),
                }
            }
            // Like Install: a proxy this node already holds for the dead
            // primary is rewritten in place, so existing local references
            // see the promoted copy as local.
            let existing = cached_import(shared, node, old_node, old_object);
            let h = match existing {
                Some(ph) if vm.class_of(ph).is_some() => {
                    vm.replace_object(ph, class_id, values);
                    ph
                }
                _ => vm.alloc_raw(class_id, values),
            };
            let oid = export(shared, node, h);
            // The promoted copy supersedes anything cached about either
            // location: bump the new home, tombstone the dead one, and drop
            // affinity data describing traffic the object received there.
            bump_version(shared, node.0, oid);
            tombstone_version(shared, old_node, old_object);
            record_home(shared, key, (node.0, oid));
            purge_call_counts(shared, &[key, (node.0, oid)]);
            bump(shared, node.0, Met::Promotions);
            // Re-establish the replication factor from the new home, so a
            // second crash before the next mutation still loses nothing.
            sync_replicas(shared, node, oid);
            Reply::Value(WireValue::Remote {
                node: node.0,
                object: oid,
                class,
            })
        }
        Request::Batch(ops) => {
            // Apply in order under the enclosing message id: the batch was
            // encoded once and is retransmitted verbatim, so at-most-once
            // holds for the whole frame, and each operation's sub-reply is
            // paired with the addressed export's version right after it ran
            // (a later op in the same batch may move it again).
            let mut results = Vec::with_capacity(ops.len());
            for op in ops {
                let versioned_oid = match &op {
                    Request::Call { object, .. } | Request::Fetch { object } => Some(*object),
                    _ => None,
                };
                let reply = handle_request(shared, node, caller, op);
                let version = versioned_oid.map_or(0, |oid| version_of(shared, node.0, oid));
                results.push((version, reply));
            }
            Reply::Batch(results)
        }
    }
}

fn exception_reply(shared: &Shared, node: NodeId, exc: Handle) -> Reply {
    let vm = &shared.vms[node.0 as usize];
    let Some((class, fields)) = vm.read_object(exc) else {
        return Reply::Fault("stale exception".into());
    };
    let mut wire_fields = Vec::with_capacity(fields.len());
    for f in &fields {
        match marshal::value_to_wire(shared, node, f) {
            Ok(wv) => wire_fields.push(wv),
            Err(m) => return Reply::Fault(m),
        }
    }
    Reply::Exception {
        class: shared.universe.class(class).name.clone(),
        fields: wire_fields,
    }
}

// ----------------------------------------------------------------------
// Observability plane
// ----------------------------------------------------------------------

/// Bump one runtime counter, charged to `node`. The single write path for
/// every [`RuntimeStats`] counter.
pub(crate) fn bump(shared: &Shared, node: u32, met: Met) {
    shared.obs.borrow_mut().inc(node, met);
}

/// Whether the invariant monitors are enabled (events are only assembled
/// when someone is listening).
fn monitors_on(shared: &Shared) -> bool {
    shared.obs.borrow().monitors.is_some()
}

/// This node's share of the wire-layer counters: signature interning
/// refs/defs and encode-buffer reuses on links it is the sender of (the
/// sender owns the encode state, so the work is charged to it).
fn per_node_wire(shared: &Shared, node: u32) -> (u64, u64, u64) {
    let tables = shared.sig_tables.borrow();
    let (mut refs, mut defs) = (0, 0);
    for ((from, _), table) in tables.iter() {
        if *from == node {
            refs += table.refs();
            defs += table.defs();
        }
    }
    let reuses = shared.wire_bufs.borrow().reuses_from(NodeId(node));
    (refs, defs, reuses)
}

/// One node's [`RuntimeStats`] view: the registry snapshot plus its share
/// of the wire-layer counters.
pub(crate) fn node_stats_of(shared: &Shared, node: u32) -> RuntimeStats {
    let mut stats = shared.obs.borrow().snapshot(node as usize);
    let (refs, defs, reuses) = per_node_wire(shared, node);
    stats.sig_refs = refs;
    stats.sig_defs = defs;
    stats.wire_buf_reuses = reuses;
    stats
}

/// The cluster-wide view: every node's breakdown folded with
/// [`RuntimeStats::merge`].
pub(crate) fn merged_stats(shared: &Shared) -> RuntimeStats {
    let mut total = RuntimeStats::default();
    for node in 0..shared.vms.len() as u32 {
        total.merge(&node_stats_of(shared, node));
    }
    total
}

/// The names of the wire-layer counters appended to both exports, in the
/// order of the [`per_node_wire`] tuple.
const WIRE_METRIC_NAMES: [&str; 3] = [
    "rafda_sig_refs_total",
    "rafda_sig_defs_total",
    "rafda_wire_buf_reuses_total",
];

/// Prometheus text exposition of the registry plus the per-node wire
/// counters.
pub(crate) fn prometheus_text_of(shared: &Shared) -> String {
    use std::fmt::Write as _;
    let mut out = shared.obs.borrow().reg.prometheus_text();
    let wire: Vec<[u64; 3]> = (0..shared.vms.len() as u32)
        .map(|n| {
            let (refs, defs, reuses) = per_node_wire(shared, n);
            [refs, defs, reuses]
        })
        .collect();
    for (k, name) in WIRE_METRIC_NAMES.iter().enumerate() {
        let _ = writeln!(out, "# TYPE {name} counter");
        for (node, row) in wire.iter().enumerate() {
            let _ = writeln!(out, "{name}{{node=\"{node}\"}} {}", row[k]);
        }
    }
    out
}

/// JSON-lines export: registry metrics, per-node wire counters and the
/// time-series rings, one object per line.
pub(crate) fn metrics_json_of(shared: &Shared) -> String {
    use std::fmt::Write as _;
    let obs = shared.obs.borrow();
    let mut out = obs.reg.json_lines();
    let wire: Vec<[u64; 3]> = (0..shared.vms.len() as u32)
        .map(|n| {
            let (refs, defs, reuses) = per_node_wire(shared, n);
            [refs, defs, reuses]
        })
        .collect();
    for (k, name) in WIRE_METRIC_NAMES.iter().enumerate() {
        for (node, row) in wire.iter().enumerate() {
            let _ = writeln!(
                out,
                "{{\"name\":\"{name}\",\"type\":\"counter\",\"labels\":{{\"node\":\"{node}\"}},\"value\":{}}}",
                row[k]
            );
        }
    }
    out.push_str(&obs.recorder.json_lines());
    out
}

/// Sample the time-series rings if the simulated clock has crossed a
/// sampling grid point. Called at the head of every top-level exchange,
/// *before* the outcall queues flush, so queue-depth readings see the
/// pending work. Pure read of runtime state — never advances the clock or
/// mutates anything the application can observe.
pub(crate) fn maybe_sample(shared: &Shared) {
    let now = shared.net.now().as_ns();
    let Some(stamp) = shared.obs.borrow().recorder.due(now) else {
        return;
    };
    let (depth, inflight) = {
        let queues = shared.outqueues.borrow();
        let ops: usize = queues.values().map(|p| p.ops.len()).sum();
        (queues.len() as f64, ops as f64)
    };
    let lag = {
        let nodes = shared.nodes.borrow();
        let versions = shared.versions.borrow();
        let mut lag = 0u64;
        for (owner, state) in nodes.iter().enumerate() {
            for (&oid, &(synced, _)) in &state.synced_versions {
                let current = versions.get(&(owner as u32, oid)).copied().unwrap_or(0);
                if current != VERSION_TOMBSTONE && current != synced {
                    lag += 1;
                }
            }
        }
        lag as f64
    };
    // Shard balance: max / mean recorded members per node over the shard
    // map. 1.0 means perfectly even, growing with skew; 0 when no class is
    // sharded (or nothing has been placed yet).
    let balance = {
        let shards = shared.shards.borrow();
        let mut per_node = vec![0u64; shared.vms.len()];
        for members in shards.members.values() {
            for &(n, _) in members {
                per_node[n as usize] += 1;
            }
        }
        let total: u64 = per_node.iter().sum();
        if total == 0 {
            0.0
        } else {
            let mean = total as f64 / per_node.len() as f64;
            per_node.iter().max().copied().unwrap_or(0) as f64 / mean
        }
    };
    let dirty_depth = shared.dirty.borrow().len() as f64;
    let mut obs = shared.obs.borrow_mut();
    let hits = obs.sum(Met::CacheHits);
    let misses = obs.sum(Met::CacheMisses);
    let hit_rate = if hits + misses == 0 {
        0.0
    } else {
        hits as f64 / (hits + misses) as f64
    };
    obs.recorder.advance(stamp);
    let (q, i, c, r, s, d) = (
        obs.ts_queue_depth,
        obs.ts_inflight_ops,
        obs.ts_cache_hit_rate,
        obs.ts_replica_lag,
        obs.ts_shard_balance,
        obs.ts_dirty_set_depth,
    );
    obs.recorder.record(q, stamp, depth);
    obs.recorder.record(i, stamp, inflight);
    obs.recorder.record(c, stamp, hit_rate);
    obs.recorder.record(r, stamp, lag);
    obs.recorder.record(s, stamp, balance);
    obs.recorder.record(d, stamp, dirty_depth);
}

/// Compare every backup's stored replica against its primary's live state
/// at a quiescent point, yielding one [`MonitorEvent::ReplicaProbe`] per
/// comparable pair. Read-only: the probe never marshals (marshalling a
/// reference would create exports) — reference-typed fields are skipped
/// and only primitive state is deep-compared.
fn collect_replica_probes(shared: &Shared) -> Vec<MonitorEvent> {
    let mut probes = Vec::new();
    let nodes = shared.nodes.borrow();
    for (backup, state) in nodes.iter().enumerate() {
        let mut keys: Vec<(u32, u64)> = state.replica_store.keys().copied().collect();
        keys.sort_unstable();
        for key in keys {
            let (backup_version, class_name, fields) = &state.replica_store[&key];
            let (owner, oid) = key;
            let owner_version = version_of(shared, owner, oid);
            if owner_version == VERSION_TOMBSTONE {
                // The object migrated away; the replica describes a dead
                // location and will be superseded by the new home's syncs.
                continue;
            }
            let Some(h) = nodes[owner as usize].exports.get(&oid).copied() else {
                // Owner restarted with amnesia; nothing to compare until
                // the next sync re-seeds the backup.
                continue;
            };
            let vm = &shared.vms[owner as usize];
            let Some((class, values)) = vm.read_object(h) else {
                continue;
            };
            match shared.gen_info.get(&class) {
                Some(info) if info.proto.is_none() => {}
                // The export forwards (or is untransformed): the primary's
                // authoritative copy lives elsewhere now.
                _ => continue,
            }
            let state_matches = if *backup_version == owner_version {
                *class_name == shared.universe.class(class).name
                    && wire_state_matches(&values, fields)
            } else {
                // Different versions are never comparable — the version
                // relation itself is judged by the monitor.
                true
            };
            probes.push(MonitorEvent::ReplicaProbe {
                owner,
                oid,
                backup: backup as u32,
                owner_version,
                backup_version: *backup_version,
                state_matches,
            });
        }
    }
    probes
}

/// The policy table as served by `rafda.Introspection`: one line per
/// substitutable class, sorted by name, with every policy decision the
/// runtime consults for it.
pub(crate) fn policy_table(shared: &Shared) -> String {
    use std::fmt::Write as _;
    let mut names: Vec<&str> = shared
        .plan
        .families
        .keys()
        .map(|&b| shared.universe.class(b).name.as_str())
        .collect();
    names.sort_unstable();
    let mut out = String::new();
    for name in names {
        let p = &shared.policy;
        let shard = p
            .shard_spec(name)
            .map(|s| format!("{} mod {}", s.key_getter, s.modulo))
            .unwrap_or_else(|| "-".into());
        let _ = writeln!(
            out,
            "{name}: protocol={} statics=node{} cacheable={} replicas={} batched={} shard={} replica_reads={}",
            p.protocol(name),
            p.statics_node(name).0,
            p.cacheable(name),
            p.replicas(name),
            p.batched(name),
            shard,
            p.reads_from_replicas(name)
        );
    }
    out
}

/// The placement map as served by `rafda.Introspection`: each node's
/// exports (sorted by id) with the implementation class currently behind
/// them — forwarding proxies included, so a migration's trail is visible.
pub(crate) fn placement_table(shared: &Shared) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let nodes = shared.nodes.borrow();
    for (i, state) in nodes.iter().enumerate() {
        // Live exports plus demoted forwarding stubs: demotion is a sweep
        // optimisation, not a visibility change, so the table keeps
        // showing a migration's trail at the old home.
        let mut oids: Vec<u64> = state
            .exports
            .keys()
            .chain(state.forwards.keys())
            .copied()
            .collect();
        oids.sort_unstable();
        let entries: Vec<String> = oids
            .iter()
            .map(|oid| {
                let h = state.exports.get(oid).or_else(|| state.forwards.get(oid));
                let class = h
                    .and_then(|&h| shared.vms[i].class_of(h))
                    .map(|c| shared.universe.class(c).name.clone())
                    .unwrap_or_else(|| "?".to_owned());
                format!("{oid}:{class}")
            })
            .collect();
        let _ = writeln!(out, "node{i}: [{}]", entries.join(", "));
    }
    out
}

/// The failover-homes map as served by `rafda.Introspection`: recorded
/// promotions `(old home) -> (new home)`, sorted by old location.
pub(crate) fn homes_table(shared: &Shared) -> String {
    use std::fmt::Write as _;
    let homes = shared.homes.borrow();
    let mut entries: Vec<((u32, u64), (u32, u64))> = homes.iter().map(|(&k, &v)| (k, v)).collect();
    entries.sort_unstable();
    let mut out = String::new();
    for ((on, oo), (nn, no)) in entries {
        let _ = writeln!(out, "node{on}#{oo} -> node{nn}#{no}");
    }
    out
}

/// Field-wise comparison of live values against marshalled replica state.
/// Primitives compare exactly (floats bit-wise); reference-typed fields
/// are not comparable without marshalling side effects and pass.
fn wire_state_matches(values: &[Value], wire: &[WireValue]) -> bool {
    values.len() == wire.len()
        && values.iter().zip(wire).all(|(v, w)| match (v, w) {
            (Value::Bool(a), WireValue::Bool(b)) => a == b,
            (Value::Int(a), WireValue::Int(b)) => a == b,
            (Value::Long(a), WireValue::Long(b)) => a == b,
            (Value::Float(a), WireValue::Float(b)) => a.to_bits() == b.to_bits(),
            (Value::Double(a), WireValue::Double(b)) => a.to_bits() == b.to_bits(),
            (Value::Str(a), WireValue::Str(b)) => a.as_ref() == b.as_str(),
            (Value::Null, WireValue::Null) => true,
            _ => true,
        })
}

/// Methods travel as `name@sigid`; both sides share the interned signature
/// table (the same transformed program is deployed on every node).
fn parse_method(method: &str) -> Option<SigId> {
    let (_, id) = method.rsplit_once('@')?;
    id.parse::<u32>().ok().map(SigId)
}

/// Mark that a class is any generated implementation or proxy.
pub(crate) fn gen_info(shared: &Shared, class: ClassId) -> Option<&GenInfo> {
    shared.gen_info.get(&class)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rafda_classmodel::builder::{ClassBuilder, MethodBuilder};
    use rafda_classmodel::{ClassKind, Field};
    use rafda_policy::{Placement, StaticPolicy};
    use rafda_transform::Transformer;

    /// A cluster of two nodes running `class C { int v; int add(int d) }`
    /// with all instances placed (remotely) on node 1.
    fn deployed(policy: StaticPolicy) -> (Cluster, ClassId) {
        let mut u = ClassUniverse::new();
        let c = u.declare("C", ClassKind::Class);
        {
            let mut cb = ClassBuilder::new(&u, c);
            let v = cb.field(Field::new("v", Ty::Int));
            let mut mb = MethodBuilder::new(1);
            mb.ret();
            cb.ctor(&mut u, vec![], Some(mb.finish()));
            let mut mb = MethodBuilder::new(2);
            mb.load_this();
            mb.load_this().get_field(c, v);
            mb.load_local(1).add();
            mb.put_field(c, v);
            mb.load_this().get_field(c, v).ret_value();
            cb.method(&mut u, "add", vec![Ty::Int], Ty::Int, Some(mb.finish()));
            cb.finish(&mut u);
        }
        let outcome = Transformer::new().protocols(&["RMI"]).run(&mut u).unwrap();
        let cluster = Cluster::new(u, outcome.plan, 2, 7, Box::new(policy));
        (cluster, c)
    }

    /// Regression for the stale-version dedup bug: a dedup hit must replay
    /// the object version stored **at serve time**, not recompute it at
    /// retransmit time. The single-threaded simulation cannot interleave a
    /// foreign mutation between a dropped reply and its retransmission from
    /// the outside, so the scenario drives `serve_request` directly —
    /// exactly what a lossy network would deliver to the server.
    #[test]
    fn dedup_hit_replays_the_serve_time_version() {
        let policy = StaticPolicy::new()
            .place("C", Placement::Node(NodeId(1)))
            .cache("C", true);
        let (cluster, base) = deployed(policy);
        let obj = cluster.new_instance(NodeId(0), "C", 0, vec![]).unwrap();
        let shared = cluster.shared();
        let h = obj.as_ref_handle().unwrap();
        let (owner, oid) = read_proxy_state(&shared.vms[0], h).unwrap();
        assert_eq!(owner, 1, "policy must place the object remotely");
        let get_sig = shared.plan.family(base).unwrap().getters[0];
        let add_sig = shared
            .universe
            .class(base)
            .methods
            .iter()
            .find(|m| m.name == "add")
            .unwrap()
            .sig;
        let read = Request::Call {
            object: oid,
            method: format!("get_v@{}", get_sig.0),
            args: vec![],
        };
        // Message 900: a cacheable read is served, but the reply is lost on
        // the way back.
        let (r1, _, v1) = serve_request(
            shared,
            NodeId(1),
            NodeId(0),
            900,
            TraceContext::NONE,
            read.clone(),
        );
        assert!(matches!(r1, Reply::Value(_)));
        // Before the retransmission arrives, another mutation is served and
        // bumps the object's version.
        let (r2, _, _) = serve_request(
            shared,
            NodeId(1),
            NodeId(0),
            901,
            TraceContext::NONE,
            Request::Call {
                object: oid,
                method: format!("add@{}", add_sig.0),
                args: vec![WireValue::Int(5)],
            },
        );
        assert!(matches!(r2, Reply::Value(_)));
        let current = version_of(shared, 1, oid);
        assert!(current > v1, "the mutation must bump the version");
        // The retransmission of 900 dedups. Its reply must carry v1: tagged
        // with `current`, the client would cache the pre-mutation value as
        // fresh and serve the stale read until the next mutation.
        let (r3, _, v3) =
            serve_request(shared, NodeId(1), NodeId(0), 900, TraceContext::NONE, read);
        assert_eq!(r3, r1, "dedup must replay the original reply");
        assert_eq!(cluster.stats().dedup_hits, 1);
        assert_eq!(
            v3, v1,
            "dedup hit must replay the serve-time version, not the current one"
        );
        assert_ne!(v3, current);
    }

    /// Batched invocation basics, below the integration level: void calls
    /// on a `batch on` class defer, queued replica shipments of the same
    /// export coalesce, and a value-returning call flushes everything in
    /// one exchange per queue.
    #[test]
    fn deferred_ops_flush_at_a_value_returning_call() {
        let policy = StaticPolicy::new()
            .place("C", Placement::Node(NodeId(1)))
            .batch("C", true);
        let (cluster, base) = deployed(policy);
        let _ = base;
        let obj = cluster.new_instance(NodeId(0), "C", 0, vec![]).unwrap();
        // The generated setter returns void: deferred, not sent.
        let r = cluster
            .call_method(NodeId(0), obj.clone(), "set_v", vec![Value::Int(4)])
            .unwrap();
        assert_eq!(r, Value::Null);
        assert_eq!(cluster.shared().outqueues.borrow().len(), 1);
        let before = cluster.stats();
        assert_eq!(before.batched_ops, 1);
        assert_eq!(before.flushes, 0);
        // A value-returning call is a synchronization point: the deferred
        // setter lands first (in order), then the read runs.
        let v = cluster
            .call_method(NodeId(0), obj, "get_v", vec![])
            .unwrap();
        assert_eq!(v, Value::Int(4), "the flushed write must be visible");
        let after = cluster.stats();
        assert_eq!(after.flushes, 1);
        assert!(cluster.shared().outqueues.borrow().is_empty());
    }

    /// The zero-copy wire path at the runtime level: a repeated call sends
    /// fewer bytes than its first occurrence (the method signature shrank
    /// to an interned reference), encode buffers are recycled per link, and
    /// the merged stats expose all three wire counters.
    #[test]
    fn repeat_calls_intern_signatures_and_reuse_buffers() {
        let policy = StaticPolicy::new().place("C", Placement::Node(NodeId(1)));
        let (cluster, _) = deployed(policy);
        let obj = cluster.new_instance(NodeId(0), "C", 0, vec![]).unwrap();
        let net = cluster.network();
        let t0 = net.stats().bytes;
        cluster
            .call_method(NodeId(0), obj.clone(), "add", vec![Value::Int(1)])
            .unwrap();
        let first = net.stats().bytes - t0;
        let t1 = net.stats().bytes;
        cluster
            .call_method(NodeId(0), obj, "add", vec![Value::Int(1)])
            .unwrap();
        let second = net.stats().bytes - t1;
        assert!(
            second < first,
            "an interned repeat call must be smaller on the wire: {second} >= {first}"
        );
        let stats = cluster.stats();
        assert!(stats.sig_defs > 0, "first frames define signatures");
        assert!(stats.sig_refs > 0, "repeat frames reference them");
        assert!(
            stats.wire_buf_reuses > 0,
            "second exchange on a link must reuse its encode buffers"
        );
    }

    /// Regression for a lost-update hazard the replica-divergence monitor
    /// exposed: when a caller promotes a backup *onto itself*, [`failover`]
    /// materialises the object in the caller's own VM, and every later call
    /// on it is a plain local invocation — no serve, no version bump, no
    /// [`sync_replicas`]. Before the dirty-replica sweep, the backups froze
    /// at the promotion-time state forever, so a second crash would have
    /// resurrected stale state. The sweep at the next exchange must bump
    /// the version and re-ship the drifted state.
    #[test]
    fn local_mutations_after_self_promotion_reach_the_backups() {
        let mut u = ClassUniverse::new();
        for name in ["CA", "CB"] {
            let c = u.declare(name, ClassKind::Class);
            let mut cb = ClassBuilder::new(&u, c);
            let v = cb.field(Field::new("v", Ty::Int));
            let mut mb = MethodBuilder::new(1);
            mb.ret();
            cb.ctor(&mut u, vec![], Some(mb.finish()));
            let mut mb = MethodBuilder::new(2);
            mb.load_this();
            mb.load_this().get_field(c, v);
            mb.load_local(1).add();
            mb.put_field(c, v);
            mb.load_this().get_field(c, v).ret_value();
            cb.method(&mut u, "add", vec![Ty::Int], Ty::Int, Some(mb.finish()));
            cb.finish(&mut u);
        }
        let outcome = Transformer::new().protocols(&["RMI"]).run(&mut u).unwrap();
        let policy = StaticPolicy::new()
            .place("CA", Placement::Node(NodeId(1)))
            .place("CB", Placement::Node(NodeId(2)))
            .replicate("CA", 1)
            .replicate("CB", 1);
        let cluster = Cluster::new(u, outcome.plan, 3, 260, Box::new(policy));
        cluster.enable_monitors();
        let a = cluster.new_instance(NodeId(0), "CA", 0, vec![]).unwrap();
        let b = cluster.new_instance(NodeId(0), "CB", 0, vec![]).unwrap();
        // Crash CA's home: the next call from node 0 promotes node 0's own
        // backup, so `a` becomes a local object of the caller.
        cluster.crash(NodeId(1));
        cluster.restart(NodeId(1));
        for (obj, d, want) in [(&a, -4, -4), (&b, -9, -9), (&a, -3, -7)] {
            assert_eq!(
                cluster
                    .call_method(NodeId(0), (*obj).clone(), "add", vec![Value::Int(d)])
                    .unwrap(),
                Value::Int(want)
            );
        }
        // add(-3) ran locally on the promoted copy; the `b` exchange after
        // it (and the quiescent point itself) must have re-shipped it.
        assert_eq!(cluster.check_invariants(), vec![]);
        let shared = cluster.shared();
        let nodes = shared.nodes.borrow();
        let backup = nodes
            .iter()
            .flat_map(|st| st.replica_store.get(&(0, 1)))
            .next()
            .expect("the promoted object keeps a backup");
        assert_eq!(backup.2, vec![WireValue::Int(-7)], "backup holds -4-3");
    }

    /// The at-most-once canary. A retransmission served from the reply
    /// cache is a legitimate replay; losing the cache entry and
    /// re-executing the frame is the violation the monitor exists for.
    /// Like the dedup test above, the scenario drives `serve_request`
    /// directly — the single-threaded simulation cannot evict a reply
    /// cache entry mid-exchange from the outside.
    #[test]
    fn at_most_once_monitor_flags_re_execution_after_cache_loss() {
        let policy = StaticPolicy::new().place("C", Placement::Node(NodeId(1)));
        let (cluster, base) = deployed(policy);
        cluster.enable_monitors();
        let obj = cluster.new_instance(NodeId(0), "C", 0, vec![]).unwrap();
        let shared = cluster.shared();
        let h = obj.as_ref_handle().unwrap();
        let (_, oid) = read_proxy_state(&shared.vms[0], h).unwrap();
        let add_sig = shared
            .universe
            .class(base)
            .methods
            .iter()
            .find(|m| m.name == "add")
            .unwrap()
            .sig;
        let call = Request::Call {
            object: oid,
            method: format!("add@{}", add_sig.0),
            args: vec![WireValue::Int(5)],
        };
        // Serve once, then retransmit: the dedup cache replays — healthy.
        let (r1, _, _) = serve_request(
            shared,
            NodeId(1),
            NodeId(0),
            900,
            TraceContext::NONE,
            call.clone(),
        );
        assert!(matches!(r1, Reply::Value(_)));
        let (r2, _, _) = serve_request(
            shared,
            NodeId(1),
            NodeId(0),
            900,
            TraceContext::NONE,
            call.clone(),
        );
        assert_eq!(r2, r1);
        assert_eq!(cluster.monitor_violations(), vec![]);

        // Inject the bug: the server forgets its replies, so the next
        // retransmission of 900 re-executes `add` — the object double-
        // applies the mutation, which is exactly what at-most-once forbids.
        {
            let mut nodes = shared.nodes.borrow_mut();
            nodes[1].reply_cache.clear();
            nodes[1].reply_cache_order.clear();
        }
        let (r3, _, _) = serve_request(shared, NodeId(1), NodeId(0), 900, TraceContext::NONE, call);
        assert!(matches!(r3, Reply::Value(_)));
        assert_ne!(r3, r1, "re-execution double-applies the mutation");
        let violations = cluster.monitor_violations();
        assert_eq!(violations.len(), 1, "{violations:?}");
        assert_eq!(violations[0].monitor, "at-most-once");
        assert!(violations[0].message.contains("msg 900"));
        assert_ne!(violations[0].span_id, 0);
    }

    /// A cluster running `class K { int k; int v; K(int k); int bump(int
    /// d) }` under `shard K by get_k modulo ...` with no explicit
    /// placement (instances are created locally, then routed).
    fn deployed_sharded(nodes: u32, modulo: u32, seed: u64, k: u32) -> Cluster {
        let mut u = ClassUniverse::new();
        let c = u.declare("K", ClassKind::Class);
        {
            let mut cb = ClassBuilder::new(&u, c);
            let kf = cb.field(Field::new("k", Ty::Int));
            let vf = cb.field(Field::new("v", Ty::Int));
            let mut mb = MethodBuilder::new(2);
            mb.load_this().load_local(1).put_field(c, kf).ret();
            cb.ctor(&mut u, vec![Ty::Int], Some(mb.finish()));
            let mut mb = MethodBuilder::new(2);
            mb.load_this();
            mb.load_this().get_field(c, vf);
            mb.load_local(1).add();
            mb.put_field(c, vf);
            mb.load_this().get_field(c, vf).ret_value();
            cb.method(&mut u, "bump", vec![Ty::Int], Ty::Int, Some(mb.finish()));
            cb.finish(&mut u);
        }
        let outcome = Transformer::new().protocols(&["RMI"]).run(&mut u).unwrap();
        let policy = StaticPolicy::new()
            .shard("K", "get_k", modulo)
            .replicate("K", k);
        Cluster::new(u, outcome.plan, nodes, seed, Box::new(policy))
    }

    /// The smallest non-negative int key whose shard (mod `modulo`) is
    /// `want` — lets tests pick keys by target shard without baking hash
    /// values in.
    fn key_for_shard(want: u32, modulo: u32) -> i32 {
        (0..)
            .find(|&k| (shard_hash(&Value::Int(k)) % u64::from(modulo)) as u32 == want)
            .expect("some key hits every shard")
    }

    /// Creation-time shard placement: every instance of a `shard by` class
    /// lands on the node its key hashes to — regardless of where it was
    /// created — and instances sharing a shard are collocated.
    #[test]
    fn sharded_creates_land_on_their_keys_shard_node() {
        let cluster = deployed_sharded(2, 4, 31, 0);
        let mut homes: Vec<(u32, NodeId)> = Vec::new();
        for key in 0..8 {
            let creator = NodeId((key as u32) % 2);
            let obj = cluster
                .new_instance(creator, "K", 0, vec![Value::Int(key)])
                .unwrap();
            cluster.pin(creator, &obj);
            let shard = (shard_hash(&Value::Int(key)) % 4) as u32;
            let want = NodeId(shard % 2);
            assert_eq!(cluster.location_of(creator, &obj), Some(want), "key {key}");
            // The creator's reference works wherever the instance went.
            assert_eq!(
                cluster
                    .call_method(creator, obj.clone(), "bump", vec![Value::Int(1)])
                    .unwrap(),
                Value::Int(1)
            );
            homes.push((shard, want));
        }
        for (s1, n1) in &homes {
            for (s2, n2) in &homes {
                if s1 == s2 {
                    assert_eq!(n1, n2, "same shard must mean same node");
                }
            }
        }
        assert_eq!(cluster.stats().shard_placements, 8);
    }

    /// The rebalancing tick: hot-key skew read from the affinity
    /// `call_counts` moves the hottest shard that fits half the gap off
    /// the overloaded node, ships its members' state through the
    /// migration path, and purges the counters that drove the move.
    #[test]
    fn rebalance_moves_a_warm_shard_off_the_hot_node() {
        let cluster = deployed_sharded(2, 4, 32, 0);
        let shared = cluster.shared();
        // Shards 0 and 2 both seed onto node 0 (owner = shard % nodes).
        let hot_key = key_for_shard(0, 4);
        let warm_key = key_for_shard(2, 4);
        let hot = cluster
            .new_instance(NodeId(1), "K", 0, vec![Value::Int(hot_key)])
            .unwrap();
        let warm = cluster
            .new_instance(NodeId(1), "K", 0, vec![Value::Int(warm_key)])
            .unwrap();
        cluster.pin(NodeId(1), &hot);
        cluster.pin(NodeId(1), &warm);
        assert_eq!(cluster.location_of(NodeId(1), &hot), Some(NodeId(0)));
        assert_eq!(cluster.location_of(NodeId(1), &warm), Some(NodeId(0)));
        let warm_old_oid = read_proxy_state(&shared.vms[1], warm.as_ref_handle().unwrap())
            .expect("warm lives remotely")
            .1;
        for _ in 0..20 {
            cluster
                .call_method(NodeId(1), hot.clone(), "bump", vec![Value::Int(1)])
                .unwrap();
        }
        for _ in 0..4 {
            cluster
                .call_method(NodeId(1), warm.clone(), "bump", vec![Value::Int(1)])
                .unwrap();
        }

        let events = cluster.rebalance_shards(&AffinityConfig::default());
        // 24 calls landed on node 0, none on node 1: the warm shard (4
        // calls) fits in half the gap and moves; the hot one (20) would
        // overshoot and stays put.
        assert_eq!(events.len(), 1, "{events:?}");
        assert_eq!((events[0].from, events[0].to), (NodeId(0), NodeId(1)));
        assert_eq!(events[0].class, "K");
        let stats = cluster.stats();
        assert_eq!(stats.shard_rebalances, 1, "{stats}");
        // State moved with the shard and both references still resolve.
        assert_eq!(
            cluster
                .call_method(NodeId(1), warm.clone(), "bump", vec![Value::Int(0)])
                .unwrap(),
            Value::Int(4)
        );
        assert_eq!(
            cluster
                .call_method(NodeId(1), hot.clone(), "bump", vec![Value::Int(0)])
                .unwrap(),
            Value::Int(20)
        );
        // The affinity counters for the moved-away export are purged with
        // the move — a stale entry would keep feeding dead locations into
        // the next tick.
        assert!(
            !shared.nodes.borrow()[0]
                .call_counts
                .contains_key(&warm_old_oid),
            "stale counter for the moved object"
        );
        // With the skew resolved, the next tick converges to a no-op.
        assert!(cluster
            .rebalance_shards(&AffinityConfig::default())
            .is_empty());
    }

    /// `reads from replicas`: a getter issued by a caller that holds a
    /// backup of the object is served from that backup only while the
    /// backup's version matches the owner's — fresh hits skip the
    /// exchange entirely, a lagging backup falls through to the owner,
    /// and the stale-read monitor stays silent throughout.
    #[test]
    fn replica_reads_serve_getters_from_the_local_backup() {
        let policy = StaticPolicy::new()
            .place("C", Placement::Node(NodeId(1)))
            .replicate("C", 1)
            .replica_reads("C", true);
        let (cluster, _) = deployed(policy);
        cluster.enable_monitors();
        let obj = cluster.new_instance(NodeId(0), "C", 0, vec![]).unwrap();
        let shared = cluster.shared();
        let (owner, oid) = read_proxy_state(&shared.vms[0], obj.as_ref_handle().unwrap()).unwrap();
        assert_eq!(owner, 1, "policy must place the object remotely");
        // A mutation is served at the owner and ships the backup to node 0.
        assert_eq!(
            cluster
                .call_method(NodeId(0), obj.clone(), "add", vec![Value::Int(5)])
                .unwrap(),
            Value::Int(5)
        );
        assert!(cluster.stats().replica_syncs >= 1);

        let before = cluster.stats().rpc_calls;
        assert_eq!(
            cluster
                .call_method(NodeId(0), obj.clone(), "get_v", vec![])
                .unwrap(),
            Value::Int(5)
        );
        let stats = cluster.stats();
        assert_eq!(stats.rpc_calls, before, "a fresh backup serves locally");
        assert_eq!(stats.replica_reads, 1, "{stats}");

        // Age the stored version: the same getter must now fall through
        // to the owner instead of serving what just became a stale copy.
        shared.nodes.borrow_mut()[0]
            .replica_store
            .get_mut(&(owner, oid))
            .expect("backup entry")
            .0 -= 1;
        assert_eq!(
            cluster
                .call_method(NodeId(0), obj.clone(), "get_v", vec![])
                .unwrap(),
            Value::Int(5)
        );
        let stats = cluster.stats();
        assert_eq!(stats.rpc_calls, before + 1, "lagging backup: {stats}");
        assert_eq!(stats.replica_reads, 1, "{stats}");

        // Writes keep flowing through the owner; the re-shipped backup
        // serves the next read with the new value.
        assert_eq!(
            cluster
                .call_method(NodeId(0), obj.clone(), "add", vec![Value::Int(2)])
                .unwrap(),
            Value::Int(7)
        );
        assert_eq!(
            cluster
                .call_method(NodeId(0), obj, "get_v", vec![])
                .unwrap(),
            Value::Int(7)
        );
        assert_eq!(cluster.monitor_violations(), vec![]);
    }

    // --- adaptation/crash chaos (proptest) ---

    use proptest::prelude::*;
    use rafda_corpus::ops::{OpMix, SoakOp};

    const CHAOS_POOL: usize = 6;

    /// The shared adaptation-chaos mix (see [`rafda_corpus::ops`]): calls,
    /// both adaptation loops and crash/restart over nodes 0–2.
    fn arb_chaos_op() -> BoxedStrategy<SoakOp> {
        OpMix::adaptation(CHAOS_POOL, 4, 3).strategy()
    }

    /// The invariant [`purge_call_counts`] maintains, as a proptest
    /// failure: delegates to the same structural sweep
    /// [`Cluster::check_invariants`] runs at quiescent points.
    fn assert_no_stale_affinity(cluster: &Cluster) -> Result<(), TestCaseError> {
        if let Some(first) = cluster.stale_affinity_violations().first() {
            return Err(TestCaseError::fail(first.to_string()));
        }
        Ok(())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(12))]

        /// Random interleavings of calls, both adaptation loops and
        /// crash/restart over a sharded, replicated pool: no call is ever
        /// lost (the oracle stays exact), no affinity counter survives its
        /// object's move or its node's death, and the four standing
        /// monitors stay silent throughout.
        #[test]
        fn adaptation_chaos_leaves_no_stale_affinity(
            ops in prop::collection::vec(arb_chaos_op(), 1..40),
            seed in 0u64..200,
        ) {
            // The coordinator drives every call and never crashes; replica
            // targets prefer low node ids, so it never holds a backup and
            // every failover crosses the wire.
            const COORD: NodeId = NodeId(3);
            let cluster = deployed_sharded(4, 4, 500 + seed, 1);
            cluster.enable_monitors();
            let objs: Vec<Value> = (0..CHAOS_POOL)
                .map(|i| {
                    let obj = cluster
                        .new_instance(COORD, "K", 0, vec![Value::Int(i as i32)])
                        .unwrap();
                    cluster.pin(COORD, &obj);
                    obj
                })
                .collect();
            // Restarted nodes rejoin the sync set at the next served
            // mutation; touching every instance after a restart re-ships
            // each backup before any further crash can lose the last copy
            // (same discipline as the crash-stop chaos soak).
            let touch_all = || {
                for obj in &objs {
                    cluster
                        .call_method(COORD, obj.clone(), "bump", vec![Value::Int(0)])
                        .unwrap();
                }
            };
            let config = AffinityConfig {
                min_calls: 4,
                min_fraction: 0.5,
            };
            let mut oracle = rafda_corpus::ops::Oracle::new(CHAOS_POOL);
            let mut down: Option<NodeId> = None;
            for op in &ops {
                match *op {
                    SoakOp::Call { idx, delta } => {
                        let expected = oracle.step(op).unwrap();
                        let r = cluster
                            .call_method(
                                COORD,
                                objs[idx].clone(),
                                "bump",
                                vec![Value::Int(i32::from(delta))],
                            )
                            .unwrap();
                        prop_assert_eq!(r, Value::Int(expected), "{:?}", op);
                    }
                    SoakOp::Rebalance => {
                        cluster.rebalance_shards(&config);
                    }
                    SoakOp::Adapt => {
                        cluster.adapt(&config);
                    }
                    SoakOp::Crash { node } => {
                        if let Some(d) = down.take() {
                            cluster.restart(d);
                            touch_all();
                        }
                        cluster.crash(NodeId(u32::from(node)));
                        down = Some(NodeId(u32::from(node)));
                    }
                    SoakOp::Heal => {
                        if let Some(d) = down.take() {
                            cluster.restart(d);
                            touch_all();
                        }
                    }
                    ref other => panic!("mix never generates {other}"),
                }
                assert_no_stale_affinity(&cluster)?;
            }
            if let Some(d) = down.take() {
                cluster.restart(d);
            }
            // Final sweep: every instance answers with the oracle value,
            // the affinity map is clean, and the monitors saw nothing.
            for (idx, obj) in objs.iter().enumerate() {
                let r = cluster
                    .call_method(COORD, obj.clone(), "bump", vec![Value::Int(0)])
                    .unwrap();
                prop_assert_eq!(
                    r,
                    Value::Int(oracle.values()[idx]),
                    "final instance {}",
                    idx
                );
            }
            assert_no_stale_affinity(&cluster)?;
            prop_assert_eq!(cluster.check_invariants(), vec![]);
        }
    }
}
