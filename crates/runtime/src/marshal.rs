//! Marshalling between VM values and wire values.
//!
//! The rules mirror Java RMI semantics as the paper assumes them:
//!
//! * primitives and strings travel **by value**;
//! * arrays travel **by value** (element-wise, recursively);
//! * instances of transformed classes (`*_Local`) travel **by reference**:
//!   the sender exports the object and ships a [`WireValue::Remote`]
//!   descriptor; the receiver materialises a proxy of the matching family —
//!   unless the descriptor points back at the receiver itself, in which
//!   case it unwraps to the local object (colocation short-circuit);
//! * proxies travel **by delegation**: a proxy argument ships the
//!   descriptor of its *target*, never a proxy-to-a-proxy;
//! * instances of untransformed (non-transformable) classes travel **by
//!   value** as [`WireValue::ObjectState`] — they have no proxy classes, so
//!   they cannot be remote (Section 2.4), exactly like non-`Remote`
//!   serialisable objects in RMI.

use crate::cluster::{
    cache_import, cached_import, export, gen_info, lookup_export, proxy_class_for,
    read_proxy_state, Shared, Side,
};
use rafda_classmodel::Ty;
use rafda_net::NodeId;
use rafda_vm::{HeapEntry, Value, Vm};
use rafda_wire::WireValue;

/// Maximum by-value object-graph depth (cycle guard).
const MAX_DEPTH: u32 = 32;

/// Convert a VM value on `node` into its wire form.
///
/// # Errors
/// A human-readable message on stale handles or over-deep by-value graphs.
pub(crate) fn value_to_wire(shared: &Shared, node: NodeId, v: &Value) -> Result<WireValue, String> {
    value_to_wire_rec(shared, node, v, 0)
}

fn value_to_wire_rec(
    shared: &Shared,
    node: NodeId,
    v: &Value,
    depth: u32,
) -> Result<WireValue, String> {
    if depth > MAX_DEPTH {
        return Err("by-value object graph too deep (cycle?)".to_owned());
    }
    let vm: &Vm = &shared.vms[node.0 as usize];
    Ok(match v {
        Value::Null => WireValue::Null,
        Value::Bool(b) => WireValue::Bool(*b),
        Value::Int(i) => WireValue::Int(*i),
        Value::Long(i) => WireValue::Long(*i),
        Value::Float(x) => WireValue::Float(*x),
        Value::Double(x) => WireValue::Double(*x),
        Value::Str(s) => WireValue::Str(s.to_string()),
        Value::Ref(h) => {
            // Array?
            let array_items: Option<Vec<Value>> = vm.with_heap(|heap| match heap.get(*h) {
                Some(HeapEntry::Array { data, .. }) => Some(data.clone()),
                _ => None,
            });
            if let Some(items) = array_items {
                let mut out = Vec::with_capacity(items.len());
                for item in &items {
                    out.push(value_to_wire_rec(shared, node, item, depth + 1)?);
                }
                return Ok(WireValue::Array(out));
            }
            let class = vm.class_of(*h).ok_or("stale handle in marshalling")?;
            match gen_info(shared, class) {
                Some(info) if info.proto.is_some() => {
                    // Proxy: ship its target descriptor (no proxy chains).
                    let (target, oid) =
                        read_proxy_state(vm, *h).ok_or("stale proxy in marshalling")?;
                    let logical = logical_class_name(shared, info.base, info.side);
                    WireValue::Remote {
                        node: target,
                        object: oid,
                        class: logical,
                    }
                }
                Some(info) => {
                    // Local implementation: export by reference.
                    let oid = export(shared, node, *h);
                    let logical = logical_class_name(shared, info.base, info.side);
                    WireValue::Remote {
                        node: node.0,
                        object: oid,
                        class: logical,
                    }
                }
                None => {
                    // Untransformed class: by value.
                    let (_, fields) = vm.read_object(*h).ok_or("stale handle")?;
                    let mut out = Vec::with_capacity(fields.len());
                    for f in &fields {
                        out.push(value_to_wire_rec(shared, node, f, depth + 1)?);
                    }
                    WireValue::ObjectState {
                        class: shared.universe.class(class).name.clone(),
                        fields: out,
                    }
                }
            }
        }
    })
}

fn logical_class_name(shared: &Shared, base: rafda_classmodel::ClassId, side: Side) -> String {
    let family = shared.plan.family(base).expect("family exists");
    let id = match side {
        Side::Obj => family.obj_local,
        Side::Cls => family.cls_local.expect("cls side implies statics"),
    };
    shared.universe.class(id).name.clone()
}

/// Convert a wire value arriving at `node` into a VM value, materialising
/// proxies (or unwrapping self-references) as needed.
///
/// # Errors
/// A human-readable message for unknown classes, missing exports or
/// unavailable proxy protocols.
pub(crate) fn wire_to_value(
    shared: &Shared,
    node: NodeId,
    wv: &WireValue,
) -> Result<Value, String> {
    let vm: &Vm = &shared.vms[node.0 as usize];
    Ok(match wv {
        WireValue::Null => Value::Null,
        WireValue::Bool(b) => Value::Bool(*b),
        WireValue::Int(i) => Value::Int(*i),
        WireValue::Long(i) => Value::Long(*i),
        WireValue::Float(x) => Value::Float(*x),
        WireValue::Double(x) => Value::Double(*x),
        WireValue::Str(s) => Value::str(s),
        WireValue::Remote {
            node: owner,
            object,
            class,
        } => {
            if *owner == node.0 {
                // Colocation short-circuit: unwrap to the local object.
                let h = lookup_export(shared, node, *object)
                    .ok_or_else(|| format!("no local export {object}"))?;
                return Ok(Value::Ref(h));
            }
            if let Some(h) = cached_import(shared, node, *owner, *object) {
                return Ok(Value::Ref(h));
            }
            // Materialise a proxy of the right family and protocol.
            let impl_class = shared
                .universe
                .by_name(class)
                .ok_or_else(|| format!("unknown remote class {class}"))?;
            let info = gen_info(shared, impl_class)
                .ok_or_else(|| format!("{class} is not a transformed implementation"))?
                .clone();
            let base_name = shared.universe.class(info.base).name.clone();
            let proto = shared.policy.protocol(&base_name);
            let proxy_class = proxy_class_for(shared, info.base, info.side, &proto)
                .ok_or_else(|| format!("no {proto} proxy generated for {base_name}"))?;
            let h = vm.alloc_raw(
                proxy_class,
                vec![Value::Int(*owner as i32), Value::Long(*object as i64)],
            );
            cache_import(shared, node, *owner, *object, h);
            Value::Ref(h)
        }
        WireValue::Array(items) => {
            let mut data = Vec::with_capacity(items.len());
            for item in items {
                data.push(wire_to_value(shared, node, item)?);
            }
            // The element type is only used for default values of
            // newly-allocated arrays, so a best-effort tag suffices.
            let elem = match items.first() {
                Some(WireValue::Int(_)) => Ty::Int,
                Some(WireValue::Long(_)) => Ty::Long,
                Some(WireValue::Bool(_)) => Ty::Bool,
                Some(WireValue::Float(_)) => Ty::Float,
                Some(WireValue::Double(_)) => Ty::Double,
                _ => Ty::Str,
            };
            let h = vm.with_heap(|heap| heap.alloc_array(elem, data));
            Value::Ref(h)
        }
        WireValue::ObjectState { class, fields } => {
            let class_id = shared
                .universe
                .by_name(class)
                .ok_or_else(|| format!("unknown class {class}"))?;
            let mut values = Vec::with_capacity(fields.len());
            for f in fields {
                values.push(wire_to_value(shared, node, f)?);
            }
            Value::Ref(vm.alloc_raw(class_id, values))
        }
    })
}
