//! The cluster's observability plane: one labeled metrics registry as the
//! single write path for every runtime counter, a deterministic
//! time-series recorder sampled on the **simulated** clock, and the
//! optional live invariant monitors.
//!
//! [`RuntimeStats`](crate::cluster::RuntimeStats) is no longer a bag of
//! counters that the runtime mutates directly — it is a *view* assembled
//! from this registry ([`Obs::snapshot`] per node,
//! [`Cluster::stats`](crate::Cluster::stats) as the documented merge).
//! Every increment goes through a typed [`Counter`]/[`Histogram`] handle
//! labeled with the node it is charged to, which is what makes the
//! per-node breakdown, the Prometheus/JSON exporters and the
//! `rafda.Introspection` getters all read the same numbers.

use crate::cluster::RuntimeStats;
use rafda_telemetry::{
    Counter, Histogram, MetricsRegistry, Monitor, MonitorEvent, SeriesId, TimeSeriesRecorder,
};

/// How often the time-series recorder samples, in simulated ns. One
/// sample per 100 µs keeps a multi-millisecond chaos run under the ring
/// cap while still resolving individual retry storms (per-hop latencies
/// are tens of µs).
pub(crate) const SAMPLE_INTERVAL_NS: u64 = 100_000;

/// Ring capacity per series; older points are dropped (and counted) so a
/// long soak cannot grow memory without bound.
pub(crate) const SERIES_CAP: usize = 4096;

/// Upper bounds of the exchange-attempts histogram: attempts 1..=7 get a
/// bucket each, the registry's overflow bucket catches 8-or-more —
/// mirroring the 8-slot `RuntimeStats::attempts` array it reconstructs.
const ATTEMPT_BOUNDS: [u64; 7] = [1, 2, 3, 4, 5, 6, 7];

macro_rules! runtime_metrics {
    ($($variant:ident => $field:ident, $pname:literal;)*) => {
        /// A runtime event counter, one variant per [`RuntimeStats`]
        /// counter field. The variant's discriminant indexes the per-node
        /// handle table in [`Obs`].
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        pub(crate) enum Met {
            $(
                #[doc = concat!("`", $pname, "`")]
                $variant,
            )*
        }

        impl Met {
            /// Every counter, in declaration (and registration) order.
            pub(crate) const ALL: &'static [Met] = &[$(Met::$variant),*];

            /// The Prometheus metric name.
            pub(crate) fn name(self) -> &'static str {
                match self {
                    $(Met::$variant => $pname,)*
                }
            }
        }

        fn fill_stats(stats: &mut RuntimeStats, met: Met, value: u64) {
            match met {
                $(Met::$variant => stats.$field = value,)*
            }
        }
    };
}

runtime_metrics! {
    RpcCalls => rpc_calls, "rafda_rpc_calls_total";
    RpcCreates => rpc_creates, "rafda_rpc_creates_total";
    RpcDiscovers => rpc_discovers, "rafda_rpc_discovers_total";
    RpcFetches => rpc_fetches, "rafda_rpc_fetches_total";
    RpcInstalls => rpc_installs, "rafda_rpc_installs_total";
    RpcForwards => rpc_forwards, "rafda_rpc_forwards_total";
    Migrations => migrations, "rafda_migrations_total";
    Pulls => pulls, "rafda_pulls_total";
    Faults => faults, "rafda_faults_total";
    Retries => retries, "rafda_retries_total";
    Retransmits => retransmits, "rafda_retransmits_total";
    DedupHits => dedup_hits, "rafda_dedup_hits_total";
    NetFailures => net_failures, "rafda_net_failures_total";
    CacheHits => cache_hits, "rafda_cache_hits_total";
    CacheMisses => cache_misses, "rafda_cache_misses_total";
    CacheInvalidations => cache_invalidations, "rafda_cache_invalidations_total";
    ReplicaSyncs => replica_syncs, "rafda_replica_syncs_total";
    Promotions => promotions, "rafda_promotions_total";
    Failovers => failovers, "rafda_failovers_total";
    BatchedOps => batched_ops, "rafda_batched_ops_total";
    Flushes => flushes, "rafda_flushes_total";
    ShardPlacements => shard_placements, "rafda_shard_placements_total";
    ShardRebalances => shard_rebalances, "rafda_shard_rebalances_total";
    ReplicaReads => replica_reads, "rafda_replica_reads_total";
    ReplicaSweepProbes => replica_sweep_probes, "rafda_replica_sweep_probes_total";
    DirtyMarks => dirty_marks, "rafda_dirty_marks_total";
}

/// The observability state hanging off [`Shared`](crate::cluster::Shared):
/// registry + handles, recorder + series ids, and (when enabled) the
/// monitor set.
pub(crate) struct Obs {
    /// The single write path for all runtime counters.
    pub(crate) reg: MetricsRegistry,
    /// `counters[node][met as usize]` — handle for counter `met` on `node`.
    counters: Vec<Vec<Counter>>,
    /// Per-node exchange-attempts histogram handle.
    attempts: Vec<Histogram>,
    /// Fixed-interval ring buffers sampled on the simulated clock.
    pub(crate) recorder: TimeSeriesRecorder,
    /// Series: number of non-empty outcall queues.
    pub(crate) ts_queue_depth: SeriesId,
    /// Series: total deferred operations across all outcall queues.
    pub(crate) ts_inflight_ops: SeriesId,
    /// Series: cumulative property-cache hit rate, `hits / (hits+misses)`.
    pub(crate) ts_cache_hit_rate: SeriesId,
    /// Series: replicated exports whose backups lag the owner's version.
    pub(crate) ts_replica_lag: SeriesId,
    /// Series: shard balance, `max / mean` instances per node over the
    /// shard map (1.0 = perfectly even, grows with skew; 0 when unsharded).
    pub(crate) ts_shard_balance: SeriesId,
    /// Series: entries in the cluster-wide dirty-replica set — locations
    /// the next sweep will probe. Stays near zero on healthy steady-state
    /// traffic; a sustained climb means marks outpace shipments.
    pub(crate) ts_dirty_set_depth: SeriesId,
    /// Standing watchdogs; `None` until
    /// [`Cluster::enable_monitors`](crate::Cluster::enable_monitors).
    pub(crate) monitors: Option<Vec<Box<dyn Monitor>>>,
}

impl Obs {
    /// Register every counter and histogram for `nodes` nodes, in a fixed
    /// order so exports are byte-identical across same-seed runs.
    pub(crate) fn new(nodes: u32) -> Obs {
        let mut reg = MetricsRegistry::new();
        let mut counters = Vec::with_capacity(nodes as usize);
        let mut attempts = Vec::with_capacity(nodes as usize);
        for n in 0..nodes {
            let node = n.to_string();
            let labels = [("node", node.as_str())];
            counters.push(
                Met::ALL
                    .iter()
                    .map(|m| reg.register_counter(m.name(), &labels))
                    .collect(),
            );
            attempts.push(reg.register_histogram(
                "rafda_exchange_attempts",
                &labels,
                ATTEMPT_BOUNDS.to_vec(),
            ));
        }
        let mut recorder = TimeSeriesRecorder::new(SAMPLE_INTERVAL_NS, SERIES_CAP);
        let ts_queue_depth = recorder.register("outqueue_depth");
        let ts_inflight_ops = recorder.register("inflight_batch_ops");
        let ts_cache_hit_rate = recorder.register("cache_hit_rate");
        let ts_replica_lag = recorder.register("replica_lag");
        let ts_shard_balance = recorder.register("shard_balance");
        let ts_dirty_set_depth = recorder.register("dirty_set_depth");
        Obs {
            reg,
            counters,
            attempts,
            recorder,
            ts_queue_depth,
            ts_inflight_ops,
            ts_cache_hit_rate,
            ts_replica_lag,
            ts_shard_balance,
            ts_dirty_set_depth,
            monitors: None,
        }
    }

    /// Bump counter `met`, charged to `node`.
    pub(crate) fn inc(&mut self, node: u32, met: Met) {
        self.reg.inc(self.counters[node as usize][met as usize]);
    }

    /// Record a finished exchange that took `n` transmission attempts,
    /// charged to the calling `node`. Values past 7 land in the overflow
    /// bucket, exactly like the saturating last slot of
    /// [`RuntimeStats::attempts`].
    pub(crate) fn record_attempts(&mut self, node: u32, n: u32) {
        self.reg.observe(self.attempts[node as usize], n as u64);
    }

    /// Sum of counter `met` across all nodes.
    pub(crate) fn sum(&self, met: Met) -> u64 {
        self.counters
            .iter()
            .map(|c| self.reg.counter_value(c[met as usize]))
            .sum()
    }

    /// Rebuild the [`RuntimeStats`] view for one node from the registry.
    /// The wire-layer counters (`sig_refs`/`sig_defs`/`wire_buf_reuses`)
    /// live outside the registry and are filled in by the caller.
    pub(crate) fn snapshot(&self, node: usize) -> RuntimeStats {
        let mut stats = RuntimeStats::default();
        for &met in Met::ALL {
            let value = self.reg.counter_value(self.counters[node][met as usize]);
            fill_stats(&mut stats, met, value);
        }
        let counts = self.reg.histogram_counts(self.attempts[node]);
        for (slot, &c) in stats.attempts.iter_mut().zip(counts) {
            *slot = c;
        }
        stats
    }

    /// Feed one live event to every enabled monitor (no-op when monitors
    /// are off).
    pub(crate) fn emit(&mut self, event: &MonitorEvent) {
        if let Some(monitors) = self.monitors.as_mut() {
            for m in monitors.iter_mut() {
                m.on_event(event);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_round_trips_every_counter() {
        let mut obs = Obs::new(2);
        for (i, &met) in Met::ALL.iter().enumerate() {
            for _ in 0..=i {
                obs.inc(1, met);
            }
        }
        obs.record_attempts(1, 1);
        obs.record_attempts(1, 3);
        obs.record_attempts(1, 99); // overflow slot, like the saturating array
        let s1 = obs.snapshot(1);
        assert_eq!(s1.rpc_calls, 1);
        assert_eq!(s1.dirty_marks, Met::ALL.len() as u64);
        assert_eq!(s1.attempts, [1, 0, 1, 0, 0, 0, 0, 1]);
        assert_eq!(obs.snapshot(0), RuntimeStats::default());
        assert_eq!(obs.sum(Met::RpcCalls), 1);
    }

    #[test]
    fn registration_order_is_node_major() {
        // The prometheus export groups by first-registration name order;
        // node-major registration keeps that order independent of traffic.
        let obs = Obs::new(2);
        let text = obs.reg.prometheus_text();
        let first = text.lines().next().unwrap();
        assert_eq!(first, "# TYPE rafda_rpc_calls_total counter");
        assert!(text.contains("rafda_rpc_calls_total{node=\"0\"} 0"));
        assert!(text.contains("rafda_rpc_calls_total{node=\"1\"} 0"));
        assert!(text.contains("# TYPE rafda_exchange_attempts histogram"));
    }
}
