//! Runtime errors.

use rafda_vm::{NetFailure, VmError};
use std::fmt;

/// Why a runtime operation failed.
#[derive(Debug, Clone, PartialEq)]
pub enum RuntimeError {
    /// The interpreter raised an error (including in-model exceptions).
    Vm(VmError),
    /// A remote operation failed at the network level after exhausting the
    /// configured retries. Carries the structured failure so callers can
    /// distinguish a lost message from a severed link from a dead node.
    Unreachable(NetFailure),
    /// Marshalling failed.
    Marshal(String),
    /// A malformed or unsatisfiable request (unknown class, missing export,
    /// protocol without a generated proxy family, …).
    Bad(String),
}

impl RuntimeError {
    /// Whether the failure is attributable to the network (the "modulo
    /// network failure" clause of the paper).
    pub fn is_network(&self) -> bool {
        match self {
            RuntimeError::Unreachable(_) => true,
            RuntimeError::Vm(e) => e.is_network(),
            _ => false,
        }
    }

    /// The structured network failure, if this is one.
    pub fn net_failure(&self) -> Option<&NetFailure> {
        match self {
            RuntimeError::Unreachable(nf) => Some(nf),
            RuntimeError::Vm(e) => e.net_failure(),
            _ => None,
        }
    }
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Vm(e) => write!(f, "{e}"),
            RuntimeError::Unreachable(nf) => write!(f, "{nf}"),
            RuntimeError::Marshal(m) => write!(f, "marshal error: {m}"),
            RuntimeError::Bad(m) => write!(f, "runtime error: {m}"),
        }
    }
}

impl std::error::Error for RuntimeError {}

impl From<VmError> for RuntimeError {
    fn from(e: VmError) -> Self {
        match e {
            VmError::Unreachable(nf) => RuntimeError::Unreachable(nf),
            other => RuntimeError::Vm(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rafda_vm::NetFailureKind;

    #[test]
    fn network_classification() {
        let nf = NetFailure::new(NetFailureKind::Partitioned { from: 0, to: 1 }, 2);
        assert!(RuntimeError::Unreachable(nf).is_network());
        assert!(RuntimeError::Vm(VmError::Native("network: drop".into())).is_network());
        assert!(!RuntimeError::Bad("nope".into()).is_network());
        assert!(!RuntimeError::Marshal("depth".into()).is_network());
    }

    #[test]
    fn from_vm_error_extracts_the_discriminant() {
        let nf = NetFailure::new(NetFailureKind::Dropped, 6);
        let e = RuntimeError::from(VmError::Unreachable(nf));
        assert_eq!(e, RuntimeError::Unreachable(nf));
        assert_eq!(e.net_failure().map(|n| n.attempts), Some(6));
        // Non-network VM errors stay wrapped.
        let e = RuntimeError::from(VmError::Native("marshal".into()));
        assert!(matches!(e, RuntimeError::Vm(_)));
    }

    #[test]
    fn display_passthrough() {
        let nf = NetFailure::new(NetFailureKind::NodeCrashed(1), 1);
        let e = RuntimeError::Unreachable(nf);
        assert!(e.to_string().contains("network"));
        assert!(e.to_string().contains("crashed"));
    }
}
