//! Runtime errors.

use rafda_vm::VmError;
use std::fmt;

/// Why a runtime operation failed.
#[derive(Debug, Clone, PartialEq)]
pub enum RuntimeError {
    /// The interpreter raised an error (including in-model exceptions and
    /// network failures surfaced through proxies).
    Vm(VmError),
    /// A network transmission failed outside any VM context.
    Net(String),
    /// Marshalling failed.
    Marshal(String),
    /// A malformed or unsatisfiable request (unknown class, missing export,
    /// protocol without a generated proxy family, …).
    Bad(String),
}

impl RuntimeError {
    /// Whether the failure is attributable to the network (the "modulo
    /// network failure" clause of the paper).
    pub fn is_network(&self) -> bool {
        match self {
            RuntimeError::Net(_) => true,
            RuntimeError::Vm(e) => e.is_network(),
            _ => false,
        }
    }
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::Vm(e) => write!(f, "{e}"),
            RuntimeError::Net(m) => write!(f, "{m}"),
            RuntimeError::Marshal(m) => write!(f, "marshal error: {m}"),
            RuntimeError::Bad(m) => write!(f, "runtime error: {m}"),
        }
    }
}

impl std::error::Error for RuntimeError {}

impl From<VmError> for RuntimeError {
    fn from(e: VmError) -> Self {
        RuntimeError::Vm(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn network_classification() {
        assert!(RuntimeError::Net("network: partition".into()).is_network());
        assert!(RuntimeError::Vm(VmError::Native("network: drop".into())).is_network());
        assert!(!RuntimeError::Bad("nope".into()).is_network());
        assert!(!RuntimeError::Marshal("depth".into()).is_network());
    }

    #[test]
    fn display_passthrough() {
        let e = RuntimeError::from(VmError::Native("network: x".into()));
        assert!(e.to_string().contains("network"));
    }
}
