//! The reflective capstone of the observability plane: a synthetic
//! `rafda.Introspection` class whose getters serve the cluster's own
//! runtime state — node stats, policy tables, placement and failover-home
//! maps, the Prometheus export — over the **normal RMI path**.
//!
//! This is the paper's reflection argument turned on the runtime itself:
//! instead of a privileged out-of-band admin channel, telemetry is just
//! another application object. [`declare_introspection`] adds the class to
//! the universe *before* the transform, so it grows the full
//! `_O_Int`/`_O_Local`/`_O_Proxy` family, auto-generated per-field
//! accessors and a factory like any user class — which means telemetry
//! traffic itself exercises (and is counted by) the wire fast path,
//! property caching and batching machinery.
//!
//! The class carries placeholder bodies through the transform (a class
//! with `native` methods would be rejected as non-transformable, Section
//! 2.4); deployment then flips `refresh`/`node_stats` on the generated
//! `_O_Local` to native hooks that snapshot live cluster state.

use crate::cluster::{self, Shared};
use rafda_classmodel::{ClassBuilder, ClassId, ClassKind, ClassUniverse, Field, MethodBuilder, Ty};
use rafda_net::NodeId;
use rafda_transform::TransformPlan;
use rafda_vm::{Value, VmError};

/// The synthetic class name registered in the class universe.
pub const INTROSPECTION_CLASS: &str = "rafda.Introspection";

/// The string-typed fields served through auto-generated accessors, in
/// declaration order. Each holds the snapshot taken by the last
/// `refresh()` call (empty until then).
pub(crate) const FIELDS: [&str; 5] = ["stats", "policy", "placement", "homes", "prometheus"];

/// Declare `rafda.Introspection` in a **pre-transform** universe.
/// Idempotent: returns the existing id when already declared.
///
/// The class has five `String` fields (`stats`, `policy`, `placement`,
/// `homes`, `prometheus`), a no-argument constructor, a `refresh()`
/// method that re-snapshots all five, and `node_stats(int)` returning one
/// node's counter breakdown. The transform turns the fields into remote
/// properties (`get_stats()` …) — cacheable and batchable under whatever
/// policy the deployment assigns to the class.
pub fn declare_introspection(u: &mut ClassUniverse) -> ClassId {
    if let Some(id) = u.by_name(INTROSPECTION_CLASS) {
        return id;
    }
    let id = u.declare(INTROSPECTION_CLASS, ClassKind::Class);
    let mut cb = ClassBuilder::new(u, id);
    for name in FIELDS {
        cb.field(Field::new(name, Ty::Str));
    }
    let mut body = MethodBuilder::new(1);
    body.ret();
    cb.ctor(u, vec![], Some(body.finish()));
    // Placeholder bodies: a native method here would make the class
    // non-transformable. Deployment swaps them for native hooks.
    let mut body = MethodBuilder::new(1);
    body.ret();
    cb.method(u, "refresh", vec![], Ty::Void, Some(body.finish()));
    let mut body = MethodBuilder::new(2);
    body.const_str("").ret_value();
    cb.method(u, "node_stats", vec![Ty::Int], Ty::Str, Some(body.finish()));
    cb.finish(u);
    id
}

/// Flip the transformed `_O_Local`'s `refresh`/`node_stats` methods to
/// `native` so execution reaches the hooks the cluster registers at
/// deployment. Must run on the universe **before** it is frozen behind an
/// `Arc`; a universe without the class (or a plan that never transformed
/// it) is left untouched.
pub(crate) fn prepare(u: &mut ClassUniverse, plan: &TransformPlan) {
    let Some(base) = u.by_name(INTROSPECTION_CLASS) else {
        return;
    };
    let Some(family) = plan.family(base) else {
        return;
    };
    let local = u.class_mut(family.obj_local);
    for m in &mut local.methods {
        if m.name == "refresh" || m.name == "node_stats" {
            m.is_native = true;
            m.body = None;
        }
    }
}

/// The native half of `refresh()`: re-snapshot all five string fields
/// from live cluster state. Runs on the node that owns the object (`node`
/// is the VM the hook was registered on), reached over the normal RMI
/// path when the caller holds a proxy — so the serve that carries it
/// bumps the object's property version and invalidates every cached
/// getter read, exactly like any other mutating call.
pub(crate) fn refresh_native(
    shared: &Shared,
    node: NodeId,
    args: &[Value],
) -> Result<Value, VmError> {
    let h = args
        .first()
        .and_then(Value::as_ref_handle)
        .ok_or_else(|| VmError::type_error("refresh needs a receiver"))?;
    let vm = &shared.vms[node.0 as usize];
    let class = vm
        .class_of(h)
        .ok_or_else(|| VmError::Native("stale introspection receiver".into()))?;
    let stats = cluster::merged_stats(shared).to_string();
    let policy = cluster::policy_table(shared);
    let placement = cluster::placement_table(shared);
    let homes = cluster::homes_table(shared);
    let prometheus = cluster::prometheus_text_of(shared);
    let values: Vec<Value> = shared
        .universe
        .field_layout(class)
        .iter()
        .map(|&(owner, idx)| {
            let field = &shared.universe.class(owner).fields[idx as usize];
            match field.name.as_str() {
                "stats" => Value::str(&stats),
                "policy" => Value::str(&policy),
                "placement" => Value::str(&placement),
                "homes" => Value::str(&homes),
                "prometheus" => Value::str(&prometheus),
                _ => Value::default_for(&field.ty),
            }
        })
        .collect();
    vm.replace_object(h, class, values);
    Ok(Value::Null)
}

/// The native half of `node_stats(int)`: one node's counter breakdown,
/// rendered with the [`RuntimeStats`](crate::RuntimeStats) display.
pub(crate) fn node_stats_native(shared: &Shared, args: &[Value]) -> Result<Value, VmError> {
    let n = args
        .get(1)
        .and_then(Value::as_int)
        .ok_or_else(|| VmError::type_error("node_stats needs an int node id"))?;
    if n < 0 || n as usize >= shared.vms.len() {
        return Err(VmError::Native(format!("no such node {n}")));
    }
    Ok(Value::str(
        cluster::node_stats_of(shared, n as u32).to_string(),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn declaration_is_idempotent_and_transformable() {
        let mut u = ClassUniverse::new();
        let a = declare_introspection(&mut u);
        let b = declare_introspection(&mut u);
        assert_eq!(a, b);
        let class = u.class(a);
        assert_eq!(class.fields.len(), FIELDS.len());
        assert!(class.methods.iter().all(|m| !m.is_native));

        let mut u2 = u.clone();
        let plan = rafda_transform::Transformer::new()
            .protocols(&["RMI"])
            .run(&mut u2)
            .expect("introspection class must be transformable")
            .plan;
        let family = plan.family(a).expect("family generated");
        assert_eq!(family.getters.len(), FIELDS.len());

        prepare(&mut u2, &plan);
        let local = u2.class(family.obj_local);
        let refresh = local.methods.iter().find(|m| m.name == "refresh").unwrap();
        assert!(refresh.is_native && refresh.body.is_none());
        // The auto-generated accessors keep their bodies.
        let getter = local
            .methods
            .iter()
            .find(|m| m.name == "get_stats")
            .unwrap();
        assert!(!getter.is_native && getter.body.is_some());
    }
}
