//! The single-address-space runtime.
//!
//! "This approach has been implemented allowing the creation of a local
//! version of the transformed application that executes within a single
//! address space — the first step in creating a fully distributed version"
//! (paper, Section 4). [`LocalRuntime`] is that local version: a one-node
//! [`Cluster`] with the everything-local policy, so `make()` and
//! `discover()` never cross the (non-existent) network.

use crate::cluster::Cluster;
use crate::error::RuntimeError;
use rafda_classmodel::ClassUniverse;
use rafda_net::NodeId;
use rafda_policy::LocalPolicy;
use rafda_transform::TransformPlan;
use rafda_vm::{Trace, Value, Vm};

/// The transformed application running in one address space.
#[derive(Debug, Clone)]
pub struct LocalRuntime {
    cluster: Cluster,
}

impl LocalRuntime {
    /// Deploy a transformed universe locally.
    pub fn new(universe: ClassUniverse, plan: TransformPlan) -> Self {
        LocalRuntime {
            cluster: Cluster::new(universe, plan, 1, 0, Box::new(LocalPolicy::default())),
        }
    }

    /// The single node's VM.
    pub fn vm(&self) -> Vm {
        self.cluster.vm(NodeId(0))
    }

    /// The underlying one-node cluster.
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// Call a static method of the original program (via `discover()` for
    /// substitutable classes).
    ///
    /// # Errors
    /// Any [`RuntimeError`].
    pub fn call_static(
        &self,
        class: &str,
        method: &str,
        args: Vec<Value>,
    ) -> Result<Value, RuntimeError> {
        self.cluster.call_static(NodeId(0), class, method, args)
    }

    /// Create an instance via the generated factory.
    ///
    /// # Errors
    /// Any [`RuntimeError`].
    pub fn new_instance(
        &self,
        class: &str,
        ctor: u16,
        args: Vec<Value>,
    ) -> Result<Value, RuntimeError> {
        self.cluster.new_instance(NodeId(0), class, ctor, args)
    }

    /// Invoke a method on a receiver.
    ///
    /// # Errors
    /// Any [`RuntimeError`].
    pub fn call_method(
        &self,
        recv: Value,
        method: &str,
        args: Vec<Value>,
    ) -> Result<Value, RuntimeError> {
        self.cluster.call_method(NodeId(0), recv, method, args)
    }

    /// Bind the `Observer` built-in to this runtime's trace.
    pub fn bind_observer(&self, ids: &rafda_vm::vm::ObserverIds) {
        self.cluster.bind_observer(ids);
    }

    /// Run an entry point and return the observation trace.
    pub fn run_observed(&self, class: &str, method: &str, args: Vec<Value>) -> Trace {
        self.cluster.run_observed(NodeId(0), class, method, args)
    }

    /// Pin a host-held reference as a GC root.
    pub fn pin(&self, value: &Value) {
        self.cluster.pin(NodeId(0), value);
    }

    /// Remove a pin added by [`LocalRuntime::pin`].
    pub fn unpin(&self, value: &Value) {
        self.cluster.unpin(NodeId(0), value);
    }

    /// Garbage-collect the address space; returns entries freed.
    pub fn gc(&self) -> usize {
        self.cluster.gc()[0]
    }

    /// Snapshot the object graph reachable from `root` (see
    /// [`Cluster::snapshot`]).
    ///
    /// # Errors
    /// [`RuntimeError::Bad`] for stale handles.
    pub fn snapshot(&self, root: rafda_vm::Handle) -> Result<crate::Snapshot, RuntimeError> {
        self.cluster.snapshot(NodeId(0), root)
    }

    /// Restore a snapshot, returning the new root.
    ///
    /// # Errors
    /// See [`Cluster::restore`].
    pub fn restore(&self, snapshot: &crate::Snapshot) -> Result<Value, RuntimeError> {
        self.cluster.restore(NodeId(0), snapshot)
    }
}
