//! The production-day soak harness (experiment **E16**).
//!
//! One seeded churn schedule ([`rafda_corpus::ops::generate_churn`]) drives
//! an auction-shaped application over a six-node cluster through every
//! distribution feature at once — sharding with replica reads (`Item`),
//! property caching (`Acct`), invocation batching (`Tally`), k = 2
//! replication and crash-stop failover, migrations and pulls, affinity
//! adaptation and shard rebalancing, all under a 5 % message-drop rate —
//! and checks each op against the exact single-address-space
//! [`Oracle`].
//!
//! The harness is shared by the soak gate (`tests/soak.rs`), the E16
//! bench (`crates/bench/benches/e16_soak.rs`) and the experiments report:
//!
//! * [`run_schedule`] drives a phased schedule under a
//!   [`SoakRecorder`], checking invariants at
//!   every phase boundary, and returns the deterministic
//!   [`SoakReport`];
//! * [`run_flat`] drives a bare op slice and reports the first divergence —
//!   the case closure the shrinker (`proptest::shrink`) replays while
//!   minimising a failing trace.

use crate::classmodel::builder::{ClassBuilder, MethodBuilder};
use crate::classmodel::{ClassKind, Field};
use crate::corpus::ops::{ChurnConfig, ChurnSchedule, Oracle, PoolClass, SoakOp};
use crate::runtime::{SoakRecorder, SoakReport};
use crate::{
    AffinityConfig, Application, Cluster, NodeId, Placement, RetryPolicy, StaticPolicy, Ty, Value,
};

/// Shard count for the `Item` class (`shard Item by get_k modulo 8`).
pub const SHARD_MODULO: u32 = 8;

/// Message-drop probability the whole soak runs under.
pub const DROP_PROBABILITY: f64 = 0.05;

/// Append one counter-shaped class to `app`.
///
/// Every class carries an `int v` balance and a value-returning mutator
/// (`v += d; return v`). `keyed` adds an `int k` field set by the ctor
/// (the shard key for `Item`); `with_inc` adds a `void inc(int)` — the
/// deferrable fire-and-forget op batching coalesces.
fn add_class(app: &mut Application, name: &str, keyed: bool, mutator: &str, with_inc: bool) {
    let u = app.universe_mut();
    let c = u.declare(name, ClassKind::Class);
    let mut cb = ClassBuilder::new(u, c);
    let k = keyed.then(|| cb.field(Field::new("k", Ty::Int)));
    let v = cb.field(Field::new("v", Ty::Int));
    if let Some(k) = k {
        let mut mb = MethodBuilder::new(2);
        mb.load_this().load_local(1).put_field(c, k).ret();
        cb.ctor(u, vec![Ty::Int], Some(mb.finish()));
    } else {
        let mut mb = MethodBuilder::new(1);
        mb.ret();
        cb.ctor(u, vec![], Some(mb.finish()));
    }
    let mut mb = MethodBuilder::new(2);
    mb.load_this();
    mb.load_this().get_field(c, v);
    mb.load_local(1).add();
    mb.put_field(c, v);
    mb.load_this().get_field(c, v).ret_value();
    cb.method(u, mutator, vec![Ty::Int], Ty::Int, Some(mb.finish()));
    if with_inc {
        let mut mb = MethodBuilder::new(2);
        mb.load_this();
        mb.load_this().get_field(c, v);
        mb.load_local(1).add();
        mb.put_field(c, v);
        mb.ret();
        cb.method(u, "inc", vec![Ty::Int], Ty::Void, Some(mb.finish()));
    }
    cb.finish(u);
}

/// The auction-shaped soak application: `Item { k, v; bid }` (sharded,
/// replica reads), `Acct { v; add }` (cached) and `Tally { v; add, inc }`
/// (batched).
pub fn soak_app() -> Application {
    let mut app = Application::new();
    add_class(&mut app, "Item", true, "bid", false);
    add_class(&mut app, "Acct", false, "add", false);
    add_class(&mut app, "Tally", false, "add", true);
    app
}

/// A deployed soak cluster plus the object pool and crash bookkeeping:
/// feed it [`SoakOp`]s via [`SoakHarness::apply`].
#[derive(Debug)]
pub struct SoakHarness {
    cluster: Cluster,
    objs: Vec<Value>,
    classes: Vec<PoolClass>,
    coord: NodeId,
    affinity: AffinityConfig,
    down: Option<NodeId>,
}

impl SoakHarness {
    /// Transform and deploy the soak application per `cfg`: statics and
    /// the driving client on the coordinator (the highest node id, never
    /// crashed), `Item` sharded over [`SHARD_MODULO`] shards with replica
    /// reads, `Acct` cached on node 1, `Tally` batched on node 2 — all
    /// three replicated k = 2 — with retries raised to absorb the
    /// [`DROP_PROBABILITY`] message-drop rate, monitors on, and the whole
    /// object pool created and pinned at the coordinator.
    pub fn deploy(cfg: &ChurnConfig) -> SoakHarness {
        let coord = NodeId(u32::from(cfg.nodes) - 1);
        let policy = StaticPolicy::new()
            .default_statics(coord)
            .shard("Item", "get_k", SHARD_MODULO)
            .replicate("Item", 2)
            .replica_reads("Item", true)
            .place("Acct", Placement::Node(NodeId(1)))
            .cache("Acct", true)
            .replicate("Acct", 2)
            .place("Tally", Placement::Node(NodeId(2)))
            .batch("Tally", true)
            .replicate("Tally", 2);
        let cluster = soak_app()
            .transform(&["RMI"])
            .expect("soak app transforms")
            .deploy(u32::from(cfg.nodes), cfg.seed, Box::new(policy));
        cluster.set_retry_policy(RetryPolicy {
            max_attempts: 10,
            ..RetryPolicy::default()
        });
        cluster
            .network()
            .fault_plan(|f| f.drop_probability = DROP_PROBABILITY);
        cluster.enable_monitors();
        let classes: Vec<PoolClass> = (0..cfg.pool()).map(|idx| cfg.class_of(idx)).collect();
        let objs: Vec<Value> = classes
            .iter()
            .enumerate()
            .map(|(idx, class)| {
                let obj = match class {
                    PoolClass::Item => cluster
                        .new_instance(coord, "Item", 0, vec![Value::Int(idx as i32)])
                        .expect("create Item"),
                    PoolClass::Acct => cluster
                        .new_instance(coord, "Acct", 0, vec![])
                        .expect("create Acct"),
                    PoolClass::Tally => cluster
                        .new_instance(coord, "Tally", 0, vec![])
                        .expect("create Tally"),
                };
                cluster.pin(coord, &obj);
                obj
            })
            .collect();
        SoakHarness {
            cluster,
            objs,
            classes,
            coord,
            affinity: AffinityConfig {
                min_calls: 4,
                min_fraction: 0.5,
            },
            down: None,
        }
    }

    /// The deployed cluster (for recorders and invariant sweeps).
    pub fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    /// The coordinator-side reference of pool object `idx`.
    pub fn obj(&self, idx: usize) -> &Value {
        &self.objs[idx]
    }

    /// The value-returning mutator of pool object `idx` (`bid` on items,
    /// `add` elsewhere).
    fn mutator(&self, idx: usize) -> &'static str {
        match self.classes[idx] {
            PoolClass::Item => "bid",
            PoolClass::Acct | PoolClass::Tally => "add",
        }
    }

    /// Restart the down node (if any) and re-ship every backup.
    ///
    /// A restarted node rejoins the replica sync set at the next served
    /// mutation, so every pool object is touched with a delta-0 mutation —
    /// which must also return the oracle value exactly — before any
    /// further crash can take the last current copy.
    fn heal(&mut self, oracle: &Oracle) -> Result<(), String> {
        if let Some(d) = self.down.take() {
            self.cluster.restart(d);
            self.touch_all(oracle)?;
        }
        Ok(())
    }

    /// Delta-0 mutation on every pool object, checked against the oracle.
    fn touch_all(&self, oracle: &Oracle) -> Result<(), String> {
        for (idx, obj) in self.objs.iter().enumerate() {
            let method = self.mutator(idx);
            let r = self
                .cluster
                .call_method(self.coord, obj.clone(), method, vec![Value::Int(0)])
                .map_err(|e| format!("touch #{idx} ({method}): {e}"))?;
            let expected = oracle.values()[idx];
            if r != Value::Int(expected) {
                return Err(format!(
                    "touch #{idx} ({method}): returned {r:?}, oracle says {expected}"
                ));
            }
        }
        Ok(())
    }

    /// Apply one schedule op, stepping the oracle alongside and checking
    /// every observable return value against it.
    ///
    /// Boundary ops (`Migrate` / `Pull`) whose current location or target
    /// is the down node are skipped: the contract there is a typed
    /// `Unreachable` error, not failover, and the schedule stays
    /// deterministic because the skip depends only on simulated state.
    ///
    /// # Errors
    /// The first divergence — a wrong return value, a failed exchange, or
    /// a vanished object — formatted with the offending op.
    pub fn apply(&mut self, op: &SoakOp, oracle: &mut Oracle) -> Result<(), String> {
        let coord = self.coord;
        match *op {
            SoakOp::Call { idx, delta } => {
                let expected = oracle.step(op).expect("Call returns a value");
                let method = self.mutator(idx);
                let r = self
                    .cluster
                    .call_method(
                        coord,
                        self.objs[idx].clone(),
                        method,
                        vec![Value::Int(i32::from(delta))],
                    )
                    .map_err(|e| format!("{op}: {e}"))?;
                if r != Value::Int(expected) {
                    return Err(format!("{op}: returned {r:?}, oracle says {expected}"));
                }
            }
            SoakOp::Inc { idx, delta } => {
                oracle.step(op);
                self.cluster
                    .call_method(
                        coord,
                        self.objs[idx].clone(),
                        "inc",
                        vec![Value::Int(i32::from(delta))],
                    )
                    .map_err(|e| format!("{op}: {e}"))?;
            }
            SoakOp::Read { idx } => {
                let expected = oracle.step(op).expect("Read returns a value");
                let r = self
                    .cluster
                    .call_method(coord, self.objs[idx].clone(), "get_v", vec![])
                    .map_err(|e| format!("{op}: {e}"))?;
                if r != Value::Int(expected) {
                    return Err(format!("{op}: read {r:?}, oracle says {expected}"));
                }
            }
            SoakOp::Migrate { idx, node } => {
                oracle.step(op);
                let target = NodeId(u32::from(node));
                if self.down == Some(target) {
                    return Ok(());
                }
                match self.cluster.home_of(coord, &self.objs[idx]) {
                    // Third-party migration, issued at the owner: the
                    // coordinator's warmed caches must be tombstoned
                    // remotely for later reads to stay fresh.
                    Some((owner, handle)) => {
                        if self.down == Some(owner) || owner == target {
                            return Ok(());
                        }
                        self.cluster
                            .migrate(owner, handle, target)
                            .map_err(|e| format!("{op}: {e}"))?;
                    }
                    // Forwarding chain or unreachable owner: collapse it
                    // by pulling the object local instead.
                    None => {
                        let Some(loc) = self.cluster.location_of(coord, &self.objs[idx]) else {
                            return Err(format!("{op}: object vanished"));
                        };
                        if self.down == Some(loc) || loc == coord {
                            return Ok(());
                        }
                        let h = self.objs[idx]
                            .as_ref_handle()
                            .expect("pool objects are refs");
                        self.cluster
                            .pull_local(coord, h)
                            .map_err(|e| format!("{op}: {e}"))?;
                    }
                }
            }
            SoakOp::Pull { idx } => {
                oracle.step(op);
                let Some(loc) = self.cluster.location_of(coord, &self.objs[idx]) else {
                    return Err(format!("{op}: object vanished"));
                };
                if self.down == Some(loc) || loc == coord {
                    return Ok(());
                }
                let h = self.objs[idx]
                    .as_ref_handle()
                    .expect("pool objects are refs");
                self.cluster
                    .pull_local(coord, h)
                    .map_err(|e| format!("{op}: {e}"))?;
            }
            SoakOp::Adapt => {
                oracle.step(op);
                self.cluster.adapt(&self.affinity);
            }
            SoakOp::Rebalance => {
                oracle.step(op);
                self.cluster.rebalance_shards(&self.affinity);
            }
            SoakOp::Crash { node } => {
                oracle.step(op);
                self.heal(oracle)?;
                let target = NodeId(u32::from(node));
                self.cluster.crash(target);
                self.down = Some(target);
            }
            SoakOp::Heal => {
                oracle.step(op);
                self.heal(oracle)?;
            }
        }
        Ok(())
    }

    /// Quiesce and verify: restart the down node, touch every object
    /// (replica convergence plus an oracle-exact final sweep) and run the
    /// quiescent-point invariant sweep.
    ///
    /// # Errors
    /// The first divergence or invariant violation, formatted.
    pub fn finale(&mut self, oracle: &Oracle) -> Result<(), String> {
        self.heal(oracle)?;
        self.touch_all(oracle)?;
        let violations = self.cluster.check_invariants();
        if let Some(first) = violations.first() {
            return Err(format!(
                "{} invariant violation(s), first: {first}",
                violations.len()
            ));
        }
        Ok(())
    }

    /// Arm the E10 cache-coherence canary: the next migration's tombstone
    /// broadcast is silently skipped, so a later read through a warmed
    /// property cache serves a stale value — the fault the soak gate's
    /// shrinking test plants and then minimises.
    pub fn arm_cache_canary(&self) {
        self.cluster.debug_skip_next_tombstone();
    }
}

/// Drive a phased churn schedule end to end under a soak recorder.
///
/// Invariants are checked at every phase boundary (the sweep flushes
/// batches and syncs replicas, so each boundary is a quiescent point);
/// the run ends with [`SoakHarness::finale`] and the recorder's own
/// monitor-verdict sweep.
///
/// # Errors
/// The first divergence, with the phase and global op index prepended —
/// the message the gate hands to the shrinker alongside the flat op list.
pub fn run_schedule(cfg: &ChurnConfig, schedule: &ChurnSchedule) -> Result<SoakReport, String> {
    let mut harness = SoakHarness::deploy(cfg);
    let mut oracle = Oracle::new(cfg.pool());
    let mut recorder = SoakRecorder::begin(harness.cluster(), cfg.seed);
    let mut global = 0usize;
    for phase in &schedule.phases {
        recorder.phase(harness.cluster(), phase.name);
        for op in &phase.ops {
            harness
                .apply(op, &mut oracle)
                .map_err(|e| format!("phase {} op {global}: {e}", phase.name))?;
            recorder.record(op.kind());
            global += 1;
        }
        let violations = harness.cluster().check_invariants();
        if let Some(first) = violations.first() {
            return Err(format!(
                "phase {} boundary: {} invariant violation(s), first: {first}",
                phase.name,
                violations.len()
            ));
        }
    }
    harness.finale(&oracle)?;
    let report = recorder.finish(harness.cluster());
    if !report.clean() {
        return Err(format!("monitors fired:\n{report}"));
    }
    Ok(report)
}

/// Drive a bare op slice (no phases, no recorder) and report the first
/// divergence — the replayable case closure for trace minimisation.
///
/// A fresh cluster is deployed per call, so the same slice always fails
/// (or passes) the same way. When `canary` is set the cache-coherence
/// canary is armed before the first op.
///
/// # Errors
/// The first divergence or final invariant violation, formatted.
pub fn run_flat(cfg: &ChurnConfig, ops: &[SoakOp], canary: bool) -> Result<(), String> {
    let mut harness = SoakHarness::deploy(cfg);
    if canary {
        harness.arm_cache_canary();
    }
    let mut oracle = Oracle::new(cfg.pool());
    for (i, op) in ops.iter().enumerate() {
        harness
            .apply(op, &mut oracle)
            .map_err(|e| format!("op {i}: {e}"))?;
    }
    harness.finale(&oracle)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::ops::generate_churn;

    #[test]
    fn a_short_schedule_runs_clean_and_reports() {
        let cfg = ChurnConfig::production_day(7, 300);
        let schedule = generate_churn(&cfg);
        let report = run_schedule(&cfg, &schedule).expect("short soak is clean");
        assert_eq!(report.total_ops() as usize, schedule.total_ops());
        assert!(report.clean());
        assert_eq!(report.phases.len(), 4, "warmup/steady/churn/quiesce");
    }

    #[test]
    fn the_flat_driver_agrees_with_the_phased_one() {
        let cfg = ChurnConfig::production_day(11, 200);
        let schedule = generate_churn(&cfg);
        run_flat(&cfg, &schedule.flatten(), false).expect("flat replay is clean");
    }

    #[test]
    fn the_cache_canary_makes_a_run_fail() {
        let cfg = ChurnConfig::production_day(13, 0);
        // `cfg.items` is the first Acct index. Warm the cache, migrate
        // (tombstone skipped), read again: the value matches the oracle —
        // only the stale-read monitor can see that the hit was served
        // through a forwarding location.
        let acct = cfg.items;
        let ops = vec![
            SoakOp::Call {
                idx: acct,
                delta: 5,
            },
            SoakOp::Read { idx: acct },
            SoakOp::Migrate { idx: acct, node: 3 },
            SoakOp::Read { idx: acct },
        ];
        run_flat(&cfg, &ops, false).expect("without the canary the trace is clean");
        let err = run_flat(&cfg, &ops, true).expect_err("skipped tombstone must surface");
        assert!(
            err.contains("stale-read") || err.contains("violation"),
            "unexpected failure shape: {err}"
        );
    }
}
