//! # rafda
//!
//! A Rust reproduction of **"A Reflective Approach to Providing Flexibility
//! in Application Distribution"** (Rebón Portillo, Walker, Kirby, Dearle;
//! Middleware 2003) — the RAFDA project.
//!
//! RAFDA transforms a non-distributed program into a semantically
//! equivalent one whose **distribution boundaries are flexible**: for every
//! substitutable class it extracts interfaces (`A_O_Int`, `A_C_Int`),
//! generates local and remote-proxy implementations plus factories, and
//! rewrites all code against the interfaces — so a local object and a proxy
//! to a remote instance become interchangeable, and a running program can
//! re-draw its distribution boundaries dynamically.
//!
//! This crate is the facade over the full system:
//!
//! | Sub-crate | Role |
//! |---|---|
//! | [`classmodel`] | Java-like class model + mini-bytecode IR (the BCEL stand-in) |
//! | [`vm`] | interpreter, one per simulated address space (the JVM stand-in) |
//! | [`transform`] | the paper's transformation engine (Section 2) |
//! | [`net`] | deterministic simulated LAN with failure injection |
//! | [`wire`] | RMI-, SOAP- and CORBA-like protocol codecs |
//! | [`policy`] | distribution policy (placement, protocols, adaptation) |
//! | [`telemetry`] | causal tracing: spans on the simulated clock, histograms, Chrome export |
//! | [`runtime`] | distributed runtime: factories, proxies, migration, adaptation |
//! | [`baseline`] | the wrapper-per-object alternative (Section 3) |
//! | [`corpus`] | JDK-shaped corpus + executable workload generators |
//!
//! ## Quickstart
//!
//! ```
//! use rafda::{Application, NodeId, StaticPolicy, Value};
//!
//! // 1. An ordinary, non-distributed program (the paper's Figure 2).
//! let mut app = Application::new();
//! let _ids = rafda::classmodel::sample::build_figure2(app.universe_mut());
//!
//! // 2. Transform: extract interfaces, generate proxies and factories.
//! let transformed = app.transform(&["RMI", "SOAP"]).unwrap();
//!
//! // 3. Deploy over two nodes with X/Y/Z statics on node 1 — no source
//! //    changes, placement is pure policy.
//! let policy = StaticPolicy::new().default_statics(NodeId(1));
//! let cluster = transformed.deploy(2, 42, Box::new(policy));
//!
//! // 4. Same answers as the original program, now computed remotely.
//! let r = cluster.call_static(NodeId(0), "X", "p", vec![Value::Int(6)]).unwrap();
//! assert_eq!(r, Value::Int(42));
//! assert!(cluster.network().stats().messages > 0);
//! ```

#![warn(missing_docs)]

pub mod soak;

pub use rafda_baseline as baseline;
pub use rafda_classmodel as classmodel;
pub use rafda_corpus as corpus;
pub use rafda_net as net;
pub use rafda_policy as policy;
pub use rafda_runtime as runtime;
pub use rafda_telemetry as telemetry;
pub use rafda_transform as transform;
pub use rafda_vm as vm;
pub use rafda_wire as wire;

pub use rafda_classmodel::{ClassUniverse, Ty};
pub use rafda_net::{NodeId, SimTime};
pub use rafda_policy::{
    AffinityConfig, DistributionPolicy, LocalPolicy, Placement, RoundRobinPolicy, StaticPolicy,
};
pub use rafda_runtime::{
    declare_introspection, Cluster, LocalRuntime, MigrationEvent, RetryPolicy, RuntimeError,
    RuntimeStats, INTROSPECTION_CLASS,
};
pub use rafda_telemetry::{
    LatencyHistogram, LinkSummary, MethodKey, MetricsRegistry, Monitor, MonitorEvent, Span,
    SpanLog, SpanOutcome, TimeSeriesRecorder, TraceContext, Violation,
};
pub use rafda_transform::{TransformError, Transformer};
pub use rafda_vm::{NetFailure, NetFailureKind, ObserverIds, Trace, TraceEvent, Value, Vm};

use rafda_transform::{TransformOutcome, TransformPlan};

/// A non-distributed application under construction: a class universe with
/// the `Observer` built-in pre-installed.
///
/// Populate it through [`Application::universe_mut`] (hand-built classes,
/// the Figure 2 sample, or a generated workload), then call
/// [`Application::transform`].
#[derive(Debug)]
pub struct Application {
    universe: ClassUniverse,
    observer: ObserverIds,
}

impl Application {
    /// A fresh application with the observation built-in installed.
    #[allow(clippy::new_without_default)]
    pub fn new() -> Self {
        let mut universe = ClassUniverse::new();
        let observer = Vm::install_observer(&mut universe);
        Application { universe, observer }
    }

    /// The class universe (add your program here).
    pub fn universe_mut(&mut self) -> &mut ClassUniverse {
        &mut self.universe
    }

    /// Read access to the universe.
    pub fn universe(&self) -> &ClassUniverse {
        &self.universe
    }

    /// The `Observer` ids (pass to [`rafda_corpus::generate_app`] via
    /// [`rafda_corpus::ObserverHooks`]).
    pub fn observer(&self) -> ObserverIds {
        self.observer
    }

    /// Run the **original** (untransformed) program on a fresh VM and
    /// return its observation trace — the reference side of every
    /// equivalence check.
    pub fn run_original(&self, class: &str, method: &str, args: Vec<Value>) -> Trace {
        let vm = Vm::new(std::sync::Arc::new(self.universe.clone()));
        vm.bind_observer(&self.observer);
        vm.run_observed(class, method, args)
    }

    /// Transform the application (all transformable classes substitutable),
    /// generating proxy families for `protocols`.
    ///
    /// # Errors
    /// See [`TransformError`].
    pub fn transform(self, protocols: &[&str]) -> Result<TransformedApplication, TransformError> {
        self.transform_with(Transformer::new().protocols(protocols))
    }

    /// Transform with a custom [`Transformer`] configuration (restricted
    /// substitutable sets etc.).
    ///
    /// # Errors
    /// See [`TransformError`].
    pub fn transform_with(
        mut self,
        transformer: Transformer,
    ) -> Result<TransformedApplication, TransformError> {
        let outcome = transformer.run(&mut self.universe)?;
        Ok(TransformedApplication {
            universe: self.universe,
            observer: self.observer,
            outcome,
        })
    }
}

/// A transformed application, ready to deploy.
#[derive(Debug)]
pub struct TransformedApplication {
    universe: ClassUniverse,
    observer: ObserverIds,
    outcome: TransformOutcome,
}

impl TransformedApplication {
    /// The transformed universe.
    pub fn universe(&self) -> &ClassUniverse {
        &self.universe
    }

    /// The transformation plan.
    pub fn plan(&self) -> &TransformPlan {
        &self.outcome.plan
    }

    /// The full transformation outcome (analysis + statistics).
    pub fn outcome(&self) -> &TransformOutcome {
        &self.outcome
    }

    /// The observer ids.
    pub fn observer(&self) -> ObserverIds {
        self.observer
    }

    /// Render the declaration surface of every generated artefact
    /// (interfaces, locals, proxies, factories) as Java-like source — the
    /// equivalent of decompiling the paper's BCEL output.
    pub fn dump_generated(&self) -> String {
        rafda_classmodel::pretty::dump_universe(&self.universe, true)
    }

    /// Deploy in a single address space (the paper's "local version of the
    /// transformed application"). The observer is bound automatically.
    pub fn deploy_local(self) -> LocalRuntime {
        let rt = LocalRuntime::new(self.universe, self.outcome.plan);
        rt.bind_observer(&self.observer);
        rt
    }

    /// Deploy over a simulated cluster with the given placement policy.
    /// The observer is bound cluster-wide automatically.
    pub fn deploy(self, nodes: u32, seed: u64, policy: Box<dyn DistributionPolicy>) -> Cluster {
        let cluster = Cluster::new(self.universe, self.outcome.plan, nodes, seed, policy);
        cluster.bind_observer(&self.observer);
        cluster
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn end_to_end_local_pipeline() {
        let mut app = Application::new();
        rafda_classmodel::sample::build_figure2(app.universe_mut());
        let original = app.run_original("X", "p", vec![Value::Int(5)]);
        assert!(original.is_empty()); // X.p emits nothing by itself
        let transformed = app.transform(&["RMI"]).unwrap();
        assert_eq!(transformed.outcome().report.substitutable_count, 3);
        let rt = transformed.deploy_local();
        assert_eq!(
            rt.call_static("X", "p", vec![Value::Int(5)]).unwrap(),
            Value::Int(35)
        );
    }

    #[test]
    fn transform_errors_surface() {
        let mut app = Application::new();
        rafda_classmodel::sample::build_figure2(app.universe_mut());
        let err = app
            .transform_with(Transformer::new().substitutable_names(&["Missing"]))
            .unwrap_err();
        assert_eq!(err, TransformError::UnknownClass("Missing".into()));
    }

    #[test]
    fn dump_generated_lists_every_artefact_family() {
        let mut app = Application::new();
        rafda_classmodel::sample::build_figure2(app.universe_mut());
        let t = app.transform(&["RMI", "SOAP"]).unwrap();
        let dump = t.dump_generated();
        for name in [
            "interface X_O_Int",
            "class X_O_Local",
            "class X_O_Proxy_RMI",
            "class X_O_Proxy_SOAP",
            "class X_O_Factory",
            "interface X_C_Int",
            "class X_C_Factory",
            "interface Y_O_Int",
            "interface Z_O_Int",
        ] {
            assert!(dump.contains(name), "missing {name} in dump");
        }
        // Original classes are excluded from the generated-only dump.
        assert!(!dump.contains("public class X {"));
    }

    #[test]
    fn observer_is_not_substitutable() {
        let mut app = Application::new();
        rafda_classmodel::sample::build_figure2(app.universe_mut());
        let transformed = app.transform(&["RMI"]).unwrap();
        assert!(transformed.universe().by_name("Observer_O_Int").is_none());
    }
}
