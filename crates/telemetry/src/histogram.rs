//! Fixed-bucket latency histograms keyed by `(class, method, protocol)`.
//!
//! Bucket boundaries are compile-time constants ([`BUCKET_BOUNDS_NS`]) so
//! two runs — or two nodes — always bin identically; there is no HDR-style
//! auto-ranging that could make output depend on the data seen first.

use crate::span::SpanLog;
use std::collections::BTreeMap;

/// Upper bounds (inclusive, simulated ns) of the histogram buckets; a final
/// overflow bucket catches everything larger. A 1–2–5 ladder from 1 µs to
/// 10 ms, matching the simulator's per-hop latencies (tens of µs) with
/// headroom for retry storms.
pub const BUCKET_BOUNDS_NS: [u64; 13] = [
    1_000, 2_000, 5_000, 10_000, 20_000, 50_000, 100_000, 200_000, 500_000, 1_000_000, 2_000_000,
    5_000_000, 10_000_000,
];

/// A latency histogram with the fixed [`BUCKET_BOUNDS_NS`] buckets plus
/// exact count/sum/min/max.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LatencyHistogram {
    /// Per-bucket counts; `counts[BUCKET_BOUNDS_NS.len()]` is the overflow
    /// bucket.
    pub counts: [u64; BUCKET_BOUNDS_NS.len() + 1],
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all samples, ns.
    pub sum: u64,
    /// Smallest sample, ns (0 when empty).
    pub min: u64,
    /// Largest sample, ns (0 when empty).
    pub max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            counts: [0; BUCKET_BOUNDS_NS.len() + 1],
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
        }
    }
}

impl LatencyHistogram {
    /// New, empty histogram.
    pub fn new() -> Self {
        LatencyHistogram::default()
    }

    /// Record one latency sample.
    pub fn record(&mut self, ns: u64) {
        let bucket = BUCKET_BOUNDS_NS
            .iter()
            .position(|&bound| ns <= bound)
            .unwrap_or(BUCKET_BOUNDS_NS.len());
        self.counts[bucket] += 1;
        if self.count == 0 {
            self.min = ns;
            self.max = ns;
        } else {
            self.min = self.min.min(ns);
            self.max = self.max.max(ns);
        }
        self.count += 1;
        self.sum += ns;
    }

    /// Mean latency, ns (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Approximate percentile: the upper bound of the bucket holding the
    /// nearest-rank sample (clamped to the observed max; `min`/`max` are
    /// exact). Returns 0 when empty.
    pub fn percentile(&self, pct: u64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (pct * self.count).div_ceil(100).max(1);
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                let bound = BUCKET_BOUNDS_NS.get(i).copied().unwrap_or(u64::MAX);
                return bound.min(self.max);
            }
        }
        self.max
    }
}

/// Histogram key: which method, on which class, over which protocol.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MethodKey {
    /// Base class name (e.g. `Y`).
    pub class: String,
    /// Method signature (e.g. `n(J)J`) or `<create>/k` for remote creation.
    pub method: String,
    /// Protocol family that carried the call (`RMI`/`SOAP`/`CORBA`).
    pub protocol: String,
}

impl SpanLog {
    /// Aggregate per-`(class, method, protocol)` histograms over all closed
    /// RPC exchange spans carrying the three attributes. Ordered by key, so
    /// iteration is deterministic.
    pub fn method_histograms(&self) -> BTreeMap<MethodKey, LatencyHistogram> {
        let mut out: BTreeMap<MethodKey, LatencyHistogram> = BTreeMap::new();
        for span in self.spans() {
            if !span.name.starts_with("rpc.") {
                continue;
            }
            let (class, method, protocol) = match (
                span.attr_str("class"),
                span.attr_str("method"),
                span.attr_str("protocol"),
            ) {
                (Some(c), Some(m), Some(p)) => (c, m, p),
                _ => continue,
            };
            let key = MethodKey {
                class: class.to_string(),
                method: method.to_string(),
                protocol: protocol.to_string(),
            };
            out.entry(key).or_default().record(span.duration_ns());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanOutcome;

    #[test]
    fn buckets_and_overflow() {
        let mut h = LatencyHistogram::new();
        h.record(500); // bucket 0 (<= 1_000)
        h.record(1_000); // bucket 0 (inclusive bound)
        h.record(1_001); // bucket 1
        h.record(99_000_000); // overflow
        assert_eq!(h.counts[0], 2);
        assert_eq!(h.counts[1], 1);
        assert_eq!(h.counts[BUCKET_BOUNDS_NS.len()], 1);
        assert_eq!(h.count, 4);
        assert_eq!(h.min, 500);
        assert_eq!(h.max, 99_000_000);
        assert_eq!(h.mean(), (500 + 1_000 + 1_001 + 99_000_000) / 4);
    }

    #[test]
    fn golden_bucket_edges_and_zero_duration_samples() {
        // Every exact bucket boundary lands in its own bucket (bounds are
        // inclusive), and boundary+1 spills into the next.
        for (i, &bound) in BUCKET_BOUNDS_NS.iter().enumerate() {
            let mut h = LatencyHistogram::new();
            h.record(bound);
            assert_eq!(h.counts[i], 1, "bound {bound} must fill bucket {i}");
            h.record(bound + 1);
            let next = (i + 1).min(BUCKET_BOUNDS_NS.len());
            assert_eq!(h.counts[next], 1, "bound {bound}+1 must spill to {next}");
        }
        // A zero-duration sample — what a cached rpc.call span produces —
        // lands in the first bucket and pins min to 0.
        let mut z = LatencyHistogram::new();
        z.record(0);
        assert_eq!((z.counts[0], z.count, z.sum, z.min, z.max), (1, 1, 0, 0, 0));
        assert_eq!(
            z.percentile(50),
            0,
            "p50 of all-zero samples clamps to max 0"
        );

        // End-to-end: a cached span in a log is a 0 ns sample in the
        // method histogram, not an omitted one.
        let mut log = SpanLog::new();
        let s = log.start_span("rpc.call", 0, 5_000);
        log.set_attr(s, "class", "Y");
        log.set_attr(s, "method", "get_v()I");
        log.set_attr(s, "protocol", "RMI");
        log.set_attr(s, "cached", true);
        log.end_span(s, 5_000, SpanOutcome::Ok);
        let hists = log.method_histograms();
        let key = MethodKey {
            class: "Y".into(),
            method: "get_v()I".into(),
            protocol: "RMI".into(),
        };
        assert_eq!((hists[&key].count, hists[&key].max), (1, 0));
    }

    #[test]
    fn percentiles_use_bucket_bounds_clamped_to_max() {
        let mut h = LatencyHistogram::new();
        for _ in 0..99 {
            h.record(15_000); // bucket with bound 20_000
        }
        h.record(900_000); // bucket with bound 1_000_000
        assert_eq!(h.percentile(50), 20_000);
        // The p100 sample sits in the 1 ms bucket but the observed max is
        // 900 µs — clamp to it.
        assert_eq!(h.percentile(100), 900_000);
        assert_eq!(LatencyHistogram::new().percentile(50), 0);
    }

    #[test]
    fn method_histograms_group_by_key() {
        let mut log = SpanLog::new();
        for (method, dur) in [("n(J)J", 10_u64), ("n(J)J", 30), ("p(I)I", 40)] {
            let s = log.start_span("rpc.call", 0, 0);
            log.set_attr(s, "class", "Y");
            log.set_attr(s, "method", method);
            log.set_attr(s, "protocol", "RMI");
            log.end_span(s, dur, SpanOutcome::Ok);
        }
        // Attempt spans without class/method attrs are ignored.
        let a = log.start_span("rpc.attempt", 0, 0);
        log.end_span(a, 99, SpanOutcome::Ok);
        // Non-rpc spans are ignored even with the attrs.
        let m = log.start_span("migrate", 0, 0);
        log.set_attr(m, "class", "Y");
        log.set_attr(m, "method", "x");
        log.set_attr(m, "protocol", "RMI");
        log.end_span(m, 99, SpanOutcome::Ok);

        let hists = log.method_histograms();
        assert_eq!(hists.len(), 2);
        let keys: Vec<&str> = hists.keys().map(|k| k.method.as_str()).collect();
        assert_eq!(keys, vec!["n(J)J", "p(I)I"]);
        let n = &hists[&MethodKey {
            class: "Y".into(),
            method: "n(J)J".into(),
            protocol: "RMI".into(),
        }];
        assert_eq!(n.count, 2);
        assert_eq!(n.sum, 40);
    }
}
