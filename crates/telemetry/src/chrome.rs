//! Chrome trace-event JSON export (loadable in `chrome://tracing` or
//! Perfetto).
//!
//! Hand-rolled writer — the workspace is offline and dependency-free, and
//! the subset of JSON needed here (objects, strings, fractional-µs
//! numbers) is small. Spans become `"ph":"X"` complete events; each node
//! becomes a process (`pid`) named via a `process_name` metadata event,
//! and each trace becomes a thread (`tid`) so chains nest visually.

use crate::span::{Span, SpanLog};
use std::collections::BTreeSet;
use std::fmt::Write as _;

/// Escape a string for inclusion in a JSON string literal (quotes are
/// the caller's job). Shared with the metrics/time-series exporters.
pub(crate) fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Simulated ns rendered as fractional microseconds (the trace-event time
/// unit), with no float rounding: `12345` ns → `12.345`.
fn us(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

fn span_event(out: &mut String, span: &Span) {
    let _ = write!(
        out,
        "{{\"name\":\"{}\",\"ph\":\"X\",\"pid\":{},\"tid\":{},\"ts\":{},\"dur\":{},\"args\":{{",
        escape_json(span.name),
        span.node,
        span.trace_id,
        us(span.start_ns),
        us(span.duration_ns()),
    );
    let _ = write!(
        out,
        "\"trace\":\"{:x}\",\"span\":\"{:x}\",\"parent\":\"{:x}\",\"outcome\":\"{}\"",
        span.trace_id,
        span.span_id,
        span.parent_span_id,
        span.outcome.label(),
    );
    if let Some(prior) = span.retry_of {
        let _ = write!(out, ",\"retry_of\":\"{prior:x}\"");
    }
    for (key, value) in &span.attrs {
        let _ = write!(
            out,
            ",\"{}\":\"{}\"",
            escape_json(key),
            escape_json(&value.to_string())
        );
    }
    out.push_str("}}");
}

impl SpanLog {
    /// Render the whole log as a Chrome trace-event JSON document. The
    /// output is a pure function of the log: same seed, same bytes.
    pub fn chrome_trace_json(&self) -> String {
        let mut out = String::from("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
        let mut first = true;
        let nodes: BTreeSet<u32> = self.spans().iter().map(|s| s.node).collect();
        for node in nodes {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":{node},\"args\":{{\"name\":\"node{node}\"}}}}",
            );
        }
        for span in self.spans() {
            if !first {
                out.push(',');
            }
            first = false;
            span_event(&mut out, span);
        }
        out.push_str("]}\n");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanOutcome;

    #[test]
    fn escapes_and_formats() {
        assert_eq!(escape_json("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("\u{1}"), "\\u0001");
        assert_eq!(us(12_345), "12.345");
        assert_eq!(us(999), "0.999");
        assert_eq!(us(2_000_000), "2000.000");
    }

    #[test]
    fn golden_export_small_log() {
        let mut log = SpanLog::new();
        let a = log.start_span("rpc.call", 0, 1_000);
        log.set_attr(a, "method", "n(J)J");
        let b = log.start_span("rpc.attempt", 0, 1_500);
        log.set_retry_of(b, 99);
        log.end_span(b, 2_000, SpanOutcome::NetFailure);
        log.end_span(a, 3_250, SpanOutcome::Ok);

        let json = log.chrome_trace_json();
        assert_eq!(
            json,
            concat!(
                "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[",
                "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"args\":{\"name\":\"node0\"}},",
                "{\"name\":\"rpc.call\",\"ph\":\"X\",\"pid\":0,\"tid\":1,\"ts\":1.000,\"dur\":2.250,",
                "\"args\":{\"trace\":\"1\",\"span\":\"1\",\"parent\":\"0\",\"outcome\":\"ok\",",
                "\"method\":\"n(J)J\"}},",
                "{\"name\":\"rpc.attempt\",\"ph\":\"X\",\"pid\":0,\"tid\":1,\"ts\":1.500,\"dur\":0.500,",
                "\"args\":{\"trace\":\"1\",\"span\":\"2\",\"parent\":\"1\",\"outcome\":\"net_failure\",",
                "\"retry_of\":\"63\"}}",
                "]}\n",
            )
        );
    }

    #[test]
    fn golden_escaping_of_control_chars_and_non_bmp() {
        // Control chars below 0x20 escape to \u00xx; DEL and non-BMP
        // scalars (surrogate-pair territory in UTF-16 JSON readers) pass
        // through as raw UTF-8, which JSON permits.
        assert_eq!(escape_json("\u{0}\u{1f}\u{7f}"), "\\u0000\\u001f\u{7f}");
        assert_eq!(escape_json("crab \u{1F980}!"), "crab \u{1F980}!");

        let mut log = SpanLog::new();
        let a = log.start_span("rpc.call", 0, 1_000);
        log.set_attr(a, "method", "m\u{1F980}\t\u{2}(V)V");
        log.end_span(a, 1_000, SpanOutcome::Ok);
        let json = log.chrome_trace_json();
        assert_eq!(
            json,
            concat!(
                "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[",
                "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":0,\"args\":{\"name\":\"node0\"}},",
                "{\"name\":\"rpc.call\",\"ph\":\"X\",\"pid\":0,\"tid\":1,\"ts\":1.000,\"dur\":0.000,",
                "\"args\":{\"trace\":\"1\",\"span\":\"1\",\"parent\":\"0\",\"outcome\":\"ok\",",
                "\"method\":\"m\u{1F980}\\t\\u0002(V)V\"}}",
                "]}\n",
            )
        );
    }

    #[test]
    fn export_is_deterministic() {
        let build = || {
            let mut log = SpanLog::new();
            for node in [2u32, 0, 1] {
                let s = log.start_span("serve.call", node, 10);
                log.end_span(s, 20, SpanOutcome::Ok);
            }
            log.chrome_trace_json()
        };
        assert_eq!(build(), build());
    }
}
