//! Deterministic fixed-interval time-series on the simulated clock.
//!
//! Counters say what happened over a whole run; the recorder says *when*.
//! It holds named ring-buffer series sampled at a fixed simulated-time
//! interval — the runtime asks [`TimeSeriesRecorder::due`] whenever it is
//! about to do work, and if a sample boundary has passed it records one
//! point per series stamped *at the boundary* (not at "now"), so the
//! timestamps are a pure function of the interval and the traffic, never
//! of how often the runtime happened to check.
//!
//! Because the clock is simulated and sampling is driven from
//! deterministic call sites, the whole series — timestamps and values —
//! is byte-identical across same-seed runs, which is what lets `ci.sh`
//! diff the JSON export as a determinism gate.

use std::collections::VecDeque;
use std::fmt::Write as _;

/// Handle to a registered series.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeriesId(usize);

/// Named ring-buffer series sampled on a fixed simulated-time grid.
#[derive(Debug)]
pub struct TimeSeriesRecorder {
    interval_ns: u64,
    cap: usize,
    next_due_ns: u64,
    names: Vec<String>,
    points: Vec<VecDeque<(u64, f64)>>,
    dropped: u64,
}

impl TimeSeriesRecorder {
    /// A recorder sampling every `interval_ns` simulated nanoseconds,
    /// keeping at most `cap` points per series (older points are evicted,
    /// counted in [`TimeSeriesRecorder::dropped_points`]).
    pub fn new(interval_ns: u64, cap: usize) -> Self {
        assert!(interval_ns > 0, "sampling interval must be positive");
        assert!(cap > 0, "ring capacity must be positive");
        Self {
            interval_ns,
            cap,
            next_due_ns: 0,
            names: Vec::new(),
            points: Vec::new(),
            dropped: 0,
        }
    }

    /// The sampling interval in simulated nanoseconds.
    pub fn interval_ns(&self) -> u64 {
        self.interval_ns
    }

    /// Register a named series (idempotent by name).
    pub fn register(&mut self, name: &str) -> SeriesId {
        if let Some(i) = self.names.iter().position(|n| n == name) {
            return SeriesId(i);
        }
        self.names.push(name.to_string());
        self.points.push(VecDeque::new());
        SeriesId(self.names.len() - 1)
    }

    /// If a sample boundary at or before `now_ns` is pending, the
    /// timestamp to stamp the sample with: the *latest* due grid point
    /// `<= now_ns`. Returns `None` when no sample is due.
    pub fn due(&self, now_ns: u64) -> Option<u64> {
        if now_ns < self.next_due_ns {
            return None;
        }
        let missed = (now_ns - self.next_due_ns) / self.interval_ns;
        Some(self.next_due_ns + missed * self.interval_ns)
    }

    /// Advance the grid past a sample stamped `stamp_ns` (as returned by
    /// [`TimeSeriesRecorder::due`]).
    pub fn advance(&mut self, stamp_ns: u64) {
        self.next_due_ns = stamp_ns + self.interval_ns;
    }

    /// Append a point to a series (evicting the oldest beyond capacity).
    pub fn record(&mut self, id: SeriesId, stamp_ns: u64, value: f64) {
        let ring = &mut self.points[id.0];
        if ring.len() == self.cap {
            ring.pop_front();
            self.dropped += 1;
        }
        ring.push_back((stamp_ns, value));
    }

    /// Points evicted from full rings over the recorder's lifetime.
    /// Non-zero means the JSON export is a *suffix* of the run, not the
    /// whole run.
    pub fn dropped_points(&self) -> u64 {
        self.dropped
    }

    /// Recorded points of a series, oldest first.
    pub fn points(&self, id: SeriesId) -> impl Iterator<Item = (u64, f64)> + '_ {
        self.points[id.0].iter().copied()
    }

    /// Iterate `(name, points)` in registration order.
    pub fn series(&self) -> impl Iterator<Item = (&str, &VecDeque<(u64, f64)>)> {
        self.names
            .iter()
            .map(String::as_str)
            .zip(self.points.iter())
    }

    /// Render every series as JSON lines, one object per series, in
    /// registration order: `{"series":NAME,"interval_ns":N,"dropped":D,`
    /// `"points":[[t,v],...]}`. Deterministic.
    pub fn json_lines(&self) -> String {
        let mut out = String::new();
        for (name, ring) in self.series() {
            let pts = ring
                .iter()
                .map(|(t, v)| format!("[{t},{}]", crate::metrics::fmt_f64(*v)))
                .collect::<Vec<_>>()
                .join(",");
            let _ = writeln!(
                out,
                "{{\"series\":\"{}\",\"interval_ns\":{},\"dropped\":{},\"points\":[{pts}]}}",
                crate::chrome::escape_json(name),
                self.interval_ns,
                self.dropped,
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_stamp_on_the_grid_not_at_now() {
        let mut rec = TimeSeriesRecorder::new(100, 8);
        let s = rec.register("depth");
        assert_eq!(rec.due(0), Some(0), "first sample is due immediately");
        rec.record(s, 0, 1.0);
        rec.advance(0);
        assert_eq!(rec.due(99), None);
        // The runtime next checks at t=347: two boundaries (100, 200, 300)
        // have passed; the sample is stamped at the latest one.
        assert_eq!(rec.due(347), Some(300));
        rec.record(s, 300, 2.0);
        rec.advance(300);
        assert_eq!(rec.due(399), None);
        assert_eq!(rec.due(400), Some(400));
        let pts: Vec<_> = rec.points(s).collect();
        assert_eq!(pts, vec![(0, 1.0), (300, 2.0)]);
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let mut rec = TimeSeriesRecorder::new(10, 3);
        let s = rec.register("x");
        for i in 0..5u64 {
            rec.record(s, i * 10, i as f64);
        }
        assert_eq!(rec.dropped_points(), 2);
        let pts: Vec<_> = rec.points(s).collect();
        assert_eq!(pts, vec![(20, 2.0), (30, 3.0), (40, 4.0)]);
    }

    #[test]
    fn json_export_is_deterministic_and_one_line_per_series() {
        let build = || {
            let mut rec = TimeSeriesRecorder::new(50, 4);
            let a = rec.register("queue_depth");
            let b = rec.register("hit_rate");
            rec.record(a, 0, 3.0);
            rec.record(a, 50, 1.0);
            rec.record(b, 0, 0.5);
            rec.json_lines()
        };
        assert_eq!(build(), build());
        let out = build();
        assert_eq!(out.lines().count(), 2);
        assert!(out.contains("\"series\":\"queue_depth\""));
        assert!(out.contains("[[0,3],[50,1]]"));
    }

    #[test]
    fn register_is_idempotent() {
        let mut rec = TimeSeriesRecorder::new(1, 1);
        assert_eq!(rec.register("a"), rec.register("a"));
    }
}
