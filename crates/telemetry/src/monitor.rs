//! Live invariant monitors fed by runtime events.
//!
//! The oracle suites (`chaos_soak`, `equivalence_prop`) compare *end
//! states*, so a safety violation mid-run — a stale cached read, a
//! replayed execution — only surfaces later as an opaque value mismatch.
//! Monitors watch the run as it happens: the runtime emits a
//! [`MonitorEvent`] at each decision point (cache hit, frame execution,
//! replica probe) and each [`Monitor`] accumulates [`Violation`]s that
//! identify the offending span and exchange, so a broken invariant fails
//! fast with context instead of as a downstream diff.
//!
//! The four standing watchdogs ([`standard_monitors`]):
//!
//! * [`StaleReadMonitor`] — a proxy cache hit whose authoritative object
//!   has moved (the export now forwards, or a promotion re-homed it) is a
//!   read the owner would no longer serve;
//! * [`AtMostOnceMonitor`] — the same `(server, caller, msg id)` frame
//!   executing twice without the dedup cache marking the second a replay;
//! * [`SpanTreeMonitor`] — structural health of the span log (parents
//!   exist in the same trace, children start no earlier than parents,
//!   retry chains resolve, nothing left open at a quiescent point);
//! * [`ReplicaDivergenceMonitor`] — a backup claiming the same version as
//!   the primary but holding different state (or a version *ahead* of the
//!   primary, which sync can never legitimately produce).
//!
//! Monitors are deliberately pure consumers: they never touch the cluster
//! and emitting events does not perturb the simulated clock, so enabling
//! them cannot change a run's observable behaviour.

use crate::span::{SpanLog, SpanOutcome};
use std::collections::{BTreeMap, BTreeSet};

/// One observation point in the runtime, handed to every enabled monitor.
#[derive(Debug, Clone, PartialEq)]
pub enum MonitorEvent {
    /// A proxy served a property read from its cache (no exchange).
    CacheHit {
        /// Node whose proxy cache hit.
        node: u32,
        /// Owner node the cached value was originally fetched from.
        owner: u32,
        /// Export id of the object on the owner.
        oid: u64,
        /// Whether the authoritative location has moved since the value
        /// was cached (export forwards, or a promotion re-homed it).
        stale_location: bool,
        /// The zero-duration `rpc.call` span recorded for the hit.
        span_id: u64,
        /// Trace the hit belongs to.
        trace_id: u64,
    },
    /// A server executed (or replayed) a request frame.
    Execution {
        /// Serving node.
        node: u32,
        /// Calling node (as claimed by the frame).
        caller: u32,
        /// The frame's at-most-once message id.
        msg_id: u64,
        /// True when the dedup cache replayed a stored reply instead of
        /// re-executing.
        replay: bool,
        /// The `serve.*` span for this frame.
        span_id: u64,
        /// Trace the serve belongs to.
        trace_id: u64,
    },
    /// A quiescent-point comparison of one backup against its primary.
    ReplicaProbe {
        /// Primary (owner) node.
        owner: u32,
        /// Export id on the primary.
        oid: u64,
        /// Backup node holding the replica.
        backup: u32,
        /// The primary's current version of the object.
        owner_version: u64,
        /// The version the backup's replica claims.
        backup_version: u64,
        /// Whether the replica's state matches the primary's at equal
        /// versions (true whenever versions differ — only the
        /// same-version case is comparable).
        state_matches: bool,
    },
}

/// A broken invariant, with enough context to find the offending
/// span/exchange in the log.
#[derive(Debug, Clone, PartialEq)]
pub struct Violation {
    /// Name of the monitor that fired.
    pub monitor: &'static str,
    /// Human-readable description of what went wrong.
    pub message: String,
    /// The offending span (0 when the violation is not tied to one span).
    pub span_id: u64,
    /// The trace the offending span belongs to (0 when not tied to one).
    pub trace_id: u64,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "[{}] {} (trace {:x}, span {:x})",
            self.monitor, self.message, self.trace_id, self.span_id
        )
    }
}

/// A pluggable invariant watchdog.
///
/// Implementations receive every [`MonitorEvent`] the runtime emits and
/// may additionally inspect the whole [`SpanLog`] at quiescent points.
/// They accumulate violations; they must not panic — failing fast is the
/// *caller's* policy decision (tests assert the list is empty).
pub trait Monitor {
    /// Stable monitor name (used in [`Violation::monitor`]).
    fn name(&self) -> &'static str;
    /// Observe one runtime event.
    fn on_event(&mut self, event: &MonitorEvent);
    /// Inspect the span log at a quiescent point. Called repeatedly;
    /// implementations re-derive rather than accumulate across calls.
    fn check_span_log(&mut self, _log: &SpanLog) {}
    /// Violations recorded so far.
    fn violations(&self) -> &[Violation];
}

/// The four standing watchdogs, in a fixed deterministic order.
pub fn standard_monitors() -> Vec<Box<dyn Monitor>> {
    vec![
        Box::new(StaleReadMonitor::default()),
        Box::new(AtMostOnceMonitor::default()),
        Box::new(SpanTreeMonitor::default()),
        Box::new(ReplicaDivergenceMonitor::default()),
    ]
}

/// Flags proxy cache hits whose authoritative object has moved.
#[derive(Debug, Default)]
pub struct StaleReadMonitor {
    violations: Vec<Violation>,
}

impl Monitor for StaleReadMonitor {
    fn name(&self) -> &'static str {
        "stale-read"
    }
    fn on_event(&mut self, event: &MonitorEvent) {
        if let MonitorEvent::CacheHit {
            node,
            owner,
            oid,
            stale_location: true,
            span_id,
            trace_id,
        } = event
        {
            self.violations.push(Violation {
                monitor: self.name(),
                message: format!(
                    "node {node} served a cached read of {owner}#{oid}, but the \
                     object has moved away from node {owner} (missing tombstone)"
                ),
                span_id: *span_id,
                trace_id: *trace_id,
            });
        }
    }
    fn violations(&self) -> &[Violation] {
        &self.violations
    }
}

/// Flags a `(server, caller, msg id)` frame executing more than once.
#[derive(Debug, Default)]
pub struct AtMostOnceMonitor {
    executed: BTreeSet<(u32, u32, u64)>,
    violations: Vec<Violation>,
}

impl Monitor for AtMostOnceMonitor {
    fn name(&self) -> &'static str {
        "at-most-once"
    }
    fn on_event(&mut self, event: &MonitorEvent) {
        if let MonitorEvent::Execution {
            node,
            caller,
            msg_id,
            replay: false,
            span_id,
            trace_id,
        } = event
        {
            if !self.executed.insert((*node, *caller, *msg_id)) {
                self.violations.push(Violation {
                    monitor: self.name(),
                    message: format!(
                        "node {node} executed msg {msg_id} from caller \
                         {caller} twice (dedup cache missed a replay)"
                    ),
                    span_id: *span_id,
                    trace_id: *trace_id,
                });
            }
        }
    }
    fn violations(&self) -> &[Violation] {
        &self.violations
    }
}

/// Structural well-formedness of the span log at a quiescent point.
#[derive(Debug, Default)]
pub struct SpanTreeMonitor {
    violations: Vec<Violation>,
}

impl Monitor for SpanTreeMonitor {
    fn name(&self) -> &'static str {
        "span-tree"
    }
    fn on_event(&mut self, _event: &MonitorEvent) {}
    fn check_span_log(&mut self, log: &SpanLog) {
        self.violations.clear();
        // One indexing pass up front: the log grows with the run (a 10⁵-op
        // soak leaves ~10⁶ spans), so the parent and retry lookups below
        // must not rescan the vector per span — that turns every quiescent
        // check quadratic and dominates long-soak wall clock.
        let mut ids: BTreeMap<(u64, u64), usize> = BTreeMap::new();
        let mut span_ids: BTreeSet<u64> = BTreeSet::new();
        for (idx, span) in log.spans().iter().enumerate() {
            span_ids.insert(span.span_id);
            // Keep the *first* occurrence in the index (matching the old
            // linear `find`) and flag every later duplicate.
            if let std::collections::btree_map::Entry::Vacant(e) =
                ids.entry((span.trace_id, span.span_id))
            {
                e.insert(idx);
            } else {
                self.violations.push(Violation {
                    monitor: self.name(),
                    message: "duplicate span id within trace".to_string(),
                    span_id: span.span_id,
                    trace_id: span.trace_id,
                });
            }
        }
        for span in log.spans() {
            let mut fail = |message: String| {
                self.violations.push(Violation {
                    monitor: "span-tree",
                    message,
                    span_id: span.span_id,
                    trace_id: span.trace_id,
                });
            };
            if span.outcome == SpanOutcome::Open {
                fail(format!("span {} left open at quiescent point", span.name));
            }
            if span.end_ns < span.start_ns {
                fail(format!("span {} ends before it starts", span.name));
            }
            if span.parent_span_id != 0 {
                match ids
                    .get(&(span.trace_id, span.parent_span_id))
                    .map(|&i| &log.spans()[i])
                {
                    None => fail(format!(
                        "span {} has parent {:x} missing from its trace",
                        span.name, span.parent_span_id
                    )),
                    Some(parent) => {
                        if span.start_ns < parent.start_ns {
                            fail(format!(
                                "span {} starts before its parent {}",
                                span.name, parent.name
                            ));
                        }
                    }
                }
            }
            if let Some(prior) = span.retry_of {
                // Searched log-wide, not per trace: a failover span chains
                // to the failed exchange, which legitimately lives in the
                // trace that died with the crashed owner.
                if !span_ids.contains(&prior) {
                    fail(format!(
                        "span {} retries {:x}, which is missing from the log",
                        span.name, prior
                    ));
                }
            }
        }
    }
    fn violations(&self) -> &[Violation] {
        &self.violations
    }
}

/// Flags backups that disagree with their primary at equal versions, or
/// run ahead of it.
#[derive(Debug, Default)]
pub struct ReplicaDivergenceMonitor {
    violations: Vec<Violation>,
}

impl Monitor for ReplicaDivergenceMonitor {
    fn name(&self) -> &'static str {
        "replica-divergence"
    }
    fn on_event(&mut self, event: &MonitorEvent) {
        if let MonitorEvent::ReplicaProbe {
            owner,
            oid,
            backup,
            owner_version,
            backup_version,
            state_matches,
        } = event
        {
            if backup_version == owner_version && !state_matches {
                self.violations.push(Violation {
                    monitor: self.name(),
                    message: format!(
                        "backup {backup} of {owner}#{oid} diverges from the \
                         primary at version {owner_version}"
                    ),
                    span_id: 0,
                    trace_id: 0,
                });
            } else if backup_version > owner_version {
                self.violations.push(Violation {
                    monitor: self.name(),
                    message: format!(
                        "backup {backup} of {owner}#{oid} is at version \
                         {backup_version}, ahead of the primary's {owner_version}"
                    ),
                    span_id: 0,
                    trace_id: 0,
                });
            }
        }
    }
    fn violations(&self) -> &[Violation] {
        &self.violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stale_read_fires_only_on_stale_location() {
        let mut m = StaleReadMonitor::default();
        let mut hit = MonitorEvent::CacheHit {
            node: 0,
            owner: 1,
            oid: 7,
            stale_location: false,
            span_id: 42,
            trace_id: 9,
        };
        m.on_event(&hit);
        assert!(m.violations().is_empty());
        if let MonitorEvent::CacheHit { stale_location, .. } = &mut hit {
            *stale_location = true;
        }
        m.on_event(&hit);
        assert_eq!(m.violations().len(), 1);
        assert_eq!(m.violations()[0].span_id, 42);
        assert!(m.violations()[0].message.contains("1#7"));
    }

    #[test]
    fn at_most_once_tolerates_replays_but_not_re_execution() {
        let mut m = AtMostOnceMonitor::default();
        let exec = |replay| MonitorEvent::Execution {
            node: 1,
            caller: 0,
            msg_id: 5,
            replay,
            span_id: 3,
            trace_id: 2,
        };
        m.on_event(&exec(false));
        m.on_event(&exec(true)); // dedup replay: fine
        assert!(m.violations().is_empty());
        m.on_event(&exec(false)); // second real execution: violation
        assert_eq!(m.violations().len(), 1);
        assert!(m.violations()[0].message.contains("msg 5"));
    }

    #[test]
    fn replica_divergence_flags_equal_version_mismatch_and_ahead_backups() {
        let mut m = ReplicaDivergenceMonitor::default();
        let probe = |owner_version, backup_version, state_matches| MonitorEvent::ReplicaProbe {
            owner: 1,
            oid: 4,
            backup: 2,
            owner_version,
            backup_version,
            state_matches,
        };
        m.on_event(&probe(3, 2, true)); // lagging backup: fine (best-effort sync)
        m.on_event(&probe(3, 3, true)); // in sync: fine
        assert!(m.violations().is_empty());
        m.on_event(&probe(3, 3, false)); // same version, different state
        m.on_event(&probe(3, 4, true)); // backup ahead of primary
        assert_eq!(m.violations().len(), 2);
    }

    #[test]
    fn span_tree_rechecks_from_scratch() {
        let mut log = SpanLog::new();
        let h = log.start_span("rpc.call", 0, 10);
        let mut m = SpanTreeMonitor::default();
        m.check_span_log(&log);
        assert_eq!(m.violations().len(), 1, "open span is flagged");
        log.end_span(h, 20, SpanOutcome::Ok);
        m.check_span_log(&log);
        assert!(m.violations().is_empty(), "re-check must not accumulate");
    }

    #[test]
    fn span_tree_flags_missing_parent_and_missing_retry_target() {
        let mut log = SpanLog::new();
        let h = log.start_span("rpc.attempt", 0, 5);
        log.set_retry_of(h, 0xdead);
        log.end_span(h, 6, SpanOutcome::Ok);
        let mut m = SpanTreeMonitor::default();
        m.check_span_log(&log);
        assert_eq!(m.violations().len(), 1);
        assert!(m.violations()[0].message.contains("retries"));
    }
}
