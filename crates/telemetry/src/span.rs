//! Spans charged to the simulated clock, collected in a [`SpanLog`].
//!
//! The log is an append-only vector plus a stack of currently-open spans.
//! The cluster is single-threaded and RPCs are synchronous and re-entrant,
//! so the stack *is* the causal chain: a span started while another is open
//! becomes its child. Server-side dispatch spans instead take their parent
//! from the wire ([`SpanLog::start_server_span`]), which is what links the
//! hops of a multi-node chain into one trace.
//!
//! All ids are allocated from per-log counters (never from wall-clock or
//! randomness), so with the same seed the log is byte-identical across runs.

use crate::TraceContext;
use std::collections::BTreeMap;
use std::fmt;

/// A typed span attribute value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttrValue {
    /// A string attribute (method signature, protocol name, ...).
    Str(String),
    /// An unsigned numeric attribute (bytes, attempt number, ...).
    U64(u64),
    /// A signed numeric attribute.
    I64(i64),
    /// A boolean attribute (e.g. `cached` for dedup hits).
    Bool(bool),
}

impl fmt::Display for AttrValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttrValue::Str(s) => write!(f, "{s}"),
            AttrValue::U64(v) => write!(f, "{v}"),
            AttrValue::I64(v) => write!(f, "{v}"),
            AttrValue::Bool(v) => write!(f, "{v}"),
        }
    }
}

impl From<&str> for AttrValue {
    fn from(s: &str) -> Self {
        AttrValue::Str(s.to_string())
    }
}
impl From<String> for AttrValue {
    fn from(s: String) -> Self {
        AttrValue::Str(s)
    }
}
impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        AttrValue::U64(v)
    }
}
impl From<u32> for AttrValue {
    fn from(v: u32) -> Self {
        AttrValue::U64(v as u64)
    }
}
impl From<usize> for AttrValue {
    fn from(v: usize) -> Self {
        AttrValue::U64(v as u64)
    }
}
impl From<i64> for AttrValue {
    fn from(v: i64) -> Self {
        AttrValue::I64(v)
    }
}
impl From<bool> for AttrValue {
    fn from(v: bool) -> Self {
        AttrValue::Bool(v)
    }
}

/// How a span ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpanOutcome {
    /// Still open (only seen if the log is inspected mid-operation).
    Open,
    /// Completed normally.
    Ok,
    /// Completed with an application-level fault/exception.
    Fault,
    /// Aborted by a network failure (after retries were exhausted).
    NetFailure,
}

impl SpanOutcome {
    /// Stable lower-case label used by the exporters.
    pub fn label(&self) -> &'static str {
        match self {
            SpanOutcome::Open => "open",
            SpanOutcome::Ok => "ok",
            SpanOutcome::Fault => "fault",
            SpanOutcome::NetFailure => "net_failure",
        }
    }
}

/// One recorded operation: an interval on the simulated clock plus its
/// position in the causal tree and its typed attributes.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Trace this span belongs to.
    pub trace_id: u64,
    /// This span's id (unique within the log).
    pub span_id: u64,
    /// Parent span id (0 for a trace root).
    pub parent_span_id: u64,
    /// Span kind, e.g. `rpc.call`, `rpc.attempt`, `serve.call`, `migrate`.
    pub name: &'static str,
    /// Node the span was recorded on.
    pub node: u32,
    /// Start, simulated nanoseconds.
    pub start_ns: u64,
    /// End, simulated nanoseconds (`== start_ns` while open).
    pub end_ns: u64,
    /// For retransmission attempts: the span id of the attempt this one
    /// retries.
    pub retry_of: Option<u64>,
    /// How the span ended.
    pub outcome: SpanOutcome,
    /// Typed attributes in insertion order.
    pub attrs: Vec<(&'static str, AttrValue)>,
}

impl Span {
    /// Span duration in simulated nanoseconds.
    pub fn duration_ns(&self) -> u64 {
        self.end_ns.saturating_sub(self.start_ns)
    }

    /// Look up an attribute by key.
    pub fn attr(&self, key: &str) -> Option<&AttrValue> {
        self.attrs.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }

    /// Look up a string attribute by key.
    pub fn attr_str(&self, key: &str) -> Option<&str> {
        match self.attr(key) {
            Some(AttrValue::Str(s)) => Some(s),
            _ => None,
        }
    }

    /// The context a frame sent *from inside this span* carries.
    pub fn context(&self) -> TraceContext {
        TraceContext {
            trace_id: self.trace_id,
            span_id: self.span_id,
            parent_span_id: self.parent_span_id,
        }
    }
}

/// Opaque handle to an open span (an index into the log).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanHandle(pub(crate) usize);

/// Per-link latency summary (nearest-rank percentiles over simulated ns).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkSummary {
    /// Sending node.
    pub from: u32,
    /// Receiving node.
    pub to: u32,
    /// Number of successful round-trips sampled.
    pub count: u64,
    /// Median latency, ns.
    pub p50: u64,
    /// 95th percentile latency, ns.
    pub p95: u64,
    /// 99th percentile latency, ns.
    pub p99: u64,
}

/// The per-cluster collection of spans and link samples.
///
/// Deterministic by construction: ids come from counters, timestamps from
/// the simulated clock, and link samples live in a `BTreeMap`.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SpanLog {
    spans: Vec<Span>,
    open: Vec<usize>,
    next_trace_id: u64,
    next_span_id: u64,
    link_samples: BTreeMap<(u32, u32), Vec<u64>>,
}

impl SpanLog {
    /// New, empty log.
    pub fn new() -> Self {
        SpanLog::default()
    }

    fn fresh_span_id(&mut self) -> u64 {
        self.next_span_id += 1;
        self.next_span_id
    }

    fn fresh_trace_id(&mut self) -> u64 {
        self.next_trace_id += 1;
        self.next_trace_id
    }

    fn push(&mut self, span: Span) -> SpanHandle {
        let idx = self.spans.len();
        self.spans.push(span);
        self.open.push(idx);
        SpanHandle(idx)
    }

    /// Open a span as a child of the innermost open span (or as the root of
    /// a fresh trace if none is open).
    pub fn start_span(&mut self, name: &'static str, node: u32, now_ns: u64) -> SpanHandle {
        let (trace_id, parent_span_id) = match self.open.last() {
            Some(&idx) => (self.spans[idx].trace_id, self.spans[idx].span_id),
            None => (self.fresh_trace_id(), 0),
        };
        let span_id = self.fresh_span_id();
        self.push(Span {
            trace_id,
            span_id,
            parent_span_id,
            name,
            node,
            start_ns: now_ns,
            end_ns: now_ns,
            retry_of: None,
            outcome: SpanOutcome::Open,
            attrs: Vec::new(),
        })
    }

    /// Open a server-side dispatch span whose parent is the *remote* span
    /// named by the wire context (rather than the local stack). A
    /// [`TraceContext::NONE`] context (frame from an uninstrumented peer)
    /// starts a fresh trace.
    pub fn start_server_span(
        &mut self,
        name: &'static str,
        node: u32,
        now_ns: u64,
        ctx: TraceContext,
    ) -> SpanHandle {
        let (trace_id, parent_span_id) = if ctx.is_none() {
            (self.fresh_trace_id(), 0)
        } else {
            (ctx.trace_id, ctx.span_id)
        };
        let span_id = self.fresh_span_id();
        self.push(Span {
            trace_id,
            span_id,
            parent_span_id,
            name,
            node,
            start_ns: now_ns,
            end_ns: now_ns,
            retry_of: None,
            outcome: SpanOutcome::Open,
            attrs: Vec::new(),
        })
    }

    /// Attach (or append) a typed attribute to an open span.
    pub fn set_attr(&mut self, h: SpanHandle, key: &'static str, value: impl Into<AttrValue>) {
        self.spans[h.0].attrs.push((key, value.into()));
    }

    /// Flag a retransmission attempt with the span id it retries.
    pub fn set_retry_of(&mut self, h: SpanHandle, prior_attempt: u64) {
        self.spans[h.0].retry_of = Some(prior_attempt);
    }

    /// Close a span, stamping the end time and outcome.
    pub fn end_span(&mut self, h: SpanHandle, now_ns: u64, outcome: SpanOutcome) {
        // Remove by position (not just the top) so a missed close of a
        // nested span cannot poison the whole stack.
        if let Some(pos) = self.open.iter().rposition(|&i| i == h.0) {
            self.open.remove(pos);
        }
        let span = &mut self.spans[h.0];
        span.end_ns = now_ns;
        span.outcome = outcome;
    }

    /// The wire context of span `h` (what a frame sent from inside it
    /// carries).
    pub fn context_of(&self, h: SpanHandle) -> TraceContext {
        self.spans[h.0].context()
    }

    /// The span id behind a handle.
    pub fn span_id_of(&self, h: SpanHandle) -> u64 {
        self.spans[h.0].span_id
    }

    /// The context of the innermost open span, or [`TraceContext::NONE`].
    pub fn current_context(&self) -> TraceContext {
        match self.open.last() {
            Some(&idx) => self.spans[idx].context(),
            None => TraceContext::NONE,
        }
    }

    /// Record one successful round-trip latency sample for a link.
    pub fn record_link(&mut self, from: u32, to: u32, ns: u64) {
        self.link_samples.entry((from, to)).or_default().push(ns);
    }

    /// All recorded spans, in start order.
    pub fn spans(&self) -> &[Span] {
        &self.spans
    }

    /// Per-link p50/p95/p99 over the recorded samples (exact nearest-rank),
    /// ordered by `(from, to)`.
    pub fn link_percentiles(&self) -> Vec<LinkSummary> {
        self.link_samples
            .iter()
            .map(|(&(from, to), samples)| {
                let mut sorted = samples.clone();
                sorted.sort_unstable();
                LinkSummary {
                    from,
                    to,
                    count: sorted.len() as u64,
                    p50: nearest_rank(&sorted, 50),
                    p95: nearest_rank(&sorted, 95),
                    p99: nearest_rank(&sorted, 99),
                }
            })
            .collect()
    }

    /// The critical path of a trace: from the root span, repeatedly descend
    /// into the child that *started* last. In a synchronous runtime children
    /// execute serially, so the last-started child is the one that gated the
    /// parent's completion — and, unlike last-finished, the descent follows
    /// the serve chain across nodes rather than dead-ending in a client-side
    /// attempt span (which always outlives the serve it wraps, since it also
    /// covers the reply transmit). Returns the spans root-first, or empty if
    /// the trace id is unknown.
    pub fn critical_path(&self, trace_id: u64) -> Vec<&Span> {
        let root = self
            .spans
            .iter()
            .find(|s| s.trace_id == trace_id && s.parent_span_id == 0);
        let mut path = Vec::new();
        let mut cur = match root {
            Some(s) => s,
            None => return path,
        };
        loop {
            path.push(cur);
            let next = self
                .spans
                .iter()
                .filter(|s| s.trace_id == trace_id && s.parent_span_id == cur.span_id)
                .max_by_key(|s| (s.start_ns, s.span_id));
            match next {
                Some(s) => cur = s,
                None => return path,
            }
        }
    }
}

/// Nearest-rank percentile over an ascending-sorted slice.
fn nearest_rank(sorted: &[u64], pct: u64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let n = sorted.len() as u64;
    let rank = (pct * n).div_ceil(100).max(1);
    sorted[(rank - 1) as usize]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stack_parenting_builds_a_tree() {
        let mut log = SpanLog::new();
        let a = log.start_span("rpc.call", 0, 100);
        let b = log.start_span("rpc.attempt", 0, 110);
        log.end_span(b, 150, SpanOutcome::Ok);
        log.end_span(a, 160, SpanOutcome::Ok);
        let c = log.start_span("rpc.call", 0, 200);
        log.end_span(c, 210, SpanOutcome::Fault);

        let spans = log.spans();
        assert_eq!(spans.len(), 3);
        assert_eq!(spans[0].trace_id, 1);
        assert_eq!(spans[0].parent_span_id, 0);
        assert_eq!(spans[1].trace_id, 1);
        assert_eq!(spans[1].parent_span_id, spans[0].span_id);
        // A root opened after the first trace closed starts a new trace.
        assert_eq!(spans[2].trace_id, 2);
        assert_eq!(spans[2].outcome, SpanOutcome::Fault);
        assert_eq!(spans[1].duration_ns(), 40);
    }

    #[test]
    fn server_span_adopts_wire_context() {
        let mut log = SpanLog::new();
        let ctx = TraceContext {
            trace_id: 7,
            span_id: 42,
            parent_span_id: 3,
        };
        let s = log.start_server_span("serve.call", 1, 500, ctx);
        log.end_span(s, 600, SpanOutcome::Ok);
        let span = &log.spans()[0];
        assert_eq!(span.trace_id, 7);
        assert_eq!(span.parent_span_id, 42);
        // A NONE context starts a fresh local trace instead.
        let s2 = log.start_server_span("serve.call", 1, 700, TraceContext::NONE);
        log.end_span(s2, 800, SpanOutcome::Ok);
        assert_eq!(log.spans()[1].trace_id, 1);
        assert_eq!(log.spans()[1].parent_span_id, 0);
    }

    #[test]
    fn current_context_tracks_the_open_stack() {
        let mut log = SpanLog::new();
        assert!(log.current_context().is_none());
        let a = log.start_span("rpc.call", 0, 0);
        let actx = log.current_context();
        assert_eq!(actx, log.context_of(a));
        let b = log.start_span("serve.call", 1, 10);
        assert_eq!(log.current_context().span_id, log.span_id_of(b));
        log.end_span(b, 20, SpanOutcome::Ok);
        assert_eq!(log.current_context(), actx);
        log.end_span(a, 30, SpanOutcome::Ok);
        assert!(log.current_context().is_none());
    }

    #[test]
    fn end_span_removes_by_position() {
        let mut log = SpanLog::new();
        let a = log.start_span("outer", 0, 0);
        let b = log.start_span("inner", 0, 1);
        // Close out of order: outer first.
        log.end_span(a, 10, SpanOutcome::Ok);
        log.end_span(b, 11, SpanOutcome::Ok);
        assert!(log.current_context().is_none());
    }

    #[test]
    fn attrs_and_retry_links() {
        let mut log = SpanLog::new();
        let a = log.start_span("rpc.attempt", 0, 0);
        log.set_attr(a, "attempt", 2u64);
        log.set_attr(a, "method", "n(J)J");
        log.set_attr(a, "cached", true);
        log.set_retry_of(a, 17);
        log.end_span(a, 5, SpanOutcome::NetFailure);
        let span = &log.spans()[0];
        assert_eq!(span.attr("attempt"), Some(&AttrValue::U64(2)));
        assert_eq!(span.attr_str("method"), Some("n(J)J"));
        assert_eq!(span.attr("cached"), Some(&AttrValue::Bool(true)));
        assert_eq!(span.retry_of, Some(17));
        assert_eq!(span.outcome.label(), "net_failure");
    }

    #[test]
    fn link_percentiles_nearest_rank() {
        let mut log = SpanLog::new();
        for ns in [10, 20, 30, 40, 50, 60, 70, 80, 90, 100] {
            log.record_link(0, 1, ns);
        }
        log.record_link(2, 0, 7);
        let links = log.link_percentiles();
        assert_eq!(links.len(), 2);
        assert_eq!(links[0].from, 0);
        assert_eq!(links[0].to, 1);
        assert_eq!(links[0].count, 10);
        assert_eq!(links[0].p50, 50);
        assert_eq!(links[0].p95, 100);
        assert_eq!(links[0].p99, 100);
        assert_eq!(
            links[1],
            LinkSummary {
                from: 2,
                to: 0,
                count: 1,
                p50: 7,
                p95: 7,
                p99: 7
            }
        );
    }

    #[test]
    fn critical_path_follows_last_started_child() {
        let mut log = SpanLog::new();
        let root = log.start_span("rpc.call", 0, 0);
        let fast = log.start_span("rpc.attempt", 0, 1);
        log.end_span(fast, 5, SpanOutcome::NetFailure);
        let slow = log.start_span("rpc.attempt", 0, 6);
        let serve = log.start_server_span("serve.call", 1, 8, log.context_of(slow));
        log.end_span(serve, 20, SpanOutcome::Ok);
        log.end_span(slow, 25, SpanOutcome::Ok);
        log.end_span(root, 30, SpanOutcome::Ok);

        let path: Vec<&'static str> = log.critical_path(1).iter().map(|s| s.name).collect();
        assert_eq!(path, vec!["rpc.call", "rpc.attempt", "serve.call"]);
        assert!(log.critical_path(99).is_empty());
    }
}
