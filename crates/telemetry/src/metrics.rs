//! Labeled metrics registry: the single write path for runtime counters.
//!
//! Before this module every subsystem kept its own ad-hoc `u64` fields
//! (`RuntimeStats`, `NetStats`, the cache/batch/failover counters, the
//! buffer pool) and `Cluster::stats()` hand-merged them after the fact.
//! The registry inverts that: subsystems register *handles* once — a
//! metric name plus a label set such as `node="2"` — and bump them through
//! the handle on the hot path (an index into a flat vector; no hashing,
//! no string work). Merged views like `RuntimeStats` become *reads* of
//! the registry instead of the storage itself.
//!
//! Determinism: handles are allocated in registration order, iteration is
//! registration order within a metric name and first-registration order
//! across names, and both exporters ([`MetricsRegistry::prometheus_text`]
//! and [`MetricsRegistry::json_lines`]) are pure functions of the stored
//! values — same seed, byte-identical output. `ci.sh` diffs both exports
//! across two runs as a determinism gate.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Handle to a registered counter (monotone `u64`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Counter(usize);

/// Handle to a registered gauge (instantaneous `f64`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Gauge(usize);

/// Handle to a registered fixed-bucket histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Histogram(usize);

#[derive(Debug, Clone, PartialEq)]
enum MetricValue {
    Counter(u64),
    Gauge(f64),
    Histogram {
        /// Inclusive upper bounds, strictly increasing. An implicit
        /// overflow bucket (`+Inf`) follows the last bound.
        bounds: Vec<u64>,
        /// Per-bucket observation counts, `bounds.len() + 1` long.
        counts: Vec<u64>,
        sum: u64,
    },
}

impl MetricValue {
    fn kind(&self) -> &'static str {
        match self {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge(_) => "gauge",
            MetricValue::Histogram { .. } => "histogram",
        }
    }
}

#[derive(Debug, Clone)]
struct Entry {
    name: String,
    /// Sorted by label key at registration; rendered in that order.
    labels: Vec<(String, String)>,
    value: MetricValue,
}

/// A registry of labeled counters, gauges and histograms.
///
/// Registration is idempotent: registering the same `(name, labels)` pair
/// again returns the existing handle (and panics if the metric kind
/// differs — that is a programming error, not a runtime condition).
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    entries: Vec<Entry>,
    index: BTreeMap<(String, Vec<(String, String)>), usize>,
    /// Metric names in first-registration order (export grouping order).
    name_order: Vec<String>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of registered metric series (one per `(name, labels)` pair).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the registry has no series.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    fn register(&mut self, name: &str, labels: &[(&str, &str)], value: MetricValue) -> usize {
        let mut labels: Vec<(String, String)> = labels
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect();
        labels.sort();
        let key = (name.to_string(), labels.clone());
        if let Some(&i) = self.index.get(&key) {
            assert_eq!(
                self.entries[i].value.kind(),
                value.kind(),
                "metric {name} re-registered with a different kind"
            );
            return i;
        }
        if !self.name_order.iter().any(|n| n == name) {
            self.name_order.push(name.to_string());
        }
        let i = self.entries.len();
        self.entries.push(Entry {
            name: name.to_string(),
            labels,
            value,
        });
        self.index.insert(key, i);
        i
    }

    /// Register (or look up) a counter series.
    pub fn register_counter(&mut self, name: &str, labels: &[(&str, &str)]) -> Counter {
        Counter(self.register(name, labels, MetricValue::Counter(0)))
    }

    /// Register (or look up) a gauge series.
    pub fn register_gauge(&mut self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        Gauge(self.register(name, labels, MetricValue::Gauge(0.0)))
    }

    /// Register (or look up) a histogram series with the given inclusive
    /// upper bounds (strictly increasing; an overflow bucket is implicit).
    pub fn register_histogram(
        &mut self,
        name: &str,
        labels: &[(&str, &str)],
        bounds: Vec<u64>,
    ) -> Histogram {
        assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "bounds must increase"
        );
        let counts = vec![0; bounds.len() + 1];
        Histogram(self.register(
            name,
            labels,
            MetricValue::Histogram {
                bounds,
                counts,
                sum: 0,
            },
        ))
    }

    /// Increment a counter by 1.
    pub fn inc(&mut self, c: Counter) {
        self.add(c, 1);
    }

    /// Increment a counter by `v`.
    pub fn add(&mut self, c: Counter, v: u64) {
        match &mut self.entries[c.0].value {
            MetricValue::Counter(cur) => *cur += v,
            _ => unreachable!("handle kind is checked at registration"),
        }
    }

    /// Current value of a counter.
    pub fn counter_value(&self, c: Counter) -> u64 {
        match &self.entries[c.0].value {
            MetricValue::Counter(cur) => *cur,
            _ => unreachable!("handle kind is checked at registration"),
        }
    }

    /// Set a gauge to `v`.
    pub fn set(&mut self, g: Gauge, v: f64) {
        match &mut self.entries[g.0].value {
            MetricValue::Gauge(cur) => *cur = v,
            _ => unreachable!("handle kind is checked at registration"),
        }
    }

    /// Current value of a gauge.
    pub fn gauge_value(&self, g: Gauge) -> f64 {
        match &self.entries[g.0].value {
            MetricValue::Gauge(cur) => *cur,
            _ => unreachable!("handle kind is checked at registration"),
        }
    }

    /// Record one observation of `v` in a histogram.
    pub fn observe(&mut self, h: Histogram, v: u64) {
        match &mut self.entries[h.0].value {
            MetricValue::Histogram {
                bounds,
                counts,
                sum,
            } => {
                let i = bounds.iter().position(|&b| v <= b).unwrap_or(bounds.len());
                counts[i] += 1;
                *sum += v;
            }
            _ => unreachable!("handle kind is checked at registration"),
        }
    }

    /// Per-bucket observation counts of a histogram (`bounds + 1` long;
    /// the last slot is the overflow bucket).
    pub fn histogram_counts(&self, h: Histogram) -> &[u64] {
        match &self.entries[h.0].value {
            MetricValue::Histogram { counts, .. } => counts,
            _ => unreachable!("handle kind is checked at registration"),
        }
    }

    /// Sum of every counter series registered under `name` (across all
    /// label sets). Gauge/histogram series under the name contribute 0.
    pub fn sum_counters(&self, name: &str) -> u64 {
        self.entries
            .iter()
            .filter(|e| e.name == name)
            .map(|e| match &e.value {
                MetricValue::Counter(v) => *v,
                _ => 0,
            })
            .sum()
    }

    fn render_labels(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
        let mut parts: Vec<String> = labels.iter().map(|(k, v)| format!("{k}=\"{v}\"")).collect();
        if let Some((k, v)) = extra {
            parts.push(format!("{k}=\"{v}\""));
        }
        if parts.is_empty() {
            String::new()
        } else {
            format!("{{{}}}", parts.join(","))
        }
    }

    /// Render every series in Prometheus text-exposition format.
    ///
    /// Metric names appear in first-registration order, each prefixed by
    /// one `# TYPE` line; series within a name appear in registration
    /// order. Histograms render cumulative `_bucket{le=...}` series plus
    /// `_sum` and `_count`. The output is deterministic.
    pub fn prometheus_text(&self) -> String {
        let mut out = String::new();
        for name in &self.name_order {
            let entries: Vec<&Entry> = self.entries.iter().filter(|e| &e.name == name).collect();
            let kind = entries[0].value.kind();
            let _ = writeln!(out, "# TYPE {name} {kind}");
            for e in entries {
                match &e.value {
                    MetricValue::Counter(v) => {
                        let labels = Self::render_labels(&e.labels, None);
                        let _ = writeln!(out, "{name}{labels} {v}");
                    }
                    MetricValue::Gauge(v) => {
                        let labels = Self::render_labels(&e.labels, None);
                        let _ = writeln!(out, "{name}{labels} {}", fmt_f64(*v));
                    }
                    MetricValue::Histogram {
                        bounds,
                        counts,
                        sum,
                    } => {
                        let mut cum = 0u64;
                        for (i, c) in counts.iter().enumerate() {
                            cum += c;
                            let le = match bounds.get(i) {
                                Some(b) => b.to_string(),
                                None => "+Inf".to_string(),
                            };
                            let labels = Self::render_labels(&e.labels, Some(("le", &le)));
                            let _ = writeln!(out, "{name}_bucket{labels} {cum}");
                        }
                        let labels = Self::render_labels(&e.labels, None);
                        let _ = writeln!(out, "{name}_sum{labels} {sum}");
                        let _ = writeln!(out, "{name}_count{labels} {cum}");
                    }
                }
            }
        }
        out
    }

    /// Render every series as JSON lines (one object per line), in the
    /// same deterministic order as [`MetricsRegistry::prometheus_text`].
    pub fn json_lines(&self) -> String {
        let mut out = String::new();
        for name in &self.name_order {
            for e in self.entries.iter().filter(|e| &e.name == name) {
                let labels = e
                    .labels
                    .iter()
                    .map(|(k, v)| {
                        format!(
                            "\"{}\":\"{}\"",
                            crate::chrome::escape_json(k),
                            crate::chrome::escape_json(v)
                        )
                    })
                    .collect::<Vec<_>>()
                    .join(",");
                let head = format!(
                    "{{\"name\":\"{}\",\"type\":\"{}\",\"labels\":{{{labels}}}",
                    crate::chrome::escape_json(name),
                    e.value.kind()
                );
                match &e.value {
                    MetricValue::Counter(v) => {
                        let _ = writeln!(out, "{head},\"value\":{v}}}");
                    }
                    MetricValue::Gauge(v) => {
                        let _ = writeln!(out, "{head},\"value\":{}}}", fmt_f64(*v));
                    }
                    MetricValue::Histogram {
                        bounds,
                        counts,
                        sum,
                    } => {
                        let b = bounds
                            .iter()
                            .map(u64::to_string)
                            .collect::<Vec<_>>()
                            .join(",");
                        let c = counts
                            .iter()
                            .map(u64::to_string)
                            .collect::<Vec<_>>()
                            .join(",");
                        let count: u64 = counts.iter().sum();
                        let _ = writeln!(
                            out,
                            "{head},\"bounds\":[{b}],\"counts\":[{c}],\
                             \"sum\":{sum},\"count\":{count}}}"
                        );
                    }
                }
            }
        }
        out
    }
}

/// Deterministic `f64` rendering for the exporters: finite values use
/// Rust's shortest-roundtrip `Display`; non-finite values clamp to 0 so
/// the output stays valid Prometheus/JSON.
pub(crate) fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent_and_order_stable() {
        let mut reg = MetricsRegistry::new();
        let a = reg.register_counter("calls", &[("node", "0")]);
        let b = reg.register_counter("calls", &[("node", "1")]);
        let a2 = reg.register_counter("calls", &[("node", "0")]);
        assert_eq!(a, a2);
        assert_ne!(a, b);
        reg.inc(a);
        reg.add(b, 4);
        assert_eq!(reg.counter_value(a), 1);
        assert_eq!(reg.sum_counters("calls"), 5);
        assert_eq!(reg.len(), 2);
    }

    #[test]
    fn label_order_is_normalised() {
        let mut reg = MetricsRegistry::new();
        let a = reg.register_counter("x", &[("b", "2"), ("a", "1")]);
        let b = reg.register_counter("x", &[("a", "1"), ("b", "2")]);
        assert_eq!(a, b, "label order must not create distinct series");
        assert!(reg.prometheus_text().contains("x{a=\"1\",b=\"2\"} 0"));
    }

    #[test]
    fn histogram_buckets_are_inclusive_and_cumulative() {
        let mut reg = MetricsRegistry::new();
        let h = reg.register_histogram("lat", &[], vec![1, 2, 4]);
        for v in [0, 1, 2, 3, 4, 5, 100] {
            reg.observe(h, v);
        }
        // le=1 gets {0,1}, le=2 gets {2}, le=4 gets {3,4}, +Inf gets {5,100}.
        assert_eq!(reg.histogram_counts(h), &[2, 1, 2, 2]);
        let text = reg.prometheus_text();
        assert!(text.contains("lat_bucket{le=\"1\"} 2"));
        assert!(text.contains("lat_bucket{le=\"2\"} 3"));
        assert!(text.contains("lat_bucket{le=\"4\"} 5"));
        assert!(text.contains("lat_bucket{le=\"+Inf\"} 7"));
        assert!(text.contains("lat_sum 115"));
        assert!(text.contains("lat_count 7"));
    }

    #[test]
    fn exports_are_deterministic() {
        let build = || {
            let mut reg = MetricsRegistry::new();
            let c = reg.register_counter("calls", &[("node", "0")]);
            let g = reg.register_gauge("depth", &[("node", "0")]);
            let h = reg.register_histogram("lat", &[("node", "0")], vec![1, 8]);
            reg.inc(c);
            reg.set(g, 0.75);
            reg.observe(h, 3);
            (reg.prometheus_text(), reg.json_lines())
        };
        assert_eq!(build(), build());
        let (prom, json) = build();
        assert!(prom.contains("# TYPE calls counter"));
        assert!(prom.contains("depth{node=\"0\"} 0.75"));
        for line in json.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'));
        }
        assert!(json.contains("\"type\":\"gauge\""));
    }
}
