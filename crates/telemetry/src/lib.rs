//! # rafda-telemetry
//!
//! Causal distributed tracing for the RAFDA cluster.
//!
//! The paper's point is that distribution boundaries are re-drawn at
//! runtime; the follow-up RAFDA work makes placement a *policy* decision
//! driven by observed behaviour. Flat counters (`NetStats`,
//! `RuntimeStats`) say *how much* traffic crossed a boundary but not *who
//! called whom through which proxy* or *where the time went*. This crate
//! supplies that missing causal signal:
//!
//! * [`TraceContext`] — a `{trace_id, span_id, parent_span_id}` triple
//!   carried in every wire frame header (all three protocol families), so
//!   the serving node's work is causally linked to the calling node's span,
//!   through arbitrarily nested proxy→proxy chains;
//! * [`SpanLog`] — spans charged to the **simulated** clock. Every RPC
//!   exchange, transmission attempt, server dispatch, migration and
//!   boundary pull opens a span with typed attributes (method signature,
//!   protocol, bytes, attempt number, outcome). With the same seed the log
//!   is byte-identical across runs;
//! * derived views — per-`(class, method, protocol)` latency histograms
//!   with [fixed bucket boundaries](BUCKET_BOUNDS_NS), per-link p50/p95/p99
//!   summaries, and a critical-path extractor for any trace;
//! * exporters — Chrome trace-event JSON (loadable in `chrome://tracing` or
//!   Perfetto) and a deterministic text report of the slowest spans and
//!   hottest methods.
//!
//! The crate is a leaf: it depends on nothing, takes timestamps as raw
//! nanoseconds and nodes as raw `u32` ids, and both the network and wire
//! crates can sit on top of it.

#![warn(missing_docs)]

pub mod chrome;
pub mod histogram;
pub mod metrics;
pub mod monitor;
pub mod report;
pub mod span;
pub mod timeseries;

pub use histogram::{LatencyHistogram, MethodKey, BUCKET_BOUNDS_NS};
pub use metrics::{Counter, Gauge, Histogram, MetricsRegistry};
pub use monitor::{
    standard_monitors, AtMostOnceMonitor, Monitor, MonitorEvent, ReplicaDivergenceMonitor,
    SpanTreeMonitor, StaleReadMonitor, Violation,
};
pub use span::{AttrValue, LinkSummary, Span, SpanHandle, SpanLog, SpanOutcome};
pub use timeseries::{SeriesId, TimeSeriesRecorder};

use std::fmt;

/// The causal context carried in every wire frame header (the simulation's
/// analogue of a W3C `traceparent`).
///
/// A remote call made while span `S` of trace `T` is open travels with
/// `{trace_id: T, span_id: S, parent_span_id: parent(S)}`; the serving node
/// opens its dispatch span as a child of `S` under the same trace, which is
/// what stitches a multi-hop proxy chain (client → A → B → C) into one
/// causal tree.
///
/// Id `0` is reserved: [`TraceContext::NONE`] marks a frame from an
/// uninstrumented peer and starts a fresh trace at the receiver.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct TraceContext {
    /// The trace every span of one causal chain shares. Retransmissions
    /// reuse it.
    pub trace_id: u64,
    /// The sending span (the receiver's parent).
    pub span_id: u64,
    /// The sending span's own parent (0 for a root span).
    pub parent_span_id: u64,
}

impl TraceContext {
    /// The absent context (pre-tracing peers decode as this).
    pub const NONE: TraceContext = TraceContext {
        trace_id: 0,
        span_id: 0,
        parent_span_id: 0,
    };

    /// Whether this is the absent context.
    pub fn is_none(&self) -> bool {
        self.trace_id == 0 && self.span_id == 0
    }
}

impl fmt::Display for TraceContext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:016x}:{:08x}<{:08x}",
            self.trace_id, self.span_id, self.parent_span_id
        )
    }
}
