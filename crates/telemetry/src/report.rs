//! Deterministic text report: top slowest spans, hottest methods, per-link
//! percentiles.
//!
//! Ordering rules are total and explicit (duration, then start time, then
//! span id; total time, then key), so the table is byte-identical across
//! runs with the same seed — it is safe to snapshot in golden tests.

use crate::span::SpanLog;
use std::fmt::Write as _;

impl SpanLog {
    /// Render the "top slowest spans / hottest methods / link latency"
    /// table, limiting the span and method sections to `top` rows each.
    pub fn report(&self, top: usize) -> String {
        let mut out = String::new();

        let _ = writeln!(out, "top {top} slowest spans (simulated ns):");
        let _ = writeln!(
            out,
            "  {:<12} {:>10} {:>5}  {:<8} detail",
            "name", "dur", "node", "trace"
        );
        let mut slowest: Vec<&crate::Span> = self.spans().iter().collect();
        slowest.sort_by_key(|s| (std::cmp::Reverse(s.duration_ns()), s.start_ns, s.span_id));
        for span in slowest.iter().take(top) {
            let mut detail = String::new();
            for key in ["class", "method", "protocol", "outcome"] {
                let text = match key {
                    "outcome" => Some(span.outcome.label().to_string()),
                    _ => span.attr_str(key).map(str::to_string),
                };
                if let Some(text) = text {
                    if !detail.is_empty() {
                        detail.push(' ');
                    }
                    let _ = write!(detail, "{text}");
                }
            }
            let _ = writeln!(
                out,
                "  {:<12} {:>10} {:>5}  {:<8x} {}",
                span.name,
                span.duration_ns(),
                span.node,
                span.trace_id,
                detail
            );
        }

        let _ = writeln!(out, "hottest methods (by total simulated ns):");
        let _ = writeln!(
            out,
            "  {:<24} {:>6} {:>12} {:>10} {:>10} {:>10}",
            "class.method [proto]", "calls", "total", "mean", "p95", "max"
        );
        let hists = self.method_histograms();
        let mut hottest: Vec<_> = hists.iter().collect();
        hottest.sort_by(|(ka, a), (kb, b)| b.sum.cmp(&a.sum).then_with(|| ka.cmp(kb)));
        for (key, hist) in hottest.iter().take(top) {
            let _ = writeln!(
                out,
                "  {:<24} {:>6} {:>12} {:>10} {:>10} {:>10}",
                format!("{}.{} [{}]", key.class, key.method, key.protocol),
                hist.count,
                hist.sum,
                hist.mean(),
                hist.percentile(95),
                hist.max
            );
        }

        let links = self.link_percentiles();
        if !links.is_empty() {
            let _ = writeln!(out, "per-link round-trip latency (simulated ns):");
            let _ = writeln!(
                out,
                "  {:<7} {:>6} {:>10} {:>10} {:>10}",
                "link", "count", "p50", "p95", "p99"
            );
            for link in links {
                let _ = writeln!(
                    out,
                    "  {:<7} {:>6} {:>10} {:>10} {:>10}",
                    format!("{}->{}", link.from, link.to),
                    link.count,
                    link.p50,
                    link.p95,
                    link.p99
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::SpanOutcome;

    fn sample_log() -> SpanLog {
        let mut log = SpanLog::new();
        for (method, dur) in [("n(J)J", 40_000_u64), ("p(I)I", 9_000)] {
            let s = log.start_span("rpc.call", 0, 100);
            log.set_attr(s, "class", "Y");
            log.set_attr(s, "method", method);
            log.set_attr(s, "protocol", "RMI");
            log.end_span(s, 100 + dur, SpanOutcome::Ok);
        }
        log.record_link(0, 1, 12_000);
        log.record_link(0, 1, 14_000);
        log
    }

    #[test]
    fn report_is_deterministic_and_ranked() {
        let a = sample_log().report(5);
        let b = sample_log().report(5);
        assert_eq!(a, b);
        // Slowest span first, hottest method first.
        let lines: Vec<&str> = a.lines().collect();
        assert!(lines[0].starts_with("top 5 slowest spans"));
        assert!(lines[1].contains("name"));
        assert!(lines[2].contains("40000"), "slowest first: {a}");
        assert!(lines[2].contains("n(J)J"));
        assert!(lines[3].contains("9000"));
        let hot = a
            .lines()
            .position(|l| l.starts_with("hottest methods"))
            .unwrap();
        assert!(a.lines().nth(hot + 2).unwrap().contains("Y.n(J)J [RMI]"));
        assert!(a.contains("0->1"));
        assert!(a.contains("14000"));
    }

    #[test]
    fn top_limits_rows() {
        let report = sample_log().report(1);
        assert_eq!(report.lines().filter(|l| l.contains("rpc.call")).count(), 1);
    }
}
