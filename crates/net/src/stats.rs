//! Per-link and aggregate traffic statistics.
//!
//! The adaptive distribution policy (experiment E6) reads these counters to
//! find "chatty" remote pairs and re-draw the distribution boundary around
//! them.

use crate::{NetError, NodeId, SimTime};
use std::collections::HashMap;

/// Counters for one directed link.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Messages delivered.
    pub messages: u64,
    /// Payload bytes delivered.
    pub bytes: u64,
    /// Total simulated transmission time.
    pub time_ns: u64,
}

impl LinkStats {
    /// Mean latency per message.
    pub fn mean_latency(&self) -> SimTime {
        self.time_ns
            .checked_div(self.messages)
            .map(SimTime::from_ns)
            .unwrap_or(SimTime::ZERO)
    }
}

/// Aggregate network statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NetStats {
    /// Messages delivered (all links).
    pub messages: u64,
    /// Bytes delivered (all links).
    pub bytes: u64,
    /// Failed transmissions (drops + partitions + crashes).
    pub failures: u64,
    /// Messages lost to drop injection.
    pub drops: u64,
    /// Transmissions refused because the pair was partitioned.
    pub partition_failures: u64,
    /// Transmissions refused because an endpoint was crashed.
    pub crash_failures: u64,
    /// Simulated time charged to failed transmissions (detection cost).
    pub failed_time_ns: u64,
    links: HashMap<(NodeId, NodeId), LinkStats>,
}

impl NetStats {
    /// Record a successful delivery.
    pub(crate) fn record(&mut self, from: NodeId, to: NodeId, bytes: usize, cost_ns: u64) {
        self.messages += 1;
        self.bytes += bytes as u64;
        let link = self.links.entry((from, to)).or_default();
        link.messages += 1;
        link.bytes += bytes as u64;
        link.time_ns += cost_ns;
    }

    /// Record a failed transmission and the time spent detecting it.
    pub(crate) fn record_failure(&mut self, err: &NetError, cost_ns: u64) {
        self.failures += 1;
        self.failed_time_ns += cost_ns;
        match err {
            NetError::Dropped => self.drops += 1,
            NetError::Partitioned { .. } => self.partition_failures += 1,
            NetError::NodeCrashed(_) => self.crash_failures += 1,
            NetError::NoSuchNode(_) => {}
        }
    }

    /// Counters for the directed link `(from, to)`.
    pub fn link(&self, from: NodeId, to: NodeId) -> LinkStats {
        self.links.get(&(from, to)).copied().unwrap_or_default()
    }

    /// Iterate all directed links with traffic.
    pub fn links(&self) -> impl Iterator<Item = (NodeId, NodeId, LinkStats)> + '_ {
        self.links.iter().map(|(&(f, t), &s)| (f, t, s))
    }

    /// Total bytes exchanged between a pair (both directions).
    pub fn pair_bytes(&self, a: NodeId, b: NodeId) -> u64 {
        self.link(a, b).bytes + self.link(b, a).bytes
    }

    /// The directed link with the most traffic, if any. Ties on byte count
    /// resolve to the smallest `(from, to)` pair — `links` iterates a
    /// `HashMap`, and without a total order equal-traffic links would win
    /// by hash-iteration order, varying across runs.
    pub fn busiest_link(&self) -> Option<(NodeId, NodeId, LinkStats)> {
        use std::cmp::Reverse;
        self.links()
            .max_by_key(|&(f, t, s)| (s.bytes, Reverse(f), Reverse(t)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_accumulates_per_link_and_total() {
        let mut s = NetStats::default();
        s.record(NodeId(0), NodeId(1), 100, 10);
        s.record(NodeId(0), NodeId(1), 50, 20);
        s.record(NodeId(1), NodeId(0), 25, 5);
        assert_eq!(s.messages, 3);
        assert_eq!(s.bytes, 175);
        assert_eq!(s.link(NodeId(0), NodeId(1)).messages, 2);
        assert_eq!(s.link(NodeId(0), NodeId(1)).bytes, 150);
        assert_eq!(s.pair_bytes(NodeId(0), NodeId(1)), 175);
        assert_eq!(s.pair_bytes(NodeId(1), NodeId(0)), 175);
    }

    #[test]
    fn mean_latency_handles_zero() {
        assert_eq!(LinkStats::default().mean_latency(), SimTime::ZERO);
        let mut s = NetStats::default();
        s.record(NodeId(0), NodeId(1), 1, 30);
        s.record(NodeId(0), NodeId(1), 1, 10);
        assert_eq!(
            s.link(NodeId(0), NodeId(1)).mean_latency(),
            SimTime::from_ns(20)
        );
    }

    #[test]
    fn busiest_link_found() {
        let mut s = NetStats::default();
        assert!(s.busiest_link().is_none());
        s.record(NodeId(0), NodeId(1), 10, 1);
        s.record(NodeId(2), NodeId(1), 500, 1);
        let (f, t, l) = s.busiest_link().unwrap();
        assert_eq!((f, t), (NodeId(2), NodeId(1)));
        assert_eq!(l.bytes, 500);
    }

    #[test]
    fn busiest_link_breaks_byte_ties_deterministically() {
        // Two links with identical byte counts: the winner must be the
        // smallest (from, to), not whichever the HashMap yields first.
        let mut s = NetStats::default();
        s.record(NodeId(3), NodeId(0), 500, 1);
        s.record(NodeId(1), NodeId(2), 500, 1);
        let (f, t, l) = s.busiest_link().unwrap();
        assert_eq!((f, t), (NodeId(1), NodeId(2)));
        assert_eq!(l.bytes, 500);
        // Same data inserted in the opposite order gives the same answer.
        let mut s2 = NetStats::default();
        s2.record(NodeId(1), NodeId(2), 500, 1);
        s2.record(NodeId(3), NodeId(0), 500, 1);
        let (f2, t2, _) = s2.busiest_link().unwrap();
        assert_eq!((f2, t2), (f, t));
        // A same-source tie resolves on the destination.
        let mut s3 = NetStats::default();
        s3.record(NodeId(1), NodeId(4), 500, 1);
        s3.record(NodeId(1), NodeId(2), 500, 1);
        assert_eq!(s3.busiest_link().unwrap().1, NodeId(2));
    }
}
