//! Simulated time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point (or span) of simulated time, in nanoseconds since simulation
/// start. Charged by [`Network::transmit`](crate::Network::transmit); never
/// advanced by wall-clock time, so all latency measurements are
/// deterministic.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SimTime(u64);

impl SimTime {
    /// Simulation epoch.
    pub const ZERO: SimTime = SimTime(0);

    /// From raw nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns)
    }

    /// From microseconds.
    pub const fn from_us(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// From milliseconds.
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Raw nanoseconds.
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// As fractional microseconds.
    pub fn as_us(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// As fractional milliseconds.
    pub fn as_ms(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Saturating difference.
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_ms())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}µs", self.as_us())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_roundtrip() {
        assert_eq!(SimTime::from_ms(2).as_ns(), 2_000_000);
        assert_eq!(SimTime::from_us(3).as_ns(), 3_000);
        assert_eq!(SimTime::from_ms(1).as_ms(), 1.0);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_ns(100);
        let b = SimTime::from_ns(40);
        assert_eq!(a + b, SimTime::from_ns(140));
        assert_eq!(a - b, SimTime::from_ns(60));
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        let mut c = a;
        c += b;
        assert_eq!(c.as_ns(), 140);
    }

    #[test]
    fn display_picks_scale() {
        assert_eq!(SimTime::from_ns(12).to_string(), "12ns");
        assert_eq!(SimTime::from_us(12).to_string(), "12.000µs");
        assert_eq!(SimTime::from_ms(12).to_string(), "12.000ms");
    }
}
