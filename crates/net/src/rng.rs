//! A tiny deterministic PRNG (SplitMix64).
//!
//! The network needs reproducible jitter and drop decisions that are stable
//! across library versions, so we use the well-known SplitMix64 generator
//! rather than an external dependency whose stream might change.

/// SplitMix64 state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeded construction; equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[0, n)`; `n` must be non-zero.
    ///
    /// Uses rejection sampling: a bare `next_u64() % n` over-weights the
    /// low residues whenever `n` does not divide `2^64`, which would skew
    /// jitter (and anything else sampled from a bound) towards small
    /// values.
    pub fn next_below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0, "next_below(0)");
        if n.is_power_of_two() {
            return self.next_u64() & (n - 1);
        }
        // Largest multiple of n representable in u64; values at or above
        // it would alias onto the low residues, so re-draw (at most once
        // in expectation even for the worst-case n).
        let zone = u64::MAX - u64::MAX % n;
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % n;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(43);
        assert_ne!(SplitMix64::new(42).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SplitMix64::new(7);
        for _ in 0..1000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn f64_is_roughly_uniform() {
        let mut r = SplitMix64::new(123);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| r.next_f64()).sum::<f64>() / f64::from(n);
        assert!((mean - 0.5).abs() < 0.02, "mean = {mean}");
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SplitMix64::new(9);
        for _ in 0..1000 {
            assert!(r.next_below(17) < 17);
        }
    }

    #[test]
    fn below_is_deterministic_and_covers_residues() {
        let seq = |seed| {
            let mut r = SplitMix64::new(seed);
            (0..64).map(|_| r.next_below(11)).collect::<Vec<_>>()
        };
        assert_eq!(seq(5), seq(5));
        let mut seen = [false; 11];
        for v in seq(5) {
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable: {seen:?}");
    }

    #[test]
    fn below_is_roughly_uniform_for_awkward_bounds() {
        // 3 * 2^62 does not divide 2^64: the naive modulo would put
        // probability 2/3 on residues < 2^62 instead of 1/3 on each third.
        let n = 3u64 << 62;
        let mut r = SplitMix64::new(77);
        let trials = 30_000;
        let low = (0..trials)
            .filter(|_| r.next_below(n) < (1u64 << 62))
            .count();
        let frac = low as f64 / f64::from(trials);
        assert!(
            (frac - 1.0 / 3.0).abs() < 0.02,
            "low-third fraction {frac} (biased modulo would give ~0.667)"
        );
    }
}
