//! Reusable encode buffers, pooled per directed link.
//!
//! Every RPC used to allocate a fresh `Vec<u8>` per frame, encode into it,
//! and drop it after transmission. On the hot path (E13) that allocation
//! dominates the encode cost for small frames. The pool keeps the vectors
//! of finished frames — cleared, capacity intact — keyed by the directed
//! link they served, so steady-state traffic on a link settles into a
//! small set of right-sized buffers and stops allocating altogether.
//!
//! A *stack* of free buffers per link (not a single slot) is required:
//! a re-entrant RPC (callee calls back into the caller mid-request) has
//! several frames for the same link in flight on the Rust stack at once.

use crate::NodeId;
use std::collections::HashMap;

/// How many free buffers a single directed link retains. Deeper nesting
/// than this simply falls back to allocation; the cap keeps a burst of
/// deeply-nested calls from pinning memory forever.
const PER_LINK_CAP: usize = 8;

/// Pool of reusable encode buffers, keyed by directed link.
#[derive(Debug, Default)]
pub struct BufPool {
    free: HashMap<(NodeId, NodeId), Vec<Vec<u8>>>,
    /// Per-directed-link `(reuses, allocs)`, so the metrics registry can
    /// attribute buffer traffic to the sending node.
    per_link: HashMap<(NodeId, NodeId), (u64, u64)>,
    reuses: u64,
    allocs: u64,
}

impl BufPool {
    /// An empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Take a cleared buffer for the directed link `(from, to)`, reusing a
    /// previously returned one when available.
    pub fn checkout(&mut self, from: NodeId, to: NodeId) -> Vec<u8> {
        let link = self.per_link.entry((from, to)).or_default();
        match self.free.get_mut(&(from, to)).and_then(Vec::pop) {
            Some(buf) => {
                self.reuses += 1;
                link.0 += 1;
                debug_assert!(buf.is_empty());
                buf
            }
            None => {
                self.allocs += 1;
                link.1 += 1;
                Vec::with_capacity(64)
            }
        }
    }

    /// Return a buffer to the pool of `(from, to)`. Its contents are
    /// cleared (capacity kept); buffers beyond the per-link cap are
    /// dropped.
    pub fn put_back(&mut self, from: NodeId, to: NodeId, mut buf: Vec<u8>) {
        buf.clear();
        let stack = self.free.entry((from, to)).or_default();
        if stack.len() < PER_LINK_CAP {
            stack.push(buf);
        }
    }

    /// Checkouts served from the pool (no allocation).
    pub fn reuses(&self) -> u64 {
        self.reuses
    }

    /// Checkouts that had to allocate a fresh buffer.
    pub fn allocs(&self) -> u64 {
        self.allocs
    }

    /// Pool-served checkouts on links originating at `from` (the sender
    /// owns the encode buffer, so reuse is charged to it).
    pub fn reuses_from(&self, from: NodeId) -> u64 {
        self.per_link
            .iter()
            .filter(|((f, _), _)| *f == from)
            .map(|(_, (reuses, _))| reuses)
            .sum()
    }

    /// Allocating checkouts on links originating at `from`.
    pub fn allocs_from(&self, from: NodeId) -> u64 {
        self.per_link
            .iter()
            .filter(|((f, _), _)| *f == from)
            .map(|(_, (_, allocs))| allocs)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn second_checkout_reuses_the_returned_buffer() {
        let mut pool = BufPool::new();
        let (a, b) = (NodeId(0), NodeId(1));
        let mut buf = pool.checkout(a, b);
        buf.extend_from_slice(&[1, 2, 3]);
        buf.reserve(500);
        let cap = buf.capacity();
        pool.put_back(a, b, buf);
        let again = pool.checkout(a, b);
        assert!(again.is_empty(), "pooled buffer must come back cleared");
        assert_eq!(again.capacity(), cap, "capacity survives the pool");
        assert_eq!((pool.reuses(), pool.allocs()), (1, 1));
        assert_eq!((pool.reuses_from(a), pool.allocs_from(a)), (1, 1));
        assert_eq!((pool.reuses_from(b), pool.allocs_from(b)), (0, 0));
    }

    #[test]
    fn per_link_counters_sum_to_the_globals() {
        let mut pool = BufPool::new();
        let nodes = [NodeId(0), NodeId(1), NodeId(2)];
        for from in nodes {
            for to in nodes {
                if from == to {
                    continue;
                }
                let buf = pool.checkout(from, to);
                pool.put_back(from, to, buf);
                let _ = pool.checkout(from, to);
            }
        }
        let (mut reuses, mut allocs) = (0, 0);
        for n in nodes {
            reuses += pool.reuses_from(n);
            allocs += pool.allocs_from(n);
        }
        assert_eq!(reuses, pool.reuses());
        assert_eq!(allocs, pool.allocs());
    }

    #[test]
    fn links_do_not_share_buffers() {
        let mut pool = BufPool::new();
        pool.put_back(NodeId(0), NodeId(1), Vec::new());
        let _ = pool.checkout(NodeId(1), NodeId(0));
        assert_eq!(pool.reuses(), 0, "reverse direction is a different link");
        let _ = pool.checkout(NodeId(0), NodeId(1));
        assert_eq!(pool.reuses(), 1);
    }

    #[test]
    fn nested_checkouts_get_distinct_buffers_and_cap_holds() {
        let mut pool = BufPool::new();
        let (a, b) = (NodeId(2), NodeId(3));
        // Re-entrant RPC: several frames on the same link live at once.
        let bufs: Vec<_> = (0..PER_LINK_CAP + 4).map(|_| pool.checkout(a, b)).collect();
        assert_eq!(pool.allocs(), (PER_LINK_CAP + 4) as u64);
        for buf in bufs {
            pool.put_back(a, b, buf);
        }
        // Only PER_LINK_CAP survive; the rest were dropped.
        for _ in 0..PER_LINK_CAP + 4 {
            let _ = pool.checkout(a, b);
        }
        assert_eq!(pool.reuses(), PER_LINK_CAP as u64);
    }
}
