//! Failure injection: drops, partitions, crashes.
//!
//! Changing an application to span address spaces "may introduce network
//! failure problems … it is impossible to guarantee full preservation of the
//! original application semantics" (paper, Section 4). The fault plan is how
//! the test suite introduces exactly those problems, deterministically.

use crate::NodeId;
use std::collections::HashSet;

/// The current set of injected faults. Mutated through
/// [`Network::fault_plan`](crate::Network::fault_plan).
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Probability in `[0, 1]` that any given message is dropped.
    pub drop_probability: f64,
    partitioned: HashSet<(NodeId, NodeId)>,
    crashed: HashSet<NodeId>,
    drop_seq: HashSet<u64>,
}

impl FaultPlan {
    /// Schedule the transmission with sequence number `seq` to be dropped.
    ///
    /// Sequence numbers index non-local transmission attempts, starting at
    /// zero ([`Network::transmit_seq`](crate::Network::transmit_seq) reads
    /// the next one to be assigned). Unlike `drop_probability` this is an
    /// exact, deterministic schedule — tests use it to kill a specific leg
    /// of a specific RPC, e.g. the reply of a mutating call, to exercise
    /// at-most-once retransmission.
    pub fn drop_message(&mut self, seq: u64) {
        self.drop_seq.insert(seq);
    }

    /// Whether the transmission with this sequence number is scheduled to
    /// be dropped.
    pub fn is_drop_scheduled(&self, seq: u64) -> bool {
        self.drop_seq.contains(&seq)
    }

    /// Clear all scheduled per-message drops.
    pub fn clear_scheduled_drops(&mut self) {
        self.drop_seq.clear();
    }
    /// Sever the (bidirectional) link between `a` and `b`.
    pub fn partition(&mut self, a: NodeId, b: NodeId) {
        self.partitioned.insert(key(a, b));
    }

    /// Restore the link between `a` and `b`.
    pub fn heal(&mut self, a: NodeId, b: NodeId) {
        self.partitioned.remove(&key(a, b));
    }

    /// Restore all links.
    pub fn heal_all(&mut self) {
        self.partitioned.clear();
    }

    /// Whether `a` and `b` cannot communicate.
    pub fn is_partitioned(&self, a: NodeId, b: NodeId) -> bool {
        self.partitioned.contains(&key(a, b))
    }

    /// Crash a node: all messages to or from it fail.
    pub fn crash(&mut self, n: NodeId) {
        self.crashed.insert(n);
    }

    /// Recover a crashed node.
    pub fn recover(&mut self, n: NodeId) {
        self.crashed.remove(&n);
    }

    /// Whether the node is crashed.
    pub fn is_crashed(&self, n: NodeId) -> bool {
        self.crashed.contains(&n)
    }

    /// Whether any fault is active.
    pub fn any_active(&self) -> bool {
        self.drop_probability > 0.0
            || !self.partitioned.is_empty()
            || !self.crashed.is_empty()
            || !self.drop_seq.is_empty()
    }
}

fn key(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_is_symmetric() {
        let mut f = FaultPlan::default();
        f.partition(NodeId(2), NodeId(1));
        assert!(f.is_partitioned(NodeId(1), NodeId(2)));
        assert!(f.is_partitioned(NodeId(2), NodeId(1)));
        f.heal(NodeId(1), NodeId(2));
        assert!(!f.is_partitioned(NodeId(2), NodeId(1)));
    }

    #[test]
    fn heal_all_clears_everything() {
        let mut f = FaultPlan::default();
        f.partition(NodeId(0), NodeId(1));
        f.partition(NodeId(1), NodeId(2));
        f.heal_all();
        assert!(!f.is_partitioned(NodeId(0), NodeId(1)));
        assert!(!f.is_partitioned(NodeId(1), NodeId(2)));
    }

    #[test]
    fn scheduled_drops_are_exact_and_clearable() {
        let mut f = FaultPlan::default();
        assert!(!f.any_active());
        f.drop_message(3);
        f.drop_message(7);
        assert!(f.any_active());
        assert!(f.is_drop_scheduled(3));
        assert!(!f.is_drop_scheduled(4));
        f.clear_scheduled_drops();
        assert!(!f.is_drop_scheduled(3));
        assert!(!f.any_active());
    }

    #[test]
    fn crash_and_recover() {
        let mut f = FaultPlan::default();
        assert!(!f.any_active());
        f.crash(NodeId(3));
        assert!(f.is_crashed(NodeId(3)));
        assert!(f.any_active());
        f.recover(NodeId(3));
        assert!(!f.is_crashed(NodeId(3)));
        assert!(!f.any_active());
    }
}
