//! Failure injection: drops, partitions, crashes.
//!
//! Changing an application to span address spaces "may introduce network
//! failure problems … it is impossible to guarantee full preservation of the
//! original application semantics" (paper, Section 4). The fault plan is how
//! the test suite introduces exactly those problems, deterministically.

use crate::NodeId;
use std::collections::HashSet;

/// The current set of injected faults. Mutated through
/// [`Network::fault_plan`](crate::Network::fault_plan).
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Probability in `[0, 1]` that any given message is dropped.
    pub drop_probability: f64,
    partitioned: HashSet<(NodeId, NodeId)>,
    crashed: HashSet<NodeId>,
}

impl FaultPlan {
    /// Sever the (bidirectional) link between `a` and `b`.
    pub fn partition(&mut self, a: NodeId, b: NodeId) {
        self.partitioned.insert(key(a, b));
    }

    /// Restore the link between `a` and `b`.
    pub fn heal(&mut self, a: NodeId, b: NodeId) {
        self.partitioned.remove(&key(a, b));
    }

    /// Restore all links.
    pub fn heal_all(&mut self) {
        self.partitioned.clear();
    }

    /// Whether `a` and `b` cannot communicate.
    pub fn is_partitioned(&self, a: NodeId, b: NodeId) -> bool {
        self.partitioned.contains(&key(a, b))
    }

    /// Crash a node: all messages to or from it fail.
    pub fn crash(&mut self, n: NodeId) {
        self.crashed.insert(n);
    }

    /// Recover a crashed node.
    pub fn recover(&mut self, n: NodeId) {
        self.crashed.remove(&n);
    }

    /// Whether the node is crashed.
    pub fn is_crashed(&self, n: NodeId) -> bool {
        self.crashed.contains(&n)
    }

    /// Whether any fault is active.
    pub fn any_active(&self) -> bool {
        self.drop_probability > 0.0 || !self.partitioned.is_empty() || !self.crashed.is_empty()
    }
}

fn key(a: NodeId, b: NodeId) -> (NodeId, NodeId) {
    if a <= b {
        (a, b)
    } else {
        (b, a)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_is_symmetric() {
        let mut f = FaultPlan::default();
        f.partition(NodeId(2), NodeId(1));
        assert!(f.is_partitioned(NodeId(1), NodeId(2)));
        assert!(f.is_partitioned(NodeId(2), NodeId(1)));
        f.heal(NodeId(1), NodeId(2));
        assert!(!f.is_partitioned(NodeId(2), NodeId(1)));
    }

    #[test]
    fn heal_all_clears_everything() {
        let mut f = FaultPlan::default();
        f.partition(NodeId(0), NodeId(1));
        f.partition(NodeId(1), NodeId(2));
        f.heal_all();
        assert!(!f.is_partitioned(NodeId(0), NodeId(1)));
        assert!(!f.is_partitioned(NodeId(1), NodeId(2)));
    }

    #[test]
    fn crash_and_recover() {
        let mut f = FaultPlan::default();
        assert!(!f.any_active());
        f.crash(NodeId(3));
        assert!(f.is_crashed(NodeId(3)));
        assert!(f.any_active());
        f.recover(NodeId(3));
        assert!(!f.is_crashed(NodeId(3)));
        assert!(!f.any_active());
    }
}
