//! # rafda-net
//!
//! A deterministic, in-process simulated network: the LAN substrate of the
//! RAFDA reproduction.
//!
//! The paper's runtime distributes a transformed application over a local
//! area network of JVMs and observes that semantics are preserved "modulo
//! network failure" (Section 4). This crate models that substrate:
//!
//! * a set of nodes (address spaces) joined by links with configurable
//!   latency, bandwidth and jitter (defaults calibrated to a 2003-era
//!   switched 100 Mbit/s LAN),
//! * a simulated clock ([`SimTime`]) charged for every transmission, giving
//!   reproducible latency numbers for the protocol experiments (E5),
//! * deterministic failure injection — message drops, link partitions and
//!   node crashes — driving the "modulo network failure" equivalence
//!   experiments (E7),
//! * per-link traffic statistics, which the adaptive distribution policy
//!   (E6) uses to decide which objects to migrate.
//!
//! The transport is synchronous: the distributed runtime performs re-entrant
//! RPCs (caller's interpreter frame suspended on the Rust stack while the
//! callee node executes), so the network only needs to account cost and
//! inject faults, not buffer messages.

#![warn(missing_docs)]

pub mod bufpool;
pub mod fault;
pub mod rng;
pub mod stats;
pub mod time;

pub use bufpool::BufPool;
pub use fault::FaultPlan;
pub use stats::{LinkStats, NetStats};
pub use time::SimTime;

use rng::SplitMix64;
use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

/// Identifier of a node (one simulated address space).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// Why a transmission failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetError {
    /// Source and destination are in different partitions.
    Partitioned {
        /// Transmitting node.
        from: NodeId,
        /// Unreachable destination.
        to: NodeId,
    },
    /// The destination (or source) node has crashed.
    NodeCrashed(NodeId),
    /// The message was dropped (per-link loss probability).
    Dropped,
    /// Unknown node id.
    NoSuchNode(NodeId),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::Partitioned { from, to } => {
                write!(f, "network: partition between {from} and {to}")
            }
            NetError::NodeCrashed(n) => write!(f, "network: {n} crashed"),
            NetError::Dropped => write!(f, "network: message dropped"),
            NetError::NoSuchNode(n) => write!(f, "network: no such node {n}"),
        }
    }
}

impl std::error::Error for NetError {}

/// Latency/bandwidth parameters of a link (one direction).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSpec {
    /// Fixed one-way latency in nanoseconds.
    pub base_latency_ns: u64,
    /// Serialisation cost per kilobyte in nanoseconds (inverse bandwidth).
    pub per_kb_ns: u64,
    /// Maximum uniform jitter added per message, in nanoseconds.
    pub jitter_ns: u64,
}

impl LinkSpec {
    /// A 2003-era switched 100 Mbit/s LAN: ~150 µs one-way latency,
    /// ~80 µs/KB serialisation, 20 µs jitter.
    pub fn lan() -> Self {
        LinkSpec {
            base_latency_ns: 150_000,
            per_kb_ns: 80_000,
            jitter_ns: 20_000,
        }
    }

    /// A wide-area link: 20 ms one-way latency, ~1 ms/KB, 2 ms jitter.
    pub fn wan() -> Self {
        LinkSpec {
            base_latency_ns: 20_000_000,
            per_kb_ns: 1_000_000,
            jitter_ns: 2_000_000,
        }
    }

    /// Same-machine loopback (used when policy co-locates two components):
    /// negligible but non-zero cost.
    pub fn loopback() -> Self {
        LinkSpec {
            base_latency_ns: 5_000,
            per_kb_ns: 1_000,
            jitter_ns: 0,
        }
    }

    /// Cost of transmitting `bytes` (excluding jitter).
    pub fn cost_ns(&self, bytes: usize) -> u64 {
        self.base_latency_ns + (bytes as u64 * self.per_kb_ns) / 1024
    }
}

impl Default for LinkSpec {
    fn default() -> Self {
        LinkSpec::lan()
    }
}

#[derive(Debug)]
struct NetState {
    nodes: u32,
    default_link: LinkSpec,
    overrides: HashMap<(NodeId, NodeId), LinkSpec>,
    clock_ns: u64,
    fault: FaultPlan,
    rng: SplitMix64,
    stats: NetStats,
    /// Sequence number of the next non-local transmission attempt.
    seq: u64,
    /// Fixed failure-detection charge; `None` charges the would-be link
    /// cost of the failed message instead.
    detection_ns: Option<u64>,
}

impl NetState {
    /// Charge the clock for detecting a failed transmission and record it.
    /// Failure detection is not free: a sender discovers a lost message by
    /// timeout and a severed link by an error path, both of which take
    /// (simulated) time — otherwise retry loops would be free and timing
    /// under faults meaningless.
    fn charge_failure(&mut self, err: &NetError, spec: LinkSpec, bytes: usize) {
        let cost = self.detection_ns.unwrap_or_else(|| spec.cost_ns(bytes));
        self.clock_ns += cost;
        self.stats.record_failure(err, cost);
    }
}

/// The simulated network. Cheap to clone (shared interior state).
///
/// # Example
///
/// ```
/// use rafda_net::{Network, NodeId};
///
/// let net = Network::new(3, 42);
/// let t0 = net.now();
/// net.transmit(NodeId(0), NodeId(1), 256).unwrap();
/// assert!(net.now() > t0);
/// ```
#[derive(Clone)]
pub struct Network {
    state: Rc<RefCell<NetState>>,
}

impl fmt::Debug for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.state.borrow();
        f.debug_struct("Network")
            .field("nodes", &s.nodes)
            .field("clock", &SimTime::from_ns(s.clock_ns))
            .finish()
    }
}

impl Network {
    /// Create a network of `nodes` fully connected by default LAN links,
    /// with a deterministic `seed` for jitter and drop decisions.
    pub fn new(nodes: u32, seed: u64) -> Self {
        Network {
            state: Rc::new(RefCell::new(NetState {
                nodes,
                default_link: LinkSpec::lan(),
                overrides: HashMap::new(),
                clock_ns: 0,
                fault: FaultPlan::default(),
                rng: SplitMix64::new(seed),
                stats: NetStats::default(),
                seq: 0,
                detection_ns: None,
            })),
        }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> u32 {
        self.state.borrow().nodes
    }

    /// All node ids.
    pub fn nodes(&self) -> Vec<NodeId> {
        (0..self.node_count()).map(NodeId).collect()
    }

    /// Add a node, returning its id.
    pub fn add_node(&self) -> NodeId {
        let mut s = self.state.borrow_mut();
        let id = NodeId(s.nodes);
        s.nodes += 1;
        id
    }

    /// Replace the default link spec.
    pub fn set_default_link(&self, spec: LinkSpec) {
        self.state.borrow_mut().default_link = spec;
    }

    /// Override the link spec for the directed pair `(from, to)`.
    pub fn set_link(&self, from: NodeId, to: NodeId, spec: LinkSpec) {
        self.state.borrow_mut().overrides.insert((from, to), spec);
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        SimTime::from_ns(self.state.borrow().clock_ns)
    }

    /// Advance the simulated clock by `ns` (e.g. to charge compute time).
    pub fn advance(&self, ns: u64) {
        self.state.borrow_mut().clock_ns += ns;
    }

    /// Mutate the fault plan.
    pub fn fault_plan<R>(&self, f: impl FnOnce(&mut FaultPlan) -> R) -> R {
        f(&mut self.state.borrow_mut().fault)
    }

    /// Sequence number the next non-local transmission attempt will get.
    /// Together with [`FaultPlan::drop_message`] this lets tests target an
    /// exact future message (e.g. "the reply of the next RPC").
    pub fn transmit_seq(&self) -> u64 {
        self.state.borrow().seq
    }

    /// Fix the simulated cost of detecting a failed transmission.
    ///
    /// With `None` (the default) a failed transmission charges the link
    /// cost the message would have paid — a sender waiting roughly one
    /// delivery time before concluding loss. A fixed value models an
    /// explicit timeout instead.
    pub fn set_failure_detection(&self, ns: Option<u64>) {
        self.state.borrow_mut().detection_ns = ns;
    }

    /// Transmit `bytes` from `from` to `to`, charging the simulated clock
    /// and recording per-link statistics.
    ///
    /// Local delivery (`from == to`) is free and always succeeds.
    ///
    /// Failed transmissions also cost simulated time (the detection charge,
    /// see [`Network::set_failure_detection`]) — a retry loop over a lossy
    /// link is therefore never free.
    ///
    /// # Errors
    /// [`NetError`] when either node is unknown or crashed, the pair is
    /// partitioned, or the message is dropped by loss injection (random or
    /// scheduled via [`FaultPlan::drop_message`]).
    pub fn transmit(&self, from: NodeId, to: NodeId, bytes: usize) -> Result<SimTime, NetError> {
        let mut s = self.state.borrow_mut();
        for n in [from, to] {
            if n.0 >= s.nodes {
                return Err(NetError::NoSuchNode(n));
            }
        }
        if from == to {
            return Ok(SimTime::from_ns(s.clock_ns));
        }
        let seq = s.seq;
        s.seq += 1;
        let spec = s
            .overrides
            .get(&(from, to))
            .copied()
            .unwrap_or(s.default_link);
        for n in [from, to] {
            if s.fault.is_crashed(n) {
                let err = NetError::NodeCrashed(n);
                s.charge_failure(&err, spec, bytes);
                return Err(err);
            }
        }
        if s.fault.is_partitioned(from, to) {
            let err = NetError::Partitioned { from, to };
            s.charge_failure(&err, spec, bytes);
            return Err(err);
        }
        let scheduled = s.fault.is_drop_scheduled(seq);
        let rolled = s.fault.drop_probability > 0.0 && {
            let roll = s.rng.next_f64();
            roll < s.fault.drop_probability
        };
        if scheduled || rolled {
            s.charge_failure(&NetError::Dropped, spec, bytes);
            return Err(NetError::Dropped);
        }
        let jitter = if spec.jitter_ns > 0 {
            s.rng.next_below(spec.jitter_ns)
        } else {
            0
        };
        let cost = spec.cost_ns(bytes) + jitter;
        s.clock_ns += cost;
        s.stats.record(from, to, bytes, cost);
        Ok(SimTime::from_ns(s.clock_ns))
    }

    /// Snapshot the traffic statistics.
    pub fn stats(&self) -> NetStats {
        self.state.borrow().stats.clone()
    }

    /// Reset traffic statistics (not the clock).
    pub fn reset_stats(&self) {
        self.state.borrow_mut().stats = NetStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transmit_charges_clock_and_records_stats() {
        let net = Network::new(2, 7);
        net.set_default_link(LinkSpec {
            base_latency_ns: 1000,
            per_kb_ns: 1024,
            jitter_ns: 0,
        });
        let t = net.transmit(NodeId(0), NodeId(1), 2048).unwrap();
        assert_eq!(t.as_ns(), 1000 + 2048);
        let stats = net.stats();
        assert_eq!(stats.messages, 1);
        assert_eq!(stats.bytes, 2048);
        assert_eq!(stats.link(NodeId(0), NodeId(1)).messages, 1);
        assert_eq!(stats.link(NodeId(1), NodeId(0)).messages, 0);
    }

    #[test]
    fn local_delivery_is_free() {
        let net = Network::new(2, 7);
        net.transmit(NodeId(1), NodeId(1), 1_000_000).unwrap();
        assert_eq!(net.now().as_ns(), 0);
        assert_eq!(net.stats().messages, 0);
    }

    #[test]
    fn unknown_node_rejected() {
        let net = Network::new(2, 7);
        assert_eq!(
            net.transmit(NodeId(0), NodeId(5), 10),
            Err(NetError::NoSuchNode(NodeId(5)))
        );
    }

    #[test]
    fn partition_blocks_both_directions_until_heal() {
        let net = Network::new(3, 7);
        net.fault_plan(|f| f.partition(NodeId(0), NodeId(1)));
        assert!(matches!(
            net.transmit(NodeId(0), NodeId(1), 10),
            Err(NetError::Partitioned { .. })
        ));
        assert!(matches!(
            net.transmit(NodeId(1), NodeId(0), 10),
            Err(NetError::Partitioned { .. })
        ));
        // Unrelated pair unaffected.
        assert!(net.transmit(NodeId(0), NodeId(2), 10).is_ok());
        net.fault_plan(|f| f.heal(NodeId(0), NodeId(1)));
        assert!(net.transmit(NodeId(0), NodeId(1), 10).is_ok());
    }

    #[test]
    fn crashed_node_unreachable_until_recovered() {
        let net = Network::new(2, 7);
        net.fault_plan(|f| f.crash(NodeId(1)));
        assert_eq!(
            net.transmit(NodeId(0), NodeId(1), 10),
            Err(NetError::NodeCrashed(NodeId(1)))
        );
        net.fault_plan(|f| f.recover(NodeId(1)));
        assert!(net.transmit(NodeId(0), NodeId(1), 10).is_ok());
    }

    #[test]
    fn drops_are_deterministic_for_a_seed() {
        let run = |seed: u64| {
            let net = Network::new(2, seed);
            net.fault_plan(|f| f.drop_probability = 0.5);
            (0..32)
                .map(|_| net.transmit(NodeId(0), NodeId(1), 8).is_ok())
                .collect::<Vec<_>>()
        };
        assert_eq!(run(1), run(1));
        assert_ne!(run(1), run(2)); // overwhelmingly likely
        let oks = run(1).iter().filter(|b| **b).count();
        assert!(oks > 4 && oks < 28, "drop rate wildly off: {oks}/32");
    }

    #[test]
    fn failed_transmissions_charge_detection_time() {
        let net = Network::new(2, 7);
        net.set_default_link(LinkSpec {
            base_latency_ns: 1000,
            per_kb_ns: 1024,
            jitter_ns: 0,
        });
        net.fault_plan(|f| f.drop_probability = 1.0);
        assert_eq!(
            net.transmit(NodeId(0), NodeId(1), 2048),
            Err(NetError::Dropped)
        );
        // Default detection charge = would-be link cost of the message.
        assert_eq!(net.now().as_ns(), 1000 + 2048);
        let stats = net.stats();
        assert_eq!(stats.failures, 1);
        assert_eq!(stats.drops, 1);
        assert_eq!(stats.failed_time_ns, 1000 + 2048);
        assert_eq!(stats.messages, 0, "failed message not delivered");

        // A configured timeout overrides the link-cost default.
        net.set_failure_detection(Some(500));
        net.fault_plan(|f| f.partition(NodeId(0), NodeId(1)));
        let t0 = net.now().as_ns();
        assert!(net.transmit(NodeId(0), NodeId(1), 9999).is_err());
        assert_eq!(net.now().as_ns(), t0 + 500);
        assert_eq!(net.stats().partition_failures, 1);
    }

    #[test]
    fn failure_kinds_counted_distinctly() {
        let net = Network::new(3, 7);
        net.fault_plan(|f| f.crash(NodeId(2)));
        let _ = net.transmit(NodeId(0), NodeId(2), 8);
        net.fault_plan(|f| {
            f.recover(NodeId(2));
            f.partition(NodeId(0), NodeId(1));
        });
        let _ = net.transmit(NodeId(0), NodeId(1), 8);
        net.fault_plan(|f| {
            f.heal_all();
            f.drop_probability = 1.0;
        });
        let _ = net.transmit(NodeId(0), NodeId(1), 8);
        let stats = net.stats();
        assert_eq!(stats.crash_failures, 1);
        assert_eq!(stats.partition_failures, 1);
        assert_eq!(stats.drops, 1);
        assert_eq!(stats.failures, 3);
    }

    #[test]
    fn scheduled_drop_kills_exactly_the_chosen_message() {
        let net = Network::new(2, 7);
        assert_eq!(net.transmit_seq(), 0);
        net.transmit(NodeId(0), NodeId(1), 8).unwrap();
        let target = net.transmit_seq();
        net.fault_plan(|f| f.drop_message(target));
        assert_eq!(
            net.transmit(NodeId(0), NodeId(1), 8),
            Err(NetError::Dropped)
        );
        // Next attempt has a new sequence number and goes through.
        assert!(net.transmit(NodeId(0), NodeId(1), 8).is_ok());
        assert_eq!(net.transmit_seq(), 3);
        // Local delivery does not consume sequence numbers.
        net.transmit(NodeId(1), NodeId(1), 8).unwrap();
        assert_eq!(net.transmit_seq(), 3);
    }

    #[test]
    fn per_link_override_applies_one_direction() {
        let net = Network::new(2, 7);
        net.set_default_link(LinkSpec {
            base_latency_ns: 10,
            per_kb_ns: 0,
            jitter_ns: 0,
        });
        net.set_link(
            NodeId(0),
            NodeId(1),
            LinkSpec {
                base_latency_ns: 1_000_000,
                per_kb_ns: 0,
                jitter_ns: 0,
            },
        );
        net.transmit(NodeId(0), NodeId(1), 1).unwrap();
        assert_eq!(net.now().as_ns(), 1_000_000);
        net.transmit(NodeId(1), NodeId(0), 1).unwrap();
        assert_eq!(net.now().as_ns(), 1_000_010);
    }

    #[test]
    fn add_node_grows_cluster() {
        let net = Network::new(1, 7);
        let n1 = net.add_node();
        assert_eq!(n1, NodeId(1));
        assert_eq!(net.node_count(), 2);
        assert!(net.transmit(NodeId(0), n1, 1).is_ok());
    }

    #[test]
    fn link_presets_are_ordered_by_cost() {
        let payload = 1024;
        let lo = LinkSpec::loopback().cost_ns(payload);
        let lan = LinkSpec::lan().cost_ns(payload);
        let wan = LinkSpec::wan().cost_ns(payload);
        assert!(lo < lan && lan < wan, "{lo} {lan} {wan}");
        // Cost is monotone in message size.
        let spec = LinkSpec::lan();
        assert!(spec.cost_ns(10) < spec.cost_ns(10_000));
        assert_eq!(
            spec.cost_ns(0),
            spec.base_latency_ns,
            "empty message pays only base latency"
        );
    }

    #[test]
    fn lan_rtt_is_sub_millisecond() {
        let net = Network::new(2, 7);
        net.transmit(NodeId(0), NodeId(1), 128).unwrap();
        net.transmit(NodeId(1), NodeId(0), 128).unwrap();
        let rtt = net.now();
        assert!(rtt.as_ns() > 200_000, "{rtt}");
        assert!(rtt.as_ns() < 1_000_000, "{rtt}");
    }
}
