//! # rafda-policy
//!
//! Distribution policy: *where* objects and class singletons live, and
//! *which protocol* their proxies speak.
//!
//! The paper isolates all distribution decisions in two factory methods:
//! "The object creation method, `make`, selects which of the
//! implementations is to be used based on some policy" and "the only
//! potentially implementation-aware methods" (Sections 2.3). This crate is
//! that policy:
//!
//! * [`DistributionPolicy`] — the decision interface the runtime's factory
//!   hooks consult;
//! * [`StaticPolicy`] — a declarative rule table (with a text format, see
//!   [`StaticPolicy::parse`]) assigning instance placement, statics
//!   placement and protocol per class;
//! * [`AffinityConfig`] — parameters of the adaptive boundary-moving loop
//!   ("the distributed program can adapt to its environment by dynamically
//!   altering its distribution boundaries", Section 1), executed by
//!   `rafda-runtime`.

#![warn(missing_docs)]

use rafda_net::NodeId;
use std::collections::HashMap;
use std::fmt;

/// Where new instances of a class are placed by `make()`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Placement {
    /// On the node executing `make()` (a local, non-remote object).
    Creator,
    /// Always on the given node (remote for everyone else).
    Node(NodeId),
}

/// A sharding directive: place instances of a class across the cluster by
/// the deterministic hash of a key read through `key_getter`, split into
/// `modulo` shards (`class C shard by get_k modulo N` in the text format).
///
/// The runtime maintains a shard→node map alongside the failover `homes`
/// map; an instance is moved onto its shard's node once its key is
/// readable (after construction) and the adaptation tick may rebalance
/// whole shards between nodes when call counts show hot-key skew.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardSpec {
    /// Name of the zero-argument getter whose result keys the shard hash.
    pub key_getter: String,
    /// Number of shards the key space is split into (always > 0).
    pub modulo: u32,
}

/// The decision interface consulted by the runtime's `make`/`discover`
/// hooks and proxy materialisation.
pub trait DistributionPolicy {
    /// The node on which `make()` executed at `creating_node` should place a
    /// new instance of `class`.
    fn instance_node(&self, class: &str, creating_node: NodeId) -> NodeId;

    /// The node owning the singleton that implements `class`'s static
    /// members.
    fn statics_node(&self, class: &str) -> NodeId;

    /// The proxy protocol used for remote references to `class`
    /// (`"RMI"`, `"SOAP"`, `"CORBA"`).
    fn protocol(&self, class: &str) -> String;

    /// Whether proxies for `class` may cache property (`get_f`) results.
    ///
    /// Caching is coherent — entries are version-tagged and dropped when
    /// the owner's copy changes — but a cached read can still return a
    /// value the owner mutated *locally* since the last exchange with this
    /// proxy (the invalidation piggybacks on reply traffic rather than
    /// being pushed). Classes whose fields are mutated outside their
    /// accessors should therefore stay uncacheable; the default is off.
    fn cacheable(&self, _class: &str) -> bool {
        false
    }

    /// How many backup nodes keep a promotable copy of each exported
    /// instance of `class`.
    ///
    /// With `k > 0` the owner synchronously ships the object's state to the
    /// k lowest-numbered other nodes after every served mutating call, and a
    /// caller whose owner crash-stops transparently re-homes to the
    /// lowest-numbered live replica. The default is 0: no replication, a
    /// crashed owner surfaces as a typed `Unreachable` error.
    fn replicas(&self, _class: &str) -> u32 {
        0
    }

    /// Whether deferrable outcalls on `class` — void-returning methods and
    /// property sets, whose results the caller never observes directly —
    /// may be queued and shipped to the owner as one batched frame at the
    /// next synchronization point (a value-returning call, migration,
    /// adaptation tick, clock read or explicit flush).
    ///
    /// Batching preserves per-owner ordering and at-most-once execution,
    /// but a batched operation's *exception* only surfaces at the flush
    /// point rather than at the call site. Classes whose void methods are
    /// used for control flow via exceptions should stay unbatched; the
    /// default is off.
    fn batched(&self, _class: &str) -> bool {
        false
    }

    /// The sharding directive for `class`, if any.
    ///
    /// With `Some(spec)` the runtime places each instance on the node that
    /// owns shard `hash(key) % spec.modulo`, where the key is read through
    /// `spec.key_getter` once the instance is constructed. `None` (the
    /// default) leaves placement to [`DistributionPolicy::instance_node`].
    fn shard_spec(&self, _class: &str) -> Option<ShardSpec> {
        None
    }

    /// Whether getters on remote instances of `class` may be served from
    /// the nearest live replica instead of the owner.
    ///
    /// Only meaningful when [`DistributionPolicy::replicas`] is positive.
    /// A replica read is taken only when the replica's copy carries the
    /// owner's current version, so it can never observe stale state; on
    /// any version lag the call falls through to the owner. The default
    /// is off.
    fn reads_from_replicas(&self, _class: &str) -> bool {
        false
    }
}

/// Everything-local policy: instances at their creator, all singletons on
/// node 0, one fixed protocol. The "local version of the transformed
/// application" of the paper's Section 4 corresponds to this policy on a
/// one-node cluster.
#[derive(Debug, Clone)]
pub struct LocalPolicy {
    protocol: String,
}

impl LocalPolicy {
    /// Local policy with the given proxy protocol (still needed when
    /// migration later makes objects remote).
    pub fn new(protocol: &str) -> Self {
        LocalPolicy {
            protocol: protocol.to_owned(),
        }
    }
}

impl Default for LocalPolicy {
    fn default() -> Self {
        LocalPolicy::new("RMI")
    }
}

impl DistributionPolicy for LocalPolicy {
    fn instance_node(&self, _class: &str, creating_node: NodeId) -> NodeId {
        creating_node
    }

    fn statics_node(&self, _class: &str) -> NodeId {
        NodeId(0)
    }

    fn protocol(&self, _class: &str) -> String {
        self.protocol.clone()
    }
}

/// A declarative per-class rule table.
///
/// # Example
///
/// ```
/// use rafda_policy::{DistributionPolicy, StaticPolicy};
/// use rafda_net::NodeId;
///
/// let policy = StaticPolicy::parse(
///     "default protocol RMI\n\
///      default statics node0\n\
///      class C place node2\n\
///      class C protocol SOAP\n\
///      class X statics node1\n",
/// ).unwrap();
/// assert_eq!(policy.instance_node("C", NodeId(0)), NodeId(2));
/// assert_eq!(policy.instance_node("D", NodeId(3)), NodeId(3));
/// assert_eq!(policy.statics_node("X"), NodeId(1));
/// assert_eq!(policy.protocol("C"), "SOAP");
/// assert_eq!(policy.protocol("D"), "RMI");
/// ```
#[derive(Debug, Clone)]
pub struct StaticPolicy {
    default_protocol: String,
    default_statics: NodeId,
    default_placement: Placement,
    default_cache: bool,
    default_replicate: u32,
    default_batch: bool,
    instance_rules: HashMap<String, Placement>,
    statics_rules: HashMap<String, NodeId>,
    protocol_rules: HashMap<String, String>,
    cache_rules: HashMap<String, bool>,
    replicate_rules: HashMap<String, u32>,
    batch_rules: HashMap<String, bool>,
    shard_rules: HashMap<String, ShardSpec>,
    replica_read_rules: HashMap<String, bool>,
}

impl Default for StaticPolicy {
    fn default() -> Self {
        StaticPolicy {
            default_protocol: "RMI".to_owned(),
            default_statics: NodeId(0),
            default_placement: Placement::Creator,
            default_cache: false,
            default_replicate: 0,
            default_batch: false,
            instance_rules: HashMap::new(),
            statics_rules: HashMap::new(),
            protocol_rules: HashMap::new(),
            cache_rules: HashMap::new(),
            replicate_rules: HashMap::new(),
            batch_rules: HashMap::new(),
            shard_rules: HashMap::new(),
            replica_read_rules: HashMap::new(),
        }
    }
}

/// A policy-text parse failure with its line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicyParseError {
    /// 1-based line number of the offending directive.
    pub line: usize,
    /// What was wrong with it.
    pub message: String,
}

impl fmt::Display for PolicyParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "policy line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for PolicyParseError {}

impl StaticPolicy {
    /// A policy with library defaults (creator placement, statics on node 0,
    /// RMI proxies).
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the default protocol.
    pub fn default_protocol(mut self, protocol: &str) -> Self {
        self.default_protocol = protocol.to_owned();
        self
    }

    /// Set the default statics owner.
    pub fn default_statics(mut self, node: NodeId) -> Self {
        self.default_statics = node;
        self
    }

    /// Set the default instance placement.
    pub fn default_placement(mut self, placement: Placement) -> Self {
        self.default_placement = placement;
        self
    }

    /// Place instances of `class`.
    pub fn place(mut self, class: &str, placement: Placement) -> Self {
        self.instance_rules.insert(class.to_owned(), placement);
        self
    }

    /// Place the statics singleton of `class`.
    pub fn statics(mut self, class: &str, node: NodeId) -> Self {
        self.statics_rules.insert(class.to_owned(), node);
        self
    }

    /// Select the proxy protocol for `class`.
    pub fn with_protocol(mut self, class: &str, protocol: &str) -> Self {
        self.protocol_rules
            .insert(class.to_owned(), protocol.to_owned());
        self
    }

    /// Set the default property-cache switch (off unless overridden).
    pub fn default_cache(mut self, on: bool) -> Self {
        self.default_cache = on;
        self
    }

    /// Allow (or forbid) proxy-side property caching for `class`.
    pub fn cache(mut self, class: &str, on: bool) -> Self {
        self.cache_rules.insert(class.to_owned(), on);
        self
    }

    /// Set the default replication factor (0 unless overridden).
    pub fn default_replicate(mut self, k: u32) -> Self {
        self.default_replicate = k;
        self
    }

    /// Keep promotable copies of `class` instances on `k` backup nodes.
    pub fn replicate(mut self, class: &str, k: u32) -> Self {
        self.replicate_rules.insert(class.to_owned(), k);
        self
    }

    /// Set the default outcall-batching switch (off unless overridden).
    pub fn default_batch(mut self, on: bool) -> Self {
        self.default_batch = on;
        self
    }

    /// Allow (or forbid) batching deferrable outcalls on `class`.
    pub fn batch(mut self, class: &str, on: bool) -> Self {
        self.batch_rules.insert(class.to_owned(), on);
        self
    }

    /// Shard instances of `class` by the key read through `key_getter`,
    /// split into `modulo` shards.
    ///
    /// # Panics
    /// When `modulo` is 0 (an empty shard space places nothing).
    pub fn shard(mut self, class: &str, key_getter: &str, modulo: u32) -> Self {
        assert!(modulo > 0, "shard modulo must be positive");
        self.shard_rules.insert(
            class.to_owned(),
            ShardSpec {
                key_getter: key_getter.to_owned(),
                modulo,
            },
        );
        self
    }

    /// Allow (or forbid) serving getters of `class` from the nearest live
    /// replica instead of the owner.
    pub fn replica_reads(mut self, class: &str, on: bool) -> Self {
        self.replica_read_rules.insert(class.to_owned(), on);
        self
    }

    /// Parse the policy text format:
    ///
    /// ```text
    /// # comments and blank lines are ignored
    /// default protocol RMI|SOAP|CORBA
    /// default statics node<N>
    /// default place creator|node<N>
    /// default cache on|off
    /// default replicate <K>
    /// default batch on|off
    /// class <Name> place creator|node<N>
    /// class <Name> statics node<N>
    /// class <Name> protocol RMI|SOAP|CORBA
    /// class <Name> cache on|off
    /// class <Name> replicate <K>
    /// class <Name> batch on|off
    /// class <Name> shard by <getter> modulo <N>
    /// class <Name> reads from replicas
    /// ```
    ///
    /// # Errors
    /// [`PolicyParseError`] with the offending line.
    pub fn parse(text: &str) -> Result<Self, PolicyParseError> {
        let mut policy = StaticPolicy::default();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let err = |message: &str| PolicyParseError {
                line: i + 1,
                message: message.to_owned(),
            };
            let words: Vec<&str> = line.split_whitespace().collect();
            match words.as_slice() {
                ["default", "protocol", p] => policy.default_protocol = (*p).to_owned(),
                ["default", "statics", n] => {
                    policy.default_statics = parse_node(n).ok_or_else(|| err("bad node"))?;
                }
                ["default", "place", w] => {
                    policy.default_placement =
                        parse_placement(w).ok_or_else(|| err("bad placement"))?;
                }
                ["default", "cache", w] => {
                    policy.default_cache = parse_switch(w).ok_or_else(|| err("bad switch"))?;
                }
                ["default", "replicate", k] => {
                    policy.default_replicate =
                        k.parse().map_err(|_| err("bad replication factor"))?;
                }
                ["default", "batch", w] => {
                    policy.default_batch = parse_switch(w).ok_or_else(|| err("bad switch"))?;
                }
                ["class", name, "place", w] => {
                    let p = parse_placement(w).ok_or_else(|| err("bad placement"))?;
                    policy.instance_rules.insert((*name).to_owned(), p);
                }
                ["class", name, "statics", n] => {
                    let node = parse_node(n).ok_or_else(|| err("bad node"))?;
                    policy.statics_rules.insert((*name).to_owned(), node);
                }
                ["class", name, "protocol", p] => {
                    policy
                        .protocol_rules
                        .insert((*name).to_owned(), (*p).to_owned());
                }
                ["class", name, "cache", w] => {
                    let on = parse_switch(w).ok_or_else(|| err("bad switch"))?;
                    policy.cache_rules.insert((*name).to_owned(), on);
                }
                ["class", name, "replicate", k] => {
                    let k = k.parse().map_err(|_| err("bad replication factor"))?;
                    policy.replicate_rules.insert((*name).to_owned(), k);
                }
                ["class", name, "batch", w] => {
                    let on = parse_switch(w).ok_or_else(|| err("bad switch"))?;
                    policy.batch_rules.insert((*name).to_owned(), on);
                }
                ["class", name, "shard", "by", getter, "modulo", m] => {
                    let modulo: u32 = m.parse().map_err(|_| err("bad shard modulo"))?;
                    if modulo == 0 {
                        return Err(err("bad shard modulo"));
                    }
                    policy.shard_rules.insert(
                        (*name).to_owned(),
                        ShardSpec {
                            key_getter: (*getter).to_owned(),
                            modulo,
                        },
                    );
                }
                ["class", name, "reads", "from", "replicas"] => {
                    policy.replica_read_rules.insert((*name).to_owned(), true);
                }
                _ => return Err(err("unrecognised directive")),
            }
        }
        Ok(policy)
    }
}

impl StaticPolicy {
    /// Render the policy back to the text format accepted by
    /// [`StaticPolicy::parse`] (rules sorted for determinism):
    /// `parse(p.to_text())` reproduces `p`.
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "default protocol {}", self.default_protocol);
        let _ = writeln!(out, "default statics node{}", self.default_statics.0);
        match self.default_placement {
            Placement::Creator => out.push_str("default place creator\n"),
            Placement::Node(n) => {
                let _ = writeln!(out, "default place node{}", n.0);
            }
        }
        if self.default_cache {
            out.push_str("default cache on\n");
        }
        if self.default_replicate > 0 {
            let _ = writeln!(out, "default replicate {}", self.default_replicate);
        }
        if self.default_batch {
            out.push_str("default batch on\n");
        }
        let mut rules: Vec<String> = Vec::new();
        for (class, placement) in &self.instance_rules {
            rules.push(match placement {
                Placement::Creator => format!("class {class} place creator"),
                Placement::Node(n) => format!("class {class} place node{}", n.0),
            });
        }
        for (class, node) in &self.statics_rules {
            rules.push(format!("class {class} statics node{}", node.0));
        }
        for (class, protocol) in &self.protocol_rules {
            rules.push(format!("class {class} protocol {protocol}"));
        }
        for (class, &on) in &self.cache_rules {
            rules.push(format!(
                "class {class} cache {}",
                if on { "on" } else { "off" }
            ));
        }
        for (class, k) in &self.replicate_rules {
            rules.push(format!("class {class} replicate {k}"));
        }
        for (class, &on) in &self.batch_rules {
            rules.push(format!(
                "class {class} batch {}",
                if on { "on" } else { "off" }
            ));
        }
        for (class, spec) in &self.shard_rules {
            rules.push(format!(
                "class {class} shard by {} modulo {}",
                spec.key_getter, spec.modulo
            ));
        }
        for (class, &on) in &self.replica_read_rules {
            // `reads from replicas` is a flag with no off-form: a false
            // rule is indistinguishable from no rule, so only true ones
            // are rendered.
            if on {
                rules.push(format!("class {class} reads from replicas"));
            }
        }
        rules.sort();
        for r in rules {
            out.push_str(&r);
            out.push('\n');
        }
        out
    }
}

fn parse_node(word: &str) -> Option<NodeId> {
    word.strip_prefix("node")?.parse().ok().map(NodeId)
}

fn parse_placement(word: &str) -> Option<Placement> {
    if word == "creator" {
        Some(Placement::Creator)
    } else {
        parse_node(word).map(Placement::Node)
    }
}

fn parse_switch(word: &str) -> Option<bool> {
    match word {
        "on" => Some(true),
        "off" => Some(false),
        _ => None,
    }
}

impl DistributionPolicy for StaticPolicy {
    fn instance_node(&self, class: &str, creating_node: NodeId) -> NodeId {
        match self
            .instance_rules
            .get(class)
            .copied()
            .unwrap_or(self.default_placement)
        {
            Placement::Creator => creating_node,
            Placement::Node(n) => n,
        }
    }

    fn statics_node(&self, class: &str) -> NodeId {
        self.statics_rules
            .get(class)
            .copied()
            .unwrap_or(self.default_statics)
    }

    fn protocol(&self, class: &str) -> String {
        self.protocol_rules
            .get(class)
            .cloned()
            .unwrap_or_else(|| self.default_protocol.clone())
    }

    fn cacheable(&self, class: &str) -> bool {
        self.cache_rules
            .get(class)
            .copied()
            .unwrap_or(self.default_cache)
    }

    fn replicas(&self, class: &str) -> u32 {
        self.replicate_rules
            .get(class)
            .copied()
            .unwrap_or(self.default_replicate)
    }

    fn batched(&self, class: &str) -> bool {
        self.batch_rules
            .get(class)
            .copied()
            .unwrap_or(self.default_batch)
    }

    fn shard_spec(&self, class: &str) -> Option<ShardSpec> {
        self.shard_rules.get(class).cloned()
    }

    fn reads_from_replicas(&self, class: &str) -> bool {
        self.replica_read_rules.get(class).copied().unwrap_or(false)
    }
}

/// Load-spreading policy: each `make()` places the new instance on the
/// next node round-robin, regardless of where the creator runs — the
/// classic "scale out a stateless pool" deployment. Statics stay on a fixed
/// owner.
///
/// # Example
///
/// ```
/// use rafda_policy::{DistributionPolicy, RoundRobinPolicy};
/// use rafda_net::NodeId;
///
/// let p = RoundRobinPolicy::new(3, "RMI");
/// let first = p.instance_node("Worker", NodeId(0));
/// let second = p.instance_node("Worker", NodeId(0));
/// let third = p.instance_node("Worker", NodeId(0));
/// let fourth = p.instance_node("Worker", NodeId(0));
/// assert_ne!(first, second);
/// assert_eq!(first, fourth); // wraps around three nodes
/// ```
#[derive(Debug)]
pub struct RoundRobinPolicy {
    nodes: u32,
    protocol: String,
    statics_owner: NodeId,
    next: std::cell::Cell<u32>,
}

impl RoundRobinPolicy {
    /// Spread instances over `nodes` nodes, proxying with `protocol`.
    pub fn new(nodes: u32, protocol: &str) -> Self {
        RoundRobinPolicy {
            nodes: nodes.max(1),
            protocol: protocol.to_owned(),
            statics_owner: NodeId(0),
            next: std::cell::Cell::new(0),
        }
    }

    /// Choose the statics owner (default node 0).
    pub fn statics_owner(mut self, node: NodeId) -> Self {
        self.statics_owner = node;
        self
    }
}

impl DistributionPolicy for RoundRobinPolicy {
    fn instance_node(&self, _class: &str, _creating_node: NodeId) -> NodeId {
        let n = self.next.get();
        self.next.set((n + 1) % self.nodes);
        NodeId(n)
    }

    fn statics_node(&self, _class: &str) -> NodeId {
        self.statics_owner
    }

    fn protocol(&self, _class: &str) -> String {
        self.protocol.clone()
    }
}

/// Parameters of the adaptive affinity loop run by the runtime's
/// `Cluster::adapt`: an exported object is migrated to its dominant caller
/// when it has seen at least `min_calls` calls and the dominant remote
/// caller accounts for at least `min_fraction` of them.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AffinityConfig {
    /// Minimum observed calls before considering migration.
    pub min_calls: u64,
    /// Minimum fraction of calls from the dominant remote caller.
    pub min_fraction: f64,
}

impl Default for AffinityConfig {
    fn default() -> Self {
        AffinityConfig {
            min_calls: 16,
            min_fraction: 0.6,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn local_policy_keeps_everything_at_creator() {
        let p = LocalPolicy::default();
        assert_eq!(p.instance_node("C", NodeId(3)), NodeId(3));
        assert_eq!(p.statics_node("C"), NodeId(0));
        assert_eq!(p.protocol("C"), "RMI");
    }

    #[test]
    fn builder_rules_override_defaults() {
        let p = StaticPolicy::new()
            .default_protocol("CORBA")
            .default_statics(NodeId(2))
            .place("C", Placement::Node(NodeId(1)))
            .statics("C", NodeId(1))
            .with_protocol("C", "SOAP");
        assert_eq!(p.instance_node("C", NodeId(0)), NodeId(1));
        assert_eq!(p.instance_node("Other", NodeId(5)), NodeId(5));
        assert_eq!(p.statics_node("C"), NodeId(1));
        assert_eq!(p.statics_node("Other"), NodeId(2));
        assert_eq!(p.protocol("C"), "SOAP");
        assert_eq!(p.protocol("Other"), "CORBA");
    }

    #[test]
    fn parse_full_grammar() {
        let p = StaticPolicy::parse(
            "# policy\n\
             default protocol CORBA\n\
             default statics node3\n\
             default place node1\n\
             \n\
             class A place creator\n\
             class B statics node2\n\
             class B protocol SOAP\n",
        )
        .unwrap();
        assert_eq!(p.instance_node("A", NodeId(9)), NodeId(9));
        assert_eq!(p.instance_node("Z", NodeId(9)), NodeId(1));
        assert_eq!(p.statics_node("B"), NodeId(2));
        assert_eq!(p.statics_node("A"), NodeId(3));
        assert_eq!(p.protocol("B"), "SOAP");
        assert_eq!(p.protocol("A"), "CORBA");
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = StaticPolicy::parse("default protocol RMI\nclass A dance node1\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("line 2"));
        let err = StaticPolicy::parse("class A place nodeX\n").unwrap_err();
        assert_eq!(err.message, "bad placement");
    }

    #[test]
    fn to_text_parse_roundtrip() {
        let p = StaticPolicy::new()
            .default_protocol("SOAP")
            .default_statics(NodeId(3))
            .default_placement(Placement::Node(NodeId(1)))
            .place("A", Placement::Creator)
            .place("B", Placement::Node(NodeId(2)))
            .statics("B", NodeId(2))
            .with_protocol("C", "CORBA")
            .cache("A", true)
            .cache("C", false);
        let text = p.to_text();
        let q = StaticPolicy::parse(&text).unwrap();
        for class in ["A", "B", "C", "Unlisted"] {
            for node in [NodeId(0), NodeId(5)] {
                assert_eq!(p.instance_node(class, node), q.instance_node(class, node));
            }
            assert_eq!(p.statics_node(class), q.statics_node(class));
            assert_eq!(p.protocol(class), q.protocol(class));
            assert_eq!(p.cacheable(class), q.cacheable(class));
        }
    }

    #[test]
    fn cache_rules_parse_and_default_off() {
        let p = StaticPolicy::parse(
            "default cache on\n\
             class Hot cache on\n\
             class Cold cache off\n",
        )
        .unwrap();
        assert!(p.cacheable("Hot"));
        assert!(!p.cacheable("Cold"));
        assert!(p.cacheable("Unlisted"), "default cache on applies");

        let q = StaticPolicy::new().cache("Hot", true);
        assert!(q.cacheable("Hot"));
        assert!(!q.cacheable("Unlisted"), "caching is opt-in");
        assert!(
            !LocalPolicy::default().cacheable("Hot"),
            "trait default is off"
        );

        let err = StaticPolicy::parse("class A cache maybe\n").unwrap_err();
        assert_eq!(err.message, "bad switch");
    }

    #[test]
    fn replicate_rules_parse_and_default_zero() {
        let p = StaticPolicy::parse(
            "default replicate 1\n\
             class Vital replicate 2\n\
             class Cheap replicate 0\n",
        )
        .unwrap();
        assert_eq!(p.replicas("Vital"), 2);
        assert_eq!(p.replicas("Cheap"), 0);
        assert_eq!(p.replicas("Unlisted"), 1, "default replicate 1 applies");

        let q = StaticPolicy::new().replicate("Vital", 2);
        assert_eq!(q.replicas("Vital"), 2);
        assert_eq!(q.replicas("Unlisted"), 0, "replication is opt-in");
        assert_eq!(
            LocalPolicy::default().replicas("Vital"),
            0,
            "trait default is 0"
        );

        let err = StaticPolicy::parse("class A replicate many\n").unwrap_err();
        assert_eq!(err.message, "bad replication factor");
        let err = StaticPolicy::parse("default replicate -1\n").unwrap_err();
        assert_eq!(err.message, "bad replication factor");
    }

    #[test]
    fn replicate_rules_survive_to_text_roundtrip() {
        let p = StaticPolicy::new()
            .default_replicate(1)
            .replicate("A", 2)
            .replicate("B", 0);
        let text = p.to_text();
        assert!(text.contains("default replicate 1"), "{text}");
        assert!(text.contains("class A replicate 2"), "{text}");
        let q = StaticPolicy::parse(&text).unwrap();
        for class in ["A", "B", "Unlisted"] {
            assert_eq!(p.replicas(class), q.replicas(class));
        }
    }

    #[test]
    fn batch_rules_parse_and_default_off() {
        let p = StaticPolicy::parse(
            "default batch on\n\
             class Chatty batch on\n\
             class Sync batch off\n",
        )
        .unwrap();
        assert!(p.batched("Chatty"));
        assert!(!p.batched("Sync"));
        assert!(p.batched("Unlisted"), "default batch on applies");

        let q = StaticPolicy::new().batch("Chatty", true);
        assert!(q.batched("Chatty"));
        assert!(!q.batched("Unlisted"), "batching is opt-in");
        assert!(
            !LocalPolicy::default().batched("Chatty"),
            "trait default is off"
        );

        let err = StaticPolicy::parse("class A batch sometimes\n").unwrap_err();
        assert_eq!(err.message, "bad switch");
    }

    #[test]
    fn batch_rules_survive_to_text_roundtrip() {
        let p = StaticPolicy::new()
            .default_batch(true)
            .batch("A", false)
            .batch("B", true);
        let text = p.to_text();
        assert!(text.contains("default batch on"), "{text}");
        assert!(text.contains("class A batch off"), "{text}");
        let q = StaticPolicy::parse(&text).unwrap();
        for class in ["A", "B", "Unlisted"] {
            assert_eq!(p.batched(class), q.batched(class));
        }
        let plain = StaticPolicy::new().to_text();
        assert!(!plain.contains("batch"), "default-off policy omits batch");
    }

    #[test]
    fn shard_rules_parse_and_default_none() {
        let p = StaticPolicy::parse(
            "class Account shard by get_owner modulo 4\n\
             class Session shard by get_id modulo 2\n",
        )
        .unwrap();
        assert_eq!(
            p.shard_spec("Account"),
            Some(ShardSpec {
                key_getter: "get_owner".to_owned(),
                modulo: 4
            })
        );
        assert_eq!(p.shard_spec("Session").unwrap().modulo, 2);
        assert_eq!(p.shard_spec("Unlisted"), None, "sharding is opt-in");
        assert_eq!(
            LocalPolicy::default().shard_spec("Account"),
            None,
            "trait default is None"
        );

        let err = StaticPolicy::parse("class A shard by get_k modulo zero\n").unwrap_err();
        assert_eq!(err.message, "bad shard modulo");
        let err = StaticPolicy::parse("class A shard by get_k modulo 0\n").unwrap_err();
        assert_eq!(err.message, "bad shard modulo");
        let err = StaticPolicy::parse("ok\nclass A shard get_k modulo 2\n").unwrap_err();
        assert_eq!(err.line, 1, "first bad line reported");
    }

    #[test]
    fn replica_read_rules_parse_and_default_off() {
        let p = StaticPolicy::parse(
            "class Catalog replicate 2\n\
             class Catalog reads from replicas\n",
        )
        .unwrap();
        assert!(p.reads_from_replicas("Catalog"));
        assert!(!p.reads_from_replicas("Unlisted"), "replica reads opt-in");
        assert!(
            !LocalPolicy::default().reads_from_replicas("Catalog"),
            "trait default is off"
        );

        let q = StaticPolicy::new().replica_reads("Catalog", true);
        assert!(q.reads_from_replicas("Catalog"));
        let q = q.replica_reads("Catalog", false);
        assert!(!q.reads_from_replicas("Catalog"));

        let err = StaticPolicy::parse("class A reads from owner\n").unwrap_err();
        assert_eq!(err.message, "unrecognised directive");
    }

    #[test]
    fn shard_and_replica_read_rules_survive_to_text_roundtrip() {
        let p = StaticPolicy::new()
            .shard("Account", "get_owner", 4)
            .replicate("Catalog", 2)
            .replica_reads("Catalog", true)
            .replica_reads("Mutable", false);
        let text = p.to_text();
        assert!(
            text.contains("class Account shard by get_owner modulo 4"),
            "{text}"
        );
        assert!(text.contains("class Catalog reads from replicas"), "{text}");
        assert!(!text.contains("Mutable"), "false flag omitted: {text}");
        let q = StaticPolicy::parse(&text).unwrap();
        for class in ["Account", "Catalog", "Mutable", "Unlisted"] {
            assert_eq!(p.shard_spec(class), q.shard_spec(class));
            assert_eq!(p.reads_from_replicas(class), q.reads_from_replicas(class));
            assert_eq!(p.replicas(class), q.replicas(class));
        }
    }

    #[test]
    fn round_robin_cycles_and_keeps_statics_fixed() {
        let p = RoundRobinPolicy::new(2, "SOAP").statics_owner(NodeId(1));
        let seq: Vec<NodeId> = (0..4).map(|_| p.instance_node("C", NodeId(9))).collect();
        assert_eq!(seq, vec![NodeId(0), NodeId(1), NodeId(0), NodeId(1)]);
        assert_eq!(p.statics_node("C"), NodeId(1));
        assert_eq!(p.protocol("C"), "SOAP");
    }

    #[test]
    fn affinity_defaults_are_sane() {
        let c = AffinityConfig::default();
        assert!(c.min_calls > 0);
        assert!(c.min_fraction > 0.5 && c.min_fraction <= 1.0);
    }
}
