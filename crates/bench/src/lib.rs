//! # rafda-bench
//!
//! Shared fixtures for the benchmark harness. One Criterion bench binary
//! exists per experiment of `DESIGN.md`'s index (E1, E3, E4, E5, E6, E8);
//! each prints the paper-style table it regenerates before running its
//! timing groups, so `cargo bench` output doubles as the experiment record
//! (collected into `EXPERIMENTS.md`).

#![warn(missing_docs)]

use rafda::classmodel::builder::{ClassBuilder, MethodBuilder};
use rafda::classmodel::{ClassKind, Field};
use rafda::corpus::{generate_app, AppSpec, ObserverHooks};
use rafda::{Application, Cluster, DistributionPolicy, NodeId, Ty, Value};

/// Build the Figure 1 counter application (`C` with `tick`, holders `A`
/// and `B`).
pub fn figure1_app() -> Application {
    let mut app = Application::new();
    let u = app.universe_mut();
    let c = u.declare("C", ClassKind::Class);
    {
        let mut cb = ClassBuilder::new(u, c);
        let count = cb.field(Field::new("count", Ty::Int));
        let mut mb = MethodBuilder::new(1);
        mb.ret();
        cb.ctor(u, vec![], Some(mb.finish()));
        let mut mb = MethodBuilder::new(1);
        mb.load_this();
        mb.load_this().get_field(c, count);
        mb.const_int(1).add();
        mb.put_field(c, count);
        mb.load_this().get_field(c, count);
        mb.ret_value();
        cb.method(u, "tick", vec![], Ty::Int, Some(mb.finish()));
        cb.finish(u);
    }
    app
}

/// Build a generated chain application with the given spec.
pub fn chain_app(spec: &AppSpec) -> Application {
    let mut app = Application::new();
    let obs = app.observer();
    generate_app(
        app.universe_mut(),
        ObserverHooks {
            class: obs.class,
            emit: obs.emit,
        },
        spec,
    );
    app
}

/// Deploy the Figure 1 app over `nodes` nodes with the given policy and
/// return `(cluster, counter value reference)`.
pub fn deployed_counter(nodes: u32, policy: Box<dyn DistributionPolicy>) -> (Cluster, Value) {
    let cluster = figure1_app()
        .transform(&["RMI", "SOAP", "CORBA"])
        .map(|t| t.deploy(nodes, 42, policy))
        .expect("figure1 transforms");
    let c = cluster
        .new_instance(NodeId(0), "C", 0, vec![])
        .expect("counter created");
    (cluster, c)
}

/// Build the E12 batching application: a counter `C` with a deferrable
/// void `inc(int)` and a value-returning `total()` synchronization point.
pub fn batched_counter_app() -> Application {
    let mut app = Application::new();
    let u = app.universe_mut();
    let c = u.declare("C", ClassKind::Class);
    let mut cb = ClassBuilder::new(u, c);
    let v = cb.field(Field::new("v", Ty::Int));
    let mut mb = MethodBuilder::new(1);
    mb.ret();
    cb.ctor(u, vec![], Some(mb.finish()));
    let mut mb = MethodBuilder::new(2);
    mb.load_this();
    mb.load_this().get_field(c, v);
    mb.load_local(1).add();
    mb.put_field(c, v);
    mb.ret();
    cb.method(u, "inc", vec![Ty::Int], Ty::Void, Some(mb.finish()));
    let mut mb = MethodBuilder::new(1);
    mb.load_this().get_field(c, v).ret_value();
    cb.method(u, "total", vec![], Ty::Int, Some(mb.finish()));
    cb.finish(u);
    app
}

/// Build the E15 keyed store: `S { int k; int v; S(int k); int put(int d) }`.
/// `k` is the shard key (readable through the generated `get_k` getter),
/// `put` is the mutator, and reads go through the generated `get_v`
/// property getter — the shape `shard by` and `reads from replicas`
/// policies are written for.
pub fn keyed_store_app() -> Application {
    let mut app = Application::new();
    let u = app.universe_mut();
    let s = u.declare("S", ClassKind::Class);
    let mut cb = ClassBuilder::new(u, s);
    let k = cb.field(Field::new("k", Ty::Int));
    let v = cb.field(Field::new("v", Ty::Int));
    let mut mb = MethodBuilder::new(2);
    mb.load_this().load_local(1).put_field(s, k).ret();
    cb.ctor(u, vec![Ty::Int], Some(mb.finish()));
    // int put(int d) { v = v + d; return v; }
    let mut mb = MethodBuilder::new(2);
    mb.load_this();
    mb.load_this().get_field(s, v);
    mb.load_local(1).add();
    mb.put_field(s, v);
    mb.load_this().get_field(s, v).ret_value();
    cb.method(u, "put", vec![Ty::Int], Ty::Int, Some(mb.finish()));
    cb.finish(u);
    app
}

/// Format a ratio as `x.yz×`.
pub fn ratio(base: u64, other: u64) -> String {
    format!("{:.2}x", other as f64 / base.max(1) as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rafda::LocalPolicy;

    #[test]
    fn fixtures_build_and_run() {
        let (cluster, c) = deployed_counter(2, Box::new(LocalPolicy::default()));
        assert_eq!(
            cluster.call_method(NodeId(0), c, "tick", vec![]).unwrap(),
            Value::Int(1)
        );
        let app = chain_app(&AppSpec::default());
        assert!(app.universe().by_name("Driver").is_some());
        assert_eq!(ratio(10, 25), "2.50x");
    }
}
