//! **E3 — the Section 2.4 statistic**: "About 40% of the 8,200 classes and
//! interfaces in JDK 1.4.1 cannot be transformed."
//!
//! Regenerates the headline number over the JDK-shaped corpus, the
//! per-reason breakdown, and the sensitivity sweeps (E3b) the paper hints
//! at ("This percentage would increase if the user code contains native
//! methods which refer to a JDK class"). Criterion then times the analysis
//! itself at increasing corpus scale.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rafda::corpus::{generate_jdk, JdkProfile};
use rafda::transform::analyze;
use rafda::ClassUniverse;
use std::time::Duration;

fn fraction(profile: &JdkProfile) -> (f64, usize) {
    let mut u = ClassUniverse::new();
    generate_jdk(&mut u, profile);
    let r = analyze(&u);
    (r.non_transformable_fraction(), r.total)
}

fn summary_table() {
    println!("\n=== E3: transformability of a JDK-1.4.1-shaped corpus ===");
    let profile = JdkProfile::jdk_1_4_1();
    let mut u = ClassUniverse::new();
    generate_jdk(&mut u, &profile);
    let report = analyze(&u);
    println!("{report}");
    println!(
        "paper:    ~40.0% of 8,200\nmeasured: {:>5.1}% of {}\n",
        100.0 * report.non_transformable_fraction(),
        report.total
    );

    println!("--- E3b: sensitivity to native-method density ---");
    println!("{:>12} | {:>18}", "native scale", "non-transformable");
    for scale in [0.0, 0.25, 0.5, 1.0, 2.0, 4.0] {
        let (f, _) = fraction(&JdkProfile::scaled(2000).with_native_scale(scale));
        println!("{:>11}x | {:>17.1}%", scale, 100.0 * f);
    }
    println!("\n--- E3b: sensitivity to reference-graph density ---");
    println!("{:>12} | {:>18}", "refs/class", "non-transformable");
    for refs in [0.2, 0.4, 0.55, 0.8, 1.2, 2.0] {
        let (f, _) = fraction(&JdkProfile::scaled(2000).with_refs_per_class(refs));
        println!("{:>12} | {:>17.1}%", refs, 100.0 * f);
    }
    println!();
}

fn bench(c: &mut Criterion) {
    summary_table();
    let mut group = c.benchmark_group("e3_transformability");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(400));
    group.measurement_time(Duration::from_secs(2));
    for size in [1_000usize, 4_000, 8_200] {
        let profile = JdkProfile::scaled(size);
        let mut u = ClassUniverse::new();
        generate_jdk(&mut u, &profile);
        group.bench_with_input(BenchmarkId::new("analyze", size), &u, |b, u| {
            b.iter(|| analyze(u).non_transformable_count())
        });
        group.bench_with_input(
            BenchmarkId::new("generate", size),
            &profile,
            |b, profile| {
                b.iter(|| {
                    let mut u = ClassUniverse::new();
                    generate_jdk(&mut u, profile);
                    u.len()
                })
            },
        );
    }
    // Full transformation throughput (family generation + rewriting) at a
    // moderate corpus scale.
    {
        let profile = JdkProfile::scaled(400);
        group.bench_function("transform_400_classes", |b| {
            b.iter(|| {
                let mut u = ClassUniverse::new();
                generate_jdk(&mut u, &profile);
                rafda::transform::Transformer::new()
                    .protocols(&["RMI"])
                    .run(&mut u)
                    .unwrap()
                    .report
                    .generated_classes
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
