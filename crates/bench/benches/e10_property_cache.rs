//! **E10 — coherent proxy-side property caching**: read-mostly workloads
//! dominated by remote `get_f` exchanges (the property indirection of
//! Section 2.1 makes every field read an RPC once the object is remote).
//! With the per-class `cache` policy rule on, repeated reads are served
//! from the proxy-side cache while the owner's property version is
//! unchanged; writes invalidate, so the workload stays coherent.
//!
//! Reported: remote exchanges, wire messages, simulated elapsed time and
//! hit rate for the same workload with caching off vs on. Expected shape:
//! with a read:write ratio of r, caching removes ~(r-1)/r of the `get_`
//! exchanges — far past the 50% acceptance bar at r = 8.

use criterion::{criterion_group, criterion_main, Criterion};
use rafda::{Cluster, NodeId, Placement, StaticPolicy, Value};
use rafda_bench::figure1_app;
use std::time::Duration;

const N0: NodeId = NodeId(0);
const N1: NodeId = NodeId(1);

/// Deploy the Figure 1 counter remote to the driver, with or without the
/// property-cache policy rule for `C`.
fn deploy(cache: bool) -> (Cluster, Value) {
    let policy = StaticPolicy::new()
        .place("C", Placement::Node(N1))
        .default_statics(N0)
        .cache("C", cache);
    let cluster = figure1_app()
        .transform(&["RMI"])
        .unwrap()
        .deploy(2, 42, Box::new(policy));
    let c = cluster.new_instance(N0, "C", 0, vec![]).unwrap();
    cluster.pin(N0, &c);
    (cluster, c)
}

/// The read-heavy phase: `rounds` rounds of one write (`tick`) followed by
/// `reads_per_write` property reads. Returns served remote calls.
fn drive(cluster: &Cluster, c: &Value, rounds: usize, reads_per_write: usize) -> u64 {
    let before = cluster.stats().rpc_calls;
    for _ in 0..rounds {
        cluster.call_method(N0, c.clone(), "tick", vec![]).unwrap();
        for _ in 0..reads_per_write {
            cluster
                .call_method(N0, c.clone(), "get_count", vec![])
                .unwrap();
        }
    }
    cluster.stats().rpc_calls - before
}

fn summary_table() {
    println!("\n=== E10: proxy-side property caching (reads:writes = 8:1) ===");
    println!(
        "{:<14} | {:>14} | {:>9} | {:>12} | {:>16}",
        "cache", "remote calls", "messages", "sim elapsed", "hits/miss/inval"
    );
    let mut baseline_calls = 0;
    for cache in [false, true] {
        let (cluster, c) = deploy(cache);
        let t0 = cluster.network().now();
        let m0 = cluster.network().stats().messages;
        let calls = drive(&cluster, &c, 32, 8);
        let s = cluster.stats();
        println!(
            "{:<14} | {:>14} | {:>9} | {:>12} | {:>16}",
            if cache {
                "on (policy)"
            } else {
                "off (default)"
            },
            calls,
            cluster.network().stats().messages - m0,
            format!("{}", cluster.network().now() - t0),
            format!(
                "{}/{}/{}",
                s.cache_hits, s.cache_misses, s.cache_invalidations
            ),
        );
        if cache {
            let saved = 100 * (baseline_calls - calls) / baseline_calls.max(1);
            println!("remote exchanges saved by the cache: {saved}%");
            assert!(
                2 * calls <= baseline_calls,
                "acceptance: caching must at least halve remote get_ exchanges \
                 ({calls} vs {baseline_calls})"
            );
        } else {
            baseline_calls = calls;
        }
    }
    println!();
}

fn bench(c: &mut Criterion) {
    summary_table();
    let mut group = c.benchmark_group("e10_property_cache");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(400));
    group.measurement_time(Duration::from_secs(2));

    group.bench_function("read_heavy_cache_off", |b| {
        let (cluster, cell) = deploy(false);
        b.iter(|| drive(&cluster, &cell, 4, 8))
    });
    group.bench_function("read_heavy_cache_on", |b| {
        let (cluster, cell) = deploy(true);
        b.iter(|| drive(&cluster, &cell, 4, 8))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
