//! **E5 — protocol interchangeability**: "various proxies implementing the
//! interface for a class provide alternative remote versions, e.g.
//! SOAP-based, RMI-based, CORBA-based" (Section 1).
//!
//! The same transformed application runs over each proxy family; behaviour
//! is identical (the integration tests check that), while wire size,
//! protocol-stack overhead and per-call latency differ — the trade-off the
//! flexibility exists to exploit.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rafda::{NodeId, StaticPolicy, Value};
use rafda_bench::figure1_app;
use std::time::Duration;

fn deploy(protocol: &str) -> (rafda::Cluster, Value) {
    let policy = StaticPolicy::new().default_protocol(protocol);
    let cluster = figure1_app()
        .transform(&["RMI", "SOAP", "CORBA"])
        .unwrap()
        .deploy(2, 42, Box::new(policy));
    let c = cluster.new_instance(NodeId(0), "C", 0, vec![]).unwrap();
    let h = c.as_ref_handle().unwrap();
    cluster.migrate(NodeId(0), h, NodeId(1)).unwrap();
    (cluster, c)
}

fn summary_table() {
    println!("\n=== E5: proxy protocol comparison (100 remote calls each) ===");
    println!(
        "{:<8} | {:>12} | {:>14} | {:>16}",
        "protocol", "bytes/call", "sim time/call", "stack overhead"
    );
    for protocol in ["RMI", "CORBA", "SOAP"] {
        let (cluster, c) = deploy(protocol);
        let net = cluster.network();
        net.reset_stats();
        let t0 = net.now();
        let calls = 100;
        for _ in 0..calls {
            cluster
                .call_method(NodeId(0), c.clone(), "tick", vec![])
                .unwrap();
        }
        let stats = net.stats();
        let overhead = rafda::wire::ProtocolKind::from_name(protocol)
            .unwrap()
            .codec()
            .overhead_ns();
        println!(
            "{:<8} | {:>12} | {:>12}ns | {:>14}ns",
            protocol,
            stats.bytes / calls,
            (net.now() - t0).as_ns() / calls,
            overhead * 2
        );
    }
    println!("expected shape: SOAP ≫ CORBA ≳ RMI in both size and latency\n");
}

fn bench(c: &mut Criterion) {
    summary_table();
    let mut group = c.benchmark_group("e5_protocols");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(400));
    group.measurement_time(Duration::from_secs(2));
    for protocol in ["RMI", "CORBA", "SOAP"] {
        let (cluster, counter) = deploy(protocol);
        group.bench_with_input(BenchmarkId::new("remote_call", protocol), &(), |b, ()| {
            b.iter(|| {
                cluster
                    .call_method(NodeId(0), counter.clone(), "tick", vec![])
                    .unwrap()
            })
        });
    }
    // Codec-only micro-benchmarks (encode+decode round trip).
    for kind in rafda::wire::ProtocolKind::ALL {
        let codec = kind.codec();
        let req = rafda::wire::Request::Call {
            object: 42,
            method: "tick@7".to_owned(),
            args: vec![
                rafda::wire::WireValue::Long(123),
                rafda::wire::WireValue::Str("payload".to_owned()),
            ],
        };
        group.bench_with_input(
            BenchmarkId::new("codec_roundtrip", kind.name()),
            &req,
            |b, req| {
                b.iter(|| {
                    let bytes = codec
                        .encode_request(7, rafda::wire::TraceContext::NONE, req)
                        .unwrap();
                    codec.decode_request(&bytes).unwrap()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
