//! **E1 — Figure 1 redistribution**: cost of calls before and after the
//! shared instance `C` is replaced in place by a proxy `Cp`, and the cost
//! of the boundary change itself.
//!
//! The paper asserts interchangeability; this bench quantifies it: a local
//! call is interpreter-only, a remote call adds marshalling + simulated LAN
//! + protocol stack, and a migrate/pull round-trip is a handful of RPCs.

use criterion::{criterion_group, criterion_main, Criterion};
use rafda::{AffinityConfig, LocalPolicy, NodeId, Value};
use rafda_bench::{deployed_counter, figure1_app};
use std::time::Duration;

fn summary_table() {
    println!("\n=== E1: Figure 1 redistribution (simulated time) ===");
    println!(
        "{:<28} | {:>14} | {:>10}",
        "phase", "per-call time", "messages"
    );
    let (cluster, c) = deployed_counter(2, Box::new(LocalPolicy::default()));
    let net = cluster.network();
    let calls = 100;

    let t0 = net.now();
    for _ in 0..calls {
        cluster
            .call_method(NodeId(0), c.clone(), "tick", vec![])
            .unwrap();
    }
    let local_time = (net.now() - t0).as_ns() / calls;
    let local_msgs = net.stats().messages;
    println!(
        "{:<28} | {:>12}ns | {:>10}",
        "local (C on node 0)", local_time, local_msgs
    );

    let h = c.as_ref_handle().unwrap();
    let t0 = net.now();
    cluster.migrate(NodeId(0), h, NodeId(1)).unwrap();
    println!(
        "{:<28} | {:>12}ns | {:>10}",
        "migrate C -> node 1",
        (net.now() - t0).as_ns(),
        net.stats().messages - local_msgs
    );

    let m0 = net.stats().messages;
    let t0 = net.now();
    for _ in 0..calls {
        cluster
            .call_method(NodeId(0), c.clone(), "tick", vec![])
            .unwrap();
    }
    let remote_time = (net.now() - t0).as_ns() / calls;
    println!(
        "{:<28} | {:>12}ns | {:>10}",
        "remote (through proxy Cp)",
        remote_time,
        net.stats().messages - m0
    );
    println!(
        "remote/local simulated-cost ratio: {:.0}x\n",
        remote_time as f64 / local_time.max(1) as f64
    );
}

fn bench(c: &mut Criterion) {
    summary_table();
    let mut group = c.benchmark_group("e1_fig1");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(400));
    group.measurement_time(Duration::from_secs(2));

    // Wall-clock cost of a local interpreted call.
    {
        let (cluster, counter) = deployed_counter(1, Box::new(LocalPolicy::default()));
        group.bench_function("local_call", |b| {
            b.iter(|| {
                cluster
                    .call_method(NodeId(0), counter.clone(), "tick", vec![])
                    .unwrap()
            })
        });
    }
    // Wall-clock cost of a remote call (full marshal/transmit/dispatch).
    {
        let (cluster, counter) = deployed_counter(2, Box::new(LocalPolicy::default()));
        let h = counter.as_ref_handle().unwrap();
        cluster.migrate(NodeId(0), h, NodeId(1)).unwrap();
        group.bench_function("remote_call_rmi", |b| {
            b.iter(|| {
                cluster
                    .call_method(NodeId(0), counter.clone(), "tick", vec![])
                    .unwrap()
            })
        });
    }
    // Boundary change round-trip: migrate out + pull back.
    {
        let (cluster, counter) = deployed_counter(2, Box::new(LocalPolicy::default()));
        let h = counter.as_ref_handle().unwrap();
        group.bench_function("migrate_and_pull_roundtrip", |b| {
            b.iter(|| {
                cluster.migrate(NodeId(0), h, NodeId(1)).unwrap();
                cluster.pull_local(NodeId(0), h).unwrap();
            })
        });
    }
    // End-to-end scenario as the integration tests run it.
    group.bench_function("full_scenario", |b| {
        b.iter(|| {
            let cluster = figure1_app().transform(&["RMI"]).unwrap().deploy(
                2,
                42,
                Box::new(LocalPolicy::default()),
            );
            let c = cluster.new_instance(NodeId(0), "C", 0, vec![]).unwrap();
            for _ in 0..4 {
                cluster
                    .call_method(NodeId(0), c.clone(), "tick", vec![])
                    .unwrap();
            }
            let h = c.as_ref_handle().unwrap();
            cluster.migrate(NodeId(0), h, NodeId(1)).unwrap();
            for _ in 0..4 {
                cluster
                    .call_method(NodeId(0), c.clone(), "tick", vec![])
                    .unwrap();
            }
            cluster.adapt(&AffinityConfig::default());
            cluster
                .call_method(NodeId(0), c.clone(), "tick", vec![])
                .unwrap()
        })
    });
    group.finish();

    // Keep Value in the public surface of the bench for clarity.
    let _ = Value::Int(0);
}

criterion_group!(benches, bench);
criterion_main!(benches);
