//! **E4 — wrapper vs transformation overhead** (paper Section 3):
//! "Although much simpler in terms of implementation, this [wrapper
//! approach] introduces significantly greater overhead."
//!
//! Compares the same workload as (a) the original program, (b) the
//! RAFDA-transformed program running locally, and (c) the wrapper-per-object
//! program, in interpreter steps (machine-independent) and wall-clock.

use criterion::{criterion_group, criterion_main, Criterion};
use rafda::baseline::WrapperTransformer;
use rafda::corpus::{build_auction_house, AppSpec, ObserverHooks};
use rafda::{Application, Value, Vm};
use rafda_bench::{chain_app, ratio};
use std::time::Duration;

fn auction_app() -> Application {
    let mut app = Application::new();
    let obs = app.observer();
    build_auction_house(
        app.universe_mut(),
        ObserverHooks {
            class: obs.class,
            emit: obs.emit,
        },
    );
    app
}

fn auction_steps(variant: Variant) -> u64 {
    match variant {
        Variant::Original => {
            let app = auction_app();
            let vm = Vm::new(std::sync::Arc::new(app.universe().clone()));
            vm.bind_observer(&app.observer());
            vm.run_observed("AuctionMain", "main", vec![Value::Int(100)]);
            vm.stats().steps
        }
        Variant::Rafda => {
            let rt = auction_app().transform(&["RMI"]).unwrap().deploy_local();
            rt.run_observed("AuctionMain", "main", vec![Value::Int(100)]);
            rt.vm().stats().steps
        }
        Variant::Wrapper => {
            let mut app = auction_app();
            let obs = app.observer();
            WrapperTransformer::new().run(app.universe_mut()).unwrap();
            let vm = Vm::new(std::sync::Arc::new(app.universe().clone()));
            vm.bind_observer(&obs);
            vm.run_observed("AuctionMain", "main", vec![Value::Int(100)]);
            vm.stats().steps
        }
    }
}

#[derive(Clone, Copy)]
enum Variant {
    Original,
    Rafda,
    Wrapper,
}

fn run_variant(variant: Variant, spec: &AppSpec, arg: i32) -> (u64, u64, u64) {
    match variant {
        Variant::Original => {
            let app = chain_app(spec);
            let vm = Vm::new(std::sync::Arc::new(app.universe().clone()));
            vm.bind_observer(&app.observer());
            vm.run_observed("Driver", "main", vec![Value::Int(arg)]);
            let s = vm.stats();
            (s.steps, s.calls, s.heap.objects_allocated)
        }
        Variant::Rafda => {
            let rt = chain_app(spec).transform(&["RMI"]).unwrap().deploy_local();
            rt.run_observed("Driver", "main", vec![Value::Int(arg)]);
            let s = rt.vm().stats();
            (s.steps, s.calls, s.heap.objects_allocated)
        }
        Variant::Wrapper => {
            let mut app = chain_app(spec);
            let obs = app.observer();
            WrapperTransformer::new().run(app.universe_mut()).unwrap();
            let vm = Vm::new(std::sync::Arc::new(app.universe().clone()));
            vm.bind_observer(&obs);
            vm.run_observed("Driver", "main", vec![Value::Int(arg)]);
            let s = vm.stats();
            (s.steps, s.calls, s.heap.objects_allocated)
        }
    }
}

fn summary_table() {
    println!("\n=== E4: per-approach overhead (interpreter work) ===");
    let spec = AppSpec {
        inheritance: false,
        arrays: false,
        classes: 12,
        int_fields: 2,
        statics: false,
        seed: 17,
    };
    println!(
        "{:<24} | {:>10} | {:>8} | {:>8} | {:>9} | {:>9}",
        "variant", "steps", "calls", "allocs", "vs orig", "vs RAFDA"
    );
    let (orig_steps, oc, oa) = run_variant(Variant::Original, &spec, 9);
    let (rafda_steps, rc, ra) = run_variant(Variant::Rafda, &spec, 9);
    let (wrap_steps, wc, wa) = run_variant(Variant::Wrapper, &spec, 9);
    println!(
        "{:<24} | {:>10} | {:>8} | {:>8} | {:>9} | {:>9}",
        "original", orig_steps, oc, oa, "1.00x", "-"
    );
    println!(
        "{:<24} | {:>10} | {:>8} | {:>8} | {:>9} | {:>9}",
        "RAFDA transform (local)",
        rafda_steps,
        rc,
        ra,
        ratio(orig_steps, rafda_steps),
        "1.00x"
    );
    println!(
        "{:<24} | {:>10} | {:>8} | {:>8} | {:>9} | {:>9}",
        "wrapper per object",
        wrap_steps,
        wc,
        wa,
        ratio(orig_steps, wrap_steps),
        ratio(rafda_steps, wrap_steps)
    );
    println!(
        "paper: wrappers introduce \"significantly greater overhead\" — measured {} of RAFDA",
        ratio(rafda_steps, wrap_steps)
    );

    // Domain workload (the auction house): heavier cross-object traffic.
    let (o, r, w) = (
        auction_steps(Variant::Original),
        auction_steps(Variant::Rafda),
        auction_steps(Variant::Wrapper),
    );
    println!(
        "auction-house workload:    original {o}   RAFDA {r} ({})   wrapper {w} ({})",
        ratio(o, r),
        ratio(o, w)
    );
    println!(
        "(statics-heavy: the wrapper looks cheap only because it leaves statics\n\
         untransformed — i.e. undistributable, one of the \"current limitations\"\n\
         the paper says wrappers do not solve)\n"
    );
}

fn bench(c: &mut Criterion) {
    summary_table();
    let spec = AppSpec {
        inheritance: false,
        arrays: false,
        classes: 12,
        int_fields: 2,
        statics: false,
        seed: 17,
    };
    let mut group = c.benchmark_group("e4_overhead");
    group.sample_size(15);
    group.warm_up_time(Duration::from_millis(400));
    group.measurement_time(Duration::from_secs(2));
    for (name, variant) in [
        ("original", Variant::Original),
        ("rafda_local", Variant::Rafda),
        ("wrapper", Variant::Wrapper),
    ] {
        // Pre-build the universe once; time only execution.
        match variant {
            Variant::Original => {
                let app = chain_app(&spec);
                let universe = std::sync::Arc::new(app.universe().clone());
                let obs = app.observer();
                group.bench_function(format!("run/{name}"), |b| {
                    b.iter(|| {
                        let vm = Vm::new(universe.clone());
                        vm.bind_observer(&obs);
                        vm.run_observed("Driver", "main", vec![Value::Int(9)]).len()
                    })
                });
            }
            Variant::Rafda => {
                let transformed = chain_app(&spec).transform(&["RMI"]).unwrap();
                let universe = transformed.universe().clone();
                let plan = transformed.plan().clone();
                let obs = transformed.observer();
                group.bench_function(format!("run/{name}"), |b| {
                    b.iter(|| {
                        let rt = rafda::LocalRuntime::new(universe.clone(), plan.clone());
                        rt.bind_observer(&obs);
                        rt.run_observed("Driver", "main", vec![Value::Int(9)]).len()
                    })
                });
            }
            Variant::Wrapper => {
                let mut app = chain_app(&spec);
                let obs = app.observer();
                WrapperTransformer::new().run(app.universe_mut()).unwrap();
                let universe = std::sync::Arc::new(app.universe().clone());
                group.bench_function(format!("run/{name}"), |b| {
                    b.iter(|| {
                        let vm = Vm::new(universe.clone());
                        vm.bind_observer(&obs);
                        vm.run_observed("Driver", "main", vec![Value::Int(9)]).len()
                    })
                });
            }
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
