//! **E16 — the production-day soak**: every distribution feature at once,
//! checked op-by-op against the exact single-address-space oracle.
//!
//! One seeded churn schedule (warmup → steady → churn → quiesce, Zipf-
//! popular auction items) drives a 6-node cluster through sharding with
//! replica reads, property caching, invocation batching, k = 2 crash-stop
//! replication, migrations, adaptation and rebalance ticks — under a 5%
//! message-drop rate, with crashes and restarts interleaved throughout.
//! Every value-returning op is compared to the oracle the moment it
//! returns, and every E14 invariant monitor stays armed for the whole run.
//!
//! Reported per seed: the phased [`SoakReport`] (op counts, messages,
//! simulated time, monitor verdicts) plus wall-clock throughput. A second
//! section re-runs a smaller schedule twice and asserts the rendered
//! report is byte-identical — the soak's whole account of the run is
//! deterministic.
//!
//! Knobs (shared with `tests/soak.rs`): `SOAK_OPS=<n>` for an exact op
//! count, `SOAK_SMOKE=1` for the quick CI pass (10⁴ ops), `SOAK_SEEDS=a,b`
//! to sweep seeds. Default: 10⁵ ops, seed 42.
//!
//! [`SoakReport`]: rafda::runtime::SoakReport

use rafda::corpus::ops::generate_churn;
use rafda::corpus::ops::ChurnConfig;
use rafda::soak::run_schedule;

/// Op-count knob, shared with the soak gate: `SOAK_OPS` wins, then
/// `SOAK_SMOKE`, then the full 10⁵ default.
fn depth() -> usize {
    if let Ok(v) = std::env::var("SOAK_OPS") {
        return v.parse().expect("SOAK_OPS must be an op count");
    }
    if std::env::var_os("SOAK_SMOKE").is_some() {
        return 10_000;
    }
    100_000
}

/// Seeds to sweep: `SOAK_SEEDS` as a comma list, default `42`.
fn seeds() -> Vec<u64> {
    match std::env::var("SOAK_SEEDS") {
        Ok(s) => s
            .split(',')
            .map(|t| t.trim().parse().expect("SOAK_SEEDS must be seeds"))
            .collect(),
        Err(_) => vec![42],
    }
}

fn main() {
    let depth = depth();
    println!("\n=== E16: production-day soak ({depth} ops per seed, drop 5%, k = 2) ===");
    for seed in seeds() {
        let cfg = ChurnConfig::production_day(seed, depth);
        let schedule = generate_churn(&cfg);
        let wall = std::time::Instant::now();
        let report = run_schedule(&cfg, &schedule)
            .unwrap_or_else(|msg| panic!("soak seed {seed} diverged from the oracle: {msg}"));
        let secs = wall.elapsed().as_secs_f64();
        println!("{report}");
        assert!(report.clean(), "a monitor fired:\n{report}");
        assert_eq!(report.total_ops() as usize, schedule.total_ops());
        println!(
            "  wall: {secs:.2} s ({:.0} ops/s)\n",
            schedule.total_ops() as f64 / secs
        );
    }

    // Determinism drill at a fixed small depth (independent of the knobs,
    // so the check costs the same in smoke and full runs): same seed, same
    // schedule, byte-identical report.
    let render = || {
        let cfg = ChurnConfig::production_day(7, 1_500);
        let schedule = generate_churn(&cfg);
        run_schedule(&cfg, &schedule)
            .expect("the small soak is clean")
            .to_string()
    };
    let a = render();
    assert_eq!(a, render(), "same seed must render an identical report");
    println!("determinism: seed-7 report byte-identical across two runs");
}
