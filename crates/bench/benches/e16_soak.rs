//! **E16 — the production-day soak**: every distribution feature at once,
//! checked op-by-op against the exact single-address-space oracle.
//!
//! One seeded churn schedule (warmup → steady → churn → quiesce, Zipf-
//! popular auction items) drives a 6-node cluster through sharding with
//! replica reads, property caching, invocation batching, k = 2 crash-stop
//! replication, migrations, adaptation and rebalance ticks — under a 5%
//! message-drop rate, with crashes and restarts interleaved throughout.
//! Every value-returning op is compared to the oracle the moment it
//! returns, and every E14 invariant monitor stays armed for the whole run.
//!
//! Reported per seed: the phased [`SoakReport`] (op counts, messages,
//! simulated time, monitor verdicts) plus wall-clock throughput. A second
//! section re-runs a smaller schedule twice and asserts the rendered
//! report is byte-identical — the soak's whole account of the run is
//! deterministic.
//!
//! Knobs (shared with `tests/soak.rs`): `SOAK_OPS=<n>` for an exact op
//! count — `SOAK_OPS=1000000` is the mega tier the incremental
//! dirty-replica sweep makes affordable (~31 s single-core) —
//! `SOAK_SMOKE=1` for the quick CI pass (10⁴ ops),
//! `SOAK_SEEDS=a,b` to sweep seeds. Default: 10⁵ ops, seed 42.
//!
//! Every run appends its wall-clock throughput to
//! `target/BENCH_e16_soak.json` (one JSON object per line: tier, depth,
//! seed, wall seconds, ops/s, messages, sweep probes), so the perf
//! trajectory across the 10⁴/10⁵/10⁶ tiers lands in a machine-readable
//! artifact next to the human report.
//!
//! [`SoakReport`]: rafda::runtime::SoakReport

use rafda::corpus::ops::generate_churn;
use rafda::corpus::ops::ChurnConfig;
use rafda::soak::run_schedule;
use std::io::Write as _;

/// Op-count knob, shared with the soak gate: `SOAK_OPS` wins, then
/// `SOAK_SMOKE`, then the full 10⁵ default.
fn depth() -> usize {
    if let Ok(v) = std::env::var("SOAK_OPS") {
        return v.parse().expect("SOAK_OPS must be an op count");
    }
    if std::env::var_os("SOAK_SMOKE").is_some() {
        return 10_000;
    }
    100_000
}

/// Tier label for the JSON artifact, by depth.
fn tier(depth: usize) -> &'static str {
    match depth {
        d if d <= 10_000 => "smoke",
        d if d <= 100_000 => "full",
        _ => "mega",
    }
}

/// Seeds to sweep: `SOAK_SEEDS` as a comma list, default `42`.
fn seeds() -> Vec<u64> {
    match std::env::var("SOAK_SEEDS") {
        Ok(s) => s
            .split(',')
            .map(|t| t.trim().parse().expect("SOAK_SEEDS must be seeds"))
            .collect(),
        Err(_) => vec![42],
    }
}

fn main() {
    let depth = depth();
    println!("\n=== E16: production-day soak ({depth} ops per seed, drop 5%, k = 2) ===");
    let mut bench_lines = Vec::new();
    for seed in seeds() {
        let cfg = ChurnConfig::production_day(seed, depth);
        let schedule = generate_churn(&cfg);
        let wall = std::time::Instant::now();
        let report = run_schedule(&cfg, &schedule)
            .unwrap_or_else(|msg| panic!("soak seed {seed} diverged from the oracle: {msg}"));
        let secs = wall.elapsed().as_secs_f64();
        println!("{report}");
        assert!(report.clean(), "a monitor fired:\n{report}");
        assert_eq!(report.total_ops() as usize, schedule.total_ops());
        let ops_per_s = schedule.total_ops() as f64 / secs;
        println!("  wall: {secs:.2} s ({ops_per_s:.0} ops/s)\n");
        // Per-phase sweep accounting, printed *outside* the report text
        // (the report itself must stay byte-identical across the sweep
        // rewrite): probes per phase show the O(dirty) behavior — heavy
        // in churn, near-zero in the read-dominated quiesce tail.
        let probe_summary: Vec<String> = report
            .phases
            .iter()
            .map(|p| format!("{}={}", p.name, p.stats.replica_sweep_probes))
            .collect();
        println!(
            "  sweep probes: {} total ({}), {} dirty marks",
            report.stats.replica_sweep_probes,
            probe_summary.join(" "),
            report.stats.dirty_marks,
        );
        bench_lines.push(format!(
            "{{\"bench\":\"e16_soak\",\"tier\":\"{}\",\"ops\":{},\"seed\":{},\"wall_s\":{:.3},\
             \"ops_per_s\":{:.0},\"messages\":{},\"sweep_probes\":{},\"dirty_marks\":{}}}",
            tier(depth),
            depth,
            seed,
            secs,
            ops_per_s,
            report.messages,
            report.stats.replica_sweep_probes,
            report.stats.dirty_marks,
        ));
    }
    // The machine-readable perf trajectory: append-per-run so a
    // 10⁴/10⁵/10⁶ tier sweep accumulates into one artifact. The bench
    // binary's cwd is the package dir, so resolve the workspace target/
    // from the manifest path.
    let artifact = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../target/BENCH_e16_soak.json"
    );
    if let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(artifact)
    {
        for line in &bench_lines {
            let _ = writeln!(f, "{line}");
        }
        println!("bench artifact: {artifact}");
    }

    // Determinism drill at a fixed small depth (independent of the knobs,
    // so the check costs the same in smoke and full runs): same seed, same
    // schedule, byte-identical report.
    let render = || {
        let cfg = ChurnConfig::production_day(7, 1_500);
        let schedule = generate_churn(&cfg);
        run_schedule(&cfg, &schedule)
            .expect("the small soak is clean")
            .to_string()
    };
    let a = render();
    assert_eq!(a, render(), "same seed must render an identical report");
    println!("determinism: seed-7 report byte-identical across two runs");
}
