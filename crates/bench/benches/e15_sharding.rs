//! **E15 — policy-driven sharding and replica reads**: what placement
//! policy is worth under a skewed, read-mostly workload.
//!
//! A keyed store of [`KEYS`] instances takes a Zipf-distributed request
//! stream (hot keys dominate, as in real caches and catalogues) from one
//! client node. The same deterministic sequence is replayed against two
//! policies:
//!
//! * **single-owner** — every instance placed on one server node, every
//!   operation a remote exchange (the pre-E15 default);
//! * **sharded + replica reads** — `shard S by get_k modulo 8` spreads
//!   instances across the cluster by key hash, and `S reads from replicas`
//!   serves property getters from the client's own backup whenever its
//!   version matches the owner's (the E10 piggyback is the freshness
//!   oracle), so only mutations cross the wire.
//!
//! Asserted: the sharded + replica-read run needs **at least 30% fewer
//! wire messages** and a strictly lower simulated p95 op latency, returns
//! the exact same values, is byte-identical across same-seed runs, and
//! keeps all four E14 invariant monitors silent. A second section drives
//! the `rebalance_shards` adaptation tick on a deterministic hot/warm
//! skew and shows the resulting migration is stable across runs.
//!
//! `E15_SMOKE=1` shrinks the stream for CI.

use rafda::corpus::workload::ZipfWorkload;
use rafda::{AffinityConfig, Cluster, NodeId, Placement, StaticPolicy, Value};
use rafda_bench::{keyed_store_app, ratio};

const NODES: u32 = 4;
const KEYS: usize = 16;
const MODULO: u32 = 8;
const CLIENT: NodeId = NodeId(0);
const SEED: u64 = 42;
/// One op in this many is a mutation; the rest are property reads.
const WRITE_EVERY: usize = 32;

/// Everything observable about one replay — compared for byte-identical
/// determinism across same-seed runs.
#[derive(Debug, PartialEq)]
struct RunOutcome {
    messages: u64,
    p95_ns: u64,
    clock_ns: u64,
    replica_reads: u64,
    shard_placements: u64,
    finals: Vec<Value>,
}

fn deploy(policy: StaticPolicy) -> (Cluster, Vec<Value>) {
    let cluster =
        keyed_store_app()
            .transform(&["RMI"])
            .unwrap()
            .deploy(NODES, SEED, Box::new(policy));
    cluster.enable_monitors();
    let objs: Vec<Value> = (0..KEYS)
        .map(|i| {
            let o = cluster
                .new_instance(CLIENT, "S", 0, vec![Value::Int(i as i32)])
                .unwrap();
            cluster.pin(CLIENT, &o);
            o
        })
        .collect();
    (cluster, objs)
}

/// Replay `ops` (key indices) against a fresh deployment of `policy`.
fn run(label: &str, policy: StaticPolicy, ops: &[usize]) -> RunOutcome {
    let (cluster, objs) = deploy(policy);
    // Warm-up write per key: every owner serves one mutation, so every
    // backup is seeded before measurement starts (same cost in all runs).
    for o in &objs {
        cluster
            .call_method(CLIENT, o.clone(), "put", vec![Value::Int(0)])
            .unwrap();
    }
    let m0 = cluster.network().stats().messages;
    let t0 = cluster.network().now().as_ns();
    let mut latencies: Vec<u64> = Vec::with_capacity(ops.len());
    for (i, &key) in ops.iter().enumerate() {
        let s0 = cluster.network().now().as_ns();
        if i % WRITE_EVERY == WRITE_EVERY - 1 {
            cluster
                .call_method(CLIENT, objs[key].clone(), "put", vec![Value::Int(1)])
                .unwrap();
        } else {
            cluster
                .call_method(CLIENT, objs[key].clone(), "get_v", vec![])
                .unwrap();
        }
        latencies.push(cluster.network().now().as_ns() - s0);
    }
    let messages = cluster.network().stats().messages - m0;
    let clock_ns = cluster.network().now().as_ns() - t0;
    let finals: Vec<Value> = objs
        .iter()
        .map(|o| {
            cluster
                .call_method(CLIENT, o.clone(), "get_v", vec![])
                .unwrap()
        })
        .collect();
    assert_eq!(
        cluster.check_invariants(),
        vec![],
        "{label}: an E14 monitor fired"
    );
    latencies.sort_unstable();
    let p95_ns = latencies[(latencies.len() * 95 / 100).min(latencies.len() - 1)];
    let stats = cluster.stats();
    RunOutcome {
        messages,
        p95_ns,
        clock_ns,
        replica_reads: stats.replica_reads,
        shard_placements: stats.shard_placements,
        finals,
    }
}

/// The adaptation tick on a deterministic hot/warm skew: two shards on
/// node 0, one hot and one warm traffic stream from another node, one
/// `rebalance_shards` call. Exactly one shard — the warm one, the hottest
/// that fits half the load gap — must move (one migration event per
/// member instance), values must survive the move, and the tick must be
/// identical across runs.
fn tick_section() {
    let run = || -> (Vec<String>, Vec<String>, u64, Value, Value) {
        let policy = StaticPolicy::new().shard("S", "get_k", 4);
        let cluster =
            keyed_store_app()
                .transform(&["RMI"])
                .unwrap()
                .deploy(2, SEED, Box::new(policy));
        // Shard owners seed as `shard % nodes`, so half the key space
        // lands on node 0; pick one resident of each of its two shards.
        let driver = NodeId(1);
        let mut on_zero = Vec::new();
        for key in 0..KEYS as i32 {
            let o = cluster
                .new_instance(driver, "S", 0, vec![Value::Int(key)])
                .unwrap();
            cluster.pin(driver, &o);
            if cluster.location_of(driver, &o) == Some(NodeId(0)) && on_zero.len() < 2 {
                on_zero.push(o);
            }
        }
        let [hot, warm] = &on_zero[..] else {
            panic!("expected two instances on node 0");
        };
        for _ in 0..20 {
            cluster
                .call_method(driver, hot.clone(), "put", vec![Value::Int(1)])
                .unwrap();
        }
        for _ in 0..4 {
            cluster
                .call_method(driver, warm.clone(), "put", vec![Value::Int(1)])
                .unwrap();
        }
        let events: Vec<String> = cluster
            .rebalance_shards(&AffinityConfig::default())
            .iter()
            .map(|e| e.to_string())
            .collect();
        let second: Vec<String> = cluster
            .rebalance_shards(&AffinityConfig::default())
            .iter()
            .map(|e| e.to_string())
            .collect();
        // Forwarding keeps both streams correct through the move.
        let hot_v = cluster
            .call_method(driver, hot.clone(), "get_v", vec![])
            .unwrap();
        let warm_v = cluster
            .call_method(driver, warm.clone(), "get_v", vec![])
            .unwrap();
        (
            events,
            second,
            cluster.stats().shard_rebalances,
            hot_v,
            warm_v,
        )
    };
    let (events, converged, shards_moved, hot_v, warm_v) = run();
    println!("adaptation tick on 20-call hot / 4-call warm skew:");
    for e in &events {
        println!("  moved: {e}");
    }
    assert_eq!(shards_moved, 1, "exactly the warm shard moves: {events:?}");
    assert!(!events.is_empty(), "the warm shard has members to move");
    assert!(
        events
            .iter()
            .all(|e| e.contains("node0") && e.contains("node1")),
        "every move drains the hot node: {events:?}"
    );
    assert_eq!((hot_v, warm_v), (Value::Int(20), Value::Int(4)));
    assert!(converged.is_empty(), "second tick must be a no-op");
    let (again, _, _, _, _) = run();
    assert_eq!(events, again, "rebalancing must be deterministic");
    println!("  second tick: no-op (converged); repeat run: identical\n");
}

fn main() {
    let smoke = std::env::var("E15_SMOKE").is_ok();
    let ops_n: usize = if smoke { 256 } else { 2048 };
    let ops = ZipfWorkload::new(SEED, KEYS, 1.1).sequence(ops_n);

    println!(
        "\n=== E15: sharding + replica reads vs single owner \
         (Zipf 1.1, {KEYS} keys, {ops_n} ops, 1 write per {WRITE_EVERY}) ==="
    );
    let single = run(
        "single-owner",
        StaticPolicy::new()
            .place("S", Placement::Node(NodeId(1)))
            .replicate("S", 1),
        &ops,
    );
    let sharded_policy = || {
        StaticPolicy::new()
            .shard("S", "get_k", MODULO)
            .replicate("S", 1)
            .replica_reads("S", true)
    };
    let sharded = run("sharded", sharded_policy(), &ops);

    println!(
        "{:<24} | {:>9} | {:>12} | {:>13}",
        "policy", "messages", "sim p95", "replica reads"
    );
    for (name, o) in [
        ("single-owner", &single),
        ("sharded+replica-reads", &sharded),
    ] {
        println!(
            "{:<24} | {:>9} | {:>9} ns | {:>13}",
            name, o.messages, o.p95_ns, o.replica_reads
        );
    }
    println!(
        "message reduction: {} of baseline; placements routed: {}",
        ratio(single.messages, sharded.messages),
        sharded.shard_placements
    );

    assert_eq!(
        single.finals, sharded.finals,
        "placement must never change observable values"
    );
    assert!(
        sharded.messages * 10 <= single.messages * 7,
        "sharding + replica reads must cut remote exchanges by >= 30%: \
         {} vs {}",
        sharded.messages,
        single.messages
    );
    assert!(
        sharded.p95_ns < single.p95_ns,
        "sharded p95 must beat single-owner: {} vs {} ns",
        sharded.p95_ns,
        single.p95_ns
    );
    assert!(sharded.replica_reads > 0, "getters must hit the backup");

    // Byte-identical determinism: the same seed replays the same run.
    let replay = run("sharded-replay", sharded_policy(), &ops);
    assert_eq!(sharded, replay, "same seed must give an identical run");
    println!("replay with same seed: identical (messages, clock, p95, values)\n");

    tick_section();
}
