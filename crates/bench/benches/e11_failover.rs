//! **E11 — crash-stop failover**: the cost of k-replication and of the
//! re-homing path itself. Every served mutating call on a replicated
//! object ships the owner's state to its k backups synchronously, so the
//! steady-state write cost grows with k; when the owner crashes, the next
//! call pays one failed exchange plus a promotion round-trip and then runs
//! at normal remote-call cost against the new home.
//!
//! Reported: wire messages and simulated elapsed time for a write-only
//! workload at k = 0/1/2, and the simulated latency of the first call
//! after an owner crash (re-home + promote) vs the typed failure the same
//! schedule produces without replication.

use criterion::{criterion_group, criterion_main, Criterion};
use rafda::{Cluster, NodeId, Placement, StaticPolicy, Value};
use rafda_bench::figure1_app;
use std::time::Duration;

const N0: NodeId = NodeId(0);
const N1: NodeId = NodeId(1);

/// Deploy the Figure 1 counter on node 1 of three nodes, replicated k ways.
fn deploy(k: u32) -> (Cluster, Value) {
    let policy = StaticPolicy::new()
        .place("C", Placement::Node(N1))
        .default_statics(N0)
        .replicate("C", k);
    let cluster = figure1_app()
        .transform(&["RMI"])
        .unwrap()
        .deploy(3, 42, Box::new(policy));
    let c = cluster.new_instance(N0, "C", 0, vec![]).unwrap();
    cluster.pin(N0, &c);
    (cluster, c)
}

/// `rounds` mutating calls — each one triggers a replica sync per backup.
fn drive(cluster: &Cluster, c: &Value, rounds: usize) {
    for _ in 0..rounds {
        cluster.call_method(N0, c.clone(), "tick", vec![]).unwrap();
    }
}

fn summary_table() {
    println!("\n=== E11: crash-stop failover (write-only workload, 32 calls) ===");
    println!(
        "{:<12} | {:>9} | {:>12} | {:>13}",
        "replication", "messages", "sim elapsed", "replica syncs"
    );
    let mut baseline_messages = 0;
    for k in [0u32, 1, 2] {
        let (cluster, c) = deploy(k);
        let t0 = cluster.network().now();
        let m0 = cluster.network().stats().messages;
        drive(&cluster, &c, 32);
        let messages = cluster.network().stats().messages - m0;
        println!(
            "{:<12} | {:>9} | {:>12} | {:>13}",
            format!("k = {k}"),
            messages,
            format!("{}", cluster.network().now() - t0),
            cluster.stats().replica_syncs,
        );
        if k == 0 {
            baseline_messages = messages;
        } else {
            assert!(
                messages > baseline_messages,
                "replication must cost extra messages ({messages} vs {baseline_messages})"
            );
        }
    }

    // The failover path itself: first call after the owner dies.
    let (cluster, c) = deploy(1);
    drive(&cluster, &c, 8);
    cluster.crash(N1);
    let t0 = cluster.network().now();
    cluster.call_method(N0, c.clone(), "tick", vec![]).unwrap();
    let rehome = cluster.network().now() - t0;
    let s = cluster.stats();
    assert_eq!(s.failovers, 1);
    println!("first call after owner crash, k = 1: {rehome} (failed exchange + promote + retry)");

    let (cluster, c) = deploy(0);
    drive(&cluster, &c, 8);
    cluster.crash(N1);
    let err = cluster
        .call_method(N0, c.clone(), "tick", vec![])
        .unwrap_err();
    assert!(err.net_failure().is_some());
    println!("same schedule,            k = 0: typed failure ({err})\n");
}

fn bench(c: &mut Criterion) {
    summary_table();
    let mut group = c.benchmark_group("e11_failover");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(400));
    group.measurement_time(Duration::from_secs(2));

    for k in [0u32, 1, 2] {
        group.bench_function(format!("steady_state_k{k}"), |b| {
            let (cluster, cell) = deploy(k);
            b.iter(|| drive(&cluster, &cell, 4))
        });
    }
    group.bench_function("crash_and_rehome", |b| {
        b.iter(|| {
            let (cluster, cell) = deploy(1);
            cluster.crash(N1);
            cluster
                .call_method(N0, cell.clone(), "tick", vec![])
                .unwrap()
        })
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
