//! **E13 — zero-copy wire fast path**: frames/second through the codec
//! layer, old pipeline vs new.
//!
//! The serve path's hot case (a retransmission answered from the reply
//! cache, a batch routed by discriminant, a replica-sync fan-out) needs
//! only the frame *header*; PR 6 made that observable at the codec API.
//! This bench measures the combined win of the three mechanisms on the RMI
//! hot path:
//!
//! * reusable encode buffers (no allocation per frame),
//! * signature interning (repeat method names are 5-byte references),
//! * borrowed header decode (no owned `WireValue` tree).
//!
//! Wall-clock, best-of-N rounds; the run **asserts** the fast path is at
//! least 2× the baseline in frames/sec. `E13_SMOKE=1` shrinks the round
//! count so CI can run it as a smoke test.

use rafda::wire::{
    CorbaCodec, Protocol, Request, RmiCodec, SigTable, SoapCodec, TraceContext, WireValue,
};
use std::time::Instant;

fn sample_request() -> Request {
    Request::Call {
        object: 42,
        method: "observe@12".to_owned(),
        args: vec![
            WireValue::Long(123),
            WireValue::Str("payload".to_owned()),
            WireValue::Bool(true),
        ],
    }
}

/// Frames/sec of the pre-PR-6 pipeline: allocate, encode, full decode.
fn baseline_fps(codec: &dyn Protocol, frames: u32, rounds: u32) -> f64 {
    let req = sample_request();
    let mut best = f64::MAX;
    for _ in 0..rounds {
        let t = Instant::now();
        for i in 0..frames {
            let bytes = codec
                .encode_request(u64::from(i), TraceContext::NONE, &req)
                .unwrap();
            let decoded = codec.decode_request(&bytes).unwrap();
            std::hint::black_box(decoded);
        }
        best = best.min(t.elapsed().as_secs_f64());
    }
    f64::from(frames) / best
}

/// Frames/sec of the zero-copy fast path: one reused buffer, a shared
/// per-link signature table (as the runtime keeps), and header-only decode
/// — the work the server does for a frame it answers from the reply cache.
fn fastpath_fps(codec: &dyn Protocol, frames: u32, rounds: u32) -> f64 {
    let req = sample_request();
    let mut best = f64::MAX;
    for _ in 0..rounds {
        let mut table = SigTable::new();
        let mut buf = Vec::new();
        let t = Instant::now();
        for i in 0..frames {
            codec
                .encode_request_into(
                    u64::from(i),
                    TraceContext::NONE,
                    &req,
                    Some(&mut table),
                    &mut buf,
                )
                .unwrap();
            let header = codec.decode_request_header(&buf).unwrap();
            std::hint::black_box((header.msg_id, header.kind));
        }
        best = best.min(t.elapsed().as_secs_f64());
    }
    f64::from(frames) / best
}

fn main() {
    let smoke = std::env::var("E13_SMOKE").is_ok();
    let frames: u32 = if smoke { 2_000 } else { 50_000 };
    let rounds: u32 = if smoke { 3 } else { 5 };

    println!(
        "\n=== E13: wire fast path, frames/sec (best of {rounds} rounds × {frames} frames) ==="
    );
    println!(
        "{:<8} | {:>14} | {:>14} | {:>8}",
        "protocol", "baseline f/s", "fast path f/s", "speedup"
    );
    let mut rmi_speedup = 0.0;
    for (name, codec) in [
        ("RMI", Box::new(RmiCodec::new()) as Box<dyn Protocol>),
        ("CORBA", Box::new(CorbaCodec::new())),
        ("SOAP", Box::new(SoapCodec::new())),
    ] {
        let base = baseline_fps(codec.as_ref(), frames, rounds);
        let fast = fastpath_fps(codec.as_ref(), frames, rounds);
        let speedup = fast / base;
        println!("{name:<8} | {base:>14.0} | {fast:>14.0} | {speedup:>7.2}x");
        if name == "RMI" {
            rmi_speedup = speedup;
        }
    }
    println!("expected shape: every protocol gains; RMI (the hot path) must gain >= 2x\n");
    assert!(
        rmi_speedup >= 2.0,
        "zero-copy fast path regressed: RMI speedup {rmi_speedup:.2}x < 2x"
    );
}
