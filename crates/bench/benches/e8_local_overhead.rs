//! **E8 — local cost of the transformation itself** (Section 2.1's
//! property/interface indirection): what does the transformed program pay
//! when *nothing* is remote?
//!
//! Per call-site kind, compares interpreter steps of the original construct
//! against the rewritten one: field get/set (direct vs property accessor),
//! construction (`new` vs `make`+`init$k`), static access (direct vs
//! `discover()` + accessor), plus Criterion wall-clock groups.

use criterion::{criterion_group, criterion_main, Criterion};
use rafda::classmodel::builder::{ClassBuilder, MethodBuilder};
use rafda::classmodel::{ClassKind, Field};
use rafda::{Application, Ty, Value, Vm};
use std::time::Duration;

/// Build a microbench app: class `Cell { int v; }` and a `Bench` driver
/// with one static method per site kind, each looping `n` times.
fn micro_app() -> Application {
    let mut app = Application::new();
    let u = app.universe_mut();
    let cell = u.declare("Cell", ClassKind::Class);
    {
        let mut cb = ClassBuilder::new(u, cell);
        let v = cb.field(Field::new("v", Ty::Int));
        let mut k_field = Field::new("K", Ty::Int);
        k_field.visibility = rafda::classmodel::Visibility::Public;
        let k = cb.static_field(k_field);
        let mut mb = MethodBuilder::new(2);
        mb.load_this().load_local(1).put_field(cell, v).ret();
        cb.ctor(u, vec![Ty::Int], Some(mb.finish()));
        let mut mb = MethodBuilder::new(1);
        mb.load_this().get_field(cell, v).ret_value();
        cb.method(u, "value", vec![], Ty::Int, Some(mb.finish()));
        let mut mb = MethodBuilder::new(0);
        mb.const_int(7).put_static(cell, k).ret();
        cb.clinit(u, mb.finish());
        cb.finish(u);
    }
    // class Bench with per-site loops.
    let bench = u.declare("Bench", ClassKind::Class);
    {
        let mut cb = ClassBuilder::new(u, bench);
        let cell_v = 0u16;
        // static int field_get(int n) { Cell c = new Cell(1); int s = 0;
        //   while (n > 0) { s = s + c.v; n = n - 1; } return s; }
        let mut mb = MethodBuilder::new(1);
        let c = mb.alloc_local();
        let s = mb.alloc_local();
        mb.const_int(1).new_init(cell, 0, 1).store_local(c);
        mb.const_int(0).store_local(s);
        let top = mb.label();
        let done = mb.label();
        mb.bind(top);
        mb.load_local(0)
            .const_int(0)
            .cmp(rafda::classmodel::CmpOp::Gt);
        mb.jump_if_not(done);
        mb.load_local(s);
        mb.load_local(c).get_field(cell, cell_v);
        mb.add().store_local(s);
        mb.load_local(0).const_int(1).sub().store_local(0);
        mb.jump(top);
        mb.bind(done);
        mb.load_local(s).ret_value();
        cb.static_method(u, "field_get", vec![Ty::Int], Ty::Int, Some(mb.finish()));

        // static int field_set(int n) { Cell c = new Cell(1);
        //   while (n > 0) { c.v = n; n = n - 1; } return c.v; }
        let mut mb = MethodBuilder::new(1);
        let c = mb.alloc_local();
        mb.const_int(1).new_init(cell, 0, 1).store_local(c);
        let top = mb.label();
        let done = mb.label();
        mb.bind(top);
        mb.load_local(0)
            .const_int(0)
            .cmp(rafda::classmodel::CmpOp::Gt);
        mb.jump_if_not(done);
        mb.load_local(c).load_local(0).put_field(cell, cell_v);
        mb.load_local(0).const_int(1).sub().store_local(0);
        mb.jump(top);
        mb.bind(done);
        mb.load_local(c).get_field(cell, cell_v).ret_value();
        cb.static_method(u, "field_set", vec![Ty::Int], Ty::Int, Some(mb.finish()));

        // static int construct(int n) { int s=0; while (n>0) { s = s + new Cell(n).value(); n=n-1; } return s; }
        let value_sig = u.sig("value", vec![]);
        let mut mb = MethodBuilder::new(1);
        let s = mb.alloc_local();
        mb.const_int(0).store_local(s);
        let top = mb.label();
        let done = mb.label();
        mb.bind(top);
        mb.load_local(0)
            .const_int(0)
            .cmp(rafda::classmodel::CmpOp::Gt);
        mb.jump_if_not(done);
        mb.load_local(s);
        mb.load_local(0).new_init(cell, 0, 1);
        mb.invoke(value_sig, 0);
        mb.add().store_local(s);
        mb.load_local(0).const_int(1).sub().store_local(0);
        mb.jump(top);
        mb.bind(done);
        mb.load_local(s).ret_value();
        cb.static_method(u, "construct", vec![Ty::Int], Ty::Int, Some(mb.finish()));

        // static int static_get(int n) { int s=0; while(n>0){ s=s+Cell.K; n=n-1; } return s; }
        let mut mb = MethodBuilder::new(1);
        let s = mb.alloc_local();
        mb.const_int(0).store_local(s);
        let top = mb.label();
        let done = mb.label();
        mb.bind(top);
        mb.load_local(0)
            .const_int(0)
            .cmp(rafda::classmodel::CmpOp::Gt);
        mb.jump_if_not(done);
        mb.load_local(s);
        mb.get_static(cell, 0);
        mb.add().store_local(s);
        mb.load_local(0).const_int(1).sub().store_local(0);
        mb.jump(top);
        mb.bind(done);
        mb.load_local(s).ret_value();
        cb.static_method(u, "static_get", vec![Ty::Int], Ty::Int, Some(mb.finish()));
        cb.finish(u);
    }
    app
}

const SITES: [&str; 4] = ["field_get", "field_set", "construct", "static_get"];
const N: i32 = 200;

fn original_steps(site: &str) -> u64 {
    let app = micro_app();
    let vm = Vm::new(std::sync::Arc::new(app.universe().clone()));
    vm.call_static_by_name("Bench", site, vec![Value::Int(N)])
        .unwrap();
    vm.stats().steps
}

fn rafda_steps(site: &str) -> u64 {
    let rt = micro_app().transform(&["RMI"]).unwrap().deploy_local();
    rt.call_static("Bench", site, vec![Value::Int(N)]).unwrap();
    rt.vm().stats().steps
}

fn summary_table() {
    println!("\n=== E8: local overhead of the transformation, per site kind ===");
    println!(
        "{:<12} | {:>14} | {:>14} | {:>9}",
        "site", "original steps", "RAFDA steps", "overhead"
    );
    for site in SITES {
        let orig = original_steps(site);
        let rafda = rafda_steps(site);
        println!(
            "{:<12} | {:>14} | {:>14} | {:>8.2}x",
            site,
            orig,
            rafda,
            rafda as f64 / orig as f64
        );
    }
    println!("(loop/driver instructions included, so per-access overhead is higher)\n");
}

fn bench(c: &mut Criterion) {
    summary_table();
    let mut group = c.benchmark_group("e8_local_overhead");
    group.sample_size(20);
    group.warm_up_time(Duration::from_millis(400));
    group.measurement_time(Duration::from_secs(2));
    // Original program wall-clock.
    {
        let app = micro_app();
        let universe = std::sync::Arc::new(app.universe().clone());
        for site in SITES {
            let vm = Vm::new(universe.clone());
            group.bench_function(format!("original/{site}"), move |b| {
                b.iter(|| {
                    vm.call_static_by_name("Bench", site, vec![Value::Int(N)])
                        .unwrap()
                })
            });
        }
    }
    // Transformed-local wall-clock.
    {
        let rt = micro_app().transform(&["RMI"]).unwrap().deploy_local();
        for site in SITES {
            let rt = rt.clone();
            group.bench_function(format!("rafda_local/{site}"), move |b| {
                b.iter(|| rt.call_static("Bench", site, vec![Value::Int(N)]).unwrap())
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
