//! **E6 — dynamic boundary adaptation**: "The distributed program can adapt
//! to its environment by dynamically altering its distribution boundaries"
//! (Section 1); "a complete mechanism for dynamic distribution
//! reconfiguration" (Section 4).
//!
//! A workload whose affinity shifts between nodes; the affinity loop
//! migrates hot objects toward their dominant caller. Reported: cross-node
//! traffic per phase and the cost/latency of adaptation itself.

use criterion::{criterion_group, criterion_main, Criterion};
use rafda::{AffinityConfig, NodeId, Placement, StaticPolicy, Value};
use rafda_bench::figure1_app;
use std::time::Duration;

fn deploy_pool(pool: usize) -> (rafda::Cluster, Vec<Value>) {
    let policy = StaticPolicy::new().place("C", Placement::Node(NodeId(0)));
    let cluster = figure1_app()
        .transform(&["RMI"])
        .unwrap()
        .deploy(2, 42, Box::new(policy));
    let objects = (0..pool)
        .map(|_| cluster.new_instance(NodeId(1), "C", 0, vec![]).unwrap())
        .collect();
    (cluster, objects)
}

fn drive(cluster: &rafda::Cluster, node: NodeId, objects: &[Value], rounds: usize) -> u64 {
    let before = cluster.network().stats().messages;
    for _ in 0..rounds {
        for o in objects {
            cluster
                .call_method(node, o.clone(), "tick", vec![])
                .unwrap();
        }
    }
    cluster.network().stats().messages - before
}

fn summary_table() {
    println!("\n=== E6: adaptive boundary reconfiguration ===");
    println!(
        "{:<34} | {:>10} | {:>12}",
        "phase", "messages", "sim elapsed"
    );
    let (cluster, objects) = deploy_pool(8);
    let net = cluster.network();

    let t0 = net.now();
    let m = drive(&cluster, NodeId(1), &objects, 20);
    println!(
        "{:<34} | {:>10} | {:>12}",
        "1: node 1 drives remote pool",
        m,
        format!("{}", net.now() - t0)
    );

    let t0 = net.now();
    let events = cluster.adapt(&AffinityConfig::default());
    println!(
        "{:<34} | {:>10} | {:>12}",
        format!("2: adapt ({} migrations)", events.len()),
        net.stats().messages,
        format!("{}", net.now() - t0)
    );

    let t0 = net.now();
    let m = drive(&cluster, NodeId(1), &objects, 20);
    println!(
        "{:<34} | {:>10} | {:>12}",
        "3: same workload after adapt",
        m,
        format!("{}", net.now() - t0)
    );
    println!("expected shape: phase 3 traffic collapses to ~0\n");
}

fn bench(c: &mut Criterion) {
    summary_table();
    let mut group = c.benchmark_group("e6_adaptation");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(400));
    group.measurement_time(Duration::from_secs(2));

    group.bench_function("workload_before_adapt", |b| {
        let (cluster, objects) = deploy_pool(4);
        b.iter(|| drive(&cluster, NodeId(1), &objects, 2))
    });
    group.bench_function("workload_after_adapt", |b| {
        let (cluster, objects) = deploy_pool(4);
        drive(&cluster, NodeId(1), &objects, 8);
        cluster.adapt(&AffinityConfig::default());
        b.iter(|| drive(&cluster, NodeId(1), &objects, 2))
    });
    group.bench_function("adapt_pass_8_objects", |b| {
        b.iter_with_setup(
            || {
                let (cluster, objects) = deploy_pool(8);
                drive(&cluster, NodeId(1), &objects, 4);
                cluster
            },
            |cluster| cluster.adapt(&AffinityConfig::default()).len(),
        )
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
