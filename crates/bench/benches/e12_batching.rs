//! **E12 — batched remote invocation**: the wire-traffic saving from
//! deferring void calls onto per-`(caller, owner)` outcall queues and
//! flushing them as one `Request::Batch` frame at each synchronization
//! point. A write-heavy workload (8 fire-and-forget `inc`s per `total`
//! read) collapses 8 request/reply exchanges into one batch exchange, so
//! both the message count and the simulated elapsed time drop sharply;
//! with replication the owner additionally coalesces its replica
//! shipments, so the saving grows with k.
//!
//! Reported: wire messages, finished exchanges, batch flushes and
//! simulated elapsed time for the same workload with batching off vs on,
//! at k = 0/1/2.

use criterion::{criterion_group, criterion_main, Criterion};
use rafda::{Cluster, NodeId, Placement, StaticPolicy, Value};
use rafda_bench::batched_counter_app;
use std::time::Duration;

const N0: NodeId = NodeId(0);
const N1: NodeId = NodeId(1);

const ROUNDS: usize = 32;
const WRITES_PER_ROUND: usize = 8;

/// Deploy the batching counter on node 1 of three nodes, replicated k
/// ways, with batching on or off for class `C`.
fn deploy(k: u32, batch: bool) -> (Cluster, Value) {
    let policy = StaticPolicy::new()
        .place("C", Placement::Node(N1))
        .default_statics(N0)
        .replicate("C", k)
        .batch("C", batch);
    let cluster =
        batched_counter_app()
            .transform(&["RMI"])
            .unwrap()
            .deploy(3, 42, Box::new(policy));
    let c = cluster.new_instance(N0, "C", 0, vec![]).unwrap();
    cluster.pin(N0, &c);
    (cluster, c)
}

/// The write-heavy workload: each round fires `WRITES_PER_ROUND` void
/// increments and then reads the total — the read is the synchronization
/// point that flushes the round's batch.
fn drive(cluster: &Cluster, c: &Value, rounds: usize) -> i64 {
    let mut last = 0;
    for _ in 0..rounds {
        for _ in 0..WRITES_PER_ROUND {
            cluster
                .call_method(N0, c.clone(), "inc", vec![Value::Int(1)])
                .unwrap();
        }
        match cluster.call_method(N0, c.clone(), "total", vec![]).unwrap() {
            Value::Int(v) => last = i64::from(v),
            other => panic!("unexpected {other:?}"),
        }
    }
    last
}

fn summary_table() {
    println!(
        "\n=== E12: batched invocation ({ROUNDS} rounds x {WRITES_PER_ROUND} incs + 1 read) ==="
    );
    println!(
        "{:<14} | {:>9} | {:>10} | {:>8} | {:>12}",
        "configuration", "messages", "exchanges", "flushes", "sim elapsed"
    );
    for k in [0u32, 1, 2] {
        let mut off_exchanges = 0;
        for batch in [false, true] {
            let (cluster, c) = deploy(k, batch);
            let m0 = cluster.network().stats().messages;
            let x0 = cluster.stats().exchanges();
            let t0 = cluster.network().now();
            let total = drive(&cluster, &c, ROUNDS);
            assert_eq!(total, (ROUNDS * WRITES_PER_ROUND) as i64, "lost an inc");
            let stats = cluster.stats();
            let messages = cluster.network().stats().messages - m0;
            let exchanges = stats.exchanges() - x0;
            println!(
                "{:<14} | {:>9} | {:>10} | {:>8} | {:>12}",
                format!("k = {k}, {}", if batch { "batch" } else { "off" }),
                messages,
                exchanges,
                stats.flushes,
                format!("{}", cluster.network().now() - t0),
            );
            if batch {
                assert!(
                    exchanges * 10 <= off_exchanges * 6,
                    "batching must save >= 40% of exchanges ({exchanges} vs {off_exchanges})"
                );
            } else {
                off_exchanges = exchanges;
            }
        }
    }
    println!();
}

fn bench(c: &mut Criterion) {
    summary_table();
    let mut group = c.benchmark_group("e12_batching");
    group.sample_size(10);
    group.warm_up_time(Duration::from_millis(400));
    group.measurement_time(Duration::from_secs(2));

    for batch in [false, true] {
        let label = if batch { "batch_on" } else { "batch_off" };
        group.bench_function(format!("write_heavy_{label}"), |b| {
            let (cluster, cell) = deploy(0, batch);
            b.iter(|| drive(&cluster, &cell, 4))
        });
    }
    group.bench_function("write_heavy_batch_on_k2", |b| {
        let (cluster, cell) = deploy(2, true);
        b.iter(|| drive(&cluster, &cell, 4))
    });
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
