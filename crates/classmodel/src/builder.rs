//! Ergonomic builders for classes and method bodies.
//!
//! [`MethodBuilder`] assembles an instruction stream with forward-label
//! support and local-slot allocation; [`ClassBuilder`] assembles a [`Class`]
//! and installs it into a [`ClassUniverse`]. Both the hand-written sample
//! programs and the transformation engine's code generators use these.

use crate::class::{
    Class, ClassKind, ClassOrigin, Field, Method, MethodBody, TryHandler, Visibility,
};
use crate::insn::{BinOp, CmpOp, Const, FieldRef, Insn, UnOp};
use crate::ty::Ty;
use crate::universe::{ClassId, ClassUniverse, SigId};

/// A forward-referencable code label.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Label(usize);

/// Builds a [`MethodBody`] instruction by instruction.
///
/// # Example
///
/// ```
/// use rafda_classmodel::builder::MethodBuilder;
/// use rafda_classmodel::{Const, Insn};
///
/// let mut mb = MethodBuilder::new(1); // one parameter slot
/// mb.const_int(2);
/// mb.load_local(0);
/// mb.add();
/// mb.ret_value();
/// let body = mb.finish();
/// assert_eq!(body.code.len(), 4);
/// assert_eq!(body.max_locals, 1);
/// ```
#[derive(Debug, Default)]
pub struct MethodBuilder {
    code: Vec<Insn>,
    labels: Vec<Option<u32>>,
    patches: Vec<(usize, Label)>,
    next_local: u16,
    max_locals: u16,
    handlers: Vec<TryHandler>,
}

impl MethodBuilder {
    /// Start a body for a method whose receiver+parameters occupy
    /// `param_slots` locals.
    pub fn new(param_slots: u16) -> Self {
        MethodBuilder {
            next_local: param_slots,
            max_locals: param_slots,
            ..Default::default()
        }
    }

    /// Current instruction index (the position the next emit lands at).
    pub fn pc(&self) -> u32 {
        self.code.len() as u32
    }

    /// Allocate a fresh local slot.
    pub fn alloc_local(&mut self) -> u16 {
        let l = self.next_local;
        self.next_local += 1;
        self.max_locals = self.max_locals.max(self.next_local);
        l
    }

    /// Create an unbound label.
    pub fn label(&mut self) -> Label {
        self.labels.push(None);
        Label(self.labels.len() - 1)
    }

    /// Bind `label` to the current position.
    ///
    /// # Panics
    /// Panics if the label was already bound.
    pub fn bind(&mut self, label: Label) {
        assert!(self.labels[label.0].is_none(), "label bound twice");
        self.labels[label.0] = Some(self.pc());
    }

    /// Emit a raw instruction.
    pub fn emit(&mut self, insn: Insn) -> &mut Self {
        self.code.push(insn);
        self
    }

    fn emit_branch(&mut self, label: Label, make: fn(u32) -> Insn) {
        self.patches.push((self.code.len(), label));
        self.code.push(make(u32::MAX));
    }

    // --- constants ---
    /// Push the `null` constant.
    pub fn const_null(&mut self) -> &mut Self {
        self.emit(Insn::Const(Const::Null))
    }
    /// Push a boolean constant.
    pub fn const_bool(&mut self, v: bool) -> &mut Self {
        self.emit(Insn::Const(Const::Bool(v)))
    }
    /// Push an `int` constant.
    pub fn const_int(&mut self, v: i32) -> &mut Self {
        self.emit(Insn::Const(Const::Int(v)))
    }
    /// Push a `long` constant.
    pub fn const_long(&mut self, v: i64) -> &mut Self {
        self.emit(Insn::Const(Const::Long(v)))
    }
    /// Push a `double` constant.
    pub fn const_double(&mut self, v: f64) -> &mut Self {
        self.emit(Insn::Const(Const::Double(v)))
    }
    /// Push a string constant.
    pub fn const_str(&mut self, v: &str) -> &mut Self {
        self.emit(Insn::Const(Const::Str(v.to_owned())))
    }

    // --- locals ---
    /// Push local slot `n`.
    pub fn load_local(&mut self, n: u16) -> &mut Self {
        self.emit(Insn::LoadLocal(n))
    }
    /// Pop into local slot `n`.
    pub fn store_local(&mut self, n: u16) -> &mut Self {
        self.emit(Insn::StoreLocal(n))
    }
    /// Load `this` (local 0 of an instance method).
    pub fn load_this(&mut self) -> &mut Self {
        self.emit(Insn::LoadLocal(0))
    }

    // --- fields ---
    /// Read an instance field (`[obj] -> [v]`).
    pub fn get_field(&mut self, owner: ClassId, index: u16) -> &mut Self {
        self.emit(Insn::GetField(FieldRef { owner, index }))
    }
    /// Write an instance field (`[obj, v] -> []`).
    pub fn put_field(&mut self, owner: ClassId, index: u16) -> &mut Self {
        self.emit(Insn::PutField(FieldRef { owner, index }))
    }
    /// Read a static field.
    pub fn get_static(&mut self, owner: ClassId, index: u16) -> &mut Self {
        self.emit(Insn::GetStatic(FieldRef { owner, index }))
    }
    /// Write a static field.
    pub fn put_static(&mut self, owner: ClassId, index: u16) -> &mut Self {
        self.emit(Insn::PutStatic(FieldRef { owner, index }))
    }

    // --- calls / allocation ---
    /// Allocate + construct (`new` + `<init>$ctor`).
    pub fn new_init(&mut self, class: ClassId, ctor: u16, argc: u8) -> &mut Self {
        self.emit(Insn::NewInit { class, ctor, argc })
    }
    /// Virtual/interface call dispatched on the receiver.
    pub fn invoke(&mut self, sig: SigId, argc: u8) -> &mut Self {
        self.emit(Insn::Invoke { sig, argc })
    }
    /// Static call on `class`.
    pub fn invoke_static(&mut self, class: ClassId, sig: SigId, argc: u8) -> &mut Self {
        self.emit(Insn::InvokeStatic { class, sig, argc })
    }

    // --- control flow ---
    /// Return from a `void` method.
    pub fn ret(&mut self) -> &mut Self {
        self.emit(Insn::Return)
    }
    /// Return the top of stack.
    pub fn ret_value(&mut self) -> &mut Self {
        self.emit(Insn::ReturnValue)
    }
    /// Throw the exception on top of the stack.
    pub fn throw(&mut self) -> &mut Self {
        self.emit(Insn::Throw)
    }
    /// Unconditional branch to `l`.
    pub fn jump(&mut self, l: Label) -> &mut Self {
        self.emit_branch(l, Insn::Jump);
        self
    }
    /// Branch to `l` when the popped boolean is true.
    pub fn jump_if(&mut self, l: Label) -> &mut Self {
        self.emit_branch(l, Insn::JumpIf);
        self
    }
    /// Branch to `l` when the popped boolean is false.
    pub fn jump_if_not(&mut self, l: Label) -> &mut Self {
        self.emit_branch(l, Insn::JumpIfNot);
        self
    }

    // --- arithmetic & stack ---
    /// Pop two operands, push their sum.
    pub fn add(&mut self) -> &mut Self {
        self.emit(Insn::BinOp(BinOp::Add))
    }
    /// Pop two operands, push their difference.
    pub fn sub(&mut self) -> &mut Self {
        self.emit(Insn::BinOp(BinOp::Sub))
    }
    /// Pop two operands, push their product.
    pub fn mul(&mut self) -> &mut Self {
        self.emit(Insn::BinOp(BinOp::Mul))
    }
    /// Pop two operands, push their quotient.
    pub fn div(&mut self) -> &mut Self {
        self.emit(Insn::BinOp(BinOp::Div))
    }
    /// Emit an arbitrary binary operator.
    pub fn binop(&mut self, op: BinOp) -> &mut Self {
        self.emit(Insn::BinOp(op))
    }
    /// Emit a unary operator.
    pub fn unop(&mut self, op: UnOp) -> &mut Self {
        self.emit(Insn::UnOp(op))
    }
    /// Emit a comparison, pushing a boolean.
    pub fn cmp(&mut self, op: CmpOp) -> &mut Self {
        self.emit(Insn::Cmp(op))
    }
    /// Duplicate the top of stack.
    pub fn dup(&mut self) -> &mut Self {
        self.emit(Insn::Dup)
    }
    /// Discard the top of stack.
    pub fn pop(&mut self) -> &mut Self {
        self.emit(Insn::Pop)
    }
    /// Swap the two top stack values.
    pub fn swap(&mut self) -> &mut Self {
        self.emit(Insn::Swap)
    }

    // --- arrays ---
    /// Allocate an array (`[len] -> [arr]`).
    pub fn new_array(&mut self, elem: Ty) -> &mut Self {
        self.emit(Insn::NewArray(elem))
    }
    /// Index an array (`[arr, idx] -> [v]`).
    pub fn array_get(&mut self) -> &mut Self {
        self.emit(Insn::ArrayGet)
    }
    /// Store into an array (`[arr, idx, v] -> []`).
    pub fn array_set(&mut self) -> &mut Self {
        self.emit(Insn::ArraySet)
    }
    /// Push an array's length.
    pub fn array_len(&mut self) -> &mut Self {
        self.emit(Insn::ArrayLen)
    }

    /// Register an exception handler covering `[start, end)`.
    pub fn handler(&mut self, start: u32, end: u32, target: u32, catch: Option<ClassId>) {
        self.handlers.push(TryHandler {
            start,
            end,
            target,
            catch,
        });
    }

    /// Patch labels and produce the body.
    ///
    /// # Panics
    /// Panics if any referenced label was never bound.
    pub fn finish(self) -> MethodBody {
        let mut code = self.code;
        for (at, label) in self.patches {
            let target = self.labels[label.0].expect("unbound label at finish");
            match &mut code[at] {
                Insn::Jump(t) | Insn::JumpIf(t) | Insn::JumpIfNot(t) => *t = target,
                other => unreachable!("patch site is not a branch: {other:?}"),
            }
        }
        MethodBody {
            max_locals: self.max_locals,
            code,
            handlers: self.handlers,
        }
    }
}

/// Builds a [`Class`] and installs it into a [`ClassUniverse`].
///
/// The class must already be *declared* (so mutually recursive classes can
/// reference each other); `ClassBuilder::finish` overwrites the placeholder.
#[derive(Debug)]
pub struct ClassBuilder {
    id: ClassId,
    class: Class,
}

impl ClassBuilder {
    /// Start building the declared class `id`.
    pub fn new(universe: &ClassUniverse, id: ClassId) -> Self {
        let proto = universe.class(id);
        ClassBuilder {
            id,
            class: Class {
                name: proto.name.clone(),
                kind: proto.kind,
                superclass: None,
                interfaces: Vec::new(),
                fields: Vec::new(),
                static_fields: Vec::new(),
                methods: Vec::new(),
                ctors: Vec::new(),
                clinit: None,
                is_special: false,
                is_abstract: proto.kind == ClassKind::Interface,
                origin: ClassOrigin::Original,
            },
        }
    }

    /// Declare a fresh class in `universe` and start building it.
    pub fn declare(universe: &mut ClassUniverse, name: &str, kind: ClassKind) -> Self {
        let id = universe.declare(name, kind);
        Self::new(universe, id)
    }

    /// The id being built.
    pub fn id(&self) -> ClassId {
        self.id
    }

    /// Set the superclass.
    pub fn superclass(&mut self, sup: ClassId) -> &mut Self {
        self.class.superclass = Some(sup);
        self
    }

    /// Add an implemented interface.
    pub fn implements(&mut self, iface: ClassId) -> &mut Self {
        self.class.interfaces.push(iface);
        self
    }

    /// Mark the class as having special JVM semantics.
    pub fn special(&mut self) -> &mut Self {
        self.class.is_special = true;
        self
    }

    /// Mark the class abstract.
    pub fn abstract_(&mut self) -> &mut Self {
        self.class.is_abstract = true;
        self
    }

    /// Set the provenance of the class.
    pub fn origin(&mut self, origin: ClassOrigin) -> &mut Self {
        self.class.origin = origin;
        self
    }

    /// Add an instance field; returns its declared index.
    pub fn field(&mut self, field: Field) -> u16 {
        self.class.fields.push(field);
        (self.class.fields.len() - 1) as u16
    }

    /// Add a static field; returns its declared index.
    pub fn static_field(&mut self, field: Field) -> u16 {
        self.class.static_fields.push(field);
        (self.class.static_fields.len() - 1) as u16
    }

    /// Add a fully formed method; returns its index.
    pub fn add_method(&mut self, method: Method) -> u16 {
        let idx = self.class.methods.len() as u16;
        if method.is_ctor() {
            self.class.ctors.push(idx);
        }
        if method.is_clinit() {
            self.class.clinit = Some(idx);
        }
        self.class.methods.push(method);
        idx
    }

    /// Add a public instance method.
    pub fn method(
        &mut self,
        universe: &mut ClassUniverse,
        name: &str,
        params: Vec<Ty>,
        ret: Ty,
        body: Option<MethodBody>,
    ) -> u16 {
        let sig = universe.sig(name, params.clone());
        self.add_method(Method {
            name: name.to_owned(),
            sig,
            params,
            ret,
            visibility: Visibility::Public,
            is_static: false,
            is_native: false,
            body,
        })
    }

    /// Add a public static method.
    pub fn static_method(
        &mut self,
        universe: &mut ClassUniverse,
        name: &str,
        params: Vec<Ty>,
        ret: Ty,
        body: Option<MethodBody>,
    ) -> u16 {
        let sig = universe.sig(name, params.clone());
        self.add_method(Method {
            name: name.to_owned(),
            sig,
            params,
            ret,
            visibility: Visibility::Public,
            is_static: true,
            is_native: false,
            body,
        })
    }

    /// Add a native instance method (no body).
    pub fn native_method(
        &mut self,
        universe: &mut ClassUniverse,
        name: &str,
        params: Vec<Ty>,
        ret: Ty,
    ) -> u16 {
        let sig = universe.sig(name, params.clone());
        self.add_method(Method {
            name: name.to_owned(),
            sig,
            params,
            ret,
            visibility: Visibility::Public,
            is_static: false,
            is_native: true,
            body: None,
        })
    }

    /// Add a constructor (named `<init>$k` where `k` is its ordinal).
    pub fn ctor(
        &mut self,
        universe: &mut ClassUniverse,
        params: Vec<Ty>,
        body: Option<MethodBody>,
    ) -> u16 {
        let k = self.class.ctors.len();
        let name = format!("<init>${k}");
        let sig = universe.sig(&name, params.clone());
        self.add_method(Method {
            name,
            sig,
            params,
            ret: Ty::Void,
            visibility: Visibility::Public,
            is_static: false,
            is_native: false,
            body,
        })
    }

    /// Add the static initialiser.
    pub fn clinit(&mut self, universe: &mut ClassUniverse, body: MethodBody) -> u16 {
        let sig = universe.sig("<clinit>", vec![]);
        self.add_method(Method {
            name: "<clinit>".to_owned(),
            sig,
            params: vec![],
            ret: Ty::Void,
            visibility: Visibility::Package,
            is_static: true,
            is_native: false,
            body: Some(body),
        })
    }

    /// Install the built class, replacing the declared placeholder.
    pub fn finish(self, universe: &mut ClassUniverse) -> ClassId {
        universe.define(self.id, self.class);
        self.id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_patch_forward_and_backward() {
        let mut mb = MethodBuilder::new(1);
        let top = mb.label();
        mb.bind(top);
        let done = mb.label();
        mb.load_local(0);
        mb.jump_if_not(done);
        mb.jump(top);
        mb.bind(done);
        mb.ret();
        let body = mb.finish();
        assert_eq!(body.code[1], Insn::JumpIfNot(3));
        assert_eq!(body.code[2], Insn::Jump(0));
    }

    #[test]
    #[should_panic(expected = "unbound label")]
    fn unbound_label_panics() {
        let mut mb = MethodBuilder::new(0);
        let l = mb.label();
        mb.jump(l);
        let _ = mb.finish();
    }

    #[test]
    fn local_allocation_tracks_max() {
        let mut mb = MethodBuilder::new(2);
        assert_eq!(mb.alloc_local(), 2);
        assert_eq!(mb.alloc_local(), 3);
        mb.ret();
        assert_eq!(mb.finish().max_locals, 4);
    }

    #[test]
    fn class_builder_assembles_members() {
        let mut u = ClassUniverse::new();
        let mut cb = ClassBuilder::declare(&mut u, "A", ClassKind::Class);
        let f = cb.field(Field::new("x", Ty::Int));
        let s = cb.static_field(Field::new("k", Ty::Long));
        let mut mb = MethodBuilder::new(1);
        mb.ret();
        cb.ctor(&mut u, vec![], Some(mb.finish()));
        let mut mb = MethodBuilder::new(1);
        mb.load_this().get_field(cb.id(), f).ret_value();
        cb.method(&mut u, "x", vec![], Ty::Int, Some(mb.finish()));
        let a = cb.finish(&mut u);
        let c = u.class(a);
        assert_eq!(c.ctors, vec![0]);
        assert_eq!(c.methods[0].name, "<init>$0");
        assert_eq!(c.method_index("x"), Some(1));
        assert_eq!((f, s), (0, 0));
    }

    #[test]
    fn clinit_registered() {
        let mut u = ClassUniverse::new();
        let mut cb = ClassBuilder::declare(&mut u, "B", ClassKind::Class);
        let mut mb = MethodBuilder::new(0);
        mb.ret();
        cb.clinit(&mut u, mb.finish());
        let b = cb.finish(&mut u);
        assert_eq!(u.class(b).clinit, Some(0));
        assert!(u.class(b).methods[0].is_clinit());
    }
}
