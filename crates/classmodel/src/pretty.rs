//! Java-like pretty-printing of classes and method bodies.
//!
//! Used by the Figure 2–5 golden tests (experiment **E2**) to compare the
//! generated artefacts against the paper's listings, and by the examples to
//! show the user what the transformation produced.

use crate::class::{Class, ClassKind, Method, Visibility};
use crate::insn::{Const, Insn};
use crate::ty::Ty;
use crate::universe::{ClassId, ClassUniverse};
use std::fmt::Write as _;

/// Render a type with resolved class names.
pub fn ty_str(universe: &ClassUniverse, ty: &Ty) -> String {
    match ty {
        Ty::Object(c) => universe.class(*c).name.clone(),
        Ty::Array(e) => format!("{}[]", ty_str(universe, e)),
        other => other.to_string(),
    }
}

fn vis_str(v: Visibility) -> &'static str {
    match v {
        Visibility::Private => "private ",
        Visibility::Package => "",
        Visibility::Protected => "protected ",
        Visibility::Public => "public ",
    }
}

/// Render a method header, Java style (constructors get the class name).
pub fn method_header(universe: &ClassUniverse, class: &Class, m: &Method) -> String {
    let mut s = String::new();
    s.push_str(vis_str(m.visibility));
    if m.is_static {
        s.push_str("static ");
    }
    if m.is_native {
        s.push_str("native ");
    }
    let display_name: &str = if m.is_ctor() {
        &class.name
    } else if m.is_clinit() {
        "<clinit>"
    } else {
        &m.name
    };
    if !m.is_ctor() && !m.is_clinit() {
        let _ = write!(s, "{} ", ty_str(universe, &m.ret));
    }
    let params: Vec<String> = m
        .params
        .iter()
        .enumerate()
        .map(|(i, p)| format!("{} a{}", ty_str(universe, p), i))
        .collect();
    let _ = write!(s, "{}({})", display_name, params.join(", "));
    s
}

/// Render the *declaration surface* of a class: header, fields and method
/// headers (no bodies). This is the canonical form used in golden tests.
pub fn declaration(universe: &ClassUniverse, id: ClassId) -> String {
    let class = universe.class(id);
    let mut out = String::new();
    let kw = match class.kind {
        ClassKind::Class => "class",
        ClassKind::Interface => "interface",
    };
    let _ = write!(out, "public {kw} {}", class.name);
    if let Some(sup) = class.superclass {
        let _ = write!(out, " extends {}", universe.class(sup).name);
    }
    if !class.interfaces.is_empty() {
        let names: Vec<&str> = class
            .interfaces
            .iter()
            .map(|&i| universe.class(i).name.as_str())
            .collect();
        let _ = write!(out, " implements {}", names.join(", "));
    }
    out.push_str(" {\n");
    for f in &class.static_fields {
        let fin = if f.is_final { "final " } else { "" };
        let _ = writeln!(
            out,
            "    {}static {}{} {};",
            vis_str(f.visibility),
            fin,
            ty_str(universe, &f.ty),
            f.name
        );
    }
    for f in &class.fields {
        let fin = if f.is_final { "final " } else { "" };
        let _ = writeln!(
            out,
            "    {}{}{} {};",
            vis_str(f.visibility),
            fin,
            ty_str(universe, &f.ty),
            f.name
        );
    }
    for m in &class.methods {
        let _ = writeln!(out, "    {};", method_header(universe, class, m));
    }
    out.push_str("}\n");
    out
}

/// Render a full disassembly of a class, including instruction listings for
/// every body — useful for debugging rewrites.
pub fn disassemble(universe: &ClassUniverse, id: ClassId) -> String {
    let class = universe.class(id);
    let mut out = declaration(universe, id);
    for m in &class.methods {
        if let Some(body) = &m.body {
            let _ = writeln!(
                out,
                "\n  // {} (max_locals={})",
                method_header(universe, class, m),
                body.max_locals
            );
            for (pc, insn) in body.code.iter().enumerate() {
                let _ = writeln!(out, "    {pc:4}: {}", insn_str(universe, insn));
            }
            for h in &body.handlers {
                let c = h
                    .catch
                    .map(|c| universe.class(c).name.clone())
                    .unwrap_or_else(|| "any".to_owned());
                let _ = writeln!(
                    out,
                    "    try [{}, {}) -> {} catch {}",
                    h.start, h.end, h.target, c
                );
            }
        }
    }
    out
}

/// Render the declaration surface of every class in the universe,
/// optionally filtered to generated artefacts only — the "look at what the
/// transformation produced" artefact (the Rust analogue of decompiling the
/// BCEL output).
pub fn dump_universe(universe: &ClassUniverse, generated_only: bool) -> String {
    let mut out = String::new();
    for (id, class) in universe.iter() {
        let generated = matches!(class.origin, crate::class::ClassOrigin::Generated { .. });
        if generated_only && !generated {
            continue;
        }
        out.push_str(&declaration(universe, id));
        out.push('\n');
    }
    out
}

/// Render one instruction with resolved names.
pub fn insn_str(universe: &ClassUniverse, insn: &Insn) -> String {
    let cname = |c: ClassId| universe.class(c).name.clone();
    match insn {
        Insn::Const(Const::Str(s)) => format!("const \"{s}\""),
        Insn::Const(c) => format!("const {c:?}"),
        Insn::LoadLocal(n) => format!("load_local {n}"),
        Insn::StoreLocal(n) => format!("store_local {n}"),
        Insn::GetField(fr) => format!(
            "get_field {}.{}",
            cname(fr.owner),
            universe.class(fr.owner).fields[fr.index as usize].name
        ),
        Insn::PutField(fr) => format!(
            "put_field {}.{}",
            cname(fr.owner),
            universe.class(fr.owner).fields[fr.index as usize].name
        ),
        Insn::GetStatic(fr) => format!(
            "get_static {}.{}",
            cname(fr.owner),
            universe.class(fr.owner).static_fields[fr.index as usize].name
        ),
        Insn::PutStatic(fr) => format!(
            "put_static {}.{}",
            cname(fr.owner),
            universe.class(fr.owner).static_fields[fr.index as usize].name
        ),
        Insn::NewInit { class, ctor, argc } => {
            format!("new {} ctor#{ctor} argc={argc}", cname(*class))
        }
        Insn::Invoke { sig, argc } => {
            format!("invoke {}/{argc}", universe.sig_info(*sig).name)
        }
        Insn::InvokeStatic { class, sig, argc } => format!(
            "invoke_static {}::{}/{argc}",
            cname(*class),
            universe.sig_info(*sig).name
        ),
        Insn::Return => "return".to_owned(),
        Insn::ReturnValue => "return_value".to_owned(),
        Insn::Throw => "throw".to_owned(),
        Insn::Jump(t) => format!("jump {t}"),
        Insn::JumpIf(t) => format!("jump_if {t}"),
        Insn::JumpIfNot(t) => format!("jump_if_not {t}"),
        Insn::BinOp(op) => format!("binop {op:?}"),
        Insn::UnOp(op) => format!("unop {op:?}"),
        Insn::Cmp(op) => format!("cmp {op:?}"),
        Insn::NewArray(t) => format!("new_array {}", ty_str(universe, t)),
        Insn::ArrayGet => "array_get".to_owned(),
        Insn::ArraySet => "array_set".to_owned(),
        Insn::ArrayLen => "array_len".to_owned(),
        Insn::Dup => "dup".to_owned(),
        Insn::Pop => "pop".to_owned(),
        Insn::Swap => "swap".to_owned(),
        Insn::InstanceOf(c) => format!("instanceof {}", cname(*c)),
        Insn::CheckCast(c) => format!("checkcast {}", cname(*c)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sample;

    #[test]
    fn declaration_of_sample_x_matches_figure2_surface() {
        let mut u = ClassUniverse::new();
        let ids = sample::build_figure2(&mut u);
        let d = declaration(&u, ids.x);
        assert!(d.contains("public class X"), "{d}");
        assert!(d.contains("Y y;"), "{d}");
        assert!(d.contains("static final Z z;"), "{d}");
        assert!(d.contains("int m(long a0)"), "{d}");
        assert!(d.contains("static int p(int a0)"), "{d}");
        assert!(d.contains("X(Y a0)"), "{d}");
    }

    #[test]
    fn disassembly_mentions_rewritable_sites() {
        let mut u = ClassUniverse::new();
        let ids = sample::build_figure2(&mut u);
        let d = disassemble(&u, ids.x);
        assert!(d.contains("get_field X.y"), "{d}");
        assert!(d.contains("invoke n/1"), "{d}");
        assert!(d.contains("get_static X.z"), "{d}");
        assert!(d.contains("new Z"), "{d}");
    }
}
