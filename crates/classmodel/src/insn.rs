//! The stack-based mini-bytecode instruction set.
//!
//! The RAFDA paper performs its transformations "at the bytecode level"
//! (Section 1) using BCEL. This module defines the analogous instruction
//! stream: a verified stack machine with locals, field access, three call
//! kinds, object/array allocation, branching, arithmetic and exceptions.
//!
//! The transformation engine rewrites these instructions in place, e.g.
//! [`Insn::GetField`] becomes an [`Insn::Invoke`] of the generated property
//! getter, and [`Insn::NewInit`] becomes calls to the generated object
//! factory's `make`/`init` pair.

use crate::ty::Ty;
use crate::universe::{ClassId, SigId};

/// A constant operand pushed by [`Insn::Const`].
#[derive(Debug, Clone, PartialEq)]
pub enum Const {
    /// The `null` reference.
    Null,
    /// A boolean constant.
    Bool(bool),
    /// A 32-bit integer constant.
    Int(i32),
    /// A 64-bit integer constant.
    Long(i64),
    /// A 32-bit float constant.
    Float(f32),
    /// A 64-bit float constant.
    Double(f64),
    /// A string constant.
    Str(String),
}

impl Const {
    /// The static type of the constant ([`Ty::Object`] is approximated as a
    /// null-typed bottom reference and handled specially by the verifier).
    pub fn ty(&self) -> Option<Ty> {
        match self {
            Const::Null => None,
            Const::Bool(_) => Some(Ty::Bool),
            Const::Int(_) => Some(Ty::Int),
            Const::Long(_) => Some(Ty::Long),
            Const::Float(_) => Some(Ty::Float),
            Const::Double(_) => Some(Ty::Double),
            Const::Str(_) => Some(Ty::Str),
        }
    }
}

/// A reference to a field declared by `owner`.
///
/// `index` selects within the owner's *declared* instance or static field
/// list (depending on the instruction using the reference); inherited fields
/// are addressed through the declaring superclass.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FieldRef {
    /// The class that declares the field.
    pub owner: ClassId,
    /// Index into the owner's declared (instance or static) fields.
    pub index: u16,
}

/// Binary arithmetic / logic operators (operate on two stack operands of the
/// same numeric type, or on strings for `Add`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Addition (wrapping for integers; concatenation for strings).
    Add,
    /// Subtraction (wrapping).
    Sub,
    /// Multiplication (wrapping).
    Mul,
    /// Division (traps on integer division by zero).
    Div,
    /// Remainder (traps on integer division by zero).
    Rem,
    /// Bitwise/logical AND.
    And,
    /// Bitwise/logical OR.
    Or,
    /// Bitwise/logical XOR.
    Xor,
    /// Left shift.
    Shl,
    /// Right shift.
    Shr,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// Arithmetic negation (wrapping for integers).
    Neg,
    /// Logical/bitwise complement.
    Not,
    /// Numeric conversion to the named primitive type
    /// (`"int"`, `"long"`, `"float"`, `"double"`, `"string"`).
    Convert(&'static str),
}

/// Comparison operators; push a `Bool`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// Equal (defined for all same-kind values and null/reference mixes).
    Eq,
    /// Not equal.
    Ne,
    /// Less than (numeric and string ordering).
    Lt,
    /// Less than or equal.
    Le,
    /// Greater than.
    Gt,
    /// Greater than or equal.
    Ge,
}

/// One instruction of the stack machine.
///
/// Stack effects are written `[..., a, b] -> [..., r]` with the top of the
/// stack on the right.
#[derive(Debug, Clone, PartialEq)]
pub enum Insn {
    /// `[] -> [c]` — push a constant.
    Const(Const),
    /// `[] -> [v]` — push local `n` (for instance methods local 0 is `this`).
    LoadLocal(u16),
    /// `[v] -> []` — pop into local `n`.
    StoreLocal(u16),
    /// `[obj] -> [v]` — read instance field.
    GetField(FieldRef),
    /// `[obj, v] -> []` — write instance field.
    PutField(FieldRef),
    /// `[] -> [v]` — read static field.
    GetStatic(FieldRef),
    /// `[v] -> []` — write static field.
    PutStatic(FieldRef),
    /// `[a0..a(n-1)] -> [obj]` — allocate an instance of `class` and run its
    /// `ctor`-th constructor with the popped arguments. Equivalent to JVM
    /// `new` + `dup` + `invokespecial <init>`.
    NewInit {
        /// The class to instantiate.
        class: ClassId,
        /// Constructor ordinal within the class's `ctors` list.
        ctor: u16,
        /// Number of constructor arguments popped.
        argc: u8,
    },
    /// `[recv, a0..a(n-1)] -> [r?]` — virtual/interface call, dispatched on
    /// the runtime class of `recv` by signature.
    Invoke {
        /// The interned call signature (dispatch key).
        sig: SigId,
        /// Number of arguments popped (excluding the receiver).
        argc: u8,
    },
    /// `[a0..a(n-1)] -> [r?]` — static call on `class`.
    InvokeStatic {
        /// The class whose static method is called (resolution walks up).
        class: ClassId,
        /// The interned call signature.
        sig: SigId,
        /// Number of arguments popped.
        argc: u8,
    },
    /// `[] -> ⊥` — return from a `void` method.
    Return,
    /// `[v] -> ⊥` — return `v`.
    ReturnValue,
    /// `[exc] -> ⊥` — throw; unwinds to the nearest matching handler.
    Throw,
    /// `-> pc` — unconditional branch to instruction index.
    Jump(u32),
    /// `[b] -> []` — branch if `b` is true.
    JumpIf(u32),
    /// `[b] -> []` — branch if `b` is false.
    JumpIfNot(u32),
    /// `[a, b] -> [r]`.
    BinOp(BinOp),
    /// `[a] -> [r]`.
    UnOp(UnOp),
    /// `[a, b] -> [bool]`.
    Cmp(CmpOp),
    /// `[len] -> [arr]` — allocate an array with `len` default elements.
    NewArray(Ty),
    /// `[arr, idx] -> [v]`.
    ArrayGet,
    /// `[arr, idx, v] -> []`.
    ArraySet,
    /// `[arr] -> [len]`.
    ArrayLen,
    /// `[v] -> [v, v]`.
    Dup,
    /// `[v] -> []`.
    Pop,
    /// `[a, b] -> [b, a]`.
    Swap,
    /// `[obj] -> [bool]` — runtime subtype test.
    InstanceOf(ClassId),
    /// `[obj] -> [obj]` — runtime checked cast; throws on failure.
    CheckCast(ClassId),
}

impl Insn {
    /// Number of operands popped / pushed, `None` when it terminates the
    /// basic block (returns/throw). Used by the verifier.
    pub fn stack_delta(&self) -> Option<(u32, u32)> {
        Some(match self {
            Insn::Const(_) | Insn::LoadLocal(_) | Insn::GetStatic(_) => (0, 1),
            Insn::StoreLocal(_)
            | Insn::PutStatic(_)
            | Insn::Pop
            | Insn::JumpIf(_)
            | Insn::JumpIfNot(_) => (1, 0),
            Insn::GetField(_) => (1, 1),
            Insn::PutField(_) => (2, 0),
            Insn::NewInit { argc, .. } => (u32::from(*argc), 1),
            Insn::Invoke { argc, .. } => (u32::from(*argc) + 1, 1),
            Insn::InvokeStatic { argc, .. } => (u32::from(*argc), 1),
            Insn::Return | Insn::ReturnValue | Insn::Throw => return None,
            Insn::Jump(_) => (0, 0),
            Insn::BinOp(_) | Insn::Cmp(_) => (2, 1),
            Insn::UnOp(_) | Insn::InstanceOf(_) | Insn::CheckCast(_) => (1, 1),
            Insn::NewArray(_) => (1, 1),
            Insn::ArrayGet => (2, 1),
            Insn::ArraySet => (3, 0),
            Insn::ArrayLen => (1, 1),
            Insn::Dup => (1, 2),
            Insn::Swap => (2, 2),
        })
    }

    /// Branch targets of this instruction, if any.
    pub fn branch_target(&self) -> Option<u32> {
        match self {
            Insn::Jump(t) | Insn::JumpIf(t) | Insn::JumpIfNot(t) => Some(*t),
            _ => None,
        }
    }

    /// Whether control always transfers (no fall-through).
    pub fn is_terminator(&self) -> bool {
        matches!(
            self,
            Insn::Return | Insn::ReturnValue | Insn::Throw | Insn::Jump(_)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stack_deltas_match_documentation() {
        assert_eq!(Insn::Const(Const::Int(1)).stack_delta(), Some((0, 1)));
        assert_eq!(
            Insn::PutField(FieldRef {
                owner: ClassId(0),
                index: 0
            })
            .stack_delta(),
            Some((2, 0))
        );
        assert_eq!(
            Insn::Invoke {
                sig: SigId(0),
                argc: 2
            }
            .stack_delta(),
            Some((3, 1))
        );
        assert_eq!(Insn::Throw.stack_delta(), None);
        assert_eq!(Insn::ArraySet.stack_delta(), Some((3, 0)));
    }

    #[test]
    fn terminators_and_targets() {
        assert!(Insn::Jump(3).is_terminator());
        assert!(!Insn::JumpIf(3).is_terminator());
        assert_eq!(Insn::JumpIfNot(9).branch_target(), Some(9));
        assert_eq!(Insn::Pop.branch_target(), None);
        assert!(Insn::ReturnValue.is_terminator());
    }

    #[test]
    fn const_types() {
        assert_eq!(Const::Int(3).ty(), Some(Ty::Int));
        assert_eq!(Const::Null.ty(), None);
        assert_eq!(Const::Str("a".into()).ty(), Some(Ty::Str));
    }
}
