//! The [`ClassUniverse`]: the interned collection of all classes, the
//! signature table, and the resolution queries (subtyping, dynamic dispatch,
//! field layout) shared by the transformation engine and the interpreter.

use crate::class::{Class, ClassKind, Method};
use crate::ty::Ty;
use std::collections::HashMap;
use std::fmt;

/// Identifier of a class or interface within a [`ClassUniverse`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClassId(pub u32);

impl fmt::Display for ClassId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// Interned method signature id: two methods with the same [`MethodSig`]
/// (name + parameter types) share a `SigId`, which is the dynamic-dispatch
/// key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SigId(pub u32);

/// A method signature: name plus parameter types. Return types do not
/// participate in dispatch (as in the JVM source level).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct MethodSig {
    /// Method name.
    pub name: String,
    /// Parameter types (excluding any receiver).
    pub params: Vec<Ty>,
}

/// The collection of all classes plus interning tables.
///
/// Classes are *declared* first (reserving a [`ClassId`], so that mutually
/// recursive references can be built) and *defined* later. Undefined classes
/// are placeholders that fail verification.
#[derive(Debug, Default, Clone)]
pub struct ClassUniverse {
    classes: Vec<Class>,
    by_name: HashMap<String, ClassId>,
    sigs: Vec<MethodSig>,
    sig_ids: HashMap<MethodSig, SigId>,
}

impl ClassUniverse {
    /// Create an empty universe.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of classes (defined or declared).
    pub fn len(&self) -> usize {
        self.classes.len()
    }

    /// Whether the universe contains no classes.
    pub fn is_empty(&self) -> bool {
        self.classes.is_empty()
    }

    /// Iterate over all `(id, class)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ClassId, &Class)> {
        self.classes
            .iter()
            .enumerate()
            .map(|(i, c)| (ClassId(i as u32), c))
    }

    /// Declare a class name, reserving its id. The placeholder is an empty
    /// non-special class; it must be overwritten by [`define`](Self::define)
    /// before use.
    ///
    /// # Panics
    /// Panics if the name is already taken.
    pub fn declare(&mut self, name: &str, kind: ClassKind) -> ClassId {
        assert!(
            !self.by_name.contains_key(name),
            "class `{name}` already declared"
        );
        let id = ClassId(self.classes.len() as u32);
        self.classes.push(Class {
            name: name.to_owned(),
            kind,
            superclass: None,
            interfaces: Vec::new(),
            fields: Vec::new(),
            static_fields: Vec::new(),
            methods: Vec::new(),
            ctors: Vec::new(),
            clinit: None,
            is_special: false,
            is_abstract: kind == ClassKind::Interface,
            origin: crate::class::ClassOrigin::Original,
        });
        self.by_name.insert(name.to_owned(), id);
        id
    }

    /// Replace the definition of a declared class.
    ///
    /// # Panics
    /// Panics if the new definition changes the class name.
    pub fn define(&mut self, id: ClassId, class: Class) {
        assert_eq!(
            self.classes[id.0 as usize].name, class.name,
            "definition must keep the declared name"
        );
        self.classes[id.0 as usize] = class;
    }

    /// Declare and immediately define a class, returning its id.
    pub fn add(&mut self, class: Class) -> ClassId {
        let id = self.declare(&class.name.clone(), class.kind);
        self.define(id, class);
        id
    }

    /// Access a class by id.
    pub fn class(&self, id: ClassId) -> &Class {
        &self.classes[id.0 as usize]
    }

    /// Mutable access to a class by id.
    pub fn class_mut(&mut self, id: ClassId) -> &mut Class {
        &mut self.classes[id.0 as usize]
    }

    /// Look up a class id by name.
    pub fn by_name(&self, name: &str) -> Option<ClassId> {
        self.by_name.get(name).copied()
    }

    /// Intern a method signature.
    pub fn sig(&mut self, name: &str, params: Vec<Ty>) -> SigId {
        let key = MethodSig {
            name: name.to_owned(),
            params,
        };
        if let Some(&id) = self.sig_ids.get(&key) {
            return id;
        }
        let id = SigId(self.sigs.len() as u32);
        self.sigs.push(key.clone());
        self.sig_ids.insert(key, id);
        id
    }

    /// Resolve an interned signature.
    pub fn sig_info(&self, id: SigId) -> &MethodSig {
        &self.sigs[id.0 as usize]
    }

    /// Number of interned signatures.
    pub fn sig_count(&self) -> usize {
        self.sigs.len()
    }

    // ------------------------------------------------------------------
    // Resolution queries
    // ------------------------------------------------------------------

    /// The superclass chain of `id`, starting at `id` itself.
    pub fn ancestry(&self, id: ClassId) -> Vec<ClassId> {
        let mut out = vec![id];
        let mut cur = id;
        while let Some(sup) = self.class(cur).superclass {
            out.push(sup);
            cur = sup;
        }
        out
    }

    /// Whether `sub` is a subtype of `sup` (reflexive; walks superclasses and
    /// all transitively implemented/extended interfaces).
    pub fn is_subtype(&self, sub: ClassId, sup: ClassId) -> bool {
        if sub == sup {
            return true;
        }
        let c = self.class(sub);
        if let Some(s) = c.superclass {
            if self.is_subtype(s, sup) {
                return true;
            }
        }
        c.interfaces.iter().any(|&i| self.is_subtype(i, sup))
    }

    /// Resolve a virtual call: find the concrete method with signature `sig`
    /// starting at runtime class `class`, walking up the superclass chain.
    pub fn resolve_virtual(&self, class: ClassId, sig: SigId) -> Option<(ClassId, u16)> {
        let mut cur = Some(class);
        while let Some(c) = cur {
            let cls = self.class(c);
            for (i, m) in cls.methods.iter().enumerate() {
                if m.sig == sig && !m.is_static {
                    return Some((c, i as u16));
                }
            }
            cur = cls.superclass;
        }
        None
    }

    /// Resolve a static call: find the static method with signature `sig`
    /// declared by `class` or (as in Java) an ancestor.
    pub fn resolve_static(&self, class: ClassId, sig: SigId) -> Option<(ClassId, u16)> {
        let mut cur = Some(class);
        while let Some(c) = cur {
            let cls = self.class(c);
            for (i, m) in cls.methods.iter().enumerate() {
                if m.sig == sig && m.is_static {
                    return Some((c, i as u16));
                }
            }
            cur = cls.superclass;
        }
        None
    }

    /// Convenience: fetch the resolved [`Method`].
    pub fn method(&self, class: ClassId, index: u16) -> &Method {
        &self.class(class).methods[index as usize]
    }

    /// Total number of instance-field slots for an object of runtime class
    /// `id` (inherited fields first).
    pub fn instance_field_count(&self, id: ClassId) -> usize {
        let c = self.class(id);
        let base = c
            .superclass
            .map(|s| self.instance_field_count(s))
            .unwrap_or(0);
        base + c.fields.len()
    }

    /// Offset within an object's field slots of the fields *declared by*
    /// `id` (i.e. the number of inherited slots).
    pub fn field_base(&self, id: ClassId) -> usize {
        self.class(id)
            .superclass
            .map(|s| self.instance_field_count(s))
            .unwrap_or(0)
    }

    /// The full flattened field layout of class `id`:
    /// `(declaring class, declared index, field)` per slot, root-first.
    pub fn field_layout(&self, id: ClassId) -> Vec<(ClassId, u16)> {
        let mut out = match self.class(id).superclass {
            Some(s) => self.field_layout(s),
            None => Vec::new(),
        };
        for i in 0..self.class(id).fields.len() {
            out.push((id, i as u16));
        }
        out
    }

    /// All class ids referenced by the *signatures and field types* of class
    /// `id` (the reference notion of the Section 2.4 propagation rule),
    /// excluding `id` itself. Includes superclass and implemented
    /// interfaces.
    pub fn referenced_classes(&self, id: ClassId) -> Vec<ClassId> {
        let c = self.class(id);
        let mut out = Vec::new();
        let push = |x: Option<ClassId>, out: &mut Vec<ClassId>| {
            if let Some(cid) = x {
                if cid != id && !out.contains(&cid) {
                    out.push(cid);
                }
            }
        };
        push(c.superclass, &mut out);
        for &i in &c.interfaces {
            push(Some(i), &mut out);
        }
        for f in c.fields.iter().chain(c.static_fields.iter()) {
            push(f.ty.referenced_class(), &mut out);
        }
        for m in &c.methods {
            push(m.ret.referenced_class(), &mut out);
            for p in &m.params {
                push(p.referenced_class(), &mut out);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::class::{ClassOrigin, Field, Visibility};

    fn mk(u: &mut ClassUniverse, name: &str, superclass: Option<ClassId>) -> ClassId {
        let id = u.declare(name, ClassKind::Class);
        let mut c = u.class(id).clone();
        c.superclass = superclass;
        c.origin = ClassOrigin::Original;
        u.define(id, c);
        id
    }

    #[test]
    fn declare_define_roundtrip() {
        let mut u = ClassUniverse::new();
        let a = u.declare("A", ClassKind::Class);
        assert_eq!(u.by_name("A"), Some(a));
        assert_eq!(u.class(a).name, "A");
        assert_eq!(u.len(), 1);
    }

    #[test]
    #[should_panic(expected = "already declared")]
    fn duplicate_declare_panics() {
        let mut u = ClassUniverse::new();
        u.declare("A", ClassKind::Class);
        u.declare("A", ClassKind::Interface);
    }

    #[test]
    fn sig_interning_dedupes() {
        let mut u = ClassUniverse::new();
        let s1 = u.sig("m", vec![Ty::Int]);
        let s2 = u.sig("m", vec![Ty::Int]);
        let s3 = u.sig("m", vec![Ty::Long]);
        let s4 = u.sig("n", vec![Ty::Int]);
        assert_eq!(s1, s2);
        assert_ne!(s1, s3);
        assert_ne!(s1, s4);
        assert_eq!(u.sig_info(s1).name, "m");
        assert_eq!(u.sig_count(), 3);
    }

    #[test]
    fn subtype_walks_classes_and_interfaces() {
        let mut u = ClassUniverse::new();
        let obj = mk(&mut u, "Object", None);
        let i = u.declare("I", ClassKind::Interface);
        let a = mk(&mut u, "A", Some(obj));
        u.class_mut(a).interfaces.push(i);
        let b = mk(&mut u, "B", Some(a));
        assert!(u.is_subtype(b, b));
        assert!(u.is_subtype(b, a));
        assert!(u.is_subtype(b, obj));
        assert!(u.is_subtype(b, i));
        assert!(!u.is_subtype(a, b));
        assert!(!u.is_subtype(obj, i));
        assert_eq!(u.ancestry(b), vec![b, a, obj]);
    }

    #[test]
    fn virtual_resolution_prefers_subclass_override() {
        let mut u = ClassUniverse::new();
        let sig = u.sig("m", vec![]);
        let a = mk(&mut u, "A", None);
        let b = mk(&mut u, "B", Some(a));
        let mth = |sig| Method {
            name: "m".into(),
            sig,
            params: vec![],
            ret: Ty::Void,
            visibility: Visibility::Public,
            is_static: false,
            is_native: false,
            body: None,
        };
        u.class_mut(a).methods.push(mth(sig));
        assert_eq!(u.resolve_virtual(b, sig), Some((a, 0)));
        u.class_mut(b).methods.push(mth(sig));
        assert_eq!(u.resolve_virtual(b, sig), Some((b, 0)));
        assert_eq!(u.resolve_virtual(a, sig), Some((a, 0)));
    }

    #[test]
    fn static_resolution_ignores_instance_methods() {
        let mut u = ClassUniverse::new();
        let sig = u.sig("p", vec![]);
        let a = mk(&mut u, "A", None);
        u.class_mut(a).methods.push(Method {
            name: "p".into(),
            sig,
            params: vec![],
            ret: Ty::Void,
            visibility: Visibility::Public,
            is_static: false,
            is_native: false,
            body: None,
        });
        assert_eq!(u.resolve_static(a, sig), None);
        assert_eq!(u.resolve_virtual(a, sig), Some((a, 0)));
    }

    #[test]
    fn field_layout_is_root_first() {
        let mut u = ClassUniverse::new();
        let a = mk(&mut u, "A", None);
        u.class_mut(a).fields.push(Field::new("x", Ty::Int));
        let b = mk(&mut u, "B", Some(a));
        u.class_mut(b).fields.push(Field::new("y", Ty::Long));
        u.class_mut(b).fields.push(Field::new("z", Ty::Bool));
        assert_eq!(u.instance_field_count(b), 3);
        assert_eq!(u.field_base(b), 1);
        assert_eq!(u.field_base(a), 0);
        assert_eq!(u.field_layout(b), vec![(a, 0), (b, 0), (b, 1)]);
    }

    #[test]
    fn referenced_classes_covers_all_member_positions() {
        let mut u = ClassUniverse::new();
        let y = mk(&mut u, "Y", None);
        let z = mk(&mut u, "Z", None);
        let w = mk(&mut u, "W", None);
        let sup = mk(&mut u, "Sup", None);
        let x = mk(&mut u, "X", Some(sup));
        u.class_mut(x).fields.push(Field::new("y", Ty::Object(y)));
        u.class_mut(x)
            .static_fields
            .push(Field::new("z", Ty::Object(z).array_of()));
        let sig = u.sig("m", vec![Ty::Object(w)]);
        u.class_mut(x).methods.push(Method {
            name: "m".into(),
            sig,
            params: vec![Ty::Object(w)],
            ret: Ty::Object(y),
            visibility: Visibility::Public,
            is_static: false,
            is_native: false,
            body: None,
        });
        let refs = u.referenced_classes(x);
        assert!(refs.contains(&y));
        assert!(refs.contains(&z));
        assert!(refs.contains(&w));
        assert!(refs.contains(&sup));
        assert!(!refs.contains(&x));
    }
}
