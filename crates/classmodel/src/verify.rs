//! Structural and stack-discipline verification.
//!
//! The paper relies on the fact that transformations are "performed on code
//! that has already been verified by a standard compiler" (Section 2.1).
//! This module is that verifier: it is run over original programs before
//! transformation *and* over the generated/rewritten code afterwards, which
//! gives the test suite a strong check that every rewrite preserves
//! well-formedness.
//!
//! ## Calling convention verified here
//!
//! Every call instruction ([`Insn::Invoke`], [`Insn::InvokeStatic`],
//! [`Insn::NewInit`]) pushes exactly one result; `void` methods return
//! `Null`, which the caller pops. This uniform convention keeps stack-depth
//! verification independent of dynamic dispatch.

use crate::class::{Class, ClassKind, MethodBody};
use crate::insn::Insn;
use crate::universe::{ClassId, ClassUniverse};
use std::collections::VecDeque;
use std::fmt;

/// A verification failure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// Class in which the error occurred.
    pub class: String,
    /// Method (empty for class-level errors).
    pub method: String,
    /// Instruction index (`None` for non-code errors).
    pub pc: Option<u32>,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "verify error in {}", self.class)?;
        if !self.method.is_empty() {
            write!(f, "::{}", self.method)?;
        }
        if let Some(pc) = self.pc {
            write!(f, " at pc {pc}")?;
        }
        write!(f, ": {}", self.message)
    }
}

impl std::error::Error for VerifyError {}

fn err(class: &str, method: &str, pc: Option<u32>, message: impl Into<String>) -> VerifyError {
    VerifyError {
        class: class.to_owned(),
        method: method.to_owned(),
        pc,
        message: message.into(),
    }
}

/// Verify every class in the universe.
///
/// # Errors
/// Returns the first [`VerifyError`] found.
pub fn verify_universe(universe: &ClassUniverse) -> Result<(), VerifyError> {
    for (id, _) in universe.iter() {
        verify_class(universe, id)?;
    }
    Ok(())
}

/// Verify a single class: structural invariants plus stack discipline of
/// every method body.
///
/// # Errors
/// Returns the first [`VerifyError`] found.
pub fn verify_class(universe: &ClassUniverse, id: ClassId) -> Result<(), VerifyError> {
    let class = universe.class(id);
    verify_structure(universe, class)?;
    for method in &class.methods {
        if let Some(body) = &method.body {
            verify_body(universe, class, &method.name, body)?;
        }
    }
    Ok(())
}

fn verify_structure(universe: &ClassUniverse, class: &Class) -> Result<(), VerifyError> {
    let cname = &class.name;
    if let Some(sup) = class.superclass {
        if universe.class(sup).kind != ClassKind::Class {
            return Err(err(cname, "", None, "superclass is not a class"));
        }
        // Reject inheritance cycles.
        let mut seen = vec![];
        let mut cur = Some(sup);
        while let Some(c) = cur {
            if seen.contains(&c) || universe.class(c).name == *cname {
                return Err(err(cname, "", None, "inheritance cycle"));
            }
            seen.push(c);
            cur = universe.class(c).superclass;
        }
    }
    for &iface in &class.interfaces {
        if universe.class(iface).kind != ClassKind::Interface {
            return Err(err(cname, "", None, "implements a non-interface"));
        }
    }
    if class.kind == ClassKind::Interface {
        if class.superclass.is_some() {
            return Err(err(cname, "", None, "interface with a superclass"));
        }
        if !class.fields.is_empty() {
            return Err(err(cname, "", None, "interface with instance fields"));
        }
        for m in &class.methods {
            if m.body.is_some() {
                return Err(err(cname, &m.name, None, "interface method with body"));
            }
        }
    }
    for &ci in &class.ctors {
        let m = class
            .methods
            .get(ci as usize)
            .ok_or_else(|| err(cname, "", None, "ctor index out of range"))?;
        if !m.is_ctor() || m.is_static {
            return Err(err(cname, &m.name, None, "ctor entry is not a constructor"));
        }
    }
    if let Some(ci) = class.clinit {
        let m = class
            .methods
            .get(ci as usize)
            .ok_or_else(|| err(cname, "", None, "clinit index out of range"))?;
        if !m.is_clinit() || !m.is_static {
            return Err(err(cname, &m.name, None, "clinit entry is not <clinit>"));
        }
    }
    for m in &class.methods {
        if m.is_native && m.body.is_some() {
            return Err(err(cname, &m.name, None, "native method with body"));
        }
        if !m.is_native && m.body.is_none() && class.kind == ClassKind::Class && !class.is_abstract
        {
            return Err(err(
                cname,
                &m.name,
                None,
                "non-abstract class with bodiless non-native method",
            ));
        }
    }
    Ok(())
}

/// Abstract interpretation over stack *depths* with a work-list, merging at
/// join points; any mismatch, underflow, bad local, bad field reference or
/// fall-off-the-end is an error.
fn verify_body(
    universe: &ClassUniverse,
    class: &Class,
    method: &str,
    body: &MethodBody,
) -> Result<(), VerifyError> {
    let cname = &class.name;
    let n = body.code.len();
    if n == 0 {
        return Err(err(cname, method, None, "empty body"));
    }
    let mut depth_at: Vec<Option<u32>> = vec![None; n];
    let mut work: VecDeque<(u32, u32)> = VecDeque::new();
    work.push_back((0, 0));
    for h in &body.handlers {
        if h.start as usize >= n || h.end as usize > n || h.target as usize >= n {
            return Err(err(cname, method, None, "handler range out of bounds"));
        }
        // Handler entry: stack holds just the exception.
        work.push_back((h.target, 1));
    }

    while let Some((pc, depth)) = work.pop_front() {
        let pcu = pc as usize;
        if pcu >= n {
            return Err(err(cname, method, Some(pc), "control falls off the end"));
        }
        match depth_at[pcu] {
            Some(d) if d == depth => continue,
            Some(d) => {
                return Err(err(
                    cname,
                    method,
                    Some(pc),
                    format!("stack depth mismatch at join: {d} vs {depth}"),
                ))
            }
            None => depth_at[pcu] = Some(depth),
        }
        let insn = &body.code[pcu];
        // Structural operand checks.
        match insn {
            Insn::LoadLocal(i) | Insn::StoreLocal(i) if *i >= body.max_locals => {
                return Err(err(cname, method, Some(pc), "local index out of range"));
            }
            Insn::GetField(fr) | Insn::PutField(fr)
                if fr.index as usize >= universe.class(fr.owner).fields.len() =>
            {
                return Err(err(cname, method, Some(pc), "field index out of range"));
            }
            Insn::GetStatic(fr) | Insn::PutStatic(fr)
                if fr.index as usize >= universe.class(fr.owner).static_fields.len() =>
            {
                return Err(err(cname, method, Some(pc), "static field out of range"));
            }
            Insn::NewInit {
                class: c,
                ctor,
                argc,
            } => {
                let target = universe.class(*c);
                let Some(&mi) = target.ctors.get(*ctor as usize) else {
                    return Err(err(cname, method, Some(pc), "ctor ordinal out of range"));
                };
                let m = &target.methods[mi as usize];
                if m.params.len() != *argc as usize {
                    return Err(err(cname, method, Some(pc), "ctor argc mismatch"));
                }
                if target.kind == ClassKind::Interface || target.is_abstract {
                    return Err(err(
                        cname,
                        method,
                        Some(pc),
                        "cannot instantiate interface/abstract class",
                    ));
                }
            }
            Insn::InvokeStatic {
                class: c,
                sig,
                argc,
            } => match universe.resolve_static(*c, *sig) {
                None => {
                    return Err(err(
                        cname,
                        method,
                        Some(pc),
                        format!(
                            "unresolved static call {}::{}",
                            universe.class(*c).name,
                            universe.sig_info(*sig).name
                        ),
                    ))
                }
                Some((oc, mi)) => {
                    if universe.method(oc, mi).params.len() != *argc as usize {
                        return Err(err(cname, method, Some(pc), "static argc mismatch"));
                    }
                }
            },
            Insn::Invoke { sig, argc }
                if universe.sig_info(*sig).params.len() != *argc as usize =>
            {
                return Err(err(cname, method, Some(pc), "virtual argc mismatch"));
            }
            _ => {}
        }

        // Stack effect.
        match insn.stack_delta() {
            None => {
                // Terminator: Return pops 0, ReturnValue/Throw pop 1.
                let need = match insn {
                    Insn::Return => 0,
                    _ => 1,
                };
                if depth < need {
                    return Err(err(cname, method, Some(pc), "stack underflow at return"));
                }
            }
            Some((pop, push)) => {
                if depth < pop {
                    return Err(err(
                        cname,
                        method,
                        Some(pc),
                        format!("stack underflow: need {pop}, have {depth}"),
                    ));
                }
                let next = depth - pop + push;
                if let Some(t) = insn.branch_target() {
                    if t as usize >= n {
                        return Err(err(cname, method, Some(pc), "branch target out of range"));
                    }
                    work.push_back((t, next));
                }
                if !insn.is_terminator() {
                    work.push_back((pc + 1, next));
                }
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::{ClassBuilder, MethodBuilder};
    use crate::class::Field;
    use crate::ty::Ty;

    fn simple_class(
        build: impl FnOnce(&mut ClassUniverse, &mut ClassBuilder),
    ) -> (ClassUniverse, ClassId) {
        let mut u = ClassUniverse::new();
        let mut cb = ClassBuilder::declare(&mut u, "T", ClassKind::Class);
        build(&mut u, &mut cb);
        let id = cb.finish(&mut u);
        (u, id)
    }

    #[test]
    fn accepts_wellformed_method() {
        let (u, id) = simple_class(|u, cb| {
            let mut mb = MethodBuilder::new(2);
            mb.load_local(1).const_int(1).add().ret_value();
            cb.method(u, "inc", vec![Ty::Int], Ty::Int, Some(mb.finish()));
        });
        assert!(verify_class(&u, id).is_ok());
    }

    #[test]
    fn rejects_stack_underflow() {
        let (u, id) = simple_class(|u, cb| {
            let mut mb = MethodBuilder::new(1);
            mb.pop().ret();
            cb.method(u, "bad", vec![], Ty::Void, Some(mb.finish()));
        });
        let e = verify_class(&u, id).unwrap_err();
        assert!(e.message.contains("underflow"), "{e}");
    }

    #[test]
    fn rejects_fall_off_end() {
        let (u, id) = simple_class(|u, cb| {
            let mut mb = MethodBuilder::new(1);
            mb.const_int(1).pop();
            cb.method(u, "bad", vec![], Ty::Void, Some(mb.finish()));
        });
        let e = verify_class(&u, id).unwrap_err();
        assert!(e.message.contains("falls off"), "{e}");
    }

    #[test]
    fn rejects_depth_mismatch_at_join() {
        let (u, id) = simple_class(|u, cb| {
            let mut mb = MethodBuilder::new(1);
            let join = mb.label();
            let other = mb.label();
            mb.const_bool(true);
            mb.jump_if(other); // depth 0 falls through
            mb.const_int(1); // push 1 -> depth 1
            mb.jump(join);
            mb.bind(other); // depth 0
            mb.bind(join); // joined with depth 1 — mismatch
            mb.ret();
            cb.method(u, "bad", vec![], Ty::Void, Some(mb.finish()));
        });
        let e = verify_class(&u, id).unwrap_err();
        assert!(
            e.message.contains("mismatch") || e.message.contains("underflow"),
            "{e}"
        );
    }

    #[test]
    fn rejects_bad_local_and_field() {
        let (u, id) = simple_class(|u, cb| {
            let mut mb = MethodBuilder::new(1);
            mb.load_local(9).pop().ret();
            cb.method(u, "bad", vec![], Ty::Void, Some(mb.finish()));
        });
        assert!(verify_class(&u, id)
            .unwrap_err()
            .message
            .contains("local index"));

        let (u2, id2) = simple_class(|u, cb| {
            cb.field(Field::new("x", Ty::Int));
            let me = cb.id();
            let mut mb = MethodBuilder::new(1);
            mb.load_this().get_field(me, 5).ret_value();
            cb.method(u, "bad", vec![], Ty::Int, Some(mb.finish()));
        });
        assert!(verify_class(&u2, id2)
            .unwrap_err()
            .message
            .contains("field index"));
    }

    #[test]
    fn rejects_unresolved_static_call() {
        let (u, id) = simple_class(|u, cb| {
            let me = cb.id();
            let sig = u.sig("nothere", vec![]);
            let mut mb = MethodBuilder::new(1);
            mb.invoke_static(me, sig, 0).pop().ret();
            cb.method(u, "bad", vec![], Ty::Void, Some(mb.finish()));
        });
        assert!(verify_class(&u, id)
            .unwrap_err()
            .message
            .contains("unresolved static"));
    }

    #[test]
    fn rejects_instantiating_interface() {
        let mut u = ClassUniverse::new();
        let iface = u.declare("I", ClassKind::Interface);
        let mut cb = ClassBuilder::declare(&mut u, "T", ClassKind::Class);
        let mut mb = MethodBuilder::new(1);
        mb.new_init(iface, 0, 0).pop().ret();
        cb.method(&mut u, "bad", vec![], Ty::Void, Some(mb.finish()));
        let id = cb.finish(&mut u);
        let e = verify_class(&u, id).unwrap_err();
        assert!(
            e.message.contains("ctor ordinal") || e.message.contains("instantiate"),
            "{e}"
        );
    }

    #[test]
    fn rejects_inheritance_cycle() {
        let mut u = ClassUniverse::new();
        let a = u.declare("A", ClassKind::Class);
        let b = u.declare("B", ClassKind::Class);
        u.class_mut(a).superclass = Some(b);
        u.class_mut(b).superclass = Some(a);
        assert!(verify_class(&u, a).unwrap_err().message.contains("cycle"));
    }

    #[test]
    fn handler_entry_gets_exception_on_stack() {
        let (u, id) = simple_class(|u, cb| {
            let mut mb = MethodBuilder::new(1);
            // 0: const 1 ; 1: pop ; 2: return  -- handler at 3 pops exc
            mb.const_int(1).pop().ret();
            mb.emit(Insn::Pop); // 3: handler target pops exception
            mb.ret(); // 4
            mb.handler(0, 3, 3, None);
            cb.method(u, "h", vec![], Ty::Void, Some(mb.finish()));
        });
        assert!(verify_class(&u, id).is_ok());
    }

    #[test]
    fn accepts_loop_with_stable_depth() {
        let (u, id) = simple_class(|u, cb| {
            let mut mb = MethodBuilder::new(2);
            let top = mb.label();
            mb.bind(top);
            mb.load_local(1);
            mb.const_int(0);
            mb.cmp(crate::insn::CmpOp::Gt);
            let done = mb.label();
            mb.jump_if_not(done);
            mb.load_local(1).const_int(1).sub().store_local(1);
            mb.jump(top);
            mb.bind(done);
            mb.ret();
            cb.method(u, "count", vec![Ty::Int], Ty::Void, Some(mb.finish()));
        });
        assert!(verify_class(&u, id).is_ok());
    }
}
