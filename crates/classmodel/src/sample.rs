//! The paper's running example (Figure 2) plus small helper programs used
//! throughout the test suites.
//!
//! Figure 2 of the paper:
//!
//! ```java
//! public class X {
//!     private Y y;
//!     public X(Y y) { this.y = y; }
//!     protected int m(long j) { return y.n(j); }
//!     static final Z z = new Z(Y.K);
//!     static int p(int i) { return z.q(i); }
//! }
//! ```
//!
//! We give the auxiliary classes `Y` and `Z` concrete behaviour so that the
//! equivalence experiments can observe results:
//!
//! * `Y` has an `int base` field, constructor `Y(int)`, instance method
//!   `int n(long j) = base + (int) j` and static field `K = 7`.
//! * `Z` has an `int c` field, constructor `Z(int)` and method
//!   `int q(int i) = i * c`.

use crate::builder::{ClassBuilder, MethodBuilder};
use crate::class::{ClassKind, Field, Visibility};
use crate::insn::UnOp;
use crate::ty::Ty;
use crate::universe::{ClassId, ClassUniverse};

/// The class ids of the Figure 2 sample program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SampleIds {
    /// The paper's sample class `X`.
    pub x: ClassId,
    /// Auxiliary class `Y` (field target, static `K`).
    pub y: ClassId,
    /// Auxiliary class `Z` (constructed in `X.<clinit>`).
    pub z: ClassId,
}

/// Build the Figure 2 sample program (`X`, `Y`, `Z`) into `universe` and
/// return the ids.
pub fn build_figure2(universe: &mut ClassUniverse) -> SampleIds {
    let xid = universe.declare("X", ClassKind::Class);
    let yid = universe.declare("Y", ClassKind::Class);
    let zid = universe.declare("Z", ClassKind::Class);

    // ---- class Y ----
    {
        let mut cb = ClassBuilder::new(universe, yid);
        let base = cb.field(Field::new("base", Ty::Int));
        let mut k_field = Field::new("K", Ty::Int);
        k_field.visibility = Visibility::Public;
        k_field.is_final = true;
        let k = cb.static_field(k_field);

        // Y(int base) { this.base = base; }
        let mut mb = MethodBuilder::new(2);
        mb.load_this().load_local(1).put_field(yid, base).ret();
        cb.ctor(universe, vec![Ty::Int], Some(mb.finish()));

        // int n(long j) { return base + (int) j; }
        let mut mb = MethodBuilder::new(2);
        mb.load_this().get_field(yid, base);
        mb.load_local(1).unop(UnOp::Convert("int"));
        mb.add().ret_value();
        cb.method(universe, "n", vec![Ty::Long], Ty::Int, Some(mb.finish()));

        // static { K = 7; }
        let mut mb = MethodBuilder::new(0);
        mb.const_int(7).put_static(yid, k).ret();
        cb.clinit(universe, mb.finish());
        cb.finish(universe);
    }

    // ---- class Z ----
    {
        let mut cb = ClassBuilder::new(universe, zid);
        let c = cb.field(Field::new("c", Ty::Int));

        // Z(int c) { this.c = c; }
        let mut mb = MethodBuilder::new(2);
        mb.load_this().load_local(1).put_field(zid, c).ret();
        cb.ctor(universe, vec![Ty::Int], Some(mb.finish()));

        // int q(int i) { return i * c; }
        let mut mb = MethodBuilder::new(2);
        mb.load_local(1);
        mb.load_this().get_field(zid, c);
        mb.mul().ret_value();
        cb.method(universe, "q", vec![Ty::Int], Ty::Int, Some(mb.finish()));
        cb.finish(universe);
    }

    // ---- class X ----
    {
        let mut cb = ClassBuilder::new(universe, xid);
        let mut y_field = Field::new("y", Ty::Object(yid));
        y_field.visibility = Visibility::Private;
        let y = cb.field(y_field);
        let mut z_field = Field::new("z", Ty::Object(zid));
        z_field.visibility = Visibility::Package;
        z_field.is_final = true;
        let z = cb.static_field(z_field);

        // public X(Y y) { this.y = y; }
        let mut mb = MethodBuilder::new(2);
        mb.load_this().load_local(1).put_field(xid, y).ret();
        cb.ctor(universe, vec![Ty::Object(yid)], Some(mb.finish()));

        // protected int m(long j) { return y.n(j); }
        let n_sig = universe.sig("n", vec![Ty::Long]);
        let mut mb = MethodBuilder::new(2);
        mb.load_this().get_field(xid, y);
        mb.load_local(1);
        mb.invoke(n_sig, 1);
        mb.ret_value();
        let m_idx = cb.method(universe, "m", vec![Ty::Long], Ty::Int, Some(mb.finish()));
        // The paper declares m as protected.
        let method = m_idx as usize;
        // (patched below after finish — ClassBuilder defaults to public)

        // static int p(int i) { return z.q(i); }
        let q_sig = universe.sig("q", vec![Ty::Int]);
        let mut mb = MethodBuilder::new(1);
        mb.get_static(xid, z);
        mb.load_local(0);
        mb.invoke(q_sig, 1);
        mb.ret_value();
        cb.static_method(universe, "p", vec![Ty::Int], Ty::Int, Some(mb.finish()));

        // static { z = new Z(Y.K); }
        let yk = universe.class(yid).static_field_index("K").unwrap();
        let mut mb = MethodBuilder::new(0);
        mb.get_static(yid, yk);
        mb.new_init(zid, 0, 1);
        mb.put_static(xid, z);
        mb.ret();
        cb.clinit(universe, mb.finish());

        cb.finish(universe);
        universe.class_mut(xid).methods[method].visibility = Visibility::Protected;
    }

    SampleIds {
        x: xid,
        y: yid,
        z: zid,
    }
}

/// Build a tiny `Throwable`-like special hierarchy:
/// `Throwable` (special) ← `AppError`. Returns `(throwable, app_error)`.
///
/// `AppError` carries an `int code` field with a matching constructor and
/// getter, so tests can observe which exception was thrown.
pub fn build_throwables(universe: &mut ClassUniverse) -> (ClassId, ClassId) {
    let t = universe.declare("Throwable", ClassKind::Class);
    {
        let mut cb = ClassBuilder::new(universe, t);
        cb.special();
        let mut mb = MethodBuilder::new(1);
        mb.ret();
        cb.ctor(universe, vec![], Some(mb.finish()));
        cb.finish(universe);
    }
    let e = universe.declare("AppError", ClassKind::Class);
    {
        let mut cb = ClassBuilder::new(universe, e);
        cb.superclass(t);
        cb.special();
        let code = cb.field(Field::new("code", Ty::Int));
        let mut mb = MethodBuilder::new(2);
        mb.load_this().load_local(1).put_field(e, code).ret();
        cb.ctor(universe, vec![Ty::Int], Some(mb.finish()));
        let mut mb = MethodBuilder::new(1);
        mb.load_this().get_field(e, code).ret_value();
        cb.method(universe, "code", vec![], Ty::Int, Some(mb.finish()));
        cb.finish(universe);
    }
    (t, e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_universe;

    #[test]
    fn figure2_sample_verifies() {
        let mut u = ClassUniverse::new();
        let ids = build_figure2(&mut u);
        verify_universe(&u).unwrap();
        assert_eq!(u.class(ids.x).name, "X");
        assert_eq!(u.class(ids.x).ctors.len(), 1);
        assert!(u.class(ids.x).clinit.is_some());
        assert_eq!(u.class(ids.y).static_field_index("K"), Some(0));
    }

    #[test]
    fn m_is_protected_as_in_the_paper() {
        let mut u = ClassUniverse::new();
        let ids = build_figure2(&mut u);
        let x = u.class(ids.x);
        let m = &x.methods[x.method_index("m").unwrap() as usize];
        assert_eq!(m.visibility, Visibility::Protected);
    }

    #[test]
    fn throwable_hierarchy_is_special() {
        let mut u = ClassUniverse::new();
        let (t, e) = build_throwables(&mut u);
        verify_universe(&u).unwrap();
        assert!(u.class(t).is_special);
        assert!(u.is_subtype(e, t));
    }

    #[test]
    fn x_references_y_and_z() {
        let mut u = ClassUniverse::new();
        let ids = build_figure2(&mut u);
        let refs = u.referenced_classes(ids.x);
        assert!(refs.contains(&ids.y));
        assert!(refs.contains(&ids.z));
    }
}
