//! # rafda-classmodel
//!
//! A Java-like class model with a stack-based mini-bytecode IR.
//!
//! This crate is the substrate that stands in for Java bytecode + BCEL in the
//! RAFDA reproduction. It models exactly the surface the paper's
//! transformations operate on:
//!
//! * classes and interfaces with single inheritance plus interface
//!   implementation,
//! * instance and static fields ("attributes" in the paper),
//! * instance and static methods, constructors and static initialisers,
//! * `native` methods (which make a class non-transformable),
//! * classes with *special JVM semantics* (e.g. the `Throwable` hierarchy),
//! * method bodies as a verified stack-based instruction stream.
//!
//! The model is held in a [`ClassUniverse`], which interns class names and
//! method signatures so that the transformation engine (`rafda-transform`)
//! can rewrite call sites cheaply and the interpreter (`rafda-vm`) can
//! dispatch dynamically.
//!
//! ## Example
//!
//! Build the paper's Figure 2 sample class `X` and verify it:
//!
//! ```
//! use rafda_classmodel::{ClassUniverse, sample};
//!
//! let mut universe = ClassUniverse::new();
//! let ids = sample::build_figure2(&mut universe);
//! rafda_classmodel::verify::verify_universe(&universe).unwrap();
//! assert_eq!(universe.class(ids.x).name, "X");
//! ```

#![warn(missing_docs)]

pub mod builder;
pub mod class;
pub mod insn;
pub mod pretty;
pub mod sample;
pub mod ty;
pub mod universe;
pub mod verify;

pub use builder::{ClassBuilder, MethodBuilder};
pub use class::{
    Class, ClassKind, ClassOrigin, Field, GenKind, Method, MethodBody, TryHandler, Visibility,
};
pub use insn::{BinOp, CmpOp, Const, FieldRef, Insn, UnOp};
pub use ty::Ty;
pub use universe::{ClassId, ClassUniverse, MethodSig, SigId};
pub use verify::{verify_class, verify_universe, VerifyError};
