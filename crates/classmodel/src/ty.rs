//! The type lattice of the class model.
//!
//! Mirrors the Java type system closely enough for the paper's
//! transformations: primitives, a built-in string type, reference types
//! naming a class or interface, and (mono-dimensional, possibly nested)
//! array types.

use crate::universe::ClassId;
use std::fmt;

/// A type in the class model.
///
/// `Str` is modelled as a built-in value type rather than a class; the
/// paper's transformations never substitute `java.lang.String` (it is one of
/// the JVM-special classes), so nothing is lost and marshalling becomes
/// simpler.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Ty {
    /// The `void` pseudo-type; only valid as a method return type.
    Void,
    /// `boolean`.
    Bool,
    /// 32-bit signed integer (`int`; also stands in for `byte`/`short`/`char`).
    Int,
    /// 64-bit signed integer (`long`).
    Long,
    /// 32-bit IEEE-754 (`float`).
    Float,
    /// 64-bit IEEE-754 (`double`).
    Double,
    /// Built-in immutable string.
    Str,
    /// Reference to an instance of the named class or interface.
    Object(ClassId),
    /// Array with the given element type.
    Array(Box<Ty>),
}

impl Ty {
    /// Whether values of this type are object references (affected by the
    /// interface-rewriting transformation).
    pub fn is_reference(&self) -> bool {
        matches!(self, Ty::Object(_) | Ty::Array(_))
    }

    /// Whether this is a primitive (non-reference, non-void) type.
    pub fn is_primitive(&self) -> bool {
        matches!(
            self,
            Ty::Bool | Ty::Int | Ty::Long | Ty::Float | Ty::Double | Ty::Str
        )
    }

    /// The class referenced by this type, if any — looking through arrays.
    ///
    /// This is the notion of "reference to a class" used by the
    /// non-transformability propagation rule of Section 2.4: a field of type
    /// `C[][]` references `C`.
    pub fn referenced_class(&self) -> Option<ClassId> {
        match self {
            Ty::Object(c) => Some(*c),
            Ty::Array(e) => e.referenced_class(),
            _ => None,
        }
    }

    /// Build an array type with this element type.
    pub fn array_of(self) -> Ty {
        Ty::Array(Box::new(self))
    }

    /// A short JVM-style descriptor, used for signature interning and debug
    /// output (e.g. `I`, `J`, `LX;`, `[I`).
    pub fn descriptor(&self, name_of: &dyn Fn(ClassId) -> String) -> String {
        match self {
            Ty::Void => "V".to_owned(),
            Ty::Bool => "Z".to_owned(),
            Ty::Int => "I".to_owned(),
            Ty::Long => "J".to_owned(),
            Ty::Float => "F".to_owned(),
            Ty::Double => "D".to_owned(),
            Ty::Str => "T".to_owned(),
            Ty::Object(c) => format!("L{};", name_of(*c)),
            Ty::Array(e) => format!("[{}", e.descriptor(name_of)),
        }
    }
}

impl fmt::Display for Ty {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Ty::Void => write!(f, "void"),
            Ty::Bool => write!(f, "boolean"),
            Ty::Int => write!(f, "int"),
            Ty::Long => write!(f, "long"),
            Ty::Float => write!(f, "float"),
            Ty::Double => write!(f, "double"),
            Ty::Str => write!(f, "String"),
            Ty::Object(c) => write!(f, "#{}", c.0),
            Ty::Array(e) => write!(f, "{}[]", e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn referenced_class_looks_through_arrays() {
        let c = ClassId(7);
        let t = Ty::Object(c).array_of().array_of();
        assert_eq!(t.referenced_class(), Some(c));
        assert_eq!(Ty::Int.referenced_class(), None);
        assert_eq!(Ty::Int.array_of().referenced_class(), None);
    }

    #[test]
    fn reference_and_primitive_partition() {
        assert!(Ty::Object(ClassId(0)).is_reference());
        assert!(Ty::Int.array_of().is_reference());
        assert!(!Ty::Int.is_reference());
        assert!(Ty::Str.is_primitive());
        assert!(!Ty::Void.is_primitive());
        assert!(!Ty::Object(ClassId(0)).is_primitive());
    }

    #[test]
    fn descriptors_are_distinct() {
        let name = |c: ClassId| format!("C{}", c.0);
        let ds: Vec<String> = [
            Ty::Void,
            Ty::Bool,
            Ty::Int,
            Ty::Long,
            Ty::Float,
            Ty::Double,
            Ty::Str,
            Ty::Object(ClassId(1)),
            Ty::Object(ClassId(2)),
            Ty::Int.array_of(),
            Ty::Int.array_of().array_of(),
        ]
        .iter()
        .map(|t| t.descriptor(&name))
        .collect();
        let mut uniq = ds.clone();
        uniq.sort();
        uniq.dedup();
        assert_eq!(uniq.len(), ds.len());
    }

    #[test]
    fn display_is_java_like() {
        assert_eq!(Ty::Int.array_of().to_string(), "int[]");
        assert_eq!(Ty::Str.to_string(), "String");
    }
}
