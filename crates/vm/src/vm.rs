//! The interpreter: one [`Vm`] per simulated address space.

use crate::error::{Trap, VmError};
use crate::heap::{Handle, Heap, HeapEntry, HeapStats};
use crate::native::{NativeFn, NativeRegistry};
use crate::trace::{Trace, TraceEvent};
use crate::value::Value;
use rafda_classmodel::{
    BinOp, ClassId, ClassKind, ClassUniverse, CmpOp, Const, Insn, SigId, Ty, UnOp, Visibility,
};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use std::sync::Arc;

/// Class-initialisation state (JVM §5.5 style).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum InitState {
    InProgress,
    Done,
}

/// Work counters exposed for the overhead experiments (E4/E8): interpreter
/// steps are the machine-independent cost metric.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct VmStats {
    /// Instructions executed.
    pub steps: u64,
    /// Bytecode method invocations (all kinds).
    pub calls: u64,
    /// Native hook invocations.
    pub native_calls: u64,
    /// Heap statistics snapshot.
    pub heap: HeapStats,
}

#[derive(Debug)]
struct VmState {
    heap: Heap,
    statics: HashMap<ClassId, Vec<Value>>,
    init: HashMap<ClassId, InitState>,
    steps: u64,
    calls: u64,
    native_calls: u64,
    fuel_limit: Option<u64>,
    max_depth: u32,
    cur_depth: u32,
    trace: Trace,
}

impl Default for VmState {
    fn default() -> Self {
        VmState {
            heap: Heap::new(),
            statics: HashMap::new(),
            init: HashMap::new(),
            steps: 0,
            calls: 0,
            native_calls: 0,
            fuel_limit: None,
            max_depth: 512,
            cur_depth: 0,
            trace: Trace::new(),
        }
    }
}

/// Signature ids of the built-in `Observer` class installed by
/// [`Vm::install_observer`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObserverIds {
    /// The `Observer` class id.
    pub class: ClassId,
    /// `emit(long)` signature.
    pub emit: SigId,
    /// `emit_str(String)` signature.
    pub emit_str: SigId,
    /// `emit_double(double)` signature.
    pub emit_double: SigId,
}

/// An interpreter for the mini-bytecode, modelling one address space.
///
/// `Vm` is a cheap-to-clone handle over shared interior state, so native
/// hooks (proxies) can hold a `Vm` and re-enter execution.
#[derive(Clone)]
pub struct Vm {
    universe: Arc<ClassUniverse>,
    state: Rc<RefCell<VmState>>,
    natives: Rc<RefCell<NativeRegistry>>,
}

impl std::fmt::Debug for Vm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = self.state.borrow();
        f.debug_struct("Vm")
            .field("classes", &self.universe.len())
            .field("steps", &s.steps)
            .field("live_objects", &s.heap.live())
            .finish()
    }
}

impl Vm {
    /// Create a VM over a (typically already transformed) class universe.
    pub fn new(universe: Arc<ClassUniverse>) -> Self {
        Vm {
            universe,
            state: Rc::new(RefCell::new(VmState::default())),
            natives: Rc::new(RefCell::new(NativeRegistry::new())),
        }
    }

    /// The shared class universe.
    pub fn universe(&self) -> &Arc<ClassUniverse> {
        &self.universe
    }

    /// Register a native hook for `(class, sig)`.
    pub fn register_native(
        &self,
        class: ClassId,
        sig: SigId,
        hook: impl Fn(&Vm, &[Value]) -> Result<Value, VmError> + 'static,
    ) {
        self.natives.borrow_mut().register(class, sig, hook);
    }

    /// Limit total interpreter steps (`None` = unlimited).
    pub fn set_fuel(&self, limit: Option<u64>) {
        self.state.borrow_mut().fuel_limit = limit;
    }

    /// Limit call depth (default 512).
    pub fn set_max_depth(&self, depth: u32) {
        self.state.borrow_mut().max_depth = depth;
    }

    /// Snapshot the work counters.
    pub fn stats(&self) -> VmStats {
        let s = self.state.borrow();
        VmStats {
            steps: s.steps,
            calls: s.calls,
            native_calls: s.native_calls,
            heap: s.heap.stats(),
        }
    }

    /// Reset the work counters (not the heap).
    pub fn reset_stats(&self) {
        let mut s = self.state.borrow_mut();
        s.steps = 0;
        s.calls = 0;
        s.native_calls = 0;
    }

    // ------------------------------------------------------------------
    // Trace / observer
    // ------------------------------------------------------------------

    /// Append an event to the observation trace.
    pub fn push_trace(&self, event: TraceEvent) {
        self.state.borrow_mut().trace.push(event);
    }

    /// Take the trace, leaving an empty one.
    pub fn take_trace(&self) -> Trace {
        std::mem::take(&mut self.state.borrow_mut().trace)
    }

    /// Clone the current trace.
    pub fn trace(&self) -> Trace {
        self.state.borrow().trace.clone()
    }

    /// Install the built-in `Observer` class into a universe (call **before**
    /// wrapping it in `Arc` and building VMs). Returns the ids needed by
    /// [`Vm::bind_observer`].
    ///
    /// `Observer` is marked *special*, so the transformation engine leaves it
    /// alone — like `java.lang.System`, it is part of the non-transformable
    /// JVM boundary.
    pub fn install_observer(universe: &mut ClassUniverse) -> ObserverIds {
        use rafda_classmodel::{Class, ClassOrigin, Method};
        let class = universe.declare("Observer", ClassKind::Class);
        let emit = universe.sig("emit", vec![Ty::Long]);
        let emit_str = universe.sig("emit_str", vec![Ty::Str]);
        let emit_double = universe.sig("emit_double", vec![Ty::Double]);
        let mk = |name: &str, sig: SigId, params: Vec<Ty>| Method {
            name: name.to_owned(),
            sig,
            params,
            ret: Ty::Void,
            visibility: Visibility::Public,
            is_static: true,
            is_native: true,
            body: None,
        };
        universe.define(
            class,
            Class {
                name: "Observer".to_owned(),
                kind: ClassKind::Class,
                superclass: None,
                interfaces: vec![],
                fields: vec![],
                static_fields: vec![],
                methods: vec![
                    mk("emit", emit, vec![Ty::Long]),
                    mk("emit_str", emit_str, vec![Ty::Str]),
                    mk("emit_double", emit_double, vec![Ty::Double]),
                ],
                ctors: vec![],
                clinit: None,
                is_special: true,
                is_abstract: false,
                origin: ClassOrigin::Original,
            },
        );
        ObserverIds {
            class,
            emit,
            emit_str,
            emit_double,
        }
    }

    /// Bind the `Observer` native hooks to this VM's trace.
    pub fn bind_observer(&self, ids: &ObserverIds) {
        let trace_hook = |f: fn(&[Value]) -> Result<TraceEvent, VmError>| {
            move |vm: &Vm, args: &[Value]| {
                vm.push_trace(f(args)?);
                Ok(Value::Null)
            }
        };
        self.register_native(
            ids.class,
            ids.emit,
            trace_hook(|args| match args {
                [Value::Long(v)] => Ok(TraceEvent::Emit(*v)),
                [Value::Int(v)] => Ok(TraceEvent::Emit(i64::from(*v))),
                _ => Err(VmError::type_error("Observer.emit expects long")),
            }),
        );
        self.register_native(
            ids.class,
            ids.emit_str,
            trace_hook(|args| match args {
                [Value::Str(s)] => Ok(TraceEvent::EmitStr(s.to_string())),
                _ => Err(VmError::type_error("Observer.emit_str expects String")),
            }),
        );
        self.register_native(
            ids.class,
            ids.emit_double,
            trace_hook(|args| match args {
                [Value::Double(d)] => Ok(TraceEvent::EmitDouble(d.to_bits())),
                _ => Err(VmError::type_error("Observer.emit_double expects double")),
            }),
        );
    }

    // ------------------------------------------------------------------
    // Heap access for the distributed runtime
    // ------------------------------------------------------------------

    /// Run a closure with mutable access to the heap.
    ///
    /// # Panics
    /// Panics if called re-entrantly from within another `with_heap` borrow.
    pub fn with_heap<R>(&self, f: impl FnOnce(&mut Heap) -> R) -> R {
        f(&mut self.state.borrow_mut().heap)
    }

    /// Read `(runtime class, field slots)` of a live object.
    pub fn read_object(&self, h: Handle) -> Option<(ClassId, Vec<Value>)> {
        match self.state.borrow().heap.get(h) {
            Some(HeapEntry::Object { class, fields }) => Some((*class, fields.clone())),
            _ => None,
        }
    }

    /// Allocate an object without running a constructor (used when
    /// materialising migrated state or proxies).
    pub fn alloc_raw(&self, class: ClassId, fields: Vec<Value>) -> Handle {
        self.state.borrow_mut().heap.alloc_object(class, fields)
    }

    /// Rewrite a live object in place (the boundary swap primitive).
    pub fn replace_object(&self, h: Handle, class: ClassId, fields: Vec<Value>) -> bool {
        self.state
            .borrow_mut()
            .heap
            .replace_object(h, class, fields)
            .is_some()
    }

    /// The runtime class of a live object.
    pub fn class_of(&self, h: Handle) -> Option<ClassId> {
        self.state.borrow().heap.class_of(h)
    }

    /// Mark-and-sweep garbage collection.
    ///
    /// Roots are all static fields of initialised classes plus the
    /// caller-supplied `extra_roots` (a distributed runtime passes its
    /// exported objects, proxy imports and singletons). Everything
    /// unreachable is freed; returns the number of entries collected.
    ///
    /// Must not be called while interpretation is in progress (operand
    /// stacks and locals are not scanned) — the runtime only collects
    /// between top-level calls.
    pub fn gc(&self, extra_roots: &[Handle]) -> usize {
        let mut marked: std::collections::HashSet<u32> = std::collections::HashSet::new();
        let mut work: Vec<Handle> = extra_roots.to_vec();
        {
            let s = self.state.borrow();
            for values in s.statics.values() {
                for v in values {
                    if let Value::Ref(h) = v {
                        work.push(*h);
                    }
                }
            }
        }
        while let Some(h) = work.pop() {
            if !marked.insert(h.index) {
                continue;
            }
            let fields: Vec<Value> = {
                let s = self.state.borrow();
                match s.heap.get(h) {
                    Some(HeapEntry::Object { fields, .. }) => fields.clone(),
                    Some(HeapEntry::Array { data, .. }) => data.clone(),
                    None => continue,
                }
            };
            for v in fields {
                if let Value::Ref(next) = v {
                    work.push(next);
                }
            }
        }
        self.state.borrow_mut().heap.sweep(&marked)
    }

    // ------------------------------------------------------------------
    // Entry points
    // ------------------------------------------------------------------

    /// Call a static method by resolved signature.
    ///
    /// # Errors
    /// Any [`VmError`] raised during execution.
    pub fn call_static(
        &self,
        class: ClassId,
        sig: SigId,
        args: Vec<Value>,
    ) -> Result<Value, VmError> {
        self.ensure_initialized(class, 0)?;
        let (owner, idx) = self.universe.resolve_static(class, sig).ok_or_else(|| {
            VmError::Trap(Trap::UnresolvedMethod(format!(
                "{}::{}",
                self.universe.class(class).name,
                self.universe.sig_info(sig).name
            )))
        })?;
        self.exec(owner, idx, args, 0)
    }

    /// Call an instance method, dispatching on the receiver's runtime class.
    ///
    /// # Errors
    /// Any [`VmError`] raised during execution; `NullDeref` for a null
    /// receiver.
    pub fn call_virtual(
        &self,
        recv: Value,
        sig: SigId,
        mut args: Vec<Value>,
    ) -> Result<Value, VmError> {
        let h = match recv {
            Value::Ref(h) => h,
            Value::Null => return Err(VmError::Trap(Trap::NullDeref)),
            other => {
                return Err(VmError::type_error(format!(
                    "virtual call on non-reference {}",
                    other.kind()
                )))
            }
        };
        let class = self.class_of(h).ok_or(VmError::Trap(Trap::StaleHandle))?;
        let (owner, idx) = self.universe.resolve_virtual(class, sig).ok_or_else(|| {
            VmError::Trap(Trap::UnresolvedMethod(format!(
                "{}::{}",
                self.universe.class(class).name,
                self.universe.sig_info(sig).name
            )))
        })?;
        let mut all = Vec::with_capacity(args.len() + 1);
        all.push(Value::Ref(h));
        all.append(&mut args);
        self.exec(owner, idx, all, 0)
    }

    /// Construct an instance of `class` using constructor ordinal `ctor`.
    ///
    /// # Errors
    /// Any [`VmError`] raised by the constructor or class initialiser.
    pub fn new_instance(
        &self,
        class: ClassId,
        ctor: u16,
        args: Vec<Value>,
    ) -> Result<Value, VmError> {
        self.ensure_initialized(class, 0)?;
        self.construct(class, ctor, args, 0)
    }

    /// Resolve a static method by class & method *name* and call it
    /// (convenience for tests and examples; the first method with a matching
    /// name wins).
    ///
    /// # Errors
    /// `UnresolvedMethod` if the class or method does not exist, plus any
    /// execution error.
    pub fn call_static_by_name(
        &self,
        class_name: &str,
        method: &str,
        args: Vec<Value>,
    ) -> Result<Value, VmError> {
        let (class, sig) = self.lookup(class_name, method)?;
        self.call_static(class, sig, args)
    }

    /// Resolve an instance method by name on the receiver's class and call it.
    ///
    /// # Errors
    /// As for [`Vm::call_static_by_name`].
    pub fn call_virtual_by_name(
        &self,
        recv: Value,
        method: &str,
        args: Vec<Value>,
    ) -> Result<Value, VmError> {
        let h = recv.as_ref_handle().ok_or(VmError::Trap(Trap::NullDeref))?;
        let class = self.class_of(h).ok_or(VmError::Trap(Trap::StaleHandle))?;
        let mut cur = Some(class);
        while let Some(c) = cur {
            if let Some(idx) = self.universe.class(c).method_index(method) {
                let sig = self.universe.class(c).methods[idx as usize].sig;
                return self.call_virtual(recv, sig, args);
            }
            cur = self.universe.class(c).superclass;
        }
        Err(VmError::Trap(Trap::UnresolvedMethod(format!(
            "{}::{method}",
            self.universe.class(class).name
        ))))
    }

    fn lookup(&self, class_name: &str, method: &str) -> Result<(ClassId, SigId), VmError> {
        let class = self
            .universe
            .by_name(class_name)
            .ok_or_else(|| VmError::Trap(Trap::UnresolvedMethod(class_name.to_owned())))?;
        let idx = self
            .universe
            .class(class)
            .method_index(method)
            .ok_or_else(|| {
                VmError::Trap(Trap::UnresolvedMethod(format!("{class_name}::{method}")))
            })?;
        Ok((class, self.universe.class(class).methods[idx as usize].sig))
    }

    /// Run `class_name::method` and return the observable [`Trace`],
    /// including uncaught exceptions and network failures as terminal
    /// events. This is the entry point of the equivalence experiments (E7).
    pub fn run_observed(&self, class_name: &str, method: &str, args: Vec<Value>) -> Trace {
        self.take_trace();
        let result = self.call_static_by_name(class_name, method, args);
        match result {
            Ok(_) => {}
            Err(VmError::Exception(h)) => {
                let name = self
                    .class_of(h)
                    .map(|c| self.universe.class(c).name.clone())
                    .unwrap_or_else(|| "<stale>".to_owned());
                self.push_trace(TraceEvent::UncaughtException(name));
            }
            Err(VmError::Native(msg)) if msg.contains("network") => {
                self.push_trace(TraceEvent::NetworkFailure(msg));
            }
            Err(VmError::Unreachable(nf)) => {
                self.push_trace(TraceEvent::NetworkFailure(nf.to_string()));
            }
            Err(other) => {
                self.push_trace(TraceEvent::EmitStr(format!("<error: {other}>")));
            }
        }
        self.take_trace()
    }

    // ------------------------------------------------------------------
    // Class initialisation & statics
    // ------------------------------------------------------------------

    /// Ensure the class (and its superclasses) are initialised, running
    /// `<clinit>` if needed.
    ///
    /// # Errors
    /// Any error raised by a static initialiser.
    pub fn ensure_initialized(&self, class: ClassId, depth: u32) -> Result<(), VmError> {
        {
            let s = self.state.borrow();
            if s.init.contains_key(&class) {
                return Ok(());
            }
        }
        {
            let mut s = self.state.borrow_mut();
            s.init.insert(class, InitState::InProgress);
            let defaults: Vec<Value> = self
                .universe
                .class(class)
                .static_fields
                .iter()
                .map(|f| Value::default_for(&f.ty))
                .collect();
            s.statics.insert(class, defaults);
        }
        if let Some(sup) = self.universe.class(class).superclass {
            self.ensure_initialized(sup, depth)?;
        }
        if let Some(ci) = self.universe.class(class).clinit {
            self.exec(class, ci, vec![], depth)?;
        }
        self.state.borrow_mut().init.insert(class, InitState::Done);
        Ok(())
    }

    /// Read a static field (initialising the class if needed).
    ///
    /// # Errors
    /// Initialisation errors.
    pub fn get_static_field(&self, class: ClassId, index: u16) -> Result<Value, VmError> {
        self.ensure_initialized(class, 0)?;
        Ok(self.state.borrow().statics[&class][index as usize].clone())
    }

    /// Write a static field (initialising the class if needed).
    ///
    /// # Errors
    /// Initialisation errors.
    pub fn set_static_field(&self, class: ClassId, index: u16, v: Value) -> Result<(), VmError> {
        self.ensure_initialized(class, 0)?;
        self.state
            .borrow_mut()
            .statics
            .get_mut(&class)
            .expect("initialised")[index as usize] = v;
        Ok(())
    }

    // ------------------------------------------------------------------
    // Core interpreter
    // ------------------------------------------------------------------

    fn construct(
        &self,
        class: ClassId,
        ctor: u16,
        args: Vec<Value>,
        depth: u32,
    ) -> Result<Value, VmError> {
        let cls = self.universe.class(class);
        let &mi = cls.ctors.get(ctor as usize).ok_or_else(|| {
            VmError::Trap(Trap::UnresolvedMethod(format!(
                "{}::<init>${ctor}",
                cls.name
            )))
        })?;
        let defaults: Vec<Value> = self
            .universe
            .field_layout(class)
            .iter()
            .map(|&(owner, idx)| {
                Value::default_for(&self.universe.class(owner).fields[idx as usize].ty)
            })
            .collect();
        let h = self.state.borrow_mut().heap.alloc_object(class, defaults);
        let mut all = Vec::with_capacity(args.len() + 1);
        all.push(Value::Ref(h));
        all.extend(args);
        self.exec(class, mi, all, depth)?;
        Ok(Value::Ref(h))
    }

    /// Execute method `method_idx` of `class`. `args` includes the receiver
    /// for instance methods.
    ///
    /// Call depth is tracked in VM state (not just the `depth` parameter)
    /// so that re-entrant executions through native hooks — e.g. a remote
    /// callback arriving mid-call — keep accumulating against the limit.
    fn exec(
        &self,
        class: ClassId,
        method_idx: u16,
        args: Vec<Value>,
        depth: u32,
    ) -> Result<Value, VmError> {
        {
            let mut s = self.state.borrow_mut();
            s.calls += 1;
            s.cur_depth += 1;
            if depth >= s.max_depth || s.cur_depth > s.max_depth {
                s.cur_depth -= 1;
                return Err(VmError::Trap(Trap::StackOverflow));
            }
        }
        let result = self.exec_frame(class, method_idx, args, depth);
        self.state.borrow_mut().cur_depth -= 1;
        result
    }

    fn exec_frame(
        &self,
        class: ClassId,
        method_idx: u16,
        args: Vec<Value>,
        depth: u32,
    ) -> Result<Value, VmError> {
        let method = self.universe.method(class, method_idx);
        if method.is_native {
            let hook: Option<NativeFn> = self.natives.borrow().get(class, method.sig);
            let hook = hook.ok_or_else(|| {
                VmError::Trap(Trap::NoNativeHook(format!(
                    "{}::{}",
                    self.universe.class(class).name,
                    method.name
                )))
            })?;
            self.state.borrow_mut().native_calls += 1;
            return hook(self, &args);
        }
        let body = method.body.as_ref().ok_or_else(|| {
            VmError::Trap(Trap::UnresolvedMethod(format!(
                "abstract {}::{}",
                self.universe.class(class).name,
                method.name
            )))
        })?;

        let mut locals = vec![Value::Null; body.max_locals as usize];
        let argc = args.len().min(locals.len());
        locals[..argc].clone_from_slice(&args[..argc]);
        let mut stack: Vec<Value> = Vec::with_capacity(8);
        let mut pc: u32 = 0;

        loop {
            {
                let mut s = self.state.borrow_mut();
                s.steps += 1;
                if let Some(limit) = s.fuel_limit {
                    if s.steps > limit {
                        return Err(VmError::Trap(Trap::OutOfFuel));
                    }
                }
            }
            let insn = &body.code[pc as usize];
            match self.step(insn, &mut stack, &mut locals, depth) {
                Ok(Flow::Next) => pc += 1,
                Ok(Flow::Jump(t)) => pc = t,
                Ok(Flow::Return(v)) => return Ok(v),
                Err(VmError::Exception(exc)) => {
                    let exc_class = self.class_of(exc).ok_or(VmError::Trap(Trap::StaleHandle))?;
                    let handler = body.handlers.iter().find(|h| {
                        h.start <= pc
                            && pc < h.end
                            && h.catch
                                .map(|c| self.universe.is_subtype(exc_class, c))
                                .unwrap_or(true)
                    });
                    match handler {
                        Some(h) => {
                            stack.clear();
                            stack.push(Value::Ref(exc));
                            pc = h.target;
                        }
                        None => return Err(VmError::Exception(exc)),
                    }
                }
                Err(other) => return Err(other),
            }
        }
    }

    fn step(
        &self,
        insn: &Insn,
        stack: &mut Vec<Value>,
        locals: &mut [Value],
        depth: u32,
    ) -> Result<Flow, VmError> {
        macro_rules! pop {
            () => {
                stack.pop().expect("verified stack underflow")
            };
        }
        match insn {
            Insn::Const(c) => {
                stack.push(match c {
                    Const::Null => Value::Null,
                    Const::Bool(b) => Value::Bool(*b),
                    Const::Int(i) => Value::Int(*i),
                    Const::Long(i) => Value::Long(*i),
                    Const::Float(x) => Value::Float(*x),
                    Const::Double(x) => Value::Double(*x),
                    Const::Str(s) => Value::str(s),
                });
            }
            Insn::LoadLocal(n) => stack.push(locals[*n as usize].clone()),
            Insn::StoreLocal(n) => locals[*n as usize] = pop!(),
            Insn::GetField(fr) => {
                let obj = pop!();
                let h = ref_handle(obj)?;
                let offset = self.universe.field_base(fr.owner) + fr.index as usize;
                let v = self
                    .state
                    .borrow()
                    .heap
                    .field(h, offset)
                    .cloned()
                    .ok_or(VmError::Trap(Trap::StaleHandle))?;
                stack.push(v);
            }
            Insn::PutField(fr) => {
                let v = pop!();
                let obj = pop!();
                let h = ref_handle(obj)?;
                let offset = self.universe.field_base(fr.owner) + fr.index as usize;
                if !self.state.borrow_mut().heap.set_field(h, offset, v) {
                    return Err(VmError::Trap(Trap::StaleHandle));
                }
            }
            Insn::GetStatic(fr) => {
                self.ensure_initialized(fr.owner, depth)?;
                let v = self.state.borrow().statics[&fr.owner][fr.index as usize].clone();
                stack.push(v);
            }
            Insn::PutStatic(fr) => {
                self.ensure_initialized(fr.owner, depth)?;
                let v = pop!();
                self.state
                    .borrow_mut()
                    .statics
                    .get_mut(&fr.owner)
                    .expect("initialised")[fr.index as usize] = v;
            }
            Insn::NewInit { class, ctor, argc } => {
                self.ensure_initialized(*class, depth)?;
                let args = split_args(stack, *argc as usize);
                let obj = self.construct(*class, *ctor, args, depth + 1)?;
                stack.push(obj);
            }
            Insn::Invoke { sig, argc } => {
                let mut args = split_args(stack, *argc as usize + 1);
                let recv = args.remove(0);
                let h = ref_handle(recv)?;
                let rt_class = self.class_of(h).ok_or(VmError::Trap(Trap::StaleHandle))?;
                let (owner, idx) =
                    self.universe
                        .resolve_virtual(rt_class, *sig)
                        .ok_or_else(|| {
                            VmError::Trap(Trap::UnresolvedMethod(format!(
                                "{}::{}",
                                self.universe.class(rt_class).name,
                                self.universe.sig_info(*sig).name
                            )))
                        })?;
                let mut all = Vec::with_capacity(args.len() + 1);
                all.push(Value::Ref(h));
                all.extend(args);
                let r = self.exec(owner, idx, all, depth + 1)?;
                stack.push(r);
            }
            Insn::InvokeStatic { class, sig, argc } => {
                self.ensure_initialized(*class, depth)?;
                let args = split_args(stack, *argc as usize);
                let (owner, idx) = self.universe.resolve_static(*class, *sig).ok_or_else(|| {
                    VmError::Trap(Trap::UnresolvedMethod(format!(
                        "{}::{}",
                        self.universe.class(*class).name,
                        self.universe.sig_info(*sig).name
                    )))
                })?;
                let r = self.exec(owner, idx, args, depth + 1)?;
                stack.push(r);
            }
            Insn::Return => return Ok(Flow::Return(Value::Null)),
            Insn::ReturnValue => return Ok(Flow::Return(pop!())),
            Insn::Throw => {
                let exc = pop!();
                let h = ref_handle(exc)?;
                return Err(VmError::Exception(h));
            }
            Insn::Jump(t) => return Ok(Flow::Jump(*t)),
            Insn::JumpIf(t) => {
                let b = pop!()
                    .as_bool()
                    .ok_or_else(|| VmError::type_error("branch on non-boolean"))?;
                if b {
                    return Ok(Flow::Jump(*t));
                }
            }
            Insn::JumpIfNot(t) => {
                let b = pop!()
                    .as_bool()
                    .ok_or_else(|| VmError::type_error("branch on non-boolean"))?;
                if !b {
                    return Ok(Flow::Jump(*t));
                }
            }
            Insn::BinOp(op) => {
                let b = pop!();
                let a = pop!();
                stack.push(bin_op(*op, a, b)?);
            }
            Insn::UnOp(op) => {
                let a = pop!();
                stack.push(un_op(*op, a)?);
            }
            Insn::Cmp(op) => {
                let b = pop!();
                let a = pop!();
                stack.push(Value::Bool(cmp_op(*op, a, b)?));
            }
            Insn::NewArray(elem) => {
                let len = pop!()
                    .as_int()
                    .ok_or_else(|| VmError::type_error("array length must be int"))?;
                if len < 0 {
                    return Err(VmError::Trap(Trap::NegativeArrayLen));
                }
                let data = vec![Value::default_for(elem); len as usize];
                let h = self.state.borrow_mut().heap.alloc_array(elem.clone(), data);
                stack.push(Value::Ref(h));
            }
            Insn::ArrayGet => {
                let idx = pop!();
                let arr = pop!();
                stack.push(self.array_get(arr, idx)?);
            }
            Insn::ArraySet => {
                let v = pop!();
                let idx = pop!();
                let arr = pop!();
                self.array_set(arr, idx, v)?;
            }
            Insn::ArrayLen => {
                let arr = pop!();
                let h = ref_handle(arr)?;
                let len = match self.state.borrow().heap.get(h) {
                    Some(HeapEntry::Array { data, .. }) => data.len(),
                    Some(_) => return Err(VmError::type_error("arraylen of non-array")),
                    None => return Err(VmError::Trap(Trap::StaleHandle)),
                };
                stack.push(Value::Int(len as i32));
            }
            Insn::Dup => {
                let v = stack.last().expect("verified").clone();
                stack.push(v);
            }
            Insn::Pop => {
                pop!();
            }
            Insn::Swap => {
                let n = stack.len();
                stack.swap(n - 1, n - 2);
            }
            Insn::InstanceOf(c) => {
                let v = pop!();
                let b = match v {
                    Value::Ref(h) => {
                        let rt = self.class_of(h);
                        match rt {
                            Some(rt) => self.universe.is_subtype(rt, *c),
                            None => false, // arrays are not class instances
                        }
                    }
                    _ => false,
                };
                stack.push(Value::Bool(b));
            }
            Insn::CheckCast(c) => {
                let v = stack.last().expect("verified").clone();
                match v {
                    Value::Null => {}
                    Value::Ref(h) => {
                        if let Some(rt) = self.class_of(h) {
                            if !self.universe.is_subtype(rt, *c) {
                                return Err(VmError::Trap(Trap::ClassCast));
                            }
                        }
                        // Arrays pass unchecked (the model does not type
                        // array references at cast sites).
                    }
                    _ => return Err(VmError::Trap(Trap::ClassCast)),
                }
            }
        }
        Ok(Flow::Next)
    }

    fn array_get(&self, arr: Value, idx: Value) -> Result<Value, VmError> {
        let h = ref_handle(arr)?;
        let i = idx
            .as_int()
            .ok_or_else(|| VmError::type_error("array index must be int"))?;
        match self.state.borrow().heap.get(h) {
            Some(HeapEntry::Array { data, .. }) => data
                .get(i as usize)
                .cloned()
                .filter(|_| i >= 0)
                .ok_or(VmError::Trap(Trap::IndexOutOfBounds {
                    index: i64::from(i),
                    len: data.len(),
                })),
            Some(_) => Err(VmError::type_error("indexing a non-array")),
            None => Err(VmError::Trap(Trap::StaleHandle)),
        }
    }

    fn array_set(&self, arr: Value, idx: Value, v: Value) -> Result<(), VmError> {
        let h = ref_handle(arr)?;
        let i = idx
            .as_int()
            .ok_or_else(|| VmError::type_error("array index must be int"))?;
        match self.state.borrow_mut().heap.get_mut(h) {
            Some(HeapEntry::Array { data, .. }) => {
                let len = data.len();
                if i < 0 || i as usize >= len {
                    return Err(VmError::Trap(Trap::IndexOutOfBounds {
                        index: i64::from(i),
                        len,
                    }));
                }
                data[i as usize] = v;
                Ok(())
            }
            Some(_) => Err(VmError::type_error("indexing a non-array")),
            None => Err(VmError::Trap(Trap::StaleHandle)),
        }
    }
}

enum Flow {
    Next,
    Jump(u32),
    Return(Value),
}

fn ref_handle(v: Value) -> Result<Handle, VmError> {
    match v {
        Value::Ref(h) => Ok(h),
        Value::Null => Err(VmError::Trap(Trap::NullDeref)),
        other => Err(VmError::type_error(format!(
            "expected reference, got {}",
            other.kind()
        ))),
    }
}

fn split_args(stack: &mut Vec<Value>, n: usize) -> Vec<Value> {
    stack.split_off(stack.len() - n)
}

fn bin_op(op: BinOp, a: Value, b: Value) -> Result<Value, VmError> {
    use BinOp::*;
    use Value::*;
    Ok(match (op, a, b) {
        (Add, Int(x), Int(y)) => Int(x.wrapping_add(y)),
        (Sub, Int(x), Int(y)) => Int(x.wrapping_sub(y)),
        (Mul, Int(x), Int(y)) => Int(x.wrapping_mul(y)),
        (Div, Int(_), Int(0)) | (Rem, Int(_), Int(0)) => {
            return Err(VmError::Trap(Trap::DivByZero))
        }
        (Div, Int(x), Int(y)) => Int(x.wrapping_div(y)),
        (Rem, Int(x), Int(y)) => Int(x.wrapping_rem(y)),
        (And, Int(x), Int(y)) => Int(x & y),
        (Or, Int(x), Int(y)) => Int(x | y),
        (Xor, Int(x), Int(y)) => Int(x ^ y),
        (Shl, Int(x), Int(y)) => Int(x.wrapping_shl(y as u32)),
        (Shr, Int(x), Int(y)) => Int(x.wrapping_shr(y as u32)),

        (Add, Long(x), Long(y)) => Long(x.wrapping_add(y)),
        (Sub, Long(x), Long(y)) => Long(x.wrapping_sub(y)),
        (Mul, Long(x), Long(y)) => Long(x.wrapping_mul(y)),
        (Div, Long(_), Long(0)) | (Rem, Long(_), Long(0)) => {
            return Err(VmError::Trap(Trap::DivByZero))
        }
        (Div, Long(x), Long(y)) => Long(x.wrapping_div(y)),
        (Rem, Long(x), Long(y)) => Long(x.wrapping_rem(y)),
        (And, Long(x), Long(y)) => Long(x & y),
        (Or, Long(x), Long(y)) => Long(x | y),
        (Xor, Long(x), Long(y)) => Long(x ^ y),
        (Shl, Long(x), Long(y)) => Long(x.wrapping_shl(y as u32)),
        (Shr, Long(x), Long(y)) => Long(x.wrapping_shr(y as u32)),

        (Add, Float(x), Float(y)) => Float(x + y),
        (Sub, Float(x), Float(y)) => Float(x - y),
        (Mul, Float(x), Float(y)) => Float(x * y),
        (Div, Float(x), Float(y)) => Float(x / y),
        (Rem, Float(x), Float(y)) => Float(x % y),

        (Add, Double(x), Double(y)) => Double(x + y),
        (Sub, Double(x), Double(y)) => Double(x - y),
        (Mul, Double(x), Double(y)) => Double(x * y),
        (Div, Double(x), Double(y)) => Double(x / y),
        (Rem, Double(x), Double(y)) => Double(x % y),

        (Add, Str(x), Str(y)) => Value::str(format!("{x}{y}")),
        (And, Bool(x), Bool(y)) => Bool(x && y),
        (Or, Bool(x), Bool(y)) => Bool(x || y),
        (Xor, Bool(x), Bool(y)) => Bool(x ^ y),

        (op, a, b) => {
            return Err(VmError::type_error(format!(
                "binop {op:?} on {} and {}",
                a.kind(),
                b.kind()
            )))
        }
    })
}

fn un_op(op: UnOp, a: Value) -> Result<Value, VmError> {
    use Value::*;
    Ok(match (op, a) {
        (UnOp::Neg, Int(x)) => Int(x.wrapping_neg()),
        (UnOp::Neg, Long(x)) => Long(x.wrapping_neg()),
        (UnOp::Neg, Float(x)) => Float(-x),
        (UnOp::Neg, Double(x)) => Double(-x),
        (UnOp::Not, Bool(x)) => Bool(!x),
        (UnOp::Not, Int(x)) => Int(!x),
        (UnOp::Not, Long(x)) => Long(!x),
        (UnOp::Convert(target), v) => convert(target, v)?,
        (op, v) => return Err(VmError::type_error(format!("unop {op:?} on {}", v.kind()))),
    })
}

fn convert(target: &str, v: Value) -> Result<Value, VmError> {
    use Value::*;
    let as_f64 = |v: &Value| -> Option<f64> {
        match v {
            Int(x) => Some(f64::from(*x)),
            Long(x) => Some(*x as f64),
            Float(x) => Some(f64::from(*x)),
            Double(x) => Some(*x),
            _ => None,
        }
    };
    let as_i64 = |v: &Value| -> Option<i64> {
        match v {
            Int(x) => Some(i64::from(*x)),
            Long(x) => Some(*x),
            Float(x) => Some(*x as i64),
            Double(x) => Some(*x as i64),
            _ => None,
        }
    };
    let out = match target {
        "int" => as_i64(&v).map(|x| Int(x as i32)),
        "long" => as_i64(&v).map(Long),
        "float" => as_f64(&v).map(|x| Float(x as f32)),
        "double" => as_f64(&v).map(Double),
        "string" => Some(Value::str(v.to_string())),
        _ => None,
    };
    out.ok_or_else(|| VmError::type_error(format!("cannot convert {} to {target}", v.kind())))
}

fn cmp_op(op: CmpOp, a: Value, b: Value) -> Result<bool, VmError> {
    use Value::*;
    // Equality first: defined for all same-kind values and null/ref mixes.
    match op {
        CmpOp::Eq | CmpOp::Ne => {
            let eq = match (&a, &b) {
                (Null, Null) => true,
                (Null, Ref(_)) | (Ref(_), Null) => false,
                (Null, Str(_)) | (Str(_), Null) => false,
                (Ref(x), Ref(y)) => x == y,
                (Bool(x), Bool(y)) => x == y,
                (Int(x), Int(y)) => x == y,
                (Long(x), Long(y)) => x == y,
                (Float(x), Float(y)) => x == y,
                (Double(x), Double(y)) => x == y,
                (Str(x), Str(y)) => x == y,
                _ => {
                    return Err(VmError::type_error(format!(
                        "eq on {} and {}",
                        a.kind(),
                        b.kind()
                    )))
                }
            };
            return Ok(if op == CmpOp::Eq { eq } else { !eq });
        }
        _ => {}
    }
    let ord = match (&a, &b) {
        (Int(x), Int(y)) => x.partial_cmp(y),
        (Long(x), Long(y)) => x.partial_cmp(y),
        (Float(x), Float(y)) => x.partial_cmp(y),
        (Double(x), Double(y)) => x.partial_cmp(y),
        (Str(x), Str(y)) => Some(x.cmp(y)),
        _ => {
            return Err(VmError::type_error(format!(
                "ordering on {} and {}",
                a.kind(),
                b.kind()
            )))
        }
    };
    let Some(ord) = ord else {
        return Ok(false); // NaN comparisons are false, as in Java
    };
    Ok(match op {
        CmpOp::Lt => ord.is_lt(),
        CmpOp::Le => ord.is_le(),
        CmpOp::Gt => ord.is_gt(),
        CmpOp::Ge => ord.is_ge(),
        CmpOp::Eq | CmpOp::Ne => unreachable!(),
    })
}

#[cfg(test)]
mod tests;
