//! Runtime values.

use crate::heap::Handle;
use rafda_classmodel::Ty;
use std::fmt;
use std::sync::Arc;

/// A runtime value of the interpreter.
///
/// Strings are immutable and shared; object and array references are heap
/// [`Handle`]s local to one [`Vm`](crate::Vm) (one address space). A handle
/// from one VM is meaningless in another — crossing address spaces requires
/// marshalling (`rafda-wire`), exactly as in the paper.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// The `null` reference.
    Null,
    /// A boolean.
    Bool(bool),
    /// A 32-bit signed integer.
    Int(i32),
    /// A 64-bit signed integer.
    Long(i64),
    /// A 32-bit float.
    Float(f32),
    /// A 64-bit float.
    Double(f64),
    /// An immutable shared string.
    Str(Arc<str>),
    /// Reference to a heap object or array.
    Ref(Handle),
}

impl Value {
    /// The default value for a declared type (JVM zero-values).
    pub fn default_for(ty: &Ty) -> Value {
        match ty {
            Ty::Bool => Value::Bool(false),
            Ty::Int => Value::Int(0),
            Ty::Long => Value::Long(0),
            Ty::Float => Value::Float(0.0),
            Ty::Double => Value::Double(0.0),
            Ty::Str | Ty::Object(_) | Ty::Array(_) | Ty::Void => Value::Null,
        }
    }

    /// Shorthand string constructor.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Truthiness for conditional branches (must be a `Bool`).
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The `Int` payload, if any.
    pub fn as_int(&self) -> Option<i32> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The `Long` payload, if any.
    pub fn as_long(&self) -> Option<i64> {
        match self {
            Value::Long(i) => Some(*i),
            _ => None,
        }
    }

    /// The reference payload, if any.
    pub fn as_ref_handle(&self) -> Option<Handle> {
        match self {
            Value::Ref(h) => Some(*h),
            _ => None,
        }
    }

    /// The string payload, if any.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Whether the value is a reference type (or null).
    pub fn is_reference(&self) -> bool {
        matches!(self, Value::Null | Value::Ref(_))
    }

    /// A short tag for diagnostics.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "boolean",
            Value::Int(_) => "int",
            Value::Long(_) => "long",
            Value::Float(_) => "float",
            Value::Double(_) => "double",
            Value::Str(_) => "String",
            Value::Ref(_) => "ref",
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Long(i) => write!(f, "{i}L"),
            Value::Float(x) => write!(f, "{x}f"),
            Value::Double(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "\"{s}\""),
            Value::Ref(h) => write!(f, "@{h}"),
        }
    }
}

impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v)
    }
}
impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Long(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Double(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rafda_classmodel::ClassId;

    #[test]
    fn defaults_are_jvm_zero_values() {
        assert_eq!(Value::default_for(&Ty::Int), Value::Int(0));
        assert_eq!(Value::default_for(&Ty::Bool), Value::Bool(false));
        assert_eq!(Value::default_for(&Ty::Object(ClassId(3))), Value::Null);
        assert_eq!(Value::default_for(&Ty::Str), Value::Null);
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(3).as_int(), Some(3));
        assert_eq!(Value::Long(3).as_int(), None);
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::str("hi").as_str(), Some("hi"));
        assert!(Value::Null.is_reference());
    }

    #[test]
    fn conversions() {
        assert_eq!(Value::from(3), Value::Int(3));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from("x"), Value::str("x"));
    }
}
