//! # rafda-vm
//!
//! An interpreter for the `rafda-classmodel` mini-bytecode — the JVM
//! stand-in of the RAFDA reproduction.
//!
//! One [`Vm`] instance models one *address space* (one node of the
//! distributed system). The distributed runtime (`rafda-runtime`) creates a
//! `Vm` per simulated node, all sharing the same (transformed)
//! [`ClassUniverse`](rafda_classmodel::ClassUniverse).
//!
//! Design notes:
//!
//! * A `Vm` is a cheap-to-clone handle over interior state, so **native
//!   hooks can re-enter the interpreter** — this is exactly what a RAFDA
//!   proxy method does: its `native` body marshals the call, performs the
//!   simulated RPC, and the receiving node's `Vm` executes the real method,
//!   possibly calling back.
//! * Execution is observable: the built-in `Observer` class records emitted
//!   values into a [`trace::Trace`], which the semantic-equivalence
//!   experiments (paper Section 1: "semantically equivalent applications")
//!   compare across original / transformed-local / distributed runs.
//! * All work is accounted (interpreter steps, allocations, calls), giving a
//!   machine-independent cost metric for the overhead experiments.
//!
//! ## Example
//!
//! ```
//! use rafda_classmodel::{ClassUniverse, sample};
//! use rafda_vm::{Value, Vm};
//!
//! let mut universe = ClassUniverse::new();
//! let ids = sample::build_figure2(&mut universe);
//! let vm = Vm::new(std::sync::Arc::new(universe));
//! // X.p(6) == new Z(Y.K).q(6) == 6 * 7
//! let r = vm.call_static_by_name("X", "p", vec![Value::Int(6)]).unwrap();
//! assert_eq!(r, Value::Int(42));
//! ```

#![warn(missing_docs)]

pub mod error;
pub mod heap;
pub mod native;
pub mod trace;
pub mod value;
#[allow(clippy::module_inception)]
pub mod vm;

pub use error::{NetFailure, NetFailureKind, Trap, VmError};
pub use heap::{Handle, Heap, HeapEntry};
pub use native::{NativeFn, NativeRegistry};
pub use trace::{Trace, TraceEvent};
pub use value::Value;
pub use vm::{ObserverIds, Vm, VmStats};
