use super::*;
use rafda_classmodel::builder::{ClassBuilder, MethodBuilder};
use rafda_classmodel::sample;

fn vm_with(build: impl FnOnce(&mut ClassUniverse)) -> Vm {
    let mut u = ClassUniverse::new();
    build(&mut u);
    rafda_classmodel::verify_universe(&u).expect("test universe verifies");
    Vm::new(Arc::new(u))
}

fn figure2_vm() -> Vm {
    vm_with(|u| {
        sample::build_figure2(u);
    })
}

#[test]
fn figure2_instance_path() {
    // new X(new Y(3)).m(4) == 3 + 4
    let vm = figure2_vm();
    let u = vm.universe().clone();
    let y = u.by_name("Y").unwrap();
    let x = u.by_name("X").unwrap();
    let yobj = vm.new_instance(y, 0, vec![Value::Int(3)]).unwrap();
    let xobj = vm.new_instance(x, 0, vec![yobj]).unwrap();
    let r = vm
        .call_virtual_by_name(xobj, "m", vec![Value::Long(4)])
        .unwrap();
    assert_eq!(r, Value::Int(7));
}

#[test]
fn figure2_static_path_initialises_classes_in_order() {
    // X.p(6) forces X.<clinit>, which reads Y.K (forcing Y.<clinit>) and
    // constructs Z. 6 * 7 = 42.
    let vm = figure2_vm();
    let r = vm
        .call_static_by_name("X", "p", vec![Value::Int(6)])
        .unwrap();
    assert_eq!(r, Value::Int(42));
    // Second call must not re-run <clinit>.
    let allocs_before = vm.stats().heap.objects_allocated;
    let r2 = vm
        .call_static_by_name("X", "p", vec![Value::Int(1)])
        .unwrap();
    assert_eq!(r2, Value::Int(7));
    assert_eq!(vm.stats().heap.objects_allocated, allocs_before);
}

#[test]
fn arithmetic_and_branching() {
    let vm = vm_with(|u| {
        let mut cb = ClassBuilder::declare(u, "Calc", rafda_classmodel::ClassKind::Class);
        // static int abs(int a) { return a < 0 ? -a : a; }
        let mut mb = MethodBuilder::new(1);
        mb.load_local(0).const_int(0).cmp(CmpOp::Lt);
        let neg = mb.label();
        mb.jump_if(neg);
        mb.load_local(0).ret_value();
        mb.bind(neg);
        mb.load_local(0).unop(UnOp::Neg).ret_value();
        cb.static_method(u, "abs", vec![Ty::Int], Ty::Int, Some(mb.finish()));
        cb.finish(u);
    });
    assert_eq!(
        vm.call_static_by_name("Calc", "abs", vec![Value::Int(-5)]),
        Ok(Value::Int(5))
    );
    assert_eq!(
        vm.call_static_by_name("Calc", "abs", vec![Value::Int(11)]),
        Ok(Value::Int(11))
    );
}

#[test]
fn loops_terminate_and_accumulate() {
    let vm = vm_with(|u| {
        let mut cb = ClassBuilder::declare(u, "Loop", rafda_classmodel::ClassKind::Class);
        // static long sum(int n) { long s=0; while(n>0){ s+=n; n--; } return s; }
        let mut mb = MethodBuilder::new(1);
        let s = mb.alloc_local();
        mb.const_long(0).store_local(s);
        let top = mb.label();
        let done = mb.label();
        mb.bind(top);
        mb.load_local(0).const_int(0).cmp(CmpOp::Gt);
        mb.jump_if_not(done);
        mb.load_local(s);
        mb.load_local(0).unop(UnOp::Convert("long"));
        mb.add().store_local(s);
        mb.load_local(0).const_int(1).sub().store_local(0);
        mb.jump(top);
        mb.bind(done);
        mb.load_local(s).ret_value();
        cb.static_method(u, "sum", vec![Ty::Int], Ty::Long, Some(mb.finish()));
        cb.finish(u);
    });
    assert_eq!(
        vm.call_static_by_name("Loop", "sum", vec![Value::Int(100)]),
        Ok(Value::Long(5050))
    );
}

#[test]
fn virtual_dispatch_uses_runtime_class() {
    let vm = vm_with(|u| {
        let a = u.declare("A", rafda_classmodel::ClassKind::Class);
        let b = u.declare("B", rafda_classmodel::ClassKind::Class);
        {
            let mut cb = ClassBuilder::new(u, a);
            let mut mb = MethodBuilder::new(1);
            mb.ret();
            cb.ctor(u, vec![], Some(mb.finish()));
            let mut mb = MethodBuilder::new(1);
            mb.const_int(1).ret_value();
            cb.method(u, "tag", vec![], Ty::Int, Some(mb.finish()));
            cb.finish(u);
        }
        {
            let mut cb = ClassBuilder::new(u, b);
            cb.superclass(a);
            let mut mb = MethodBuilder::new(1);
            mb.ret();
            cb.ctor(u, vec![], Some(mb.finish()));
            let mut mb = MethodBuilder::new(1);
            mb.const_int(2).ret_value();
            cb.method(u, "tag", vec![], Ty::Int, Some(mb.finish()));
            cb.finish(u);
        }
    });
    let u = vm.universe().clone();
    let a = u.by_name("A").unwrap();
    let b = u.by_name("B").unwrap();
    let ao = vm.new_instance(a, 0, vec![]).unwrap();
    let bo = vm.new_instance(b, 0, vec![]).unwrap();
    assert_eq!(
        vm.call_virtual_by_name(ao, "tag", vec![]),
        Ok(Value::Int(1))
    );
    assert_eq!(
        vm.call_virtual_by_name(bo, "tag", vec![]),
        Ok(Value::Int(2))
    );
}

#[test]
fn inherited_method_found_through_superclass() {
    let vm = vm_with(|u| {
        let a = u.declare("A", rafda_classmodel::ClassKind::Class);
        let b = u.declare("B", rafda_classmodel::ClassKind::Class);
        {
            let mut cb = ClassBuilder::new(u, a);
            let mut mb = MethodBuilder::new(1);
            mb.ret();
            cb.ctor(u, vec![], Some(mb.finish()));
            let mut mb = MethodBuilder::new(1);
            mb.const_int(41).const_int(1).add().ret_value();
            cb.method(u, "forty_two", vec![], Ty::Int, Some(mb.finish()));
            cb.finish(u);
        }
        {
            let mut cb = ClassBuilder::new(u, b);
            cb.superclass(a);
            let mut mb = MethodBuilder::new(1);
            mb.ret();
            cb.ctor(u, vec![], Some(mb.finish()));
            cb.finish(u);
        }
    });
    let b = vm.universe().by_name("B").unwrap();
    let bo = vm.new_instance(b, 0, vec![]).unwrap();
    assert_eq!(
        vm.call_virtual_by_name(bo, "forty_two", vec![]),
        Ok(Value::Int(42))
    );
}

#[test]
fn exceptions_unwind_to_matching_handler() {
    let vm = vm_with(|u| {
        let (_t, e) = sample::build_throwables(u);
        let mut cb = ClassBuilder::declare(u, "Try", rafda_classmodel::ClassKind::Class);
        let code_sig = u.sig("code", vec![]);
        // static int f(int x) {
        //   try { if (x > 0) throw new AppError(x); return 0; }
        //   catch (AppError err) { return err.code() + 100; }
        // }
        let mut mb = MethodBuilder::new(1);
        let no_throw = mb.label();
        mb.load_local(0).const_int(0).cmp(CmpOp::Gt); // 0..2
        mb.jump_if_not(no_throw); // 3
        mb.load_local(0); // 4
        mb.new_init(e, 0, 1); // 5
        mb.throw(); // 6
        mb.bind(no_throw);
        mb.const_int(0).ret_value(); // 7,8
        let handler_pc = mb.pc(); // 9
        mb.invoke(code_sig, 0); // handler: [err] -> [code]
        mb.const_int(100).add().ret_value();
        mb.handler(0, handler_pc, handler_pc, Some(e));
        cb.static_method(u, "f", vec![Ty::Int], Ty::Int, Some(mb.finish()));
        cb.finish(u);
    });
    assert_eq!(
        vm.call_static_by_name("Try", "f", vec![Value::Int(0)]),
        Ok(Value::Int(0))
    );
    assert_eq!(
        vm.call_static_by_name("Try", "f", vec![Value::Int(5)]),
        Ok(Value::Int(105))
    );
}

#[test]
fn uncaught_exception_propagates_across_frames() {
    let vm = vm_with(|u| {
        let (_t, e) = sample::build_throwables(u);
        let mut cb = ClassBuilder::declare(u, "Boom", rafda_classmodel::ClassKind::Class);
        let mut mb = MethodBuilder::new(0);
        mb.const_int(9).new_init(e, 0, 1).throw();
        cb.static_method(u, "inner", vec![], Ty::Void, Some(mb.finish()));
        let inner_sig = u.sig("inner", vec![]);
        let me = cb.id();
        let mut mb = MethodBuilder::new(0);
        mb.invoke_static(me, inner_sig, 0).pop().ret();
        cb.static_method(u, "outer", vec![], Ty::Void, Some(mb.finish()));
        cb.finish(u);
    });
    let err = vm.call_static_by_name("Boom", "outer", vec![]).unwrap_err();
    let VmError::Exception(h) = err else {
        panic!("expected exception, got {err:?}");
    };
    let class = vm.class_of(h).unwrap();
    assert_eq!(vm.universe().class(class).name, "AppError");
}

#[test]
fn handler_catch_type_is_respected() {
    // A handler for Throwable catches AppError; a handler for an unrelated
    // class does not.
    let vm = vm_with(|u| {
        let (t, e) = sample::build_throwables(u);
        let other = u.declare("Other", rafda_classmodel::ClassKind::Class);
        {
            let mut cb = ClassBuilder::new(u, other);
            cb.special();
            let mut mb = MethodBuilder::new(1);
            mb.ret();
            cb.ctor(u, vec![], Some(mb.finish()));
            cb.finish(u);
        }
        let mut cb = ClassBuilder::declare(u, "Sel", rafda_classmodel::ClassKind::Class);
        // catches Throwable -> returns 1
        let mut mb = MethodBuilder::new(0);
        mb.const_int(1).new_init(e, 0, 1).throw(); // 0..2
        mb.pop(); // 3 handler
        mb.const_int(1).ret_value();
        mb.handler(0, 3, 3, Some(t));
        cb.static_method(u, "caught", vec![], Ty::Int, Some(mb.finish()));
        // handler for Other -> uncaught
        let mut mb = MethodBuilder::new(0);
        mb.const_int(1).new_init(e, 0, 1).throw();
        mb.pop();
        mb.const_int(1).ret_value();
        mb.handler(0, 3, 3, Some(other));
        cb.static_method(u, "missed", vec![], Ty::Int, Some(mb.finish()));
        cb.finish(u);
    });
    assert_eq!(
        vm.call_static_by_name("Sel", "caught", vec![]),
        Ok(Value::Int(1))
    );
    assert!(matches!(
        vm.call_static_by_name("Sel", "missed", vec![]),
        Err(VmError::Exception(_))
    ));
}

#[test]
fn native_hooks_dispatch_and_reenter() {
    let vm = vm_with(|u| {
        let mut cb = ClassBuilder::declare(u, "Nat", rafda_classmodel::ClassKind::Class);
        let sig = u.sig("twice_of_plain", vec![Ty::Int]);
        cb.add_method(rafda_classmodel::Method {
            name: "twice_of_plain".into(),
            sig,
            params: vec![Ty::Int],
            ret: Ty::Int,
            visibility: Visibility::Public,
            is_static: true,
            is_native: true,
            body: None,
        });
        let mut mb = MethodBuilder::new(1);
        mb.load_local(0).const_int(1).add().ret_value();
        cb.static_method(u, "plain", vec![Ty::Int], Ty::Int, Some(mb.finish()));
        cb.finish(u);
    });
    let u = vm.universe().clone();
    let nat = u.by_name("Nat").unwrap();
    let sig = u.class(nat).methods[0].sig;
    // The hook re-enters the interpreter: twice_of_plain(x) = 2 * plain(x).
    vm.register_native(nat, sig, move |vm, args| {
        let x = args[0].clone();
        let r = vm.call_static_by_name("Nat", "plain", vec![x])?;
        let v = r.as_int().unwrap();
        Ok(Value::Int(v * 2))
    });
    assert_eq!(
        vm.call_static_by_name("Nat", "twice_of_plain", vec![Value::Int(10)]),
        Ok(Value::Int(22))
    );
    assert_eq!(vm.stats().native_calls, 1);
}

#[test]
fn missing_native_hook_is_a_trap() {
    let vm = vm_with(|u| {
        let mut cb = ClassBuilder::declare(u, "Nat", rafda_classmodel::ClassKind::Class);
        cb.native_method(u, "orphan", vec![], Ty::Void);
        let mut mb = MethodBuilder::new(1);
        mb.ret();
        cb.ctor(u, vec![], Some(mb.finish()));
        cb.finish(u);
    });
    let nat = vm.universe().by_name("Nat").unwrap();
    let o = vm.new_instance(nat, 0, vec![]).unwrap();
    let err = vm.call_virtual_by_name(o, "orphan", vec![]).unwrap_err();
    assert!(matches!(err, VmError::Trap(Trap::NoNativeHook(_))));
}

#[test]
fn observer_records_trace() {
    let mut u = ClassUniverse::new();
    let ids = Vm::install_observer(&mut u);
    let mut cb = ClassBuilder::declare(&mut u, "Main", rafda_classmodel::ClassKind::Class);
    let mut mb = MethodBuilder::new(0);
    mb.const_long(7).invoke_static(ids.class, ids.emit, 1).pop();
    mb.const_str("done")
        .invoke_static(ids.class, ids.emit_str, 1)
        .pop();
    mb.ret();
    cb.static_method(&mut u, "main", vec![], Ty::Void, Some(mb.finish()));
    cb.finish(&mut u);
    rafda_classmodel::verify_universe(&u).unwrap();

    let vm = Vm::new(Arc::new(u));
    vm.bind_observer(&ids);
    let trace = vm.run_observed("Main", "main", vec![]);
    assert_eq!(
        trace.events(),
        &[TraceEvent::Emit(7), TraceEvent::EmitStr("done".to_owned())]
    );
}

#[test]
fn fuel_limit_stops_infinite_loop() {
    let vm = vm_with(|u| {
        let mut cb = ClassBuilder::declare(u, "Spin", rafda_classmodel::ClassKind::Class);
        let mut mb = MethodBuilder::new(0);
        let top = mb.label();
        mb.bind(top);
        mb.jump(top);
        cb.static_method(u, "spin", vec![], Ty::Void, Some(mb.finish()));
        cb.finish(u);
    });
    vm.set_fuel(Some(10_000));
    let err = vm.call_static_by_name("Spin", "spin", vec![]).unwrap_err();
    assert_eq!(err, VmError::Trap(Trap::OutOfFuel));
}

#[test]
fn depth_limit_stops_unbounded_recursion() {
    let vm = vm_with(|u| {
        let mut cb = ClassBuilder::declare(u, "Rec", rafda_classmodel::ClassKind::Class);
        let sig = u.sig("r", vec![]);
        let me = cb.id();
        let mut mb = MethodBuilder::new(0);
        mb.invoke_static(me, sig, 0).pop().ret();
        cb.static_method(u, "r", vec![], Ty::Void, Some(mb.finish()));
        cb.finish(u);
    });
    vm.set_max_depth(64);
    let err = vm.call_static_by_name("Rec", "r", vec![]).unwrap_err();
    assert_eq!(err, VmError::Trap(Trap::StackOverflow));
}

#[test]
fn arrays_allocate_index_and_bound_check() {
    let vm = vm_with(|u| {
        let mut cb = ClassBuilder::declare(u, "Arr", rafda_classmodel::ClassKind::Class);
        // static int get(int n, int i) { int[] a = new int[n]; a[0]=5; return a[i] + a.length; }
        let mut mb = MethodBuilder::new(2);
        let a = mb.alloc_local();
        mb.load_local(0).new_array(Ty::Int).store_local(a);
        mb.load_local(a).const_int(0).const_int(5).array_set();
        mb.load_local(a).load_local(1).array_get();
        mb.load_local(a).array_len();
        mb.add().ret_value();
        cb.static_method(u, "get", vec![Ty::Int, Ty::Int], Ty::Int, Some(mb.finish()));
        cb.finish(u);
    });
    assert_eq!(
        vm.call_static_by_name("Arr", "get", vec![Value::Int(3), Value::Int(0)]),
        Ok(Value::Int(8))
    );
    assert_eq!(
        vm.call_static_by_name("Arr", "get", vec![Value::Int(3), Value::Int(1)]),
        Ok(Value::Int(3))
    );
    let err = vm
        .call_static_by_name("Arr", "get", vec![Value::Int(3), Value::Int(7)])
        .unwrap_err();
    assert!(matches!(
        err,
        VmError::Trap(Trap::IndexOutOfBounds { index: 7, len: 3 })
    ));
}

#[test]
fn division_by_zero_and_null_deref_trap() {
    let vm = figure2_vm();
    let x = vm.universe().by_name("X").unwrap();
    // new X(null).m(1) -> null deref on y.n(j)
    let xo = vm.new_instance(x, 0, vec![Value::Null]).unwrap();
    let err = vm
        .call_virtual_by_name(xo, "m", vec![Value::Long(1)])
        .unwrap_err();
    assert_eq!(err, VmError::Trap(Trap::NullDeref));

    assert_eq!(
        bin_op(BinOp::Div, Value::Int(1), Value::Int(0)),
        Err(VmError::Trap(Trap::DivByZero))
    );
    assert_eq!(
        bin_op(BinOp::Rem, Value::Long(1), Value::Long(0)),
        Err(VmError::Trap(Trap::DivByZero))
    );
}

#[test]
fn instanceof_and_checkcast() {
    let vm = vm_with(|u| {
        sample::build_throwables(u);
    });
    let u = vm.universe().clone();
    let t = u.by_name("Throwable").unwrap();
    let e = u.by_name("AppError").unwrap();
    let eo = vm.new_instance(e, 0, vec![Value::Int(1)]).unwrap();
    let h = eo.as_ref_handle().unwrap();
    // Drive instanceof/checkcast through the step interface indirectly:
    assert!(u.is_subtype(vm.class_of(h).unwrap(), t));
    // CheckCast failure surfaces as ClassCast: cast a Throwable-only object
    // to AppError.
    let to = vm.new_instance(t, 0, vec![]).unwrap();
    let th = to.as_ref_handle().unwrap();
    assert!(!u.is_subtype(vm.class_of(th).unwrap(), e));
}

#[test]
fn in_place_swap_changes_dispatch_for_existing_references() {
    // The core RAFDA primitive: replace a live object with another
    // implementation; an existing reference now dispatches differently.
    let vm = vm_with(|u| {
        let iface = u.declare("I", rafda_classmodel::ClassKind::Interface);
        let sig = u.sig("v", vec![]);
        u.class_mut(iface).methods.push(rafda_classmodel::Method {
            name: "v".into(),
            sig,
            params: vec![],
            ret: Ty::Int,
            visibility: Visibility::Public,
            is_static: false,
            is_native: false,
            body: None,
        });
        for (name, k) in [("Impl1", 1), ("Impl2", 2)] {
            let id = u.declare(name, rafda_classmodel::ClassKind::Class);
            let mut cb = ClassBuilder::new(u, id);
            cb.implements(iface);
            let mut mb = MethodBuilder::new(1);
            mb.ret();
            cb.ctor(u, vec![], Some(mb.finish()));
            let mut mb = MethodBuilder::new(1);
            mb.const_int(k).ret_value();
            cb.method(u, "v", vec![], Ty::Int, Some(mb.finish()));
            cb.finish(u);
        }
    });
    let u = vm.universe().clone();
    let i1 = u.by_name("Impl1").unwrap();
    let i2 = u.by_name("Impl2").unwrap();
    let obj = vm.new_instance(i1, 0, vec![]).unwrap();
    let h = obj.as_ref_handle().unwrap();
    assert_eq!(
        vm.call_virtual_by_name(obj.clone(), "v", vec![]),
        Ok(Value::Int(1))
    );
    assert!(vm.replace_object(h, i2, vec![]));
    assert_eq!(vm.call_virtual_by_name(obj, "v", vec![]), Ok(Value::Int(2)));
    assert_eq!(vm.stats().heap.replacements, 1);
}

#[test]
fn string_concat_and_comparison() {
    assert_eq!(
        bin_op(BinOp::Add, Value::str("foo"), Value::str("bar")),
        Ok(Value::str("foobar"))
    );
    assert_eq!(
        cmp_op(CmpOp::Lt, Value::str("a"), Value::str("b")),
        Ok(true)
    );
    assert_eq!(
        cmp_op(CmpOp::Eq, Value::str("a"), Value::str("a")),
        Ok(true)
    );
}

#[test]
fn conversions_cover_numeric_lattice() {
    assert_eq!(convert("long", Value::Int(-3)), Ok(Value::Long(-3)));
    assert_eq!(convert("int", Value::Long(1 << 40)), Ok(Value::Int(0)));
    assert_eq!(convert("double", Value::Int(2)), Ok(Value::Double(2.0)));
    assert_eq!(convert("int", Value::Double(3.9)), Ok(Value::Int(3)));
    assert!(convert("int", Value::str("x")).is_err());
}

#[test]
fn stats_count_steps_and_calls() {
    let vm = figure2_vm();
    vm.reset_stats();
    let _ = vm.call_static_by_name("X", "p", vec![Value::Int(6)]);
    let s = vm.stats();
    assert!(s.steps > 5, "steps = {}", s.steps);
    assert!(s.calls >= 3, "calls = {}", s.calls); // p, clinits, q…
}

#[test]
fn nan_ordering_is_false_like_java() {
    assert_eq!(
        cmp_op(CmpOp::Lt, Value::Double(f64::NAN), Value::Double(1.0)),
        Ok(false)
    );
    assert_eq!(
        cmp_op(CmpOp::Ge, Value::Double(f64::NAN), Value::Double(1.0)),
        Ok(false)
    );
}

#[test]
fn get_set_static_field_api() {
    let vm = figure2_vm();
    let y = vm.universe().by_name("Y").unwrap();
    assert_eq!(vm.get_static_field(y, 0), Ok(Value::Int(7)));
    vm.set_static_field(y, 0, Value::Int(9)).unwrap();
    assert_eq!(vm.get_static_field(y, 0), Ok(Value::Int(9)));
}
