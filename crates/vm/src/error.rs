//! Interpreter errors: in-model exceptions, traps and resource limits.

use crate::heap::Handle;
use std::fmt;

/// A trap: a condition the verified program can still hit at runtime.
/// Traps are not catchable by in-model handlers (unlike [`VmError::Exception`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Trap {
    /// Dereference of `null` (field access, call, array op).
    NullDeref,
    /// Integer division or remainder by zero.
    DivByZero,
    /// Array index out of bounds.
    IndexOutOfBounds {
        /// The offending index.
        index: i64,
        /// The array's length.
        len: usize,
    },
    /// Negative array length.
    NegativeArrayLen,
    /// `CheckCast` failure.
    ClassCast,
    /// Operand of the wrong kind for the instruction.
    TypeError(String),
    /// Virtual dispatch found no method (e.g. abstract without override).
    UnresolvedMethod(String),
    /// A `native` method had no registered hook.
    NoNativeHook(String),
    /// Call depth exceeded the configured maximum.
    StackOverflow,
    /// The step budget was exhausted.
    OutOfFuel,
    /// A stale or freed heap handle was used.
    StaleHandle,
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Trap::NullDeref => write!(f, "null dereference"),
            Trap::DivByZero => write!(f, "division by zero"),
            Trap::IndexOutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds for length {len}")
            }
            Trap::NegativeArrayLen => write!(f, "negative array length"),
            Trap::ClassCast => write!(f, "class cast failure"),
            Trap::TypeError(m) => write!(f, "type error: {m}"),
            Trap::UnresolvedMethod(m) => write!(f, "unresolved method: {m}"),
            Trap::NoNativeHook(m) => write!(f, "no native hook registered for {m}"),
            Trap::StackOverflow => write!(f, "call depth limit exceeded"),
            Trap::OutOfFuel => write!(f, "interpreter fuel exhausted"),
            Trap::StaleHandle => write!(f, "stale heap handle"),
        }
    }
}

/// Any reason execution did not produce a value.
#[derive(Debug, Clone, PartialEq)]
pub enum VmError {
    /// An in-model exception object was thrown and not caught (catchable by
    /// `TryHandler`s during unwinding).
    Exception(Handle),
    /// An uncatchable trap.
    Trap(Trap),
    /// Failure reported by a native hook (e.g. a simulated network failure
    /// surfacing through a proxy — the paper's "modulo network failure").
    Native(String),
}

impl VmError {
    /// Shorthand for a [`Trap::TypeError`].
    pub fn type_error(msg: impl Into<String>) -> Self {
        VmError::Trap(Trap::TypeError(msg.into()))
    }

    /// Whether this error is a network failure surfaced by a proxy hook.
    pub fn is_network(&self) -> bool {
        matches!(self, VmError::Native(m) if m.contains("network"))
    }
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::Exception(h) => write!(f, "uncaught exception @{h}"),
            VmError::Trap(t) => write!(f, "trap: {t}"),
            VmError::Native(m) => write!(f, "native error: {m}"),
        }
    }
}

impl std::error::Error for VmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert_eq!(VmError::Trap(Trap::DivByZero).to_string(), "trap: division by zero");
        assert!(VmError::type_error("int vs long").to_string().contains("int vs long"));
        let t = Trap::IndexOutOfBounds { index: 5, len: 3 };
        assert!(t.to_string().contains("5"));
        assert!(t.to_string().contains("3"));
    }

    #[test]
    fn network_detection() {
        assert!(VmError::Native("network: partition".into()).is_network());
        assert!(!VmError::Native("marshal failure".into()).is_network());
        assert!(!VmError::Trap(Trap::NullDeref).is_network());
    }
}
