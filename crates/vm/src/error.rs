//! Interpreter errors: in-model exceptions, traps and resource limits.

use crate::heap::Handle;
use std::fmt;

/// A trap: a condition the verified program can still hit at runtime.
/// Traps are not catchable by in-model handlers (unlike [`VmError::Exception`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Trap {
    /// Dereference of `null` (field access, call, array op).
    NullDeref,
    /// Integer division or remainder by zero.
    DivByZero,
    /// Array index out of bounds.
    IndexOutOfBounds {
        /// The offending index.
        index: i64,
        /// The array's length.
        len: usize,
    },
    /// Negative array length.
    NegativeArrayLen,
    /// `CheckCast` failure.
    ClassCast,
    /// Operand of the wrong kind for the instruction.
    TypeError(String),
    /// Virtual dispatch found no method (e.g. abstract without override).
    UnresolvedMethod(String),
    /// A `native` method had no registered hook.
    NoNativeHook(String),
    /// Call depth exceeded the configured maximum.
    StackOverflow,
    /// The step budget was exhausted.
    OutOfFuel,
    /// A stale or freed heap handle was used.
    StaleHandle,
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Trap::NullDeref => write!(f, "null dereference"),
            Trap::DivByZero => write!(f, "division by zero"),
            Trap::IndexOutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds for length {len}")
            }
            Trap::NegativeArrayLen => write!(f, "negative array length"),
            Trap::ClassCast => write!(f, "class cast failure"),
            Trap::TypeError(m) => write!(f, "type error: {m}"),
            Trap::UnresolvedMethod(m) => write!(f, "unresolved method: {m}"),
            Trap::NoNativeHook(m) => write!(f, "no native hook registered for {m}"),
            Trap::StackOverflow => write!(f, "call depth limit exceeded"),
            Trap::OutOfFuel => write!(f, "interpreter fuel exhausted"),
            Trap::StaleHandle => write!(f, "stale heap handle"),
        }
    }
}

/// The typed cause of a network-level failure.
///
/// Mirrors `rafda_net::NetError` without a crate dependency — the VM stays
/// network-agnostic, but proxy hooks need a structured way to surface
/// transport faults so retry logic and tests can tell a lost message from a
/// severed link from a dead node without parsing strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NetFailureKind {
    /// The message was dropped in transit.
    Dropped,
    /// The two nodes are in different partitions.
    Partitioned {
        /// Transmitting node id.
        from: u32,
        /// Unreachable destination node id.
        to: u32,
    },
    /// An endpoint node has crashed.
    NodeCrashed(u32),
    /// Unknown node id.
    NoSuchNode(u32),
}

impl NetFailureKind {
    /// Whether retransmitting the same message could plausibly succeed.
    /// Drops are transient; partitions, crashes and bad addresses are not
    /// (they persist until an operator-level event heals them).
    pub fn is_transient(&self) -> bool {
        matches!(self, NetFailureKind::Dropped)
    }
}

impl fmt::Display for NetFailureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetFailureKind::Dropped => write!(f, "network: message dropped"),
            NetFailureKind::Partitioned { from, to } => {
                write!(f, "network: partition between node{from} and node{to}")
            }
            NetFailureKind::NodeCrashed(n) => write!(f, "network: node{n} crashed"),
            NetFailureKind::NoSuchNode(n) => write!(f, "network: no such node node{n}"),
        }
    }
}

/// A network-level failure that exhausted the caller's fault tolerance:
/// what went wrong and how many transmission attempts were made.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetFailure {
    /// The final failure observed.
    pub kind: NetFailureKind,
    /// Total attempts made before giving up (≥ 1).
    pub attempts: u32,
}

impl NetFailure {
    /// A failure observed on the given attempt count.
    pub fn new(kind: NetFailureKind, attempts: u32) -> Self {
        NetFailure { kind, attempts }
    }
}

impl fmt::Display for NetFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.attempts > 1 {
            write!(f, "{} (after {} attempts)", self.kind, self.attempts)
        } else {
            write!(f, "{}", self.kind)
        }
    }
}

/// Any reason execution did not produce a value.
#[derive(Debug, Clone, PartialEq)]
pub enum VmError {
    /// An in-model exception object was thrown and not caught (catchable by
    /// `TryHandler`s during unwinding).
    Exception(Handle),
    /// An uncatchable trap.
    Trap(Trap),
    /// Failure reported by a native hook (anything without a dedicated
    /// variant, e.g. a marshalling fault).
    Native(String),
    /// A remote operation failed at the network level after exhausting the
    /// configured retries — the paper's "modulo network failure" surfaced
    /// with its discriminant intact.
    Unreachable(NetFailure),
}

impl VmError {
    /// Shorthand for a [`Trap::TypeError`].
    pub fn type_error(msg: impl Into<String>) -> Self {
        VmError::Trap(Trap::TypeError(msg.into()))
    }

    /// Whether this error is a network failure surfaced by a proxy hook.
    ///
    /// `Native` strings are still inspected because a network failure that
    /// crosses a remote hop comes back as a fault message (the serving node
    /// could not complete a nested remote call).
    pub fn is_network(&self) -> bool {
        match self {
            VmError::Unreachable(_) => true,
            VmError::Native(m) => m.contains("network"),
            _ => false,
        }
    }

    /// The structured network failure, if this is one.
    pub fn net_failure(&self) -> Option<&NetFailure> {
        match self {
            VmError::Unreachable(nf) => Some(nf),
            _ => None,
        }
    }
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::Exception(h) => write!(f, "uncaught exception @{h}"),
            VmError::Trap(t) => write!(f, "trap: {t}"),
            VmError::Native(m) => write!(f, "native error: {m}"),
            VmError::Unreachable(nf) => write!(f, "{nf}"),
        }
    }
}

impl std::error::Error for VmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert_eq!(
            VmError::Trap(Trap::DivByZero).to_string(),
            "trap: division by zero"
        );
        assert!(VmError::type_error("int vs long")
            .to_string()
            .contains("int vs long"));
        let t = Trap::IndexOutOfBounds { index: 5, len: 3 };
        assert!(t.to_string().contains("5"));
        assert!(t.to_string().contains("3"));
    }

    #[test]
    fn network_detection() {
        assert!(VmError::Native("network: partition".into()).is_network());
        assert!(!VmError::Native("marshal failure".into()).is_network());
        assert!(!VmError::Trap(Trap::NullDeref).is_network());
        assert!(VmError::Unreachable(NetFailure::new(NetFailureKind::Dropped, 3)).is_network());
    }

    #[test]
    fn net_failure_display_keeps_legacy_substrings() {
        // Trace comparisons and older tests match on these fragments.
        let dropped = NetFailure::new(NetFailureKind::Dropped, 1);
        assert_eq!(dropped.to_string(), "network: message dropped");
        let crashed = NetFailure::new(NetFailureKind::NodeCrashed(2), 1);
        assert!(crashed.to_string().contains("crashed"));
        assert!(crashed.to_string().contains("network:"));
        let parted = NetFailure::new(NetFailureKind::Partitioned { from: 0, to: 1 }, 4);
        assert!(parted
            .to_string()
            .contains("partition between node0 and node1"));
        assert!(parted.to_string().contains("after 4 attempts"));
    }

    #[test]
    fn transient_kinds() {
        assert!(NetFailureKind::Dropped.is_transient());
        assert!(!NetFailureKind::Partitioned { from: 0, to: 1 }.is_transient());
        assert!(!NetFailureKind::NodeCrashed(1).is_transient());
        assert!(!NetFailureKind::NoSuchNode(9).is_transient());
    }
}
