//! The per-address-space heap: objects, arrays, generational handles.
//!
//! The heap supports one operation a conventional VM does not:
//! [`Heap::replace_object`], which rewrites a live object's class and fields
//! *in place*. This is the mechanism behind RAFDA's dynamic distribution
//! boundaries — when an object migrates to another node, the local instance
//! is rewritten into a proxy (`Cp` in the paper's Figure 1) without touching
//! any of the references that point at it, and vice versa when an object is
//! pulled back local.

use crate::value::Value;
use rafda_classmodel::{ClassId, Ty};
use std::fmt;

/// A generational heap handle. Using a generation counter means stale
/// handles to freed slots are detected instead of silently reading reused
/// memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Handle {
    pub(crate) index: u32,
    pub(crate) generation: u32,
}

impl fmt::Display for Handle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}.{}", self.index, self.generation)
    }
}

/// What a heap slot holds.
#[derive(Debug, Clone, PartialEq)]
pub enum HeapEntry {
    /// An object: its runtime class and flattened field slots
    /// (root-superclass fields first).
    Object {
        /// The object's runtime class.
        class: ClassId,
        /// Flattened field slots (inherited fields first).
        fields: Vec<Value>,
    },
    /// An array with a fixed element type.
    Array {
        /// Element type (used for default values at allocation).
        elem: Ty,
        /// The elements.
        data: Vec<Value>,
    },
}

#[derive(Debug)]
struct Slot {
    generation: u32,
    entry: Option<HeapEntry>,
}

/// Statistics kept by the heap.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct HeapStats {
    /// Total objects ever allocated.
    pub objects_allocated: u64,
    /// Total arrays ever allocated.
    pub arrays_allocated: u64,
    /// Live entries right now.
    pub live: u64,
    /// In-place object replacements (boundary swaps).
    pub replacements: u64,
}

/// A growable heap of objects and arrays addressed by [`Handle`].
#[derive(Debug, Default)]
pub struct Heap {
    slots: Vec<Slot>,
    free: Vec<u32>,
    stats: HeapStats,
}

impl Heap {
    /// Create an empty heap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current statistics.
    pub fn stats(&self) -> HeapStats {
        self.stats
    }

    fn insert(&mut self, entry: HeapEntry) -> Handle {
        self.stats.live += 1;
        match entry {
            HeapEntry::Object { .. } => self.stats.objects_allocated += 1,
            HeapEntry::Array { .. } => self.stats.arrays_allocated += 1,
        }
        if let Some(index) = self.free.pop() {
            let slot = &mut self.slots[index as usize];
            slot.entry = Some(entry);
            Handle {
                index,
                generation: slot.generation,
            }
        } else {
            self.slots.push(Slot {
                generation: 0,
                entry: Some(entry),
            });
            Handle {
                index: (self.slots.len() - 1) as u32,
                generation: 0,
            }
        }
    }

    /// Allocate an object of `class` with the given (already flattened)
    /// field slots.
    pub fn alloc_object(&mut self, class: ClassId, fields: Vec<Value>) -> Handle {
        self.insert(HeapEntry::Object { class, fields })
    }

    /// Allocate an array.
    pub fn alloc_array(&mut self, elem: Ty, data: Vec<Value>) -> Handle {
        self.insert(HeapEntry::Array { elem, data })
    }

    fn slot(&self, h: Handle) -> Option<&Slot> {
        self.slots
            .get(h.index as usize)
            .filter(|s| s.generation == h.generation)
    }

    fn slot_mut(&mut self, h: Handle) -> Option<&mut Slot> {
        self.slots
            .get_mut(h.index as usize)
            .filter(|s| s.generation == h.generation)
    }

    /// Access an entry; `None` for stale or freed handles.
    pub fn get(&self, h: Handle) -> Option<&HeapEntry> {
        self.slot(h).and_then(|s| s.entry.as_ref())
    }

    /// Mutable access to an entry.
    pub fn get_mut(&mut self, h: Handle) -> Option<&mut HeapEntry> {
        self.slot_mut(h).and_then(|s| s.entry.as_mut())
    }

    /// The runtime class of the object at `h`, if it is a live object.
    pub fn class_of(&self, h: Handle) -> Option<ClassId> {
        match self.get(h) {
            Some(HeapEntry::Object { class, .. }) => Some(*class),
            _ => None,
        }
    }

    /// Read field slot `offset` of the object at `h`.
    pub fn field(&self, h: Handle, offset: usize) -> Option<&Value> {
        match self.get(h) {
            Some(HeapEntry::Object { fields, .. }) => fields.get(offset),
            _ => None,
        }
    }

    /// Write field slot `offset` of the object at `h`. Returns `false` for
    /// stale handles or out-of-range offsets.
    pub fn set_field(&mut self, h: Handle, offset: usize, value: Value) -> bool {
        match self.get_mut(h) {
            Some(HeapEntry::Object { fields, .. }) if offset < fields.len() => {
                fields[offset] = value;
                true
            }
            _ => false,
        }
    }

    /// Rewrite a live object **in place**: change its class and fields while
    /// keeping its handle valid. All existing references now see the new
    /// implementation — this is the local↔proxy swap of the paper's
    /// Figure 1.
    ///
    /// Returns the previous entry, or `None` (no change) if the handle is
    /// stale or not an object.
    pub fn replace_object(
        &mut self,
        h: Handle,
        class: ClassId,
        fields: Vec<Value>,
    ) -> Option<HeapEntry> {
        match self.get_mut(h) {
            Some(entry @ HeapEntry::Object { .. }) => {
                let old = std::mem::replace(entry, HeapEntry::Object { class, fields });
                self.stats.replacements += 1;
                Some(old)
            }
            _ => None,
        }
    }

    /// Free an entry, invalidating all handles to it.
    pub fn free(&mut self, h: Handle) -> bool {
        match self.slot_mut(h) {
            Some(slot) if slot.entry.is_some() => {
                slot.entry = None;
                slot.generation += 1;
                self.free.push(h.index);
                self.stats.live -= 1;
                true
            }
            _ => false,
        }
    }

    /// Number of live entries.
    pub fn live(&self) -> usize {
        self.stats.live as usize
    }

    /// Free every live entry whose index is not in `keep` (the mark set of
    /// a mark-and-sweep collection). Returns the number of entries freed.
    pub fn sweep(&mut self, keep: &std::collections::HashSet<u32>) -> usize {
        let mut freed = 0;
        let doomed: Vec<Handle> = self
            .handles()
            .filter(|h| !keep.contains(&h.index))
            .collect();
        for h in doomed {
            if self.free(h) {
                freed += 1;
            }
        }
        freed
    }

    /// Iterate over all live handles.
    pub fn handles(&self) -> impl Iterator<Item = Handle> + '_ {
        self.slots.iter().enumerate().filter_map(|(i, s)| {
            s.entry.as_ref().map(|_| Handle {
                index: i as u32,
                generation: s.generation,
            })
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_and_read() {
        let mut heap = Heap::new();
        let h = heap.alloc_object(ClassId(1), vec![Value::Int(5)]);
        assert_eq!(heap.class_of(h), Some(ClassId(1)));
        assert_eq!(heap.field(h, 0), Some(&Value::Int(5)));
        assert_eq!(heap.field(h, 1), None);
        assert_eq!(heap.live(), 1);
    }

    #[test]
    fn set_field_bounds_checked() {
        let mut heap = Heap::new();
        let h = heap.alloc_object(ClassId(1), vec![Value::Null]);
        assert!(heap.set_field(h, 0, Value::Int(9)));
        assert!(!heap.set_field(h, 3, Value::Int(9)));
        assert_eq!(heap.field(h, 0), Some(&Value::Int(9)));
    }

    #[test]
    fn stale_handles_detected_after_free() {
        let mut heap = Heap::new();
        let h = heap.alloc_object(ClassId(1), vec![]);
        assert!(heap.free(h));
        assert!(heap.get(h).is_none());
        assert!(!heap.free(h));
        // Slot reuse gets a new generation.
        let h2 = heap.alloc_object(ClassId(2), vec![]);
        assert_eq!(h2.index, h.index);
        assert_ne!(h2.generation, h.generation);
        assert!(heap.get(h).is_none());
        assert!(heap.get(h2).is_some());
    }

    #[test]
    fn replace_object_keeps_handle_and_counts() {
        let mut heap = Heap::new();
        let h = heap.alloc_object(ClassId(1), vec![Value::Int(1)]);
        let old = heap.replace_object(h, ClassId(9), vec![Value::Long(7), Value::Null]);
        assert_eq!(
            old,
            Some(HeapEntry::Object {
                class: ClassId(1),
                fields: vec![Value::Int(1)]
            })
        );
        assert_eq!(heap.class_of(h), Some(ClassId(9)));
        assert_eq!(heap.field(h, 0), Some(&Value::Long(7)));
        assert_eq!(heap.stats().replacements, 1);
    }

    #[test]
    fn replace_rejects_arrays_and_stale() {
        let mut heap = Heap::new();
        let a = heap.alloc_array(Ty::Int, vec![Value::Int(1)]);
        assert!(heap.replace_object(a, ClassId(1), vec![]).is_none());
        let h = heap.alloc_object(ClassId(1), vec![]);
        heap.free(h);
        assert!(heap.replace_object(h, ClassId(1), vec![]).is_none());
    }

    #[test]
    fn stats_track_allocations() {
        let mut heap = Heap::new();
        heap.alloc_object(ClassId(0), vec![]);
        heap.alloc_array(Ty::Int, vec![]);
        let h = heap.alloc_object(ClassId(0), vec![]);
        heap.free(h);
        let s = heap.stats();
        assert_eq!(s.objects_allocated, 2);
        assert_eq!(s.arrays_allocated, 1);
        assert_eq!(s.live, 2);
        assert_eq!(heap.handles().count(), 2);
    }
}
