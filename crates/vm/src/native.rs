//! Native-method hooks.
//!
//! `native` methods in the class model have no bytecode body; when the
//! interpreter reaches one it looks up a Rust closure registered for the
//! *(declaring class, signature)* pair. The distributed runtime implements
//! proxy methods this way: a proxy class's methods are all `native`, and the
//! registered hook marshals the call over the simulated network.
//!
//! Hooks receive the calling [`Vm`] handle and may re-enter the
//! interpreter (e.g. a remote callback executing locally).

use crate::error::VmError;
use crate::value::Value;
use crate::vm::Vm;
use rafda_classmodel::{ClassId, SigId};
use std::collections::HashMap;
use std::rc::Rc;

/// A native-method implementation. For instance methods `args[0]` is the
/// receiver; for static methods `args` are just the parameters.
pub type NativeFn = Rc<dyn Fn(&Vm, &[Value]) -> Result<Value, VmError>>;

/// Registry of native hooks, keyed by declaring class and method signature.
#[derive(Default)]
pub struct NativeRegistry {
    hooks: HashMap<(ClassId, SigId), NativeFn>,
}

impl std::fmt::Debug for NativeRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NativeRegistry")
            .field("hooks", &self.hooks.len())
            .finish()
    }
}

impl NativeRegistry {
    /// Create an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or replace) the hook for `(class, sig)`.
    pub fn register(
        &mut self,
        class: ClassId,
        sig: SigId,
        hook: impl Fn(&Vm, &[Value]) -> Result<Value, VmError> + 'static,
    ) {
        self.hooks.insert((class, sig), Rc::new(hook));
    }

    /// Look up the hook for `(class, sig)`.
    pub fn get(&self, class: ClassId, sig: SigId) -> Option<NativeFn> {
        self.hooks.get(&(class, sig)).cloned()
    }

    /// Number of registered hooks.
    pub fn len(&self) -> usize {
        self.hooks.len()
    }

    /// Whether no hooks are registered.
    pub fn is_empty(&self) -> bool {
        self.hooks.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let mut reg = NativeRegistry::new();
        assert!(reg.is_empty());
        reg.register(ClassId(1), SigId(2), |_vm, _args| Ok(Value::Int(1)));
        assert_eq!(reg.len(), 1);
        assert!(reg.get(ClassId(1), SigId(2)).is_some());
        assert!(reg.get(ClassId(1), SigId(3)).is_none());
        assert!(reg.get(ClassId(2), SigId(2)).is_none());
    }

    #[test]
    fn replace_overwrites() {
        let mut reg = NativeRegistry::new();
        reg.register(ClassId(1), SigId(2), |_, _| Ok(Value::Int(1)));
        reg.register(ClassId(1), SigId(2), |_, _| Ok(Value::Int(2)));
        assert_eq!(reg.len(), 1);
    }
}
