//! Observable execution traces.
//!
//! The paper's correctness criterion is that the transformed application is
//! *semantically equivalent* to the original, "modulo network failure"
//! (Sections 1 and 4). We make that checkable: programs report observable
//! behaviour through the built-in `Observer` class (installed by
//! [`Vm::install_observer`](crate::Vm::install_observer)), and two runs are
//! equivalent iff their traces are equal.
//!
//! Trace events record only *location-independent* data (numbers, strings) —
//! never heap handles — so the traces of a single-address-space run and a
//! distributed run are directly comparable.

use std::fmt;

/// One observable event.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// `Observer.emit(long)`.
    Emit(i64),
    /// `Observer.emit_str(String)`.
    EmitStr(String),
    /// `Observer.emit_double(double)` (bit-exact comparison).
    EmitDouble(u64),
    /// An uncaught in-model exception terminated the run; records the
    /// exception's class name.
    UncaughtException(String),
    /// A network failure surfaced during the run (allowed to differ from the
    /// original program — the "modulo network failure" clause).
    NetworkFailure(String),
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::Emit(v) => write!(f, "emit {v}"),
            TraceEvent::EmitStr(s) => write!(f, "emit \"{s}\""),
            TraceEvent::EmitDouble(b) => write!(f, "emit 0x{b:016x}"),
            TraceEvent::UncaughtException(c) => write!(f, "uncaught {c}"),
            TraceEvent::NetworkFailure(m) => write!(f, "network failure: {m}"),
        }
    }
}

/// An ordered list of observable events.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    events: Vec<TraceEvent>,
}

impl Trace {
    /// Create an empty trace.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append an event.
    pub fn push(&mut self, event: TraceEvent) {
        self.events.push(event);
    }

    /// The recorded events.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether nothing was observed.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Clear all events.
    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// Equivalence *modulo network failure*: traces must agree on the prefix
    /// before the first [`TraceEvent::NetworkFailure`] in either trace; a
    /// trace that fails by network error is allowed to be a prefix of a
    /// longer successful one.
    pub fn equivalent_modulo_network(&self, other: &Trace) -> bool {
        let cut = |t: &Trace| {
            t.events
                .iter()
                .position(|e| matches!(e, TraceEvent::NetworkFailure(_)))
                .unwrap_or(t.events.len())
        };
        let a_cut = cut(self);
        let b_cut = cut(other);
        let n = a_cut.min(b_cut);
        if self.events[..n] != other.events[..n] {
            return false;
        }
        // The longer prefix is only acceptable if the shorter one stopped
        // because of a network failure.
        if a_cut != b_cut {
            let shorter_failed = if a_cut < b_cut {
                a_cut < self.events.len()
            } else {
                b_cut < other.events.len()
            };
            return shorter_failed;
        }
        true
    }
}

impl fmt::Display for Trace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for e in &self.events {
            writeln!(f, "{e}")?;
        }
        Ok(())
    }
}

impl FromIterator<TraceEvent> for Trace {
    fn from_iter<I: IntoIterator<Item = TraceEvent>>(iter: I) -> Self {
        Trace {
            events: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(events: &[TraceEvent]) -> Trace {
        events.iter().cloned().collect()
    }

    #[test]
    fn equal_traces_are_equivalent() {
        let a = t(&[TraceEvent::Emit(1), TraceEvent::EmitStr("x".into())]);
        let b = a.clone();
        assert!(a.equivalent_modulo_network(&b));
        assert_eq!(a, b);
    }

    #[test]
    fn different_values_are_not_equivalent() {
        let a = t(&[TraceEvent::Emit(1)]);
        let b = t(&[TraceEvent::Emit(2)]);
        assert!(!a.equivalent_modulo_network(&b));
    }

    #[test]
    fn network_failure_allows_prefix() {
        let ok = t(&[
            TraceEvent::Emit(1),
            TraceEvent::Emit(2),
            TraceEvent::Emit(3),
        ]);
        let failed = t(&[
            TraceEvent::Emit(1),
            TraceEvent::NetworkFailure("partition".into()),
        ]);
        assert!(ok.equivalent_modulo_network(&failed));
        assert!(failed.equivalent_modulo_network(&ok));
    }

    #[test]
    fn diverging_prefix_before_failure_is_rejected() {
        let ok = t(&[TraceEvent::Emit(1), TraceEvent::Emit(2)]);
        let failed = t(&[
            TraceEvent::Emit(9),
            TraceEvent::NetworkFailure("partition".into()),
        ]);
        assert!(!ok.equivalent_modulo_network(&failed));
    }

    #[test]
    fn truncation_without_failure_is_rejected() {
        let a = t(&[TraceEvent::Emit(1), TraceEvent::Emit(2)]);
        let b = t(&[TraceEvent::Emit(1)]);
        assert!(!a.equivalent_modulo_network(&b));
        assert!(!b.equivalent_modulo_network(&a));
    }

    #[test]
    fn uncaught_exception_is_observable() {
        let a = t(&[
            TraceEvent::Emit(1),
            TraceEvent::UncaughtException("AppError".into()),
        ]);
        let b = t(&[TraceEvent::Emit(1)]);
        assert!(!a.equivalent_modulo_network(&b));
    }

    #[test]
    fn display_golden_for_every_variant() {
        // Golden strings: equivalence failures and logs print these, so the
        // exact rendering is a stable contract.
        assert_eq!(TraceEvent::Emit(-42).to_string(), "emit -42");
        assert_eq!(
            TraceEvent::EmitStr("a \"b\"".into()).to_string(),
            "emit \"a \"b\"\""
        );
        assert_eq!(
            TraceEvent::EmitDouble(std::f64::consts::PI.to_bits()).to_string(),
            "emit 0x400921fb54442d18"
        );
        assert_eq!(
            TraceEvent::EmitDouble(0).to_string(),
            "emit 0x0000000000000000"
        );
        assert_eq!(
            TraceEvent::UncaughtException("DivideByZero".into()).to_string(),
            "uncaught DivideByZero"
        );
        assert_eq!(
            TraceEvent::NetworkFailure("timeout after 3 attempts".into()).to_string(),
            "network failure: timeout after 3 attempts"
        );
    }

    #[test]
    fn trace_display_is_one_event_per_line() {
        let tr = t(&[TraceEvent::Emit(7), TraceEvent::EmitStr("hi".into())]);
        assert_eq!(tr.to_string(), "emit 7\nemit \"hi\"\n");
    }
}
