//! Model-based property test of the heap: a random sequence of
//! alloc/free/replace/write operations is applied both to the real heap and
//! to a naive model; observations must agree, and stale handles must never
//! resurrect.

use proptest::prelude::*;
use rafda_classmodel::ClassId;
use rafda_vm::{Heap, HeapEntry, Value};
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Op {
    Alloc { class: u32, fields: u8 },
    Free { slot: usize },
    Replace { slot: usize, class: u32 },
    Write { slot: usize, offset: u8, value: i32 },
    Read { slot: usize, offset: u8 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u32..8, 0u8..6).prop_map(|(class, fields)| Op::Alloc { class, fields }),
        (0usize..24).prop_map(|slot| Op::Free { slot }),
        (0usize..24, 0u32..8).prop_map(|(slot, class)| Op::Replace { slot, class }),
        (0usize..24, 0u8..6, any::<i32>()).prop_map(|(slot, offset, value)| Op::Write {
            slot,
            offset,
            value
        }),
        (0usize..24, 0u8..6).prop_map(|(slot, offset)| Op::Read { slot, offset }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn heap_agrees_with_model(ops in prop::collection::vec(arb_op(), 1..120)) {
        let mut heap = Heap::new();
        // model: slot index -> live (class, fields); handles created in order.
        let mut handles = Vec::new();
        let mut model: HashMap<usize, (u32, Vec<i32>)> = HashMap::new();

        for op in ops {
            match op {
                Op::Alloc { class, fields } => {
                    let data = vec![Value::Int(0); fields as usize];
                    let h = heap.alloc_object(ClassId(class), data);
                    model.insert(handles.len(), (class, vec![0; fields as usize]));
                    handles.push(h);
                }
                Op::Free { slot } => {
                    if slot < handles.len() {
                        let was_live = model.remove(&slot).is_some();
                        prop_assert_eq!(heap.free(handles[slot]), was_live);
                    }
                }
                Op::Replace { slot, class } => {
                    if slot < handles.len() {
                        let live = model.contains_key(&slot);
                        let out = heap.replace_object(handles[slot], ClassId(class), vec![]);
                        prop_assert_eq!(out.is_some(), live);
                        if live {
                            model.insert(slot, (class, vec![]));
                        }
                    }
                }
                Op::Write { slot, offset, value } => {
                    if slot < handles.len() {
                        let ok_model = model
                            .get_mut(&slot)
                            .and_then(|(_, f)| f.get_mut(offset as usize))
                            .map(|cell| *cell = value)
                            .is_some();
                        let ok_heap =
                            heap.set_field(handles[slot], offset as usize, Value::Int(value));
                        prop_assert_eq!(ok_heap, ok_model);
                    }
                }
                Op::Read { slot, offset } => {
                    if slot < handles.len() {
                        let expect = model
                            .get(&slot)
                            .and_then(|(_, f)| f.get(offset as usize))
                            .copied();
                        let got = heap
                            .field(handles[slot], offset as usize)
                            .and_then(|v| v.as_int());
                        prop_assert_eq!(got, expect);
                    }
                }
            }
            // Global invariants.
            prop_assert_eq!(heap.live(), model.len());
            for (slot, (class, _)) in &model {
                match heap.get(handles[*slot]) {
                    Some(HeapEntry::Object { class: c, .. }) => {
                        prop_assert_eq!(*c, ClassId(*class));
                    }
                    other => prop_assert!(false, "live slot {} missing: {:?}", slot, other),
                }
            }
        }
        // Freed handles stay dead forever.
        for (slot, h) in handles.iter().enumerate() {
            if !model.contains_key(&slot) {
                prop_assert!(heap.get(*h).is_none());
            }
        }
    }
}
