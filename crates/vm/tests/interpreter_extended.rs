//! Extended interpreter coverage: a differential property test compiling
//! random expression trees to bytecode and comparing the VM's result with a
//! direct Rust evaluation, plus instruction-level tests for the runtime
//! type operations the unit suite exercises only indirectly.

use proptest::prelude::*;
use rafda_classmodel::builder::{ClassBuilder, MethodBuilder};
use rafda_classmodel::{sample, BinOp, ClassKind, ClassUniverse, CmpOp, Ty, UnOp};
use rafda_vm::{Value, Vm, VmError};
use std::sync::Arc;

// ----------------------------------------------------------------------
// Differential testing of arithmetic + control flow
// ----------------------------------------------------------------------

/// A little expression language over i64 with a branching select node.
#[derive(Debug, Clone)]
enum Expr {
    Const(i64),
    Param, // the single i64 parameter
    Add(Box<Expr>, Box<Expr>),
    Sub(Box<Expr>, Box<Expr>),
    Mul(Box<Expr>, Box<Expr>),
    Xor(Box<Expr>, Box<Expr>),
    Neg(Box<Expr>),
    /// `if a < b { c } else { d }`
    SelectLt(Box<Expr>, Box<Expr>, Box<Expr>, Box<Expr>),
}

impl Expr {
    fn eval(&self, p: i64) -> i64 {
        match self {
            Expr::Const(v) => *v,
            Expr::Param => p,
            Expr::Add(a, b) => a.eval(p).wrapping_add(b.eval(p)),
            Expr::Sub(a, b) => a.eval(p).wrapping_sub(b.eval(p)),
            Expr::Mul(a, b) => a.eval(p).wrapping_mul(b.eval(p)),
            Expr::Xor(a, b) => a.eval(p) ^ b.eval(p),
            Expr::Neg(a) => a.eval(p).wrapping_neg(),
            Expr::SelectLt(a, b, c, d) => {
                if a.eval(p) < b.eval(p) {
                    c.eval(p)
                } else {
                    d.eval(p)
                }
            }
        }
    }

    fn compile(&self, mb: &mut MethodBuilder) {
        match self {
            Expr::Const(v) => {
                mb.const_long(*v);
            }
            Expr::Param => {
                mb.load_local(0);
            }
            Expr::Add(a, b) => {
                a.compile(mb);
                b.compile(mb);
                mb.binop(BinOp::Add);
            }
            Expr::Sub(a, b) => {
                a.compile(mb);
                b.compile(mb);
                mb.binop(BinOp::Sub);
            }
            Expr::Mul(a, b) => {
                a.compile(mb);
                b.compile(mb);
                mb.binop(BinOp::Mul);
            }
            Expr::Xor(a, b) => {
                a.compile(mb);
                b.compile(mb);
                mb.binop(BinOp::Xor);
            }
            Expr::Neg(a) => {
                a.compile(mb);
                mb.unop(UnOp::Neg);
            }
            Expr::SelectLt(a, b, c, d) => {
                a.compile(mb);
                b.compile(mb);
                mb.cmp(CmpOp::Lt);
                let else_branch = mb.label();
                let join = mb.label();
                mb.jump_if_not(else_branch);
                c.compile(mb);
                // Stash the then-value so both paths join at equal depth
                // through a local (keeps the verifier's depth merge happy
                // regardless of subtree shapes).
                let tmp = mb.alloc_local();
                mb.store_local(tmp);
                mb.jump(join);
                mb.bind(else_branch);
                d.compile(mb);
                mb.store_local(tmp);
                mb.bind(join);
                mb.load_local(tmp);
            }
        }
    }
}

fn arb_expr() -> impl Strategy<Value = Expr> {
    let leaf = prop_oneof![(-1000i64..1000).prop_map(Expr::Const), Just(Expr::Param),];
    leaf.prop_recursive(4, 32, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Add(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Sub(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Mul(a.into(), b.into())),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Xor(a.into(), b.into())),
            inner.clone().prop_map(|a| Expr::Neg(a.into())),
            (inner.clone(), inner.clone(), inner.clone(), inner)
                .prop_map(|(a, b, c, d)| Expr::SelectLt(a.into(), b.into(), c.into(), d.into())),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn vm_matches_direct_evaluation(expr in arb_expr(), p in -10_000i64..10_000) {
        let mut u = ClassUniverse::new();
        let mut cb = ClassBuilder::declare(&mut u, "E", ClassKind::Class);
        let mut mb = MethodBuilder::new(1);
        expr.compile(&mut mb);
        mb.ret_value();
        cb.static_method(&mut u, "eval", vec![Ty::Long], Ty::Long, Some(mb.finish()));
        cb.finish(&mut u);
        rafda_classmodel::verify_universe(&u).expect("compiled expression verifies");

        let vm = Vm::new(Arc::new(u));
        let got = vm.call_static_by_name("E", "eval", vec![Value::Long(p)]).unwrap();
        prop_assert_eq!(got, Value::Long(expr.eval(p)));
    }
}

// ----------------------------------------------------------------------
// Runtime type operations through the interpreter
// ----------------------------------------------------------------------

fn build_type_ops() -> (Vm, ClassUniverse) {
    let mut u = ClassUniverse::new();
    let (t, e) = sample::build_throwables(&mut u);
    let mut cb = ClassBuilder::declare(&mut u, "Ops", ClassKind::Class);
    // static boolean is_app_error(Throwable x) { return x instanceof AppError; }
    let mut mb = MethodBuilder::new(1);
    mb.load_local(0);
    mb.emit(rafda_classmodel::Insn::InstanceOf(e));
    mb.ret_value();
    cb.static_method(
        &mut u,
        "is_app_error",
        vec![Ty::Object(t)],
        Ty::Bool,
        Some(mb.finish()),
    );
    // static int cast_code(Throwable x) { return ((AppError) x).code(); }
    let code_sig = u.sig("code", vec![]);
    let mut mb = MethodBuilder::new(1);
    mb.load_local(0);
    mb.emit(rafda_classmodel::Insn::CheckCast(e));
    mb.invoke(code_sig, 0);
    mb.ret_value();
    cb.static_method(
        &mut u,
        "cast_code",
        vec![Ty::Object(t)],
        Ty::Int,
        Some(mb.finish()),
    );
    cb.finish(&mut u);
    rafda_classmodel::verify_universe(&u).unwrap();
    let vm = Vm::new(Arc::new(u.clone()));
    (vm, u)
}

#[test]
fn instanceof_through_interpreter() {
    let (vm, u) = build_type_ops();
    let t = u.by_name("Throwable").unwrap();
    let e = u.by_name("AppError").unwrap();
    let plain = vm.new_instance(t, 0, vec![]).unwrap();
    let app = vm.new_instance(e, 0, vec![Value::Int(1)]).unwrap();
    assert_eq!(
        vm.call_static_by_name("Ops", "is_app_error", vec![plain.clone()]),
        Ok(Value::Bool(false))
    );
    assert_eq!(
        vm.call_static_by_name("Ops", "is_app_error", vec![app]),
        Ok(Value::Bool(true))
    );
    // null instanceof X is false.
    assert_eq!(
        vm.call_static_by_name("Ops", "is_app_error", vec![Value::Null]),
        Ok(Value::Bool(false))
    );
    drop(plain);
}

#[test]
fn checkcast_through_interpreter() {
    let (vm, u) = build_type_ops();
    let t = u.by_name("Throwable").unwrap();
    let e = u.by_name("AppError").unwrap();
    let app = vm.new_instance(e, 0, vec![Value::Int(9)]).unwrap();
    assert_eq!(
        vm.call_static_by_name("Ops", "cast_code", vec![app]),
        Ok(Value::Int(9))
    );
    // Failed cast traps.
    let plain = vm.new_instance(t, 0, vec![]).unwrap();
    let err = vm
        .call_static_by_name("Ops", "cast_code", vec![plain])
        .unwrap_err();
    assert_eq!(err, VmError::Trap(rafda_vm::Trap::ClassCast));
    // Cast of null passes the cast, then traps on the call — like Java's
    // NPE after a succeeding null cast.
    let err = vm
        .call_static_by_name("Ops", "cast_code", vec![Value::Null])
        .unwrap_err();
    assert_eq!(err, VmError::Trap(rafda_vm::Trap::NullDeref));
}

#[test]
fn nested_exception_handlers_unwind_innermost_first() {
    let mut u = ClassUniverse::new();
    let (_t, e) = sample::build_throwables(&mut u);
    let mut cb = ClassBuilder::declare(&mut u, "Nest", ClassKind::Class);
    // static int f() {
    //   try {
    //     try { throw new AppError(1); } catch (AppError a) { throw new AppError(2); }
    //   } catch (AppError b) { return b.code(); }
    // }
    let code_sig = u.sig("code", vec![]);
    let mut mb = MethodBuilder::new(0);
    mb.const_int(1).new_init(e, 0, 1).throw(); // 0..2 inner try
    let inner_handler = mb.pc(); // 3
    mb.pop(); // discard caught
    mb.const_int(2).new_init(e, 0, 1).throw(); // 4..6 rethrow
    let outer_handler = mb.pc(); // 7
    mb.invoke(code_sig, 0);
    mb.ret_value();
    mb.handler(0, 3, inner_handler, Some(e));
    mb.handler(0, outer_handler, outer_handler, Some(e));
    cb.static_method(&mut u, "f", vec![], Ty::Int, Some(mb.finish()));
    cb.finish(&mut u);
    rafda_classmodel::verify_universe(&u).unwrap();
    let vm = Vm::new(Arc::new(u));
    assert_eq!(
        vm.call_static_by_name("Nest", "f", vec![]),
        Ok(Value::Int(2))
    );
}

#[test]
fn swap_and_dup_sequences() {
    let mut u = ClassUniverse::new();
    let mut cb = ClassBuilder::declare(&mut u, "S", ClassKind::Class);
    // static long f(long a, long b) { return (b - a) + (b - a); }  via dup
    let mut mb = MethodBuilder::new(2);
    mb.load_local(0); // a
    mb.load_local(1); // a b
    mb.swap(); // b a
    mb.binop(BinOp::Sub); // b-a
    mb.dup(); // (b-a) (b-a)
    mb.binop(BinOp::Add);
    mb.ret_value();
    cb.static_method(
        &mut u,
        "f",
        vec![Ty::Long, Ty::Long],
        Ty::Long,
        Some(mb.finish()),
    );
    cb.finish(&mut u);
    rafda_classmodel::verify_universe(&u).unwrap();
    let vm = Vm::new(Arc::new(u));
    assert_eq!(
        vm.call_static_by_name("S", "f", vec![Value::Long(3), Value::Long(10)]),
        Ok(Value::Long(14))
    );
}
