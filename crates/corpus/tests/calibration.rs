//! Experiment E3 calibration: the transformability analysis over the
//! JDK-1.4.1-shaped corpus must reproduce the paper's headline statistic —
//! "About 40% of the 8,200 classes and interfaces in JDK 1.4.1 cannot be
//! transformed" (Section 2.4).

use rafda_corpus::JdkProfile;

#[test]
fn full_corpus_reproduces_the_40_percent_statistic() {
    let profile = JdkProfile::jdk_1_4_1();
    let total = profile.total_classes() + profile.hub_classes;
    assert!((8_100..=8_350).contains(&total), "corpus size {total}");
    let mut u = rafda_classmodel::ClassUniverse::new();
    rafda_corpus::generate_jdk(&mut u, &profile);
    let report = rafda_transform::analyze(&u);
    let frac = report.non_transformable_fraction();
    assert!(
        (0.35..=0.47).contains(&frac),
        "expected ≈40% non-transformable, got {:.1}%",
        frac * 100.0
    );
    // All four reasons must actually occur.
    let (native, special, referenced, subclass) = report.reason_breakdown();
    assert!(native > 100, "native seeds: {native}");
    assert!(special > 50, "special seeds: {special}");
    assert!(referenced > 500, "referenced propagation: {referenced}");
    assert!(subclass > 100, "subclass propagation: {subclass}");
}

#[test]
fn native_density_increases_non_transformability() {
    // Section 2.4: "This percentage would increase if the user code
    // contains native methods which refer to a JDK class."
    let frac_at = |scale: f64| {
        let profile = JdkProfile::scaled(2000).with_native_scale(scale);
        let mut u = rafda_classmodel::ClassUniverse::new();
        rafda_corpus::generate_jdk(&mut u, &profile);
        rafda_transform::analyze(&u).non_transformable_fraction()
    };
    let low = frac_at(0.25);
    let mid = frac_at(1.0);
    let high = frac_at(3.0);
    assert!(
        low < mid && mid < high,
        "low={low:.3} mid={mid:.3} high={high:.3}"
    );
}

#[test]
fn transforming_the_transformable_corpus_subset_succeeds() {
    // The engine must be able to run over a corpus-scale universe: every
    // transformable class gets a family, and the result verifies.
    let profile = JdkProfile::scaled(400);
    let mut u = rafda_classmodel::ClassUniverse::new();
    rafda_corpus::generate_jdk(&mut u, &profile);
    let outcome = rafda_transform::Transformer::new()
        .protocols(&["RMI"])
        .run(&mut u)
        .expect("corpus transforms");
    assert!(outcome.report.substitutable_count > 50);
    assert!(outcome.report.generated_classes >= outcome.report.substitutable_count * 3);
    rafda_classmodel::verify_universe(&u).expect("transformed corpus verifies");
}

#[test]
fn per_package_breakdown_shows_platform_vs_library_split() {
    let profile = JdkProfile::scaled(2000);
    let mut u = rafda_classmodel::ClassUniverse::new();
    rafda_corpus::generate_jdk(&mut u, &profile);
    let report = rafda_transform::analyze(&u);
    let rows = rafda_corpus::breakdown_by_package(&u, |id| report.is_transformable(id));
    // Every package appears, totals add up.
    // Hubs are named java_lang_HubN, so they fold into java_lang.
    assert_eq!(rows.len(), 12, "{rows:?}");
    let total: usize = rows.iter().map(|(_, t, _)| t).sum();
    assert_eq!(total, report.total);
    let frac = |name: &str| {
        let (_, t, nt) = rows.iter().find(|(p, _, _)| p == name).unwrap();
        *nt as f64 / *t as f64
    };
    // Native-heavy platform packages are far more poisoned than the pure
    // bytecode libraries — the real-JDK shape.
    assert!(frac("java_lang") > frac("javax_swing"), "{rows:?}");
    assert!(frac("java_io") > frac("org_omg"), "{rows:?}");
}
