//! # rafda-corpus
//!
//! Synthetic program generators for the RAFDA reproduction:
//!
//! * [`jdk`] — a seeded generator producing a class library with the *shape*
//!   of JDK 1.4.1 (package structure, native-method density, special
//!   classes, inheritance and reference graph). The paper's Section 2.4
//!   statistic — "about 40 % of the 8,200 classes and interfaces in JDK
//!   1.4.1 cannot be transformed" — is a property of the propagation rules
//!   over exactly this graph shape, which experiment E3 reproduces.
//! * [`scenarios`] — hand-built realistic workloads (an auction house) of
//!   the kind the paper's introduction motivates: ordinary OO programs
//!   written without distribution in mind;
//! * [`app`] — a seeded generator producing small *executable* applications
//!   (object chains with fields, methods, statics and observable output)
//!   used by the semantic-equivalence property tests (E7) and the overhead
//!   benchmarks (E4/E8);
//! * [`ops`] — the shared chaos/soak operation vocabulary: one op enum,
//!   one weighted arbitrary-op strategy, one oracle-step function, and the
//!   seeded production-day churn generator behind the E16 soak gate.
//!
//! All generators are fully deterministic per seed.

#![warn(missing_docs)]

pub mod app;
pub mod jdk;
pub mod ops;
pub mod rng;
pub mod scenarios;
pub mod workload;

pub use app::{generate_app, AppInfo, AppSpec, ObserverHooks};
pub use jdk::{breakdown_by_package, generate_jdk, JdkProfile, JdkStats, PackageSpec};
pub use ops::{
    generate_churn, ChurnConfig, ChurnPhase, ChurnSchedule, OpMix, Oracle, PoolClass, SoakOp,
};
pub use scenarios::{build_auction_house, AuctionIds};
