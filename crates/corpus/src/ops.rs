//! Shared chaos/soak operation vocabulary: one op enum, one arbitrary-op
//! strategy, one oracle-step function, one seeded churn generator.
//!
//! Every chaos suite in the repo drives a deployed cluster with the same
//! small set of moves — counter calls, boundary migrations, adaptation
//! ticks, crash/restart cycles — and checks the observable values against
//! an exact single-address-space oracle. Before this module each suite
//! carried its own private `Op` enum and its own oracle fold; they are
//! unified here so the production-day soak (E16), the per-feature chaos
//! proptests and any future suite generate from, and step, the *same*
//! vocabulary.
//!
//! Two generation paths share the vocabulary:
//!
//! * [`OpMix::strategy`] — a weighted proptest strategy with uniform
//!   index choice, for the shrink-friendly per-feature chaos proptests;
//! * [`generate_churn`] — a seeded, phased production-day schedule with
//!   Zipf-distributed object popularity, for the E16 soak gate. It is a
//!   pure function of [`ChurnConfig`]; equal configs give byte-identical
//!   schedules forever.

use crate::rng::Rng;
use crate::workload::ZipfWorkload;
use proptest::prelude::*;
use std::fmt;

/// One step of a chaos/soak schedule against a pool of counter-shaped
/// objects (`0..pool` indices) on a simulated cluster (`0..nodes` ids).
///
/// Not every suite uses every variant: an [`OpMix`] with a zero weight
/// never generates that variant, and drivers may treat unused variants as
/// unreachable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SoakOp {
    /// Value-returning read-modify-write: `v += delta`, returns the new
    /// value — a synchronization point under batching.
    Call {
        /// Pool index of the target object.
        idx: usize,
        /// Increment applied to the counter.
        delta: i8,
    },
    /// Fire-and-forget increment (`void`): deferrable under `batch on`,
    /// observable only through a later [`SoakOp::Call`] or
    /// [`SoakOp::Read`].
    Inc {
        /// Pool index of the target object.
        idx: usize,
        /// Increment applied to the counter.
        delta: i8,
    },
    /// Property read returning the current value — served from a cache or
    /// a replica when policy allows, and never allowed to be stale.
    Read {
        /// Pool index of the target object.
        idx: usize,
    },
    /// Move the object to `node` if it currently sits at its home, else
    /// pull it home first (the boundary-flexing move of the paper).
    Migrate {
        /// Pool index of the target object.
        idx: usize,
        /// Destination node id.
        node: u8,
    },
    /// Pull the object back to its home node.
    Pull {
        /// Pool index of the target object.
        idx: usize,
    },
    /// Run an affinity adaptation pass.
    Adapt,
    /// Run a shard rebalancing tick.
    Rebalance,
    /// Crash `node` (restarting whichever node is currently down first, so
    /// at most one node is ever down).
    Crash {
        /// Node id to crash.
        node: u8,
    },
    /// Restart the currently-down node, if any.
    Heal,
}

impl SoakOp {
    /// Short stable label for per-kind op accounting (soak reports).
    pub fn kind(&self) -> &'static str {
        match self {
            SoakOp::Call { .. } => "call",
            SoakOp::Inc { .. } => "inc",
            SoakOp::Read { .. } => "read",
            SoakOp::Migrate { .. } => "migrate",
            SoakOp::Pull { .. } => "pull",
            SoakOp::Adapt => "adapt",
            SoakOp::Rebalance => "rebalance",
            SoakOp::Crash { .. } => "crash",
            SoakOp::Heal => "heal",
        }
    }
}

impl fmt::Display for SoakOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SoakOp::Call { idx, delta } => write!(f, "call #{idx} {delta:+}"),
            SoakOp::Inc { idx, delta } => write!(f, "inc #{idx} {delta:+}"),
            SoakOp::Read { idx } => write!(f, "read #{idx}"),
            SoakOp::Migrate { idx, node } => write!(f, "migrate #{idx} -> n{node}"),
            SoakOp::Pull { idx } => write!(f, "pull #{idx}"),
            SoakOp::Adapt => write!(f, "adapt"),
            SoakOp::Rebalance => write!(f, "rebalance"),
            SoakOp::Crash { node } => write!(f, "crash n{node}"),
            SoakOp::Heal => write!(f, "heal"),
        }
    }
}

/// Weighted mix of [`SoakOp`] variants over a pool/cluster shape. A zero
/// weight disables the variant entirely.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpMix {
    /// Number of objects in the pool (`idx` domain).
    pub pool: usize,
    /// Number of nodes (`Migrate` destination domain).
    pub nodes: u8,
    /// Nodes `0..crash_nodes` are eligible to crash.
    pub crash_nodes: u8,
    /// Weight of [`SoakOp::Call`].
    pub call: u32,
    /// Weight of [`SoakOp::Inc`].
    pub inc: u32,
    /// Weight of [`SoakOp::Read`].
    pub read: u32,
    /// Weight of [`SoakOp::Migrate`].
    pub migrate: u32,
    /// Weight of [`SoakOp::Pull`].
    pub pull: u32,
    /// Weight of [`SoakOp::Adapt`].
    pub adapt: u32,
    /// Weight of [`SoakOp::Rebalance`].
    pub rebalance: u32,
    /// Weight of [`SoakOp::Crash`].
    pub crash: u32,
    /// Weight of [`SoakOp::Heal`].
    pub heal: u32,
}

impl OpMix {
    /// All weights zero — a base to build custom mixes from.
    pub fn none(pool: usize, nodes: u8) -> Self {
        OpMix {
            pool,
            nodes,
            crash_nodes: 0,
            call: 0,
            inc: 0,
            read: 0,
            migrate: 0,
            pull: 0,
            adapt: 0,
            rebalance: 0,
            crash: 0,
            heal: 0,
        }
    }

    /// The boundary-chaos mix (calls, migrations, pulls, adaptation) used
    /// by the E9 interchangeability soak: 6/2/2/1.
    pub fn boundary(pool: usize, nodes: u8) -> Self {
        OpMix {
            call: 6,
            migrate: 2,
            pull: 2,
            adapt: 1,
            ..OpMix::none(pool, nodes)
        }
    }

    /// The batched-boundary mix (E12 safety): deferred void increments
    /// alongside synchronizing adds and moves, 5/4/2/1/1.
    pub fn batched(pool: usize, nodes: u8) -> Self {
        OpMix {
            inc: 5,
            call: 4,
            migrate: 2,
            pull: 1,
            adapt: 1,
            ..OpMix::none(pool, nodes)
        }
    }

    /// The crash-stop mix (E11 failover): calls against replicated
    /// counters with a random crash/restart schedule, 6/2/1.
    pub fn crash_stop(pool: usize, crash_nodes: u8) -> Self {
        OpMix {
            call: 6,
            crash: 2,
            heal: 1,
            crash_nodes,
            ..OpMix::none(pool, crash_nodes)
        }
    }

    /// The adaptation-chaos mix (E15 affinity hygiene): calls, rebalance
    /// ticks, adaptation passes and crash/restart cycles, 6/2/1/2/1.
    pub fn adaptation(pool: usize, nodes: u8, crash_nodes: u8) -> Self {
        OpMix {
            call: 6,
            rebalance: 2,
            adapt: 1,
            crash: 2,
            heal: 1,
            crash_nodes,
            ..OpMix::none(pool, nodes)
        }
    }

    /// Sum of all weights.
    fn total(&self) -> u32 {
        self.call
            + self.inc
            + self.read
            + self.migrate
            + self.pull
            + self.adapt
            + self.rebalance
            + self.crash
            + self.heal
    }

    /// The shared arbitrary-op strategy: weighted variant choice, uniform
    /// index/node/delta choice. Variants with zero weight are never
    /// generated.
    ///
    /// # Panics
    /// If every weight is zero, or a weighted variant has an empty domain
    /// (e.g. `crash > 0` with `crash_nodes == 0`).
    pub fn strategy(&self) -> BoxedStrategy<SoakOp> {
        let m = *self;
        let mut arms: Vec<(u32, BoxedStrategy<SoakOp>)> = Vec::new();
        if m.call > 0 {
            arms.push((
                m.call,
                (0..m.pool, -10i8..10)
                    .prop_map(|(idx, delta)| SoakOp::Call { idx, delta })
                    .boxed(),
            ));
        }
        if m.inc > 0 {
            arms.push((
                m.inc,
                (0..m.pool, -10i8..10)
                    .prop_map(|(idx, delta)| SoakOp::Inc { idx, delta })
                    .boxed(),
            ));
        }
        if m.read > 0 {
            arms.push((
                m.read,
                (0..m.pool).prop_map(|idx| SoakOp::Read { idx }).boxed(),
            ));
        }
        if m.migrate > 0 {
            arms.push((
                m.migrate,
                (0..m.pool, 0..m.nodes)
                    .prop_map(|(idx, node)| SoakOp::Migrate { idx, node })
                    .boxed(),
            ));
        }
        if m.pull > 0 {
            arms.push((
                m.pull,
                (0..m.pool).prop_map(|idx| SoakOp::Pull { idx }).boxed(),
            ));
        }
        if m.adapt > 0 {
            arms.push((m.adapt, Just(SoakOp::Adapt).boxed()));
        }
        if m.rebalance > 0 {
            arms.push((m.rebalance, Just(SoakOp::Rebalance).boxed()));
        }
        if m.crash > 0 {
            assert!(m.crash_nodes > 0, "crash weight needs crash_nodes > 0");
            arms.push((
                m.crash,
                (0..m.crash_nodes)
                    .prop_map(|node| SoakOp::Crash { node })
                    .boxed(),
            ));
        }
        if m.heal > 0 {
            arms.push((m.heal, Just(SoakOp::Heal).boxed()));
        }
        assert!(!arms.is_empty(), "an OpMix needs at least one weight");
        Union::weighted(arms).boxed()
    }
}

/// The exact single-address-space oracle: one `i32` counter per pool
/// index, stepped in program order. Distribution must never change what
/// it predicts.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Oracle {
    values: Vec<i32>,
}

impl Oracle {
    /// All-zero counters over a pool.
    pub fn new(pool: usize) -> Self {
        Oracle {
            values: vec![0; pool],
        }
    }

    /// Step one op. Returns the value the distributed run must observe
    /// for this op (`Call` returns the post-increment value, `Read` the
    /// current value) or `None` for ops with no observable return (void
    /// increments, boundary moves, faults).
    pub fn step(&mut self, op: &SoakOp) -> Option<i32> {
        match *op {
            SoakOp::Call { idx, delta } => {
                self.values[idx] += i32::from(delta);
                Some(self.values[idx])
            }
            SoakOp::Inc { idx, delta } => {
                self.values[idx] += i32::from(delta);
                None
            }
            SoakOp::Read { idx } => Some(self.values[idx]),
            _ => None,
        }
    }

    /// Current counter values.
    pub fn values(&self) -> &[i32] {
        &self.values
    }
}

/// Which soak class a pool index belongs to (see [`ChurnConfig`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PoolClass {
    /// Sharded + replicated + replica-read auction item (hot).
    Item,
    /// Cached + replicated account — the target of boundary moves.
    Acct,
    /// Batched + replicated tally — the target of void increments.
    Tally,
}

/// Shape of a production-day churn schedule: cluster size, object pool
/// layout, total op count and popularity skew. A pure value — equal
/// configs generate byte-identical schedules.
///
/// The pool is laid out `[items][accts][tallys]` in index order, so the
/// hottest Zipf ranks land on the auction items; the churn generator draws
/// `Inc` targets from the tally range and `Migrate`/`Pull` targets from
/// the acct range, matching the policies the soak driver assigns per
/// class.
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnConfig {
    /// Master seed for the schedule.
    pub seed: u64,
    /// Cluster size; the driver treats node `nodes - 1` as the
    /// never-crashed coordinator.
    pub nodes: u8,
    /// Nodes `0..crash_nodes` are eligible to crash.
    pub crash_nodes: u8,
    /// Sharded auction items (pool indices `0..items`).
    pub items: usize,
    /// Cached accounts (pool indices `items..items + accts`).
    pub accts: usize,
    /// Batched tallies (the remaining pool indices).
    pub tallys: usize,
    /// Total ops across all phases.
    pub ops: usize,
    /// Zipf exponent of object popularity.
    pub exponent: f64,
}

impl ChurnConfig {
    /// The standard production-day shape: 6 nodes (coordinator = node 5),
    /// crashes over nodes 0–2, 16 hot items + 6 accounts + 6 tallies,
    /// web-like skew. Op count is the caller's depth knob.
    pub fn production_day(seed: u64, ops: usize) -> Self {
        ChurnConfig {
            seed,
            nodes: 6,
            crash_nodes: 3,
            items: 16,
            accts: 6,
            tallys: 6,
            ops,
            exponent: 1.1,
        }
    }

    /// Total pool size.
    pub fn pool(&self) -> usize {
        self.items + self.accts + self.tallys
    }

    /// Class of a pool index.
    ///
    /// # Panics
    /// If `idx` is out of the pool.
    pub fn class_of(&self, idx: usize) -> PoolClass {
        assert!(idx < self.pool(), "pool index {idx} out of range");
        if idx < self.items {
            PoolClass::Item
        } else if idx < self.items + self.accts {
            PoolClass::Acct
        } else {
            PoolClass::Tally
        }
    }
}

/// One phase of a churn schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChurnPhase {
    /// Phase label (stable, used in soak reports).
    pub name: &'static str,
    /// The ops of this phase, in order.
    pub ops: Vec<SoakOp>,
}

/// A full production-day schedule: warmup → steady → churn → quiesce.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChurnSchedule {
    /// The phases, in execution order.
    pub phases: Vec<ChurnPhase>,
}

impl ChurnSchedule {
    /// Total op count across phases.
    pub fn total_ops(&self) -> usize {
        self.phases.iter().map(|p| p.ops.len()).sum()
    }

    /// All ops concatenated in execution order — the flat sequence the
    /// shrinker minimises.
    pub fn flatten(&self) -> Vec<SoakOp> {
        self.phases.iter().flat_map(|p| p.ops.clone()).collect()
    }
}

/// Generate the phased production-day schedule for `cfg`.
///
/// Four phases split the op budget 5% / 35% / 45% / 15%:
///
/// 1. **warmup** — reads and calls only, populating caches and replicas;
/// 2. **steady** — the full dataflow mix (calls, reads, deferred
///    increments, boundary moves, adaptation) with no faults;
/// 3. **churn** — everything at once: the steady mix plus rebalance
///    ticks, crashes and restarts;
/// 4. **quiesce** — heals and reads, draining the system to a quiet
///    state for the convergence checks.
///
/// Object popularity is Zipf(`exponent`) over the whole pool for calls
/// and reads; increments target the tally range and moves the acct range
/// uniformly (see [`ChurnConfig`]).
///
/// # Panics
/// If the config is degenerate (empty pool, zero ops, or a phase that
/// needs a class/crash range the config doesn't provide).
pub fn generate_churn(cfg: &ChurnConfig) -> ChurnSchedule {
    assert!(cfg.pool() > 0, "churn needs a non-empty pool");
    assert!(cfg.ops > 0, "churn needs a positive op budget");
    assert!(cfg.nodes >= 2, "churn needs at least two nodes");
    assert!(cfg.tallys > 0, "the steady mix draws Inc from the tallys");
    assert!(cfg.accts > 0, "the steady mix draws moves from the accts");
    assert!(cfg.crash_nodes > 0, "the churn phase crashes nodes");
    assert!(
        cfg.crash_nodes < cfg.nodes,
        "the coordinator must not be crash-eligible"
    );

    let mut rng = Rng::new(cfg.seed ^ 0x50AC_50AC_50AC_50AC);
    let mut zipf = ZipfWorkload::new(cfg.seed.wrapping_add(1), cfg.pool(), cfg.exponent);

    let warm = OpMix {
        call: 4,
        read: 6,
        ..OpMix::none(cfg.pool(), cfg.nodes)
    };
    let steady = OpMix {
        call: 25,
        read: 45,
        inc: 10,
        migrate: 4,
        pull: 2,
        adapt: 1,
        ..OpMix::none(cfg.pool(), cfg.nodes)
    };
    let churn = OpMix {
        call: 22,
        read: 38,
        inc: 10,
        migrate: 5,
        pull: 3,
        adapt: 2,
        rebalance: 2,
        crash: 1,
        heal: 1,
        crash_nodes: cfg.crash_nodes,
        ..OpMix::none(cfg.pool(), cfg.nodes)
    };
    let quiesce = OpMix {
        call: 2,
        read: 8,
        heal: 1,
        ..OpMix::none(cfg.pool(), cfg.nodes)
    };

    let warm_n = cfg.ops * 5 / 100;
    let steady_n = cfg.ops * 35 / 100;
    let churn_n = cfg.ops * 45 / 100;
    let quiesce_n = cfg.ops - warm_n - steady_n - churn_n;
    let spec: [(&'static str, usize, &OpMix); 4] = [
        ("warmup", warm_n, &warm),
        ("steady", steady_n, &steady),
        ("churn", churn_n, &churn),
        ("quiesce", quiesce_n, &quiesce),
    ];

    let phases = spec
        .iter()
        .map(|&(name, n, mix)| ChurnPhase {
            name,
            ops: (0..n)
                .map(|_| draw(mix, cfg, &mut zipf, &mut rng))
                .collect(),
        })
        .collect();
    ChurnSchedule { phases }
}

/// Draw one op from a weighted mix, honouring the per-class index domains
/// of the churn layout.
fn draw(mix: &OpMix, cfg: &ChurnConfig, zipf: &mut ZipfWorkload, rng: &mut Rng) -> SoakOp {
    let mut t = rng.below(mix.total() as usize) as u32;
    let mut hit = |w: u32| {
        if t < w {
            true
        } else {
            t -= w;
            false
        }
    };
    let acct_base = cfg.items;
    let tally_base = cfg.items + cfg.accts;
    if hit(mix.call) {
        SoakOp::Call {
            idx: zipf.next_key(),
            delta: rng.range(0, 19) as i8 - 10,
        }
    } else if hit(mix.inc) {
        SoakOp::Inc {
            idx: tally_base + rng.below(cfg.tallys),
            delta: rng.range(0, 19) as i8 - 10,
        }
    } else if hit(mix.read) {
        SoakOp::Read {
            idx: zipf.next_key(),
        }
    } else if hit(mix.migrate) {
        SoakOp::Migrate {
            idx: acct_base + rng.below(cfg.accts),
            node: rng.below(mix.nodes as usize) as u8,
        }
    } else if hit(mix.pull) {
        SoakOp::Pull {
            idx: acct_base + rng.below(cfg.accts),
        }
    } else if hit(mix.adapt) {
        SoakOp::Adapt
    } else if hit(mix.rebalance) {
        SoakOp::Rebalance
    } else if hit(mix.crash) {
        SoakOp::Crash {
            node: rng.below(mix.crash_nodes as usize) as u8,
        }
    } else {
        SoakOp::Heal
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> ChurnConfig {
        ChurnConfig::production_day(42, 2000)
    }

    #[test]
    fn churn_is_deterministic_per_seed() {
        let a = generate_churn(&cfg());
        let b = generate_churn(&cfg());
        assert_eq!(a, b);
        let c = generate_churn(&ChurnConfig { seed: 43, ..cfg() });
        assert_ne!(a, c, "different seeds must give different schedules");
    }

    #[test]
    fn churn_fills_the_exact_op_budget_in_four_phases() {
        let s = generate_churn(&cfg());
        assert_eq!(s.total_ops(), 2000);
        let names: Vec<&str> = s.phases.iter().map(|p| p.name).collect();
        assert_eq!(names, ["warmup", "steady", "churn", "quiesce"]);
        assert_eq!(s.flatten().len(), 2000);
    }

    #[test]
    fn churn_respects_per_class_and_per_phase_domains() {
        let c = cfg();
        let s = generate_churn(&c);
        for (pi, phase) in s.phases.iter().enumerate() {
            for op in &phase.ops {
                match *op {
                    SoakOp::Call { idx, .. } | SoakOp::Read { idx } => {
                        assert!(idx < c.pool());
                    }
                    SoakOp::Inc { idx, .. } => {
                        assert_eq!(c.class_of(idx), PoolClass::Tally, "{op}");
                    }
                    SoakOp::Migrate { idx, node } => {
                        assert_eq!(c.class_of(idx), PoolClass::Acct, "{op}");
                        assert!(node < c.nodes);
                    }
                    SoakOp::Pull { idx } => {
                        assert_eq!(c.class_of(idx), PoolClass::Acct, "{op}");
                    }
                    SoakOp::Crash { node } => {
                        assert!(node < c.crash_nodes);
                        assert_eq!(phase.name, "churn", "crashes only in churn");
                    }
                    SoakOp::Adapt | SoakOp::Rebalance | SoakOp::Heal => {}
                }
            }
            // Warmup and quiesce are fault- and move-free.
            if pi == 0 || pi == 3 {
                assert!(phase.ops.iter().all(|o| !matches!(
                    o,
                    SoakOp::Crash { .. } | SoakOp::Migrate { .. } | SoakOp::Pull { .. }
                )));
            }
        }
    }

    #[test]
    fn zipf_popularity_concentrates_on_the_hot_items() {
        let c = cfg();
        let s = generate_churn(&c);
        let mut hits = vec![0u64; c.pool()];
        for op in s.flatten() {
            if let SoakOp::Call { idx, .. } | SoakOp::Read { idx } = op {
                hits[idx] += 1;
            }
        }
        let hottest = hits[..c.items].iter().sum::<u64>();
        let rest = hits[c.items..].iter().sum::<u64>();
        assert!(
            hottest > rest * 2,
            "items must dominate the call/read stream: {hits:?}"
        );
    }

    #[test]
    fn oracle_steps_in_program_order() {
        let mut o = Oracle::new(3);
        assert_eq!(o.step(&SoakOp::Call { idx: 0, delta: 5 }), Some(5));
        assert_eq!(o.step(&SoakOp::Inc { idx: 0, delta: -2 }), None);
        assert_eq!(o.step(&SoakOp::Read { idx: 0 }), Some(3));
        assert_eq!(o.step(&SoakOp::Migrate { idx: 0, node: 1 }), None);
        assert_eq!(o.step(&SoakOp::Crash { node: 0 }), None);
        assert_eq!(o.step(&SoakOp::Call { idx: 2, delta: 1 }), Some(1));
        assert_eq!(o.values(), &[3, 0, 1]);
    }

    #[test]
    fn class_layout_partitions_the_pool() {
        let c = cfg();
        assert_eq!(c.pool(), 28);
        assert_eq!(c.class_of(0), PoolClass::Item);
        assert_eq!(c.class_of(15), PoolClass::Item);
        assert_eq!(c.class_of(16), PoolClass::Acct);
        assert_eq!(c.class_of(21), PoolClass::Acct);
        assert_eq!(c.class_of(22), PoolClass::Tally);
        assert_eq!(c.class_of(27), PoolClass::Tally);
    }

    proptest! {
        #[test]
        fn strategy_respects_the_mix_domains(
            ops in proptest::collection::vec(
                OpMix::adaptation(5, 4, 3).strategy(), 1..40),
        ) {
            for op in &ops {
                match *op {
                    SoakOp::Call { idx, .. } => prop_assert!(idx < 5),
                    SoakOp::Crash { node } => prop_assert!(node < 3),
                    SoakOp::Adapt | SoakOp::Rebalance | SoakOp::Heal => {}
                    ref other => {
                        prop_assert!(false, "mix must not generate {}", other);
                    }
                }
            }
        }

        #[test]
        fn boundary_mix_never_generates_faults(
            ops in proptest::collection::vec(OpMix::boundary(4, 3).strategy(), 1..40),
        ) {
            for op in &ops {
                prop_assert!(matches!(
                    op,
                    SoakOp::Call { .. } | SoakOp::Migrate { .. }
                        | SoakOp::Pull { .. } | SoakOp::Adapt
                ));
            }
        }
    }
}
