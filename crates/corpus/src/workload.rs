//! Deterministic access-pattern generators for placement experiments.
//!
//! Placement policies only earn their keep under *skew*: a uniform
//! workload is indifferent to where instances live, while real request
//! streams concentrate on a few hot keys (the classic Zipf shape of web
//! caches, auction items and user sessions). The generator here produces
//! the key sequence an experiment replays against a deployed cluster —
//! the E15 sharding benchmark drives both its single-owner baseline and
//! its sharded + replica-read contender from the *same* sequence, so the
//! only variable is placement.
//!
//! Everything is a pure function of the seed (the corpus [`Rng`]); equal
//! seeds give byte-identical workloads forever.

use crate::rng::Rng;

/// A Zipf-distributed stream of key indices in `[0, keys)`.
///
/// Rank `r` (0-based) is drawn with probability proportional to
/// `1 / (r + 1)^exponent`. Rank 0 is the hottest key; `exponent = 0`
/// degenerates to uniform, `exponent ≈ 1` is the canonical web-like skew,
/// larger exponents concentrate harder.
#[derive(Debug, Clone)]
pub struct ZipfWorkload {
    /// Cumulative distribution over ranks, normalised to `[0, 1]`.
    cdf: Vec<f64>,
    rng: Rng,
}

impl ZipfWorkload {
    /// A generator over `keys` distinct keys with the given skew
    /// `exponent`, seeded deterministically.
    ///
    /// # Panics
    /// If `keys` is zero — an empty key space has no distribution.
    pub fn new(seed: u64, keys: usize, exponent: f64) -> Self {
        assert!(keys > 0, "a Zipf workload needs at least one key");
        let mut cdf = Vec::with_capacity(keys);
        let mut total = 0.0;
        for r in 0..keys {
            total += 1.0 / ((r + 1) as f64).powf(exponent);
            cdf.push(total);
        }
        for c in &mut cdf {
            *c /= total;
        }
        ZipfWorkload {
            cdf,
            rng: Rng::new(seed),
        }
    }

    /// Number of distinct keys.
    pub fn keys(&self) -> usize {
        self.cdf.len()
    }

    /// The cumulative distribution over ranks, normalised so the last
    /// entry is exactly `1.0` — exposed for golden-vector tests and for
    /// experiments that report the skew profile they replayed.
    pub fn cdf(&self) -> &[f64] {
        &self.cdf
    }

    /// Draw the next key index.
    pub fn next_key(&mut self) -> usize {
        let u = self.rng.f64();
        // First rank whose cumulative mass covers `u`.
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Draw a full sequence of `ops` key indices.
    pub fn sequence(mut self, ops: usize) -> Vec<usize> {
        (0..ops).map(|_| self.next_key()).collect()
    }
}

/// Per-key hit counts of `seq` over `keys` keys — the skew profile an
/// experiment reports alongside its results.
pub fn histogram(seq: &[usize], keys: usize) -> Vec<u64> {
    let mut h = vec![0u64; keys];
    for &k in seq {
        h[k] += 1;
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let a = ZipfWorkload::new(42, 16, 1.1).sequence(500);
        let b = ZipfWorkload::new(42, 16, 1.1).sequence(500);
        assert_eq!(a, b);
        assert!(a.iter().all(|&k| k < 16));
    }

    #[test]
    fn zero_exponent_is_roughly_uniform() {
        let seq = ZipfWorkload::new(7, 8, 0.0).sequence(8000);
        let h = histogram(&seq, 8);
        for &c in &h {
            assert!((800..1200).contains(&c), "uniform draw skewed: {h:?}");
        }
    }

    #[test]
    fn skew_concentrates_on_the_lowest_ranks() {
        let seq = ZipfWorkload::new(7, 8, 1.2).sequence(8000);
        let h = histogram(&seq, 8);
        assert!(
            h[0] > 2 * h[3] && h[0] > 4 * h[7],
            "rank 0 must dominate: {h:?}"
        );
        // More skew, more concentration.
        let flatter = histogram(&ZipfWorkload::new(7, 8, 0.5).sequence(8000), 8);
        assert!(h[0] > flatter[0], "{h:?} vs {flatter:?}");
    }

    #[test]
    #[should_panic(expected = "at least one key")]
    fn empty_key_space_is_rejected() {
        let _ = ZipfWorkload::new(1, 0, 1.0);
    }

    #[test]
    fn histogram_is_deterministic_across_same_seed_runs() {
        let h1 = histogram(&ZipfWorkload::new(99, 12, 1.1).sequence(4000), 12);
        let h2 = histogram(&ZipfWorkload::new(99, 12, 1.1).sequence(4000), 12);
        assert_eq!(h1, h2);
        assert_eq!(h1.iter().sum::<u64>(), 4000);
    }

    #[test]
    fn golden_cdf_vector_for_the_canonical_exponent() {
        // keys = 4, exponent = 1.0: weights 1, 1/2, 1/3, 1/4 normalise to
        // 12/25, 6/25, 4/25, 3/25 — cumulative 0.48, 0.72, 0.88, 1.0.
        let z = ZipfWorkload::new(0, 4, 1.0);
        let golden = [0.48, 0.72, 0.88, 1.0];
        assert_eq!(z.cdf().len(), golden.len());
        for (got, want) in z.cdf().iter().zip(golden) {
            assert!((got - want).abs() < 1e-12, "{:?}", z.cdf());
        }
    }

    #[test]
    fn huge_exponent_degenerates_to_the_hottest_key() {
        // At exponent 64 every rank past 0 has vanishing mass: the CDF is
        // 1.0 everywhere (to f64 precision) and every draw is key 0.
        let z = ZipfWorkload::new(3, 8, 64.0);
        assert!(z.cdf().iter().all(|&c| (c - 1.0).abs() < 1e-12));
        let seq = ZipfWorkload::new(3, 8, 64.0).sequence(2000);
        assert!(seq.iter().all(|&k| k == 0), "{seq:?}");
    }

    #[test]
    fn single_key_space_always_draws_key_zero() {
        let z = ZipfWorkload::new(11, 1, 1.0);
        assert_eq!(z.cdf(), &[1.0]);
        let seq = ZipfWorkload::new(11, 1, 1.0).sequence(100);
        assert_eq!(seq, vec![0; 100]);
    }
}
