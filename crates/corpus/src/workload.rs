//! Deterministic access-pattern generators for placement experiments.
//!
//! Placement policies only earn their keep under *skew*: a uniform
//! workload is indifferent to where instances live, while real request
//! streams concentrate on a few hot keys (the classic Zipf shape of web
//! caches, auction items and user sessions). The generator here produces
//! the key sequence an experiment replays against a deployed cluster —
//! the E15 sharding benchmark drives both its single-owner baseline and
//! its sharded + replica-read contender from the *same* sequence, so the
//! only variable is placement.
//!
//! Everything is a pure function of the seed (the corpus [`Rng`]); equal
//! seeds give byte-identical workloads forever.

use crate::rng::Rng;

/// A Zipf-distributed stream of key indices in `[0, keys)`.
///
/// Rank `r` (0-based) is drawn with probability proportional to
/// `1 / (r + 1)^exponent`. Rank 0 is the hottest key; `exponent = 0`
/// degenerates to uniform, `exponent ≈ 1` is the canonical web-like skew,
/// larger exponents concentrate harder.
#[derive(Debug, Clone)]
pub struct ZipfWorkload {
    /// Cumulative distribution over ranks, normalised to `[0, 1]`.
    cdf: Vec<f64>,
    rng: Rng,
}

impl ZipfWorkload {
    /// A generator over `keys` distinct keys with the given skew
    /// `exponent`, seeded deterministically.
    ///
    /// # Panics
    /// If `keys` is zero — an empty key space has no distribution.
    pub fn new(seed: u64, keys: usize, exponent: f64) -> Self {
        assert!(keys > 0, "a Zipf workload needs at least one key");
        let mut cdf = Vec::with_capacity(keys);
        let mut total = 0.0;
        for r in 0..keys {
            total += 1.0 / ((r + 1) as f64).powf(exponent);
            cdf.push(total);
        }
        for c in &mut cdf {
            *c /= total;
        }
        ZipfWorkload {
            cdf,
            rng: Rng::new(seed),
        }
    }

    /// Number of distinct keys.
    pub fn keys(&self) -> usize {
        self.cdf.len()
    }

    /// Draw the next key index.
    pub fn next_key(&mut self) -> usize {
        let u = self.rng.f64();
        // First rank whose cumulative mass covers `u`.
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }

    /// Draw a full sequence of `ops` key indices.
    pub fn sequence(mut self, ops: usize) -> Vec<usize> {
        (0..ops).map(|_| self.next_key()).collect()
    }
}

/// Per-key hit counts of `seq` over `keys` keys — the skew profile an
/// experiment reports alongside its results.
pub fn histogram(seq: &[usize], keys: usize) -> Vec<u64> {
    let mut h = vec![0u64; keys];
    for &k in seq {
        h[k] += 1;
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let a = ZipfWorkload::new(42, 16, 1.1).sequence(500);
        let b = ZipfWorkload::new(42, 16, 1.1).sequence(500);
        assert_eq!(a, b);
        assert!(a.iter().all(|&k| k < 16));
    }

    #[test]
    fn zero_exponent_is_roughly_uniform() {
        let seq = ZipfWorkload::new(7, 8, 0.0).sequence(8000);
        let h = histogram(&seq, 8);
        for &c in &h {
            assert!((800..1200).contains(&c), "uniform draw skewed: {h:?}");
        }
    }

    #[test]
    fn skew_concentrates_on_the_lowest_ranks() {
        let seq = ZipfWorkload::new(7, 8, 1.2).sequence(8000);
        let h = histogram(&seq, 8);
        assert!(
            h[0] > 2 * h[3] && h[0] > 4 * h[7],
            "rank 0 must dominate: {h:?}"
        );
        // More skew, more concentration.
        let flatter = histogram(&ZipfWorkload::new(7, 8, 0.5).sequence(8000), 8);
        assert!(h[0] > flatter[0], "{h:?} vs {flatter:?}");
    }

    #[test]
    #[should_panic(expected = "at least one key")]
    fn empty_key_space_is_rejected() {
        let _ = ZipfWorkload::new(1, 0, 1.0);
    }
}
