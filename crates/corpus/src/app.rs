//! Executable application generator.
//!
//! Produces a small, deterministic, *terminating* program with observable
//! output: a chain of classes `C0 … C(n-1)` where each `Ci` owns a `C(i+1)`,
//! carries integer state behind (to-be-transformed) fields, optionally has
//! static members, and emits results through the `Observer` built-in. The
//! semantic-equivalence property tests (E7) run the same generated program
//! as original bytecode, transformed-local, and distributed, and compare
//! traces; the overhead benchmarks (E4/E8) use it as a workload.

use crate::rng::Rng;
use rafda_classmodel::builder::{ClassBuilder, MethodBuilder};
use rafda_classmodel::{BinOp, ClassId, ClassKind, ClassUniverse, CmpOp, Field, SigId, Ty, UnOp};

/// Where the generated program reports observable values: the class and
/// signature of `Observer.emit(long)` (install with
/// `rafda_vm::Vm::install_observer` and pass the ids here — the generator
/// itself has no dependency on the interpreter).
#[derive(Debug, Clone, Copy)]
pub struct ObserverHooks {
    /// The `Observer` class id.
    pub class: ClassId,
    /// The `emit(long)` signature.
    pub emit: SigId,
}

/// Generation parameters.
#[derive(Debug, Clone)]
pub struct AppSpec {
    /// Chain length (number of generated classes).
    pub classes: usize,
    /// Extra integer fields per class (state width).
    pub int_fields: usize,
    /// Whether every third class gets static members (field + method +
    /// `<clinit>`).
    pub statics: bool,
    /// Whether every fourth class (from index 4 on) gets a `Ci_Sub`
    /// subclass overriding `compute`, which the driver also exercises.
    pub inheritance: bool,
    /// Whether every class gets an `int[]` scratch field folded into
    /// `compute` (exercises array allocation, indexing and marshalling).
    pub arrays: bool,
    /// RNG seed; also perturbs the arithmetic each class performs.
    pub seed: u64,
}

impl Default for AppSpec {
    fn default() -> Self {
        AppSpec {
            classes: 6,
            int_fields: 2,
            statics: true,
            inheritance: false,
            arrays: false,
            seed: 1,
        }
    }
}

/// What was generated.
#[derive(Debug, Clone)]
pub struct AppInfo {
    /// The generated chain classes, head first.
    pub classes: Vec<ClassId>,
    /// The driver class; run `Driver.main(seed)` to execute the workload.
    pub driver: ClassId,
    /// Classes that received static members.
    pub static_classes: Vec<ClassId>,
    /// `(base, subclass)` pairs generated when inheritance is enabled.
    pub subclasses: Vec<(ClassId, ClassId)>,
}

/// Generate the application into `universe`.
///
/// The program shape (all arithmetic is wrapping, all recursion is along
/// the finite chain, so every run terminates):
///
/// ```text
/// class Ci {
///     int f0 … f(k-1);  Ci+1 next;          // last class has no next
///     Ci(int seed) { f* = mix(seed); next = new Ci+1(seed + i + 1); }
///     int compute(int d) {
///         int acc = fj ⊕ d;                 // ⊕ per-class random op
///         if (next != null) acc = acc ⊕ next.compute(d + 1);
///         return acc;
///     }
///     void mutate(int v) { f0 = f0 + v; }
///     // every 3rd class, when statics are enabled:
///     static int total;  static { total = i; }
///     static int bump(int v) { total = total + v; return total; }
/// }
/// class Driver {
///     static int main(int seed) {
///         C0 root = new C0(seed);
///         Observer.emit(root.compute(1));
///         root.mutate(seed % 7 + 1);
///         Observer.emit(root.compute(2));
///         Observer.emit(Ci.bump(seed % 5 + 1)) for each static class;
///         return 0;
///     }
/// }
/// ```
pub fn generate_app(
    universe: &mut ClassUniverse,
    observer: ObserverHooks,
    spec: &AppSpec,
) -> AppInfo {
    assert!(spec.classes >= 1, "need at least one class");
    let mut rng = Rng::new(spec.seed);

    // Declare the chain (forward references to `next` need ids up front).
    let ids: Vec<ClassId> = (0..spec.classes)
        .map(|i| universe.declare(&format!("C{i}"), ClassKind::Class))
        .collect();
    let compute_sig = universe.sig("compute", vec![Ty::Int]);
    let mut static_classes = Vec::new();

    for (i, &id) in ids.iter().enumerate() {
        let next = ids.get(i + 1).copied();
        let op = match rng.below(4) {
            0 => BinOp::Add,
            1 => BinOp::Sub,
            2 => BinOp::Xor,
            _ => BinOp::Mul,
        };
        let salt = (rng.below(97) + 3) as i32;
        let has_statics = spec.statics && i % 3 == 0;

        let mut cb = ClassBuilder::new(universe, id);
        // Fields.
        let mut int_fields = Vec::new();
        for k in 0..spec.int_fields.max(1) {
            int_fields.push(cb.field(Field::new(format!("f{k}"), Ty::Int)));
        }
        let next_field = next.map(|n| cb.field(Field::new("next", Ty::Object(n))));
        let scratch_field = spec
            .arrays
            .then(|| cb.field(Field::new("scratch", Ty::Int.array_of())));
        let total_field = has_statics.then(|| {
            static_classes.push(id);
            cb.static_field(Field::new("total", Ty::Int))
        });

        // Ci(int seed)
        {
            let mut mb = MethodBuilder::new(2);
            for (k, &fk) in int_fields.iter().enumerate() {
                mb.load_this();
                mb.load_local(1);
                mb.const_int(salt + k as i32);
                mb.binop(op);
                mb.put_field(id, fk);
            }
            if let (Some(n), Some(nf)) = (next, next_field) {
                mb.load_this();
                mb.load_local(1);
                mb.const_int(i as i32 + 1);
                mb.add();
                mb.new_init(n, 0, 1);
                mb.put_field(id, nf);
            }
            if let Some(sf) = scratch_field {
                // scratch = new int[3]; scratch[1] = seed * (i+2);
                let tmp = mb.alloc_local();
                mb.const_int(3).new_array(Ty::Int).store_local(tmp);
                mb.load_local(tmp);
                mb.const_int(1);
                mb.load_local(1).const_int(i as i32 + 2).mul();
                mb.array_set();
                mb.load_this().load_local(tmp).put_field(id, sf);
            }
            mb.ret();
            cb.ctor(universe, vec![Ty::Int], Some(mb.finish()));
        }

        // int compute(int d)
        {
            let mut mb = MethodBuilder::new(2);
            let acc = mb.alloc_local();
            let pick = int_fields[rng.below(int_fields.len())];
            mb.load_this();
            mb.get_field(id, pick);
            mb.load_local(1);
            mb.binop(op);
            mb.store_local(acc);
            if let Some(sf) = scratch_field {
                // acc = acc ⊕ scratch[1] + scratch.length
                mb.load_local(acc);
                mb.load_this().get_field(id, sf);
                mb.const_int(1);
                mb.array_get();
                mb.load_this().get_field(id, sf);
                mb.array_len();
                mb.add();
                mb.binop(op);
                mb.store_local(acc);
            }
            if let (Some(_n), Some(nf)) = (next, next_field) {
                let skip = mb.label();
                mb.load_this();
                mb.get_field(id, nf);
                mb.const_null();
                mb.cmp(CmpOp::Eq);
                mb.jump_if(skip);
                mb.load_local(acc);
                mb.load_this();
                mb.get_field(id, nf);
                mb.load_local(1);
                mb.const_int(1);
                mb.add();
                mb.invoke(compute_sig, 1);
                mb.binop(op);
                mb.store_local(acc);
                mb.bind(skip);
            }
            mb.load_local(acc);
            mb.ret_value();
            cb.method(
                universe,
                "compute",
                vec![Ty::Int],
                Ty::Int,
                Some(mb.finish()),
            );
        }

        // void mutate(int v)
        {
            let mut mb = MethodBuilder::new(2);
            mb.load_this();
            mb.load_this();
            mb.get_field(id, int_fields[0]);
            mb.load_local(1);
            mb.add();
            mb.put_field(id, int_fields[0]);
            mb.ret();
            cb.method(
                universe,
                "mutate",
                vec![Ty::Int],
                Ty::Void,
                Some(mb.finish()),
            );
        }

        if let Some(tf) = total_field {
            // static int bump(int v) { total = total + v; return total; }
            let mut mb = MethodBuilder::new(1);
            mb.get_static(id, tf);
            mb.load_local(0);
            mb.add();
            mb.put_static(id, tf);
            mb.get_static(id, tf);
            mb.ret_value();
            cb.static_method(universe, "bump", vec![Ty::Int], Ty::Int, Some(mb.finish()));
            // static { total = i; }
            let mut mb = MethodBuilder::new(0);
            mb.const_int(i as i32);
            mb.put_static(id, tf);
            mb.ret();
            cb.clinit(universe, mb.finish());
        }

        cb.finish(universe);
    }

    // Subclasses overriding compute (inheritance coverage).
    let mut subclasses: Vec<(ClassId, ClassId)> = Vec::new();
    if spec.inheritance {
        for (i, &base) in ids.iter().enumerate() {
            if i % 4 != 0 || i + 1 >= spec.classes.max(1) {
                continue;
            }
            let sub = universe.declare(&format!("C{i}_Sub"), ClassKind::Class);
            let mut cb = ClassBuilder::new(universe, sub);
            cb.superclass(base);
            let extra = cb.field(Field::new("extra", Ty::Int));
            // Ci_Sub(int seed) { extra = seed + 13; }  (base fields stay at
            // defaults — the model has no constructor chaining)
            let mut mb = MethodBuilder::new(2);
            mb.load_this();
            mb.load_local(1).const_int(13).add();
            mb.put_field(sub, extra);
            mb.ret();
            cb.ctor(universe, vec![Ty::Int], Some(mb.finish()));
            // override: int compute(int d) { return extra - d; }
            let mut mb = MethodBuilder::new(2);
            mb.load_this().get_field(sub, extra);
            mb.load_local(1).sub();
            mb.ret_value();
            cb.method(
                universe,
                "compute",
                vec![Ty::Int],
                Ty::Int,
                Some(mb.finish()),
            );
            cb.finish(universe);
            subclasses.push((base, sub));
        }
    }

    // Driver.
    let driver = universe.declare("Driver", ClassKind::Class);
    let bump_sig = universe.sig("bump", vec![Ty::Int]);
    {
        let mut cb = ClassBuilder::new(universe, driver);
        let mut mb = MethodBuilder::new(1);
        let root = mb.alloc_local();
        mb.load_local(0);
        mb.new_init(ids[0], 0, 1);
        mb.store_local(root);
        let emit = |mb: &mut MethodBuilder| {
            mb.unop(UnOp::Convert("long"));
            mb.invoke_static(observer.class, observer.emit, 1);
            mb.pop();
        };
        mb.load_local(root);
        mb.const_int(1);
        mb.invoke(compute_sig, 1);
        emit(&mut mb);
        // root.mutate(seed % 7 + 1)
        mb.load_local(root);
        mb.load_local(0);
        mb.const_int(7);
        mb.binop(BinOp::Rem);
        mb.const_int(1);
        mb.add();
        let mutate_sig = universe.sig("mutate", vec![Ty::Int]);
        mb.invoke(mutate_sig, 1);
        mb.pop();
        mb.load_local(root);
        mb.const_int(2);
        mb.invoke(compute_sig, 1);
        emit(&mut mb);
        for &sc in &static_classes {
            mb.load_local(0);
            mb.const_int(5);
            mb.binop(BinOp::Rem);
            mb.const_int(1);
            mb.add();
            mb.invoke_static(sc, bump_sig, 1);
            emit(&mut mb);
        }
        // Exercise the overriding subclasses through base-typed dispatch.
        for &(_base, sub) in &subclasses {
            mb.load_local(0);
            mb.new_init(sub, 0, 1);
            mb.const_int(3);
            mb.invoke(compute_sig, 1);
            emit(&mut mb);
        }
        mb.const_int(0);
        mb.ret_value();
        cb.static_method(universe, "main", vec![Ty::Int], Ty::Int, Some(mb.finish()));
        cb.finish(universe);
    }

    AppInfo {
        classes: ids,
        driver,
        static_classes,
        subclasses,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn observer_stub(universe: &mut ClassUniverse) -> ObserverHooks {
        // A minimal Observer lookalike (native static emit(long)); real
        // callers use `Vm::install_observer`.
        let class = universe.declare("Observer", ClassKind::Class);
        let emit = universe.sig("emit", vec![Ty::Long]);
        let mut c = universe.class(class).clone();
        c.is_special = true;
        c.methods.push(rafda_classmodel::Method {
            name: "emit".into(),
            sig: emit,
            params: vec![Ty::Long],
            ret: Ty::Void,
            visibility: rafda_classmodel::Visibility::Public,
            is_static: true,
            is_native: true,
            body: None,
        });
        universe.define(class, c);
        ObserverHooks { class, emit }
    }

    #[test]
    fn generated_app_verifies() {
        for seed in [1, 2, 3, 99] {
            let mut u = ClassUniverse::new();
            let obs = observer_stub(&mut u);
            let info = generate_app(
                &mut u,
                obs,
                &AppSpec {
                    inheritance: false,
                    arrays: false,
                    classes: 5,
                    int_fields: 3,
                    statics: true,
                    seed,
                },
            );
            rafda_classmodel::verify_universe(&u).expect("generated app verifies");
            assert_eq!(info.classes.len(), 5);
            assert_eq!(info.static_classes.len(), 2); // C0, C3
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let build = |seed| {
            let mut u = ClassUniverse::new();
            let obs = observer_stub(&mut u);
            generate_app(
                &mut u,
                obs,
                &AppSpec {
                    seed,
                    ..Default::default()
                },
            );
            u
        };
        let a = build(7);
        let b = build(7);
        let c = build(8);
        for (id, class) in a.iter() {
            assert_eq!(class.methods.len(), b.class(id).methods.len());
        }
        // Different seeds give different arithmetic somewhere.
        let differs = a.iter().any(|(id, class)| {
            c.class(id)
                .methods
                .iter()
                .zip(&class.methods)
                .any(|(x, y)| x.body.as_ref().map(|b| &b.code) != y.body.as_ref().map(|b| &b.code))
        });
        assert!(differs);
    }

    #[test]
    fn single_class_chain_works() {
        let mut u = ClassUniverse::new();
        let obs = observer_stub(&mut u);
        let info = generate_app(
            &mut u,
            obs,
            &AppSpec {
                inheritance: false,
                arrays: false,
                classes: 1,
                int_fields: 1,
                statics: false,
                seed: 4,
            },
        );
        rafda_classmodel::verify_universe(&u).unwrap();
        assert!(info.static_classes.is_empty());
    }
}
