//! A realistic middleware workload: an **auction house**.
//!
//! This is the kind of application the paper's introduction is about — an
//! ordinary object-oriented program written with no distribution in mind
//! (items, bidders, an auctioneer, an audit log), which the RAFDA
//! transformation later makes distributable without touching its source:
//! bidders can live on client nodes, the item catalogue on a server node,
//! and the audit log's static state on whichever node policy picks.
//!
//! Program sketch (all built as mini-bytecode):
//!
//! ```java
//! class Item {
//!     String name; int price; int bids;
//!     Item(String name, int price) { … }
//!     int outbid(int amount) {           // returns the new price
//!         if (amount <= price) return price;
//!         price = amount; bids = bids + 1;
//!         AuditLog.record(1);
//!         return price;
//!     }
//! }
//! class Bidder {
//!     String name; int budget;
//!     Bidder(String name, int budget) { … }
//!     int bid(Item item, int amount) {   // 0 = declined
//!         if (amount > budget) return 0;
//!         int p = item.outbid(amount);
//!         if (p == amount) { budget = budget - amount; return p; }
//!         return 0;
//!     }
//! }
//! class Auction {
//!     Item first; Item second; Item third;
//!     int round(Bidder b, int base) {    // bids on all three items
//!         int total = 0;
//!         total += b.bid(first,  base + 10);
//!         total += b.bid(second, base + 20);
//!         total += b.bid(third,  base + 30);
//!         return total;
//!     }
//! }
//! class AuditLog {
//!     static int entries;
//!     static void record(int n) { entries = entries + n; }
//!     static int count() { return entries; }
//! }
//! class AuctionMain {
//!     static int main(int seed) { … emits per-round totals and the audit count … }
//! }
//! ```

use crate::app::ObserverHooks;
use rafda_classmodel::builder::{ClassBuilder, MethodBuilder};
use rafda_classmodel::{ClassId, ClassKind, ClassUniverse, CmpOp, Field, Ty, UnOp};

/// The classes of the auction-house scenario.
#[derive(Debug, Clone, Copy)]
pub struct AuctionIds {
    /// `Item` — the auctioned good (name, price, bid count).
    pub item: ClassId,
    /// `Bidder` — budget-constrained participant.
    pub bidder: ClassId,
    /// `Auction` — holds three items, runs bidding rounds.
    pub auction: ClassId,
    /// `AuditLog` — static bid counter (statics coverage).
    pub audit_log: ClassId,
    /// `AuctionMain` — the driver entry point.
    pub main: ClassId,
}

/// Build the auction house into `universe`. `Driver`-style entry point:
/// `AuctionMain.main(seed)`.
pub fn build_auction_house(universe: &mut ClassUniverse, observer: ObserverHooks) -> AuctionIds {
    let item = universe.declare("Item", ClassKind::Class);
    let bidder = universe.declare("Bidder", ClassKind::Class);
    let auction = universe.declare("Auction", ClassKind::Class);
    let audit = universe.declare("AuditLog", ClassKind::Class);
    let main = universe.declare("AuctionMain", ClassKind::Class);

    // ---- AuditLog ----
    {
        let mut cb = ClassBuilder::new(universe, audit);
        let entries = cb.static_field(Field::new("entries", Ty::Int));
        // static void record(int n) { entries = entries + n; }
        let mut mb = MethodBuilder::new(1);
        mb.get_static(audit, entries);
        mb.load_local(0).add();
        mb.put_static(audit, entries);
        mb.ret();
        cb.static_method(
            universe,
            "record",
            vec![Ty::Int],
            Ty::Void,
            Some(mb.finish()),
        );
        // static int count() { return entries; }
        let mut mb = MethodBuilder::new(0);
        mb.get_static(audit, entries).ret_value();
        cb.static_method(universe, "count", vec![], Ty::Int, Some(mb.finish()));
        // static { entries = 0; }
        let mut mb = MethodBuilder::new(0);
        mb.const_int(0).put_static(audit, entries).ret();
        cb.clinit(universe, mb.finish());
        cb.finish(universe);
    }

    // ---- Item ----
    {
        let mut cb = ClassBuilder::new(universe, item);
        let name = cb.field(Field::new("name", Ty::Str));
        let price = cb.field(Field::new("price", Ty::Int));
        let bids = cb.field(Field::new("bids", Ty::Int));
        let mut mb = MethodBuilder::new(3);
        mb.load_this().load_local(1).put_field(item, name);
        mb.load_this().load_local(2).put_field(item, price);
        mb.ret();
        cb.ctor(universe, vec![Ty::Str, Ty::Int], Some(mb.finish()));
        // int outbid(int amount)
        let record_sig = universe.sig("record", vec![Ty::Int]);
        let mut mb = MethodBuilder::new(2);
        let reject = mb.label();
        mb.load_local(1);
        mb.load_this().get_field(item, price);
        mb.cmp(CmpOp::Le);
        mb.jump_if(reject);
        mb.load_this().load_local(1).put_field(item, price);
        mb.load_this();
        mb.load_this().get_field(item, bids);
        mb.const_int(1).add();
        mb.put_field(item, bids);
        mb.const_int(1);
        mb.invoke_static(audit, record_sig, 1);
        mb.pop();
        mb.load_this().get_field(item, price);
        mb.ret_value();
        mb.bind(reject);
        mb.load_this().get_field(item, price);
        mb.ret_value();
        cb.method(
            universe,
            "outbid",
            vec![Ty::Int],
            Ty::Int,
            Some(mb.finish()),
        );
        // String describe() { return name + "@" + price; }
        let mut mb = MethodBuilder::new(1);
        mb.load_this().get_field(item, name);
        mb.const_str("@").add();
        mb.load_this().get_field(item, price);
        mb.unop(UnOp::Convert("string"));
        mb.add();
        mb.ret_value();
        cb.method(universe, "describe", vec![], Ty::Str, Some(mb.finish()));
        cb.finish(universe);
    }

    // ---- Bidder ----
    {
        let mut cb = ClassBuilder::new(universe, bidder);
        let name = cb.field(Field::new("name", Ty::Str));
        let budget = cb.field(Field::new("budget", Ty::Int));
        let mut mb = MethodBuilder::new(3);
        mb.load_this().load_local(1).put_field(bidder, name);
        mb.load_this().load_local(2).put_field(bidder, budget);
        mb.ret();
        cb.ctor(universe, vec![Ty::Str, Ty::Int], Some(mb.finish()));
        // int bid(Item item, int amount)
        let outbid_sig = universe.sig("outbid", vec![Ty::Int]);
        let mut mb = MethodBuilder::new(3);
        let declined = mb.label();
        mb.load_local(2);
        mb.load_this().get_field(bidder, budget);
        mb.cmp(CmpOp::Gt);
        mb.jump_if(declined);
        let p = mb.alloc_local();
        mb.load_local(1);
        mb.load_local(2);
        mb.invoke(outbid_sig, 1);
        mb.store_local(p);
        // if (p == amount) { budget -= amount; return p; }
        let lost = mb.label();
        mb.load_local(p).load_local(2).cmp(CmpOp::Ne);
        mb.jump_if(lost);
        mb.load_this();
        mb.load_this().get_field(bidder, budget);
        mb.load_local(2).sub();
        mb.put_field(bidder, budget);
        mb.load_local(p).ret_value();
        mb.bind(lost);
        mb.const_int(0).ret_value();
        mb.bind(declined);
        mb.const_int(0).ret_value();
        cb.method(
            universe,
            "bid",
            vec![Ty::Object(item), Ty::Int],
            Ty::Int,
            Some(mb.finish()),
        );
        cb.finish(universe);
    }

    // ---- Auction ----
    {
        let mut cb = ClassBuilder::new(universe, auction);
        let first = cb.field(Field::new("first", Ty::Object(item)));
        let second = cb.field(Field::new("second", Ty::Object(item)));
        let third = cb.field(Field::new("third", Ty::Object(item)));
        let mut mb = MethodBuilder::new(4);
        mb.load_this().load_local(1).put_field(auction, first);
        mb.load_this().load_local(2).put_field(auction, second);
        mb.load_this().load_local(3).put_field(auction, third);
        mb.ret();
        cb.ctor(
            universe,
            vec![Ty::Object(item), Ty::Object(item), Ty::Object(item)],
            Some(mb.finish()),
        );
        // int round(Bidder b, int base)
        let bid_sig = universe.sig("bid", vec![Ty::Object(item), Ty::Int]);
        let mut mb = MethodBuilder::new(3);
        let total = mb.alloc_local();
        mb.const_int(0).store_local(total);
        for (k, f) in [(10, first), (20, second), (30, third)] {
            mb.load_local(total);
            mb.load_local(1);
            mb.load_this().get_field(auction, f);
            mb.load_local(2).const_int(k).add();
            mb.invoke(bid_sig, 2);
            mb.add().store_local(total);
        }
        mb.load_local(total).ret_value();
        cb.method(
            universe,
            "round",
            vec![Ty::Object(bidder), Ty::Int],
            Ty::Int,
            Some(mb.finish()),
        );
        cb.finish(universe);
    }

    // ---- AuctionMain ----
    {
        let mut cb = ClassBuilder::new(universe, main);
        let count_sig = universe.sig("count", vec![]);
        let round_sig = universe.sig("round", vec![Ty::Object(bidder), Ty::Int]);
        let mut mb = MethodBuilder::new(1);
        let emit = |mb: &mut MethodBuilder| {
            mb.unop(UnOp::Convert("long"));
            mb.invoke_static(observer.class, observer.emit, 1);
            mb.pop();
        };
        // Items and bidders.
        let a = mb.alloc_local();
        let alice = mb.alloc_local();
        let bob = mb.alloc_local();
        mb.const_str("clock").load_local(0).new_init(item, 0, 2);
        let i1 = mb.alloc_local();
        mb.store_local(i1);
        mb.const_str("vase");
        mb.load_local(0).const_int(5).add();
        mb.new_init(item, 0, 2);
        let i2 = mb.alloc_local();
        mb.store_local(i2);
        mb.const_str("rug");
        mb.load_local(0).const_int(9).add();
        mb.new_init(item, 0, 2);
        let i3 = mb.alloc_local();
        mb.store_local(i3);
        mb.load_local(i1).load_local(i2).load_local(i3);
        mb.new_init(auction, 0, 3);
        mb.store_local(a);
        mb.const_str("alice");
        mb.load_local(0).const_int(200).add();
        mb.new_init(bidder, 0, 2);
        mb.store_local(alice);
        mb.const_str("bob");
        mb.load_local(0).const_int(150).add();
        mb.new_init(bidder, 0, 2);
        mb.store_local(bob);
        // Three rounds of competing bids.
        for (who, base_add) in [(alice, 15), (bob, 25), (alice, 40)] {
            mb.load_local(a);
            mb.load_local(who);
            mb.load_local(0).const_int(base_add).add();
            mb.invoke(round_sig, 2);
            emit(&mut mb);
        }
        // Audit count (statics through discover()).
        mb.invoke_static(audit, count_sig, 0);
        emit(&mut mb);
        mb.invoke_static(audit, count_sig, 0);
        mb.ret_value();
        cb.static_method(universe, "main", vec![Ty::Int], Ty::Int, Some(mb.finish()));
        cb.finish(universe);
    }

    AuctionIds {
        item,
        bidder,
        auction,
        audit_log: audit,
        main,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn observer_stub(universe: &mut ClassUniverse) -> ObserverHooks {
        let class = universe.declare("Observer", ClassKind::Class);
        let emit = universe.sig("emit", vec![Ty::Long]);
        let mut c = universe.class(class).clone();
        c.is_special = true;
        c.methods.push(rafda_classmodel::Method {
            name: "emit".into(),
            sig: emit,
            params: vec![Ty::Long],
            ret: Ty::Void,
            visibility: rafda_classmodel::Visibility::Public,
            is_static: true,
            is_native: true,
            body: None,
        });
        universe.define(class, c);
        ObserverHooks { class, emit }
    }

    #[test]
    fn auction_house_verifies() {
        let mut u = ClassUniverse::new();
        let obs = observer_stub(&mut u);
        let ids = build_auction_house(&mut u, obs);
        rafda_classmodel::verify_universe(&u).unwrap();
        assert_eq!(u.class(ids.item).name, "Item");
        assert_eq!(u.class(ids.audit_log).static_fields.len(), 1);
        assert!(u.class(ids.main).method_index("main").is_some());
    }

    #[test]
    fn auction_house_is_fully_transformable_shape() {
        // No natives, no specials (other than the observer stub): the whole
        // scenario should be a transformation candidate.
        let mut u = ClassUniverse::new();
        let obs = observer_stub(&mut u);
        build_auction_house(&mut u, obs);
        let natives = u
            .iter()
            .filter(|(_, c)| c.has_native_method() && !c.is_special)
            .count();
        assert_eq!(natives, 0);
    }
}
