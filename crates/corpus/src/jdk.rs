//! JDK-1.4.1-shaped synthetic class library.
//!
//! The generator does not try to clone the JDK's API — only the graph
//! properties the transformability analysis is sensitive to:
//!
//! * ~8,200 classes and interfaces in packages of very different character:
//!   `java.lang`/`java.io`/`java.net`/`java.awt`/`sun.*` are dense in
//!   `native` methods and JVM-special classes, while `java.util`,
//!   `javax.swing`, `java.text`, … are mostly pure bytecode;
//! * intra-package inheritance trees, with `java.lang` (`Throwable` et al.)
//!   as a frequent cross-package superclass target;
//! * a reference graph (field types + method signatures) biased toward the
//!   same package and toward the core packages — which is what lets
//!   non-transformability *propagate* from a small native/special seed to
//!   the ~40 % the paper reports.

use crate::rng::Rng;
use rafda_classmodel::builder::{ClassBuilder, MethodBuilder};
use rafda_classmodel::{ClassId, ClassKind, ClassUniverse, Field, Ty};

/// One synthetic package.
#[derive(Debug, Clone)]
pub struct PackageSpec {
    /// Package name (used as a class-name prefix).
    pub name: &'static str,
    /// Number of classes + interfaces.
    pub classes: usize,
    /// Probability a class declares at least one `native` method.
    pub native_prob: f64,
    /// Probability a class has special JVM semantics.
    pub special_prob: f64,
    /// Fraction of entries that are interfaces.
    pub interface_frac: f64,
    /// Relative weight as a *target* of cross-package references (the
    /// "coreness" of the package).
    pub ref_weight: f64,
}

/// The whole corpus profile.
#[derive(Debug, Clone)]
pub struct JdkProfile {
    /// The synthetic packages, in declaration order.
    pub packages: Vec<PackageSpec>,
    /// Mean outgoing references per class (field types + signatures),
    /// *excluding* hub references.
    pub refs_per_class: f64,
    /// Probability a reference stays within the package.
    pub same_package_bias: f64,
    /// Probability a class extends another class of its package.
    pub inherit_prob: f64,
    /// Number of `java.lang` hub classes (`Object`, `String`, `Class`, …)
    /// that soak up most reference edges. They are special (and hence
    /// non-transformable) from the start, so referencing them adds no new
    /// poisoning — which is exactly why real-world propagation stays
    /// bounded.
    pub hub_classes: usize,
    /// Probability any given reference edge points at a hub.
    pub hub_bias: f64,
    /// RNG seed.
    pub seed: u64,
}

impl JdkProfile {
    /// A profile calibrated to JDK 1.4.1's published shape: 8,204 classes
    /// and interfaces across the major package groups, with native density
    /// concentrated in the platform packages.
    pub fn jdk_1_4_1() -> Self {
        JdkProfile {
            packages: vec![
                PackageSpec {
                    name: "java_lang",
                    classes: 320,
                    native_prob: 0.34,
                    special_prob: 0.22,
                    interface_frac: 0.12,
                    ref_weight: 10.0,
                },
                PackageSpec {
                    name: "java_io",
                    classes: 340,
                    native_prob: 0.28,
                    special_prob: 0.02,
                    interface_frac: 0.10,
                    ref_weight: 5.0,
                },
                PackageSpec {
                    name: "java_net",
                    classes: 200,
                    native_prob: 0.30,
                    special_prob: 0.01,
                    interface_frac: 0.12,
                    ref_weight: 2.0,
                },
                PackageSpec {
                    name: "java_nio",
                    classes: 230,
                    native_prob: 0.26,
                    special_prob: 0.01,
                    interface_frac: 0.10,
                    ref_weight: 1.5,
                },
                PackageSpec {
                    name: "java_awt",
                    classes: 1100,
                    native_prob: 0.18,
                    special_prob: 0.01,
                    interface_frac: 0.14,
                    ref_weight: 3.0,
                },
                PackageSpec {
                    name: "sun_internal",
                    classes: 1450,
                    native_prob: 0.22,
                    special_prob: 0.02,
                    interface_frac: 0.08,
                    ref_weight: 1.0,
                },
                PackageSpec {
                    name: "java_util",
                    classes: 620,
                    native_prob: 0.03,
                    special_prob: 0.005,
                    interface_frac: 0.18,
                    ref_weight: 6.0,
                },
                PackageSpec {
                    name: "java_text",
                    classes: 180,
                    native_prob: 0.02,
                    special_prob: 0.0,
                    interface_frac: 0.10,
                    ref_weight: 1.0,
                },
                PackageSpec {
                    name: "java_security",
                    classes: 400,
                    native_prob: 0.04,
                    special_prob: 0.005,
                    interface_frac: 0.16,
                    ref_weight: 1.0,
                },
                PackageSpec {
                    name: "javax_swing",
                    classes: 1850,
                    native_prob: 0.015,
                    special_prob: 0.0,
                    interface_frac: 0.12,
                    ref_weight: 2.0,
                },
                PackageSpec {
                    name: "org_omg",
                    classes: 870,
                    native_prob: 0.01,
                    special_prob: 0.0,
                    interface_frac: 0.30,
                    ref_weight: 0.5,
                },
                PackageSpec {
                    name: "javax_other",
                    classes: 644,
                    native_prob: 0.02,
                    special_prob: 0.0,
                    interface_frac: 0.15,
                    ref_weight: 0.8,
                },
            ],
            refs_per_class: 0.55,
            same_package_bias: 0.75,
            inherit_prob: 0.3,
            hub_classes: 60,
            hub_bias: 0.72,
            seed: 0x2003_1117,
        }
    }

    /// The same shape scaled to approximately `total` classes (for sweeps
    /// and fast tests).
    pub fn scaled(total: usize) -> Self {
        let mut profile = Self::jdk_1_4_1();
        let full: usize = profile.packages.iter().map(|p| p.classes).sum();
        for p in &mut profile.packages {
            p.classes = (p.classes * total / full).max(1);
        }
        profile
    }

    /// Total classes in the profile.
    pub fn total_classes(&self) -> usize {
        self.packages.iter().map(|p| p.classes).sum()
    }

    /// Scale every package's native-method probability (E3b sensitivity
    /// sweep).
    pub fn with_native_scale(mut self, factor: f64) -> Self {
        for p in &mut self.packages {
            p.native_prob = (p.native_prob * factor).min(1.0);
        }
        self
    }

    /// Override the mean outgoing reference count (E3b sweep).
    pub fn with_refs_per_class(mut self, refs: f64) -> Self {
        self.refs_per_class = refs;
        self
    }

    /// Override the intra-package inheritance probability (E3b sweep).
    pub fn with_inherit_prob(mut self, p: f64) -> Self {
        self.inherit_prob = p;
        self
    }
}

/// Per-package transformability row: `(package, total, non_transformable)`.
///
/// Groups a corpus analysis by the package prefix baked into generated
/// class names, reproducing the per-package structure a study of the real
/// JDK would report (native-heavy platform packages ≫ pure-bytecode
/// libraries).
pub fn breakdown_by_package(
    universe: &ClassUniverse,
    is_transformable: impl Fn(ClassId) -> bool,
) -> Vec<(String, usize, usize)> {
    use std::collections::BTreeMap;
    let mut rows: BTreeMap<String, (usize, usize)> = BTreeMap::new();
    for (id, class) in universe.iter() {
        let package = match class.name.rfind("_C") {
            Some(pos)
                if !class.name[pos + 2..].is_empty()
                    && class.name[pos + 2..].chars().all(|c| c.is_ascii_digit()) =>
            {
                class.name[..pos].to_owned()
            }
            _ => match class.name.find("_Hub") {
                Some(pos) => class.name[..pos].to_owned(),
                None => continue,
            },
        };
        let row = rows.entry(package).or_default();
        row.0 += 1;
        if !is_transformable(id) {
            row.1 += 1;
        }
    }
    rows.into_iter().map(|(p, (t, nt))| (p, t, nt)).collect()
}

/// Statistics of a generated corpus.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct JdkStats {
    /// Concrete + abstract classes generated.
    pub classes: usize,
    /// Interfaces generated.
    pub interfaces: usize,
    /// Classes with at least one native method.
    pub native_classes: usize,
    /// Classes with special JVM semantics (hubs included).
    pub special_classes: usize,
    /// Reference edges emitted (fields + signatures + hubs).
    pub reference_edges: usize,
}

/// Generate the corpus into `universe`, returning the generated ids and
/// statistics.
pub fn generate_jdk(
    universe: &mut ClassUniverse,
    profile: &JdkProfile,
) -> (Vec<ClassId>, JdkStats) {
    let mut rng = Rng::new(profile.seed);
    let mut stats = JdkStats::default();

    // Plan entries: (package index, is_interface, native, special).
    struct Entry {
        package: usize,
        interface: bool,
        native: bool,
        special: bool,
        id: ClassId,
    }
    let mut entries: Vec<Entry> = Vec::with_capacity(profile.total_classes());
    // Hub classes: the `Object`/`String`/`Class` analogues. Special, so
    // non-transformable by seed, and the dominant reference target.
    let mut hubs: Vec<ClassId> = Vec::with_capacity(profile.hub_classes);
    for hi in 0..profile.hub_classes {
        let id = universe.declare(&format!("java_lang_Hub{hi}"), ClassKind::Class);
        let mut cb = ClassBuilder::new(universe, id);
        cb.special();
        let mut mb = MethodBuilder::new(1);
        mb.ret();
        cb.ctor(universe, vec![], Some(mb.finish()));
        cb.finish(universe);
        stats.special_classes += 1;
        stats.classes += 1;
        hubs.push(id);
    }
    for (pi, p) in profile.packages.iter().enumerate() {
        for ci in 0..p.classes {
            let interface = rng.chance(p.interface_frac);
            let native = !interface && rng.chance(p.native_prob);
            let special = rng.chance(p.special_prob);
            let kind = if interface {
                ClassKind::Interface
            } else {
                ClassKind::Class
            };
            let id = universe.declare(&format!("{}_C{}", p.name, ci), kind);
            entries.push(Entry {
                package: pi,
                interface,
                native,
                special,
                id,
            });
        }
    }

    // Cross-package reference target sampler: weighted by package
    // ref_weight (cumulative table over entries).
    let weights: Vec<f64> = entries
        .iter()
        .map(|e| profile.packages[e.package].ref_weight)
        .collect();
    let total_weight: f64 = weights.iter().sum();
    let mut cumulative: Vec<f64> = Vec::with_capacity(weights.len());
    let mut acc = 0.0;
    for w in &weights {
        acc += w;
        cumulative.push(acc);
    }
    let pick_global = |rng: &mut Rng| -> usize {
        let x = rng.f64() * total_weight;
        match cumulative.binary_search_by(|c| c.partial_cmp(&x).unwrap()) {
            Ok(i) | Err(i) => i.min(weights.len() - 1),
        }
    };

    // Package start offsets for same-package picks.
    let mut package_ranges: Vec<(usize, usize)> = Vec::new();
    {
        let mut start = 0;
        for p in &profile.packages {
            package_ranges.push((start, start + p.classes));
            start += p.classes;
        }
    }

    // Define every entry.
    for i in 0..entries.len() {
        let e = &entries[i];
        let (id, package, interface, native, special) =
            (e.id, e.package, e.interface, e.native, e.special);
        let mut cb = ClassBuilder::new(universe, id);
        if special {
            cb.special();
            stats.special_classes += 1;
        }
        if interface {
            stats.interfaces += 1;
        } else {
            stats.classes += 1;
        }

        // Inheritance: a class may extend an earlier class of its package;
        // an interface may extend an earlier interface of its package.
        let (lo, _hi) = package_ranges[package];
        if i > lo && rng.chance(profile.inherit_prob) {
            // Search a few candidates among earlier same-package entries.
            for _ in 0..6 {
                let j = lo + rng.below(i - lo);
                if entries[j].interface == interface {
                    if interface {
                        cb.implements(entries[j].id);
                    } else {
                        cb.superclass(entries[j].id);
                    }
                    break;
                }
            }
        }

        // References via fields and method signatures.
        let n_refs = {
            let base = profile.refs_per_class;
            let jitter = rng.f64() * base;
            (base / 2.0 + jitter).round() as usize
        };
        let mut referenced: Vec<ClassId> = Vec::with_capacity(n_refs + 1);
        // Hub references (String/Object-like) — very common, already NT.
        if !hubs.is_empty() {
            let n_hub_refs = 1 + rng.below(2);
            for _ in 0..n_hub_refs {
                if rng.chance(profile.hub_bias) {
                    referenced.push(hubs[rng.below(hubs.len())]);
                    stats.reference_edges += 1;
                }
            }
        }
        for _ in 0..n_refs {
            let j = if rng.chance(profile.same_package_bias) {
                let (lo, hi) = package_ranges[package];
                lo + rng.below(hi - lo)
            } else {
                pick_global(&mut rng)
            };
            if entries[j].id != id {
                referenced.push(entries[j].id);
                stats.reference_edges += 1;
            }
        }

        if interface {
            // Interface: 1-3 abstract methods, some mentioning references.
            let n_methods = rng.range(1, 3);
            for k in 0..n_methods {
                let params = if k < referenced.len() {
                    vec![Ty::Object(referenced[k])]
                } else {
                    vec![Ty::Int]
                };
                cb.method(universe, &format!("im{k}"), params, Ty::Int, None);
            }
        } else {
            // Fields: half primitive, half the referenced classes.
            for (k, &target) in referenced.iter().enumerate() {
                if k % 2 == 0 {
                    cb.field(Field::new(format!("r{k}"), Ty::Object(target)));
                } else {
                    cb.field(Field::new(format!("p{k}"), Ty::Int));
                    // The odd references flow through a method signature
                    // below instead.
                }
            }
            // Constructor.
            let mut mb = MethodBuilder::new(1);
            mb.ret();
            cb.ctor(universe, vec![], Some(mb.finish()));
            // Methods: trivial bodies; odd-indexed references appear as
            // parameter types.
            let n_methods = rng.range(1, 4);
            for k in 0..n_methods {
                let params = referenced
                    .get(k * 2 + 1)
                    .map(|&t| vec![Ty::Object(t)])
                    .unwrap_or_else(|| vec![Ty::Long]);
                let mut mb = MethodBuilder::new(2);
                mb.const_int(k as i32).ret_value();
                cb.method(
                    universe,
                    &format!("m{k}"),
                    params,
                    Ty::Int,
                    Some(mb.finish()),
                );
            }
            if native {
                cb.native_method(universe, "nat", vec![], Ty::Void);
                stats.native_classes += 1;
            }
        }
        cb.finish(universe);
    }

    (entries.into_iter().map(|e| e.id).collect(), stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_totals_match_the_paper() {
        let p = JdkProfile::jdk_1_4_1();
        let total = p.total_classes();
        assert!(
            (8_100..=8_300).contains(&total),
            "JDK 1.4.1 had ~8,200 classes; profile has {total}"
        );
    }

    #[test]
    fn generation_is_deterministic() {
        let profile = JdkProfile::scaled(300);
        let mut u1 = ClassUniverse::new();
        let (ids1, s1) = generate_jdk(&mut u1, &profile);
        let mut u2 = ClassUniverse::new();
        let (ids2, s2) = generate_jdk(&mut u2, &profile);
        assert_eq!(s1, s2);
        assert_eq!(ids1.len(), ids2.len());
        for (&a, &b) in ids1.iter().zip(&ids2) {
            assert_eq!(u1.class(a).name, u2.class(b).name);
            assert_eq!(u1.class(a).fields.len(), u2.class(b).fields.len());
        }
    }

    #[test]
    fn generated_corpus_verifies() {
        let profile = JdkProfile::scaled(400);
        let mut u = ClassUniverse::new();
        let (_ids, stats) = generate_jdk(&mut u, &profile);
        rafda_classmodel::verify_universe(&u).unwrap();
        assert!(stats.classes > stats.interfaces);
        assert!(stats.native_classes > 0);
        assert!(stats.special_classes > 0);
        assert!(stats.reference_edges > 100);
    }

    #[test]
    fn scaled_profile_keeps_package_mix() {
        let p = JdkProfile::scaled(820);
        let total = p.total_classes();
        assert!((700..=900).contains(&total), "{total}");
        // java_lang keeps roughly its share.
        let lang = p.packages.iter().find(|x| x.name == "java_lang").unwrap();
        assert!(lang.classes >= 20);
    }

    #[test]
    fn native_scale_saturates_at_one() {
        let p = JdkProfile::jdk_1_4_1().with_native_scale(100.0);
        assert!(p.packages.iter().all(|x| x.native_prob <= 1.0));
    }
}
