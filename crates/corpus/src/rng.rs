//! Deterministic PRNG (SplitMix64), duplicated from `rafda-net` so the
//! corpus generators have no dependency on the network substrate. Equal
//! seeds give identical corpora forever, independent of external crates.

/// SplitMix64 state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Seeded construction.
    pub fn new(seed: u64) -> Self {
        Rng { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[0, n)`.
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n.max(1) as u64) as usize
    }

    /// Bernoulli trial.
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Uniform in `[lo, hi]` inclusive.
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        lo + self.below(hi - lo + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = Rng::new(5);
        let mut b = Rng::new(5);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn range_inclusive() {
        let mut r = Rng::new(1);
        for _ in 0..1000 {
            let v = r.range(2, 4);
            assert!((2..=4).contains(&v));
        }
    }

    #[test]
    fn chance_extremes() {
        let mut r = Rng::new(1);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }
}
