//! Offline stand-in for the `proptest` crate.
//!
//! The workspace must build with `cargo build --locked --offline` on a
//! machine with no registry access, so the property tests cannot depend on
//! the real proptest. This crate implements the subset of proptest's API
//! that the workspace uses, backed by a deterministic SplitMix64 generator:
//! every test derives its stream from the test's module path and the case
//! index, so failures reproduce exactly across runs and machines.
//!
//! Differences from real proptest, by design:
//! - no integrated value-tree shrinking — a failing case reports its
//!   inputs (with the derived seed and case index) via the failure
//!   message instead of minimising them automatically. Suites whose
//!   cases are *op sequences* can minimise explicitly with the
//!   standalone [`shrink`] module (prefix truncation + op removal over a
//!   re-runnable case closure);
//! - no persisted regression files (`*.proptest-regressions` are ignored);
//! - string "regex" strategies support the subset actually used here:
//!   literals, `.`, `[a-z_]` classes, and `{m,n}` / `*` / `+` / `?`
//!   quantifiers.

pub mod test_runner {
    use std::fmt;

    /// Per-test configuration (`ProptestConfig` in the prelude).
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of generated cases per property.
        pub cases: u32,
    }

    impl Config {
        /// Run each property against `cases` generated inputs.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 64 }
        }
    }

    /// A failed property case (carried by `prop_assert!` and friends).
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Build a failure with the given message.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Deterministic generator: SplitMix64 seeded from the test name and
    /// case index (FNV-1a over the name, golden-ratio mix over the index).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
        seed: u64,
    }

    impl TestRng {
        /// The stream for case `case` of the named test.
        pub fn for_case(test_name: &str, case: u32) -> Self {
            let mut h: u64 = 0xCBF2_9CE4_8422_2325;
            for b in test_name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            let seed = h ^ u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15);
            let mut rng = TestRng { state: seed, seed };
            // Discard a couple of outputs so nearby seeds decorrelate.
            rng.next_u64();
            rng.next_u64();
            rng
        }

        /// The derived seed this stream started from — printed by the
        /// `proptest!` runner when a case fails, so any case is
        /// reproducible from its failure report alone.
        pub fn seed(&self) -> u64 {
            self.seed
        }

        /// Next 64 uniformly distributed bits (SplitMix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, n)` without modulo bias; `n` must be non-zero.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            if n.is_power_of_two() {
                return self.next_u64() & (n - 1);
            }
            let zone = u64::MAX - u64::MAX % n;
            loop {
                let v = self.next_u64();
                if v < zone {
                    return v % n;
                }
            }
        }

        /// Uniform in `[0, n)` for lengths and indices.
        pub fn below_usize(&mut self, n: usize) -> usize {
            self.below(n as u64) as usize
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::rc::Rc;

    /// A generator of values of type `Self::Value`.
    ///
    /// Unlike real proptest there is no value-tree/shrinking layer: a
    /// strategy is a pure function of the RNG stream.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Produce one value from the stream.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        /// Type-erase into a clonable, reference-counted strategy.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy {
                gen: Rc::new(move |rng: &mut TestRng| self.generate(rng)),
            }
        }

        /// Recursive strategies: `self` is the leaf; `recurse` builds one
        /// level of composite out of the strategy for the level below.
        /// `depth` bounds nesting; the size hints are accepted for API
        /// compatibility (sizes are bounded here by depth and the leaf
        /// weighting instead).
        fn prop_recursive<R, F>(
            self,
            depth: u32,
            _desired_size: u32,
            _expected_branch_size: u32,
            recurse: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
            R: Strategy<Value = Self::Value> + 'static,
            F: Fn(BoxedStrategy<Self::Value>) -> R,
        {
            let leaf = self.boxed();
            let mut strat = leaf.clone();
            for _ in 0..depth {
                let deeper = recurse(strat).boxed();
                strat = Union::weighted(vec![(3, leaf.clone()), (2, deeper)]).boxed();
            }
            strat
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A type-erased strategy; clones share the generator.
    pub struct BoxedStrategy<V> {
        pub(crate) gen: Rc<dyn Fn(&mut TestRng) -> V>,
    }

    impl<V> Clone for BoxedStrategy<V> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                gen: Rc::clone(&self.gen),
            }
        }
    }

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            (self.gen)(rng)
        }
    }

    /// Always generates a clone of the given value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Weighted choice between boxed strategies (`prop_oneof!`).
    pub struct Union<V> {
        arms: Vec<(u32, BoxedStrategy<V>)>,
        total: u64,
    }

    impl<V> Union<V> {
        /// Choose an arm with probability proportional to its weight.
        pub fn weighted(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
            let total = arms.iter().map(|(w, _)| u64::from(*w)).sum();
            assert!(total > 0, "prop_oneof! needs at least one positive weight");
            Union { arms, total }
        }
    }

    impl<V> Clone for Union<V> {
        fn clone(&self) -> Self {
            Union {
                arms: self.arms.clone(),
                total: self.total,
            }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut TestRng) -> V {
            let mut pick = rng.below(self.total);
            for (w, s) in &self.arms {
                let w = u64::from(*w);
                if pick < w {
                    return s.generate(rng);
                }
                pick -= w;
            }
            unreachable!("weights exhausted")
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),* $(,)?) => {$(
            impl Strategy for ::std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    let off = rng.below(span);
                    (self.start as i128 + off as i128) as $t
                }
            }
        )*};
    }

    int_range_strategy!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);

    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            crate::string::generate_pattern(self, rng)
        }
    }
}

pub mod arbitrary {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy (`any::<T>()`).
    pub trait Arbitrary: Sized {
        /// One uniformly chosen value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<fn() -> T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    /// The whole-domain strategy for `T`. Floats draw raw bit patterns, so
    /// NaNs, infinities and subnormals all occur — codecs must round-trip
    /// them bit-exactly.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! int_arbitrary {
        ($($t:ty),* $(,)?) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for f32 {
        fn arbitrary(rng: &mut TestRng) -> f32 {
            f32::from_bits(rng.next_u64() as u32)
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            f64::from_bits(rng.next_u64())
        }
    }
}

pub mod collection {
    use crate::strategy::{BoxedStrategy, Strategy};
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// `Vec` strategy with length drawn uniformly from `size`.
    pub fn vec<S>(element: S, size: Range<usize>) -> VecStrategy<S::Value>
    where
        S: Strategy + 'static,
    {
        assert!(size.start < size.end, "empty vec size range");
        VecStrategy {
            element: element.boxed(),
            min: size.start,
            max: size.end,
        }
    }

    /// See [`vec()`].
    pub struct VecStrategy<V> {
        element: BoxedStrategy<V>,
        min: usize,
        max: usize,
    }

    impl<V> Clone for VecStrategy<V> {
        fn clone(&self) -> Self {
            VecStrategy {
                element: self.element.clone(),
                min: self.min,
                max: self.max,
            }
        }
    }

    impl<V> Strategy for VecStrategy<V> {
        type Value = Vec<V>;
        fn generate(&self, rng: &mut TestRng) -> Vec<V> {
            let len = self.min + rng.below_usize(self.max - self.min);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod option {
    use crate::strategy::{BoxedStrategy, Strategy};
    use crate::test_runner::TestRng;

    /// `Option` strategy: `None` one time in four, `Some(inner)` otherwise.
    pub fn of<S>(inner: S) -> OptionStrategy<S::Value>
    where
        S: Strategy + 'static,
    {
        OptionStrategy {
            inner: inner.boxed(),
        }
    }

    /// See [`of`].
    pub struct OptionStrategy<V> {
        inner: BoxedStrategy<V>,
    }

    impl<V> Clone for OptionStrategy<V> {
        fn clone(&self) -> Self {
            OptionStrategy {
                inner: self.inner.clone(),
            }
        }
    }

    impl<V> Strategy for OptionStrategy<V> {
        type Value = Option<V>;
        fn generate(&self, rng: &mut TestRng) -> Option<V> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

pub mod string {
    //! A tiny regex-subset generator for `&str` strategies.

    use crate::test_runner::TestRng;

    enum Atom {
        /// `.` — any printable char (plus a few multibyte ones so UTF-8
        /// handling in text codecs gets exercised).
        Any,
        /// `[a-z_]` — inclusive ranges and singletons.
        Class(Vec<(char, char)>),
        /// A literal character.
        Lit(char),
    }

    struct Piece {
        atom: Atom,
        min: usize,
        max: usize,
    }

    fn parse(pattern: &str) -> Vec<Piece> {
        let mut chars = pattern.chars().peekable();
        let mut pieces = Vec::new();
        while let Some(c) = chars.next() {
            let atom = match c {
                '.' => Atom::Any,
                '[' => {
                    let mut ranges = Vec::new();
                    loop {
                        let lo = chars.next().expect("unterminated char class");
                        if lo == ']' {
                            break;
                        }
                        if chars.peek() == Some(&'-') {
                            chars.next();
                            let hi = chars.next().expect("unterminated range");
                            ranges.push((lo, hi));
                        } else {
                            ranges.push((lo, lo));
                        }
                    }
                    Atom::Class(ranges)
                }
                '\\' => Atom::Lit(chars.next().expect("dangling escape")),
                c => Atom::Lit(c),
            };
            let (min, max) = match chars.peek() {
                Some('{') => {
                    chars.next();
                    let mut digits = String::new();
                    let mut min = 0usize;
                    let mut saw_comma = false;
                    let mut max = None;
                    for d in chars.by_ref() {
                        match d {
                            '}' => {
                                let n: usize = digits.parse().expect("bad quantifier");
                                if saw_comma {
                                    max = Some(n);
                                } else {
                                    min = n;
                                    max = Some(n);
                                }
                                break;
                            }
                            ',' => {
                                min = digits.parse().expect("bad quantifier");
                                digits.clear();
                                saw_comma = true;
                            }
                            d => digits.push(d),
                        }
                    }
                    (min, max.expect("unterminated quantifier"))
                }
                Some('*') => {
                    chars.next();
                    (0, 8)
                }
                Some('+') => {
                    chars.next();
                    (1, 8)
                }
                Some('?') => {
                    chars.next();
                    (0, 1)
                }
                _ => (1, 1),
            };
            pieces.push(Piece { atom, min, max });
        }
        pieces
    }

    const EXOTIC: &[char] = &['é', 'Ω', '中', '√', '🚀'];

    fn any_char(rng: &mut TestRng) -> char {
        if rng.below(10) == 0 {
            EXOTIC[rng.below_usize(EXOTIC.len())]
        } else {
            // Printable ASCII, which includes the XML metacharacters the
            // SOAP codec must escape.
            char::from(0x20 + rng.below(0x7F - 0x20) as u8)
        }
    }

    fn class_char(ranges: &[(char, char)], rng: &mut TestRng) -> char {
        let total: u64 = ranges
            .iter()
            .map(|(lo, hi)| u64::from(*hi as u32 - *lo as u32 + 1))
            .sum();
        let mut pick = rng.below(total);
        for (lo, hi) in ranges {
            let span = u64::from(*hi as u32 - *lo as u32 + 1);
            if pick < span {
                return char::from_u32(*lo as u32 + pick as u32).expect("bad class range");
            }
            pick -= span;
        }
        unreachable!("class ranges exhausted")
    }

    /// Generate one string matching `pattern`.
    pub fn generate_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for piece in parse(pattern) {
            let n = piece.min + rng.below_usize(piece.max - piece.min + 1);
            for _ in 0..n {
                match &piece.atom {
                    Atom::Any => out.push(any_char(rng)),
                    Atom::Class(ranges) => out.push(class_char(ranges, rng)),
                    Atom::Lit(c) => out.push(*c),
                }
            }
        }
        out
    }
}

pub mod prelude {
    //! `use proptest::prelude::*;` — everything the tests name directly.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};

    /// The `prop::` namespace (`prop::collection::vec`, `prop::option::of`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
    }
}

/// Minimal failing-case reduction for op-sequence properties.
///
/// The generation layer here has no value trees, so shrinking works the
/// only way it can: re-run the case closure against candidate
/// subsequences of the failing op list and keep every reduction that
/// still fails. Two passes run to a fixpoint under a probe budget:
///
/// 1. **prefix truncation** — binary search for the shortest failing
///    prefix (a failure usually only needs its own causal history);
/// 2. **op removal** — delta-debugging style: try deleting chunks
///    (halving the chunk size down to single ops), keeping any deletion
///    that preserves the failure.
///
/// The result is locally minimal: removing any single remaining op makes
/// the case pass (budget permitting). Order is always preserved.
pub mod shrink {
    /// Outcome of [`minimise`]: the reduced sequence plus accounting.
    #[derive(Debug, Clone)]
    pub struct Minimised<T> {
        /// The minimal failing subsequence (original order preserved).
        pub ops: Vec<T>,
        /// Number of probe runs spent.
        pub runs: usize,
        /// Whether any op was removed from the input.
        pub improved: bool,
    }

    /// Reduce `ops` to a locally minimal subsequence for which `fails`
    /// still returns `true`, spending at most `budget` probe runs.
    ///
    /// `fails` must be deterministic for the reduction to mean anything
    /// (re-running the returned trace must reproduce the failure). If the
    /// full sequence does not fail, it is returned unchanged with
    /// `improved = false`.
    pub fn minimise<T: Clone>(
        ops: &[T],
        budget: usize,
        mut fails: impl FnMut(&[T]) -> bool,
    ) -> Minimised<T> {
        let mut runs = 0usize;
        let mut probe = |candidate: &[T], runs: &mut usize| -> bool {
            *runs += 1;
            fails(candidate)
        };
        if budget == 0 || !probe(ops, &mut runs) {
            return Minimised {
                ops: ops.to_vec(),
                runs,
                improved: false,
            };
        }

        // Pass 1: shortest failing prefix. `hi` always fails; `lo` is the
        // largest known-passing length. If even the empty prefix fails,
        // the failure does not depend on the ops at all and the minimal
        // trace is rightly empty.
        let mut cur: Vec<T> = ops.to_vec();
        let mut lo = 0usize;
        let mut hi = cur.len();
        if runs < budget {
            if probe(&cur[..0], &mut runs) {
                hi = 0;
            } else {
                while hi - lo > 1 && runs < budget {
                    let mid = lo + (hi - lo) / 2;
                    if probe(&cur[..mid], &mut runs) {
                        hi = mid;
                    } else {
                        lo = mid;
                    }
                }
            }
        }
        cur.truncate(hi);

        // Pass 2: chunked op removal to a fixpoint. Invariant: `cur`
        // fails at every step.
        let mut chunk = (cur.len() / 2).max(1);
        while !cur.is_empty() && runs < budget {
            let mut removed_any = false;
            let mut i = 0;
            while i < cur.len() && runs < budget {
                let end = (i + chunk).min(cur.len());
                let mut candidate = Vec::with_capacity(cur.len() - (end - i));
                candidate.extend_from_slice(&cur[..i]);
                candidate.extend_from_slice(&cur[end..]);
                // The empty sequence is known to pass (pass 1 checked it),
                // so never probe it again.
                if !candidate.is_empty() && probe(&candidate, &mut runs) {
                    cur = candidate;
                    removed_any = true;
                    continue; // same i now addresses the next ops
                }
                i = end;
            }
            if chunk == 1 && !removed_any {
                break; // locally minimal
            }
            if !removed_any {
                chunk = (chunk / 2).max(1);
            }
        }

        Minimised {
            improved: cur.len() < ops.len(),
            ops: cur,
            runs,
        }
    }

    /// Like [`minimise`], but for case closures that report failure by
    /// returning `Err` **or by panicking** (an `unwrap` deep inside the
    /// system under test). Panics during probe runs are caught, and the
    /// global panic hook is silenced for the duration so hundreds of
    /// shrink probes do not spam stderr with backtraces.
    pub fn minimise_catching<T: Clone>(
        ops: &[T],
        budget: usize,
        mut case: impl FnMut(&[T]) -> Result<(), String>,
    ) -> Minimised<T> {
        let quiet = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let out = minimise(ops, budget, |candidate| {
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| case(candidate)))
                .map_or(true, |r| r.is_err())
        });
        std::panic::set_hook(quiet);
        out
    }
}

/// Declare property tests. Supports an optional leading
/// `#![proptest_config(...)]` and any number of
/// `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!(($crate::test_runner::Config::default()) $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::Config = $cfg;
            let __test = concat!(module_path!(), "::", stringify!($name));
            for __case in 0..__config.cases {
                let mut __rng = $crate::test_runner::TestRng::for_case(__test, __case);
                let __seed = __rng.seed();
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                // Run the body under `catch_unwind` so even a raw panic
                // (an `unwrap`, an `assert!` outside the prop_ macros) is
                // attributed to the generated case that died before the
                // panic propagates.
                let __result = ::std::panic::catch_unwind(
                    ::std::panic::AssertUnwindSafe(
                        move || -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                            $body
                            ::std::result::Result::Ok(())
                        },
                    ),
                );
                match __result {
                    ::std::result::Result::Ok(::std::result::Result::Ok(())) => {}
                    ::std::result::Result::Ok(::std::result::Result::Err(e)) => {
                        panic!(
                            "proptest {} failed at case {}/{} (seed {:#018x}): {}",
                            stringify!($name),
                            __case + 1,
                            __config.cases,
                            __seed,
                            e
                        );
                    }
                    ::std::result::Result::Err(payload) => {
                        eprintln!(
                            "proptest {} panicked at case {}/{} (seed {:#018x})",
                            __test,
                            __case + 1,
                            __config.cases,
                            __seed
                        );
                        ::std::panic::resume_unwind(payload);
                    }
                }
            }
        }
    )*};
}

/// Weighted (`w => strategy`) or uniform choice between strategies.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::weighted(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::weighted(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Like `assert!` but fails only the current case (with context).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Like `assert_eq!` for property bodies.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?}` == `{:?}`", __l, __r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if !(__l == __r) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{:?}` == `{:?}`: {}",
                    __l,
                    __r,
                    format!($($fmt)+)
                ),
            ));
        }
    }};
}

/// Like `assert_ne!` for property bodies.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        if __l == __r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!("assertion failed: `{:?}` != `{:?}`", __l, __r),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        if __l == __r {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!(
                    "assertion failed: `{:?}` != `{:?}`: {}",
                    __l,
                    __r,
                    format!($($fmt)+)
                ),
            ));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic_per_name_and_case() {
        let mut a = crate::test_runner::TestRng::for_case("x::y", 3);
        let mut b = crate::test_runner::TestRng::for_case("x::y", 3);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = crate::test_runner::TestRng::for_case("x::y", 4);
        assert_ne!(
            crate::test_runner::TestRng::for_case("x::y", 3).next_u64(),
            c.next_u64()
        );
    }

    #[test]
    fn below_is_unbiased_at_the_bound() {
        let mut rng = crate::test_runner::TestRng::for_case("below", 0);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[rng.below(7) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable");
    }

    #[test]
    fn range_strategies_respect_bounds() {
        let mut rng = crate::test_runner::TestRng::for_case("ranges", 0);
        for _ in 0..500 {
            let v = (-10i8..10).generate(&mut rng);
            assert!((-10..10).contains(&v));
            let u = (0usize..24).generate(&mut rng);
            assert!(u < 24);
        }
    }

    #[test]
    fn pattern_strategies_match_shape() {
        let mut rng = crate::test_runner::TestRng::for_case("patterns", 0);
        for _ in 0..200 {
            let ident = "[A-Za-z_][A-Za-z0-9_]{0,10}".generate(&mut rng);
            assert!(!ident.is_empty() && ident.len() <= 11);
            let first = ident.chars().next().unwrap();
            assert!(first.is_ascii_alphabetic() || first == '_');
            let s = ".{0,24}".generate(&mut rng);
            assert!(s.chars().count() <= 24);
        }
    }

    #[test]
    fn oneof_weights_skew_selection() {
        let strat = prop_oneof![9 => Just(1u32), 1 => Just(2u32)];
        let mut rng = crate::test_runner::TestRng::for_case("weights", 0);
        let ones = (0..1000).filter(|_| strat.generate(&mut rng) == 1).count();
        assert!(ones > 800, "{ones} of 1000");
    }

    #[test]
    fn vec_and_option_compose() {
        let strat = crate::collection::vec(crate::option::of(0i32..5), 0..9);
        let mut rng = crate::test_runner::TestRng::for_case("compose", 0);
        let mut saw_none = false;
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!(v.len() < 9);
            saw_none |= v.iter().any(Option::is_none);
        }
        assert!(saw_none);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn recursive_strategies_terminate(v in arb_tree()) {
            prop_assert!(depth_of(&v) <= 5);
        }

        #[test]
        fn macro_binds_multiple_args(a in 0u32..10, b in any::<bool>()) {
            prop_assert!(a < 10);
            prop_assert_eq!(b, b);
        }
    }

    #[derive(Debug, Clone, PartialEq)]
    enum Tree {
        Leaf(i32),
        Node(Vec<Tree>),
    }

    fn arb_tree() -> impl Strategy<Value = Tree> {
        let leaf = (0i32..100).prop_map(Tree::Leaf);
        leaf.prop_recursive(4, 16, 3, |inner| {
            crate::collection::vec(inner, 0..4).prop_map(Tree::Node)
        })
    }

    fn depth_of(t: &Tree) -> usize {
        match t {
            Tree::Leaf(_) => 1,
            Tree::Node(children) => 1 + children.iter().map(depth_of).max().unwrap_or(0),
        }
    }

    #[test]
    fn rng_exposes_its_seed() {
        let rng = crate::test_runner::TestRng::for_case("x::y", 3);
        assert_eq!(
            rng.seed(),
            crate::test_runner::TestRng::for_case("x::y", 3).seed()
        );
        assert_ne!(
            rng.seed(),
            crate::test_runner::TestRng::for_case("x::y", 4).seed()
        );
    }

    #[test]
    #[should_panic(expected = "seed 0x")]
    fn failing_case_reports_its_seed_and_index() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(1))]
            #[allow(dead_code)]
            fn always_fails(_x in 0u32..10) {
                prop_assert!(false, "doomed");
            }
        }
        always_fails();
    }

    #[test]
    #[should_panic(expected = "raw panic inside the body")]
    fn raw_panics_keep_their_payload() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(1))]
            #[allow(dead_code)]
            fn panics(x in 0u32..10) {
                if x < 10 {
                    panic!("raw panic inside the body");
                }
            }
        }
        panics();
    }

    #[test]
    fn shrink_finds_the_minimal_pair() {
        // Failure needs a 7 somewhere before a 13.
        let ops: Vec<u32> = vec![4, 7, 2, 9, 13, 1, 7, 13, 5];
        let fails = |s: &[u32]| {
            let first7 = s.iter().position(|&x| x == 7);
            first7.is_some_and(|i| s[i..].contains(&13))
        };
        let m = crate::shrink::minimise(&ops, 500, fails);
        assert_eq!(m.ops, vec![7, 13], "order-preserving minimal trace");
        assert!(m.improved);
        assert!(m.runs <= 500);
    }

    #[test]
    fn shrink_of_a_passing_sequence_is_a_no_op() {
        let ops: Vec<u32> = vec![1, 2, 3];
        let m = crate::shrink::minimise(&ops, 100, |_| false);
        assert_eq!(m.ops, ops);
        assert!(!m.improved);
        assert_eq!(m.runs, 1, "one probe decides it");
    }

    #[test]
    fn shrink_respects_its_probe_budget() {
        let ops: Vec<u32> = (0..256).collect();
        let m = crate::shrink::minimise(&ops, 10, |s| s.contains(&255));
        assert!(m.runs <= 10, "{} probes", m.runs);
        assert!(m.ops.contains(&255), "the result still fails");
    }

    #[test]
    fn shrink_catches_panicking_cases() {
        let ops: Vec<u32> = vec![3, 9, 5, 9, 2];
        let m = crate::shrink::minimise_catching(&ops, 200, |s| {
            if s.contains(&5) {
                panic!("boom");
            }
            Ok(())
        });
        assert_eq!(m.ops, vec![5]);
    }

    #[test]
    fn shrink_handles_failures_independent_of_the_ops() {
        let ops: Vec<u32> = vec![1, 2, 3];
        let m = crate::shrink::minimise(&ops, 100, |_| true);
        assert!(m.ops.is_empty(), "empty trace reproduces: {:?}", m.ops);
    }
}
