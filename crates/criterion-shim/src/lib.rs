//! Offline stand-in for the `criterion` crate.
//!
//! The workspace must build with `cargo build --locked --offline`, so the
//! benches cannot depend on the real criterion. This crate implements the
//! subset of criterion's API the benches use — groups, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, the `criterion_group!`/
//! `criterion_main!` macros — as a straightforward wall-clock harness:
//! warm up briefly, time batches of iterations, print mean ns/iter.
//!
//! No statistics, plots, or result persistence; `cargo bench` output is a
//! plain table. `cargo test` compiles but does not run bench targets, so
//! tier-1 only needs this to build.

use std::fmt;
use std::time::{Duration, Instant};

/// Prevent the optimiser from deleting a benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level harness handle, passed to every `criterion_group!` target.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\nbenchmark group: {name}");
        BenchmarkGroup {
            _parent: self,
            name,
            sample_size: 10,
            warm_up: Duration::from_millis(100),
            measurement: Duration::from_millis(500),
        }
    }
}

/// A `group/function` benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Identifier for `name` parameterised by `param`.
    pub fn new(name: impl Into<String>, param: impl fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", name.into(), param),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.id)
    }
}

/// A group of benchmarks sharing sampling configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// How long to run the routine untimed before sampling.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = d;
        self
    }

    /// Target total measurement time across samples.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = d;
        self
    }

    /// Benchmark a routine.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(&id.to_string(), &mut f);
        self
    }

    /// Benchmark a routine against a borrowed input.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.run(&id.to_string(), &mut |b| f(b, input));
        self
    }

    /// End the group (accepted by value for API compatibility).
    pub fn finish(self) {}

    fn run(&mut self, id: &str, f: &mut dyn FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            mode: Mode::WarmUp {
                until: self.warm_up,
            },
            total_ns: 0,
            iters: 0,
        };
        f(&mut bencher);
        bencher.mode = Mode::Measure {
            budget: self.measurement,
            samples: self.sample_size,
        };
        bencher.total_ns = 0;
        bencher.iters = 0;
        f(&mut bencher);
        let mean = bencher.total_ns.checked_div(bencher.iters).unwrap_or(0);
        println!(
            "  {:<40} {:>12} ns/iter ({} iters)",
            format!("{}/{id}", self.name),
            mean,
            bencher.iters
        );
    }
}

enum Mode {
    WarmUp { until: Duration },
    Measure { budget: Duration, samples: usize },
}

/// Passed to every benchmark closure; call [`Bencher::iter`] with the
/// routine to time.
pub struct Bencher {
    mode: Mode,
    total_ns: u128,
    iters: u128,
}

impl Bencher {
    /// Time `routine` repeatedly; the harness decides the iteration count.
    pub fn iter<O, R>(&mut self, mut routine: R)
    where
        R: FnMut() -> O,
    {
        match self.mode {
            Mode::WarmUp { until } => {
                let start = Instant::now();
                while start.elapsed() < until {
                    black_box(routine());
                }
            }
            Mode::Measure { budget, samples } => {
                let per_sample = budget / samples.max(1) as u32;
                let start = Instant::now();
                for _ in 0..samples {
                    let sample_start = Instant::now();
                    let mut n = 0u128;
                    loop {
                        black_box(routine());
                        n += 1;
                        // At least one iteration per sample.
                        if sample_start.elapsed() >= per_sample {
                            break;
                        }
                    }
                    self.total_ns += sample_start.elapsed().as_nanos();
                    self.iters += n;
                    if start.elapsed() >= budget {
                        break;
                    }
                }
            }
        }
    }

    /// Criterion's `iter_with_setup`: run `setup` untimed before each timed
    /// invocation of `routine` (for routines that consume their input).
    pub fn iter_with_setup<I, O, S, R>(&mut self, mut setup: S, mut routine: R)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        match self.mode {
            Mode::WarmUp { until } => {
                let start = Instant::now();
                while start.elapsed() < until {
                    let input = setup();
                    black_box(routine(input));
                }
            }
            Mode::Measure { budget, samples } => {
                let per_sample = budget / samples.max(1) as u32;
                let start = Instant::now();
                for _ in 0..samples {
                    let mut sample_ns = 0u128;
                    let mut n = 0u128;
                    while sample_ns < per_sample.as_nanos() || n == 0 {
                        let input = setup();
                        let timed = Instant::now();
                        black_box(routine(input));
                        sample_ns += timed.elapsed().as_nanos();
                        n += 1;
                    }
                    self.total_ns += sample_ns;
                    self.iters += n;
                    if start.elapsed() >= budget {
                        break;
                    }
                }
            }
        }
    }
}

/// Define a benchmark group function callable from `criterion_main!`.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Define `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_counts_iterations() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.sample_size(2);
        group.warm_up_time(Duration::from_millis(1));
        group.measurement_time(Duration::from_millis(5));
        let mut calls = 0u64;
        group.bench_function("count", |b| {
            b.iter(|| {
                calls += 1;
                black_box(calls)
            })
        });
        group.bench_with_input(BenchmarkId::new("param", 3), &3u32, |b, &x| {
            b.iter(|| black_box(x * 2))
        });
        group.finish();
        assert!(calls > 0, "routine executed during warm-up and measurement");
    }

    #[test]
    fn benchmark_id_formats_as_name_slash_param() {
        assert_eq!(
            BenchmarkId::new("encode", "SOAP").to_string(),
            "encode/SOAP"
        );
    }
}
