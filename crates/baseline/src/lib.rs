//! # rafda-baseline
//!
//! The **wrapper-per-object** alternative the paper evaluates and rejects
//! (Section 3):
//!
//! > "An alternative approach to this problem is to generate wrappers for
//! > every class […] Wrappers act as proxies to local objects, by
//! > encapsulating an object and intercepting all access requests to that
//! > object. There is a wrapper per instantiated object and all references
//! > to that object are altered to refer to the wrapper. Although much
//! > simpler in terms of implementation, this introduces significantly
//! > greater overhead and does not offer solutions to any of the current
//! > limitations."
//!
//! This crate implements that approach faithfully so experiment E4 can
//! measure the "significantly greater overhead" claim:
//!
//! * every transformable class `A` gains direct property accessors
//!   (interception is impossible for raw field access, in both approaches);
//! * a delegating `A_Wrapper` class is generated per class, holding the
//!   wrapped `A` and forwarding every method and accessor;
//! * every `new A(…)` site is rewritten to allocate the `A` **and** its
//!   wrapper (one extra object per instance);
//! * every field access site is rewritten to an accessor call, which on a
//!   wrapped receiver costs **two** extra stack frames (wrapper delegate +
//!   accessor) where the RAFDA transformation costs one.
//!
//! Statics are left untouched — the wrapper approach has no story for them,
//! which is one of the "current limitations" the quote refers to.

#![warn(missing_docs)]

pub mod engine;
pub mod generate;
pub mod rewrite;

pub use engine::{WrapperError, WrapperOutcome, WrapperReport, WrapperTransformer};
