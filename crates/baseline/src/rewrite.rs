//! Call-site rewriting for the wrapper approach: field accesses become
//! accessor calls; every `new A(…)` additionally allocates the wrapper
//! ("all references to that object are altered to refer to the wrapper").

use rafda_classmodel::{ClassId, Insn, MethodBody, SigId, TryHandler};
use std::collections::HashMap;

/// What the rewriter needs to know per wrapped class.
#[derive(Debug, Clone)]
pub struct WrapPlan {
    /// Getter signature per `(wrapped class, field index)`.
    pub getters: HashMap<(ClassId, u16), SigId>,
    /// Setter signature per `(wrapped class, field index)`.
    pub setters: HashMap<(ClassId, u16), SigId>,
    /// Wrapper class and its constructor ordinal per wrapped class.
    pub wrappers: HashMap<ClassId, (ClassId, u16)>,
}

/// Rewrite one body under the wrapper plan.
pub fn rewrite_body(plan: &WrapPlan, body: &MethodBody) -> MethodBody {
    let mut chunks: Vec<Vec<Insn>> = Vec::with_capacity(body.code.len());
    for insn in &body.code {
        let mut out = Vec::with_capacity(1);
        match insn {
            Insn::GetField(fr) => match plan.getters.get(&(fr.owner, fr.index)) {
                Some(&sig) => out.push(Insn::Invoke { sig, argc: 0 }),
                None => out.push(insn.clone()),
            },
            Insn::PutField(fr) => match plan.setters.get(&(fr.owner, fr.index)) {
                Some(&sig) => {
                    out.push(Insn::Invoke { sig, argc: 1 });
                    out.push(Insn::Pop);
                }
                None => out.push(insn.clone()),
            },
            Insn::NewInit { class, ctor, argc } => match plan.wrappers.get(class) {
                Some(&(wrapper, wrapper_ctor)) => {
                    out.push(Insn::NewInit {
                        class: *class,
                        ctor: *ctor,
                        argc: *argc,
                    });
                    out.push(Insn::NewInit {
                        class: wrapper,
                        ctor: wrapper_ctor,
                        argc: 1,
                    });
                }
                None => out.push(insn.clone()),
            },
            other => out.push(other.clone()),
        }
        chunks.push(out);
    }
    let mut new_pc = Vec::with_capacity(chunks.len() + 1);
    let mut acc = 0u32;
    for chunk in &chunks {
        new_pc.push(acc);
        acc += chunk.len() as u32;
    }
    new_pc.push(acc);
    let mut code = Vec::with_capacity(acc as usize);
    for chunk in chunks {
        for mut insn in chunk {
            if let Insn::Jump(t) | Insn::JumpIf(t) | Insn::JumpIfNot(t) = &mut insn {
                *t = new_pc[*t as usize];
            }
            code.push(insn);
        }
    }
    let handlers = body
        .handlers
        .iter()
        .map(|h| TryHandler {
            start: new_pc[h.start as usize],
            end: new_pc[h.end as usize],
            target: new_pc[h.target as usize],
            catch: h.catch,
        })
        .collect();
    MethodBody {
        max_locals: body.max_locals,
        code,
        handlers,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rafda_classmodel::FieldRef;

    fn plan() -> WrapPlan {
        let mut plan = WrapPlan {
            getters: HashMap::new(),
            setters: HashMap::new(),
            wrappers: HashMap::new(),
        };
        plan.getters.insert((ClassId(1), 0), SigId(10));
        plan.setters.insert((ClassId(1), 0), SigId(11));
        plan.wrappers.insert(ClassId(1), (ClassId(9), 0));
        plan
    }

    #[test]
    fn field_sites_become_accessor_calls() {
        let body = MethodBody {
            max_locals: 2,
            code: vec![
                Insn::LoadLocal(0),
                Insn::GetField(FieldRef {
                    owner: ClassId(1),
                    index: 0,
                }),
                Insn::ReturnValue,
            ],
            handlers: vec![],
        };
        let out = rewrite_body(&plan(), &body);
        assert_eq!(
            out.code[1],
            Insn::Invoke {
                sig: SigId(10),
                argc: 0
            }
        );
    }

    #[test]
    fn new_sites_wrap_and_jumps_remap() {
        let body = MethodBody {
            max_locals: 1,
            code: vec![
                Insn::Const(rafda_classmodel::Const::Bool(true)),
                Insn::JumpIf(4),
                Insn::NewInit {
                    class: ClassId(1),
                    ctor: 0,
                    argc: 0,
                },
                Insn::Pop,
                Insn::Return,
            ],
            handlers: vec![],
        };
        let out = rewrite_body(&plan(), &body);
        // NewInit expanded to 2 insns; target 4 -> 5.
        assert_eq!(out.code.len(), 6);
        assert_eq!(out.code[1], Insn::JumpIf(5));
        assert_eq!(
            out.code[3],
            Insn::NewInit {
                class: ClassId(9),
                ctor: 0,
                argc: 1
            }
        );
    }

    #[test]
    fn unwrapped_classes_untouched() {
        let body = MethodBody {
            max_locals: 1,
            code: vec![
                Insn::LoadLocal(0),
                Insn::GetField(FieldRef {
                    owner: ClassId(7),
                    index: 0,
                }),
                Insn::ReturnValue,
            ],
            handlers: vec![],
        };
        let out = rewrite_body(&plan(), &body);
        assert_eq!(out.code, body.code);
    }
}
