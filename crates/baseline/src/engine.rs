//! Orchestration of the wrapper transformation.

use crate::generate::{add_accessors, generate_wrapper};
use crate::rewrite::{rewrite_body, WrapPlan};
use rafda_classmodel::{verify_universe, ClassId, ClassKind, ClassOrigin, ClassUniverse};
use rafda_transform::analyze;
use std::collections::HashMap;
use std::fmt;

/// Why a wrapper run was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WrapperError {
    /// The universe already contains generated artefacts.
    AlreadyTransformed,
    /// The rewritten universe failed verification (engine bug).
    VerifyFailed(String),
}

impl fmt::Display for WrapperError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WrapperError::AlreadyTransformed => {
                write!(f, "universe already contains generated artefacts")
            }
            WrapperError::VerifyFailed(e) => write!(f, "verification failed: {e}"),
        }
    }
}

impl std::error::Error for WrapperError {}

/// Summary of a wrapper transformation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WrapperReport {
    /// Classes that received a wrapper.
    pub wrapped: usize,
    /// Accessor methods added to original classes.
    pub accessors_added: usize,
    /// Forwarding methods generated on wrappers.
    pub forwarders: usize,
}

/// The result of a wrapper transformation.
#[derive(Debug, Clone)]
pub struct WrapperOutcome {
    /// Summary statistics of the run.
    pub report: WrapperReport,
    /// Wrapper class per wrapped class.
    pub wrappers: HashMap<ClassId, ClassId>,
}

/// The Section 3 baseline transformer: wraps every transformable class.
#[derive(Debug, Clone, Default)]
pub struct WrapperTransformer;

impl WrapperTransformer {
    /// Create the transformer.
    pub fn new() -> Self {
        Self
    }

    /// Run the wrapper transformation over every transformable class.
    ///
    /// # Errors
    /// See [`WrapperError`].
    pub fn run(self, universe: &mut ClassUniverse) -> Result<WrapperOutcome, WrapperError> {
        if universe
            .iter()
            .any(|(_, c)| matches!(c.origin, ClassOrigin::Generated { .. }))
        {
            return Err(WrapperError::AlreadyTransformed);
        }
        let analysis = analyze(universe);
        let targets: Vec<ClassId> = universe
            .iter()
            .filter(|(id, c)| {
                matches!(c.origin, ClassOrigin::Original)
                    && c.kind == ClassKind::Class
                    && !c.is_special
                    && !c.is_abstract
                    && analysis.is_transformable(*id)
            })
            .map(|(id, _)| id)
            .collect();

        // Remember the original method counts so the generated accessors are
        // not themselves rewritten.
        let original_method_count: HashMap<ClassId, usize> = targets
            .iter()
            .map(|&id| (id, universe.class(id).methods.len()))
            .collect();

        let mut plan = WrapPlan {
            getters: HashMap::new(),
            setters: HashMap::new(),
            wrappers: HashMap::new(),
        };
        let mut report = WrapperReport::default();

        for &id in &targets {
            let accessors = add_accessors(universe, id);
            report.accessors_added += accessors.getters.len() + accessors.setters.len();
            for (i, &g) in accessors.getters.iter().enumerate() {
                plan.getters.insert((id, i as u16), g);
            }
            for (i, &s) in accessors.setters.iter().enumerate() {
                plan.setters.insert((id, i as u16), s);
            }
        }
        for &id in &targets {
            let (wrapper, ctor) = generate_wrapper(universe, id);
            report.forwarders += universe.class(wrapper).methods.len() - 1;
            plan.wrappers.insert(id, (wrapper, ctor));
            report.wrapped += 1;
        }

        // Rewrite original bodies (not the freshly added accessors, not the
        // wrappers).
        for &id in &targets {
            let limit = original_method_count[&id];
            let bodies: Vec<(usize, rafda_classmodel::MethodBody)> = universe
                .class(id)
                .methods
                .iter()
                .take(limit)
                .enumerate()
                .filter_map(|(i, m)| m.body.as_ref().map(|b| (i, rewrite_body(&plan, b))))
                .collect();
            for (i, body) in bodies {
                universe.class_mut(id).methods[i].body = Some(body);
            }
        }
        // Non-target transformable code (e.g. drivers calling into wrapped
        // classes) also needs its sites rewritten.
        let others: Vec<ClassId> = universe
            .iter()
            .filter(|(id, c)| {
                matches!(c.origin, ClassOrigin::Original)
                    && analysis.is_transformable(*id)
                    && !targets.contains(id)
            })
            .map(|(id, _)| id)
            .collect();
        for id in others {
            let bodies: Vec<(usize, rafda_classmodel::MethodBody)> = universe
                .class(id)
                .methods
                .iter()
                .enumerate()
                .filter_map(|(i, m)| m.body.as_ref().map(|b| (i, rewrite_body(&plan, b))))
                .collect();
            for (i, body) in bodies {
                universe.class_mut(id).methods[i].body = Some(body);
            }
        }

        verify_universe(universe).map_err(|e| WrapperError::VerifyFailed(e.to_string()))?;
        Ok(WrapperOutcome {
            report,
            wrappers: plan
                .wrappers
                .into_iter()
                .map(|(k, (w, _))| (k, w))
                .collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rafda_classmodel::sample;

    #[test]
    fn wraps_figure2_classes() {
        let mut u = ClassUniverse::new();
        let ids = sample::build_figure2(&mut u);
        let outcome = WrapperTransformer::new().run(&mut u).unwrap();
        assert_eq!(outcome.report.wrapped, 3);
        assert!(outcome.wrappers.contains_key(&ids.x));
        assert!(u.by_name("X_Wrapper").is_some());
        assert!(u.by_name("Y_Wrapper").is_some());
        verify_universe(&u).unwrap();
    }

    #[test]
    fn statics_are_left_alone() {
        // The wrapper approach "does not offer solutions to any of the
        // current limitations": X.p stays a plain static method.
        let mut u = ClassUniverse::new();
        let ids = sample::build_figure2(&mut u);
        WrapperTransformer::new().run(&mut u).unwrap();
        let x = u.class(ids.x);
        let p = &x.methods[x.method_index("p").unwrap() as usize];
        assert!(p.is_static);
        assert_eq!(x.static_fields.len(), 1);
    }

    #[test]
    fn double_run_rejected() {
        let mut u = ClassUniverse::new();
        sample::build_figure2(&mut u);
        WrapperTransformer::new().run(&mut u).unwrap();
        assert_eq!(
            WrapperTransformer::new().run(&mut u).unwrap_err(),
            WrapperError::AlreadyTransformed
        );
    }

    #[test]
    fn special_classes_not_wrapped() {
        let mut u = ClassUniverse::new();
        sample::build_figure2(&mut u);
        sample::build_throwables(&mut u);
        let outcome = WrapperTransformer::new().run(&mut u).unwrap();
        assert_eq!(outcome.report.wrapped, 3);
        assert!(u.by_name("Throwable_Wrapper").is_none());
    }
}
