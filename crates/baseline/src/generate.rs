//! Generation of accessors and wrapper classes.

use rafda_classmodel::{
    Class, ClassId, ClassKind, ClassOrigin, ClassUniverse, Field, FieldRef, GenKind, Insn, Method,
    MethodBody, SigId, Ty, Visibility,
};
use std::collections::HashMap;

/// Accessor signatures added to a class: `(getter, setter)` per declared
/// instance field.
#[derive(Debug, Clone, Default)]
pub struct Accessors {
    /// Getter signature per declared instance field.
    pub getters: Vec<SigId>,
    /// Setter signature per declared instance field.
    pub setters: Vec<SigId>,
}

fn simple(code: Vec<Insn>, max_locals: u16) -> MethodBody {
    MethodBody {
        max_locals,
        code,
        handlers: Vec::new(),
    }
}

fn public_method(name: String, sig: SigId, params: Vec<Ty>, ret: Ty, body: MethodBody) -> Method {
    Method {
        name,
        sig,
        params,
        ret,
        visibility: Visibility::Public,
        is_static: false,
        is_native: false,
        body: Some(body),
    }
}

/// Add direct `get_f`/`set_f` accessors for every declared instance field of
/// `class` (idempotent per run; the engine calls it once per class).
pub fn add_accessors(universe: &mut ClassUniverse, class: ClassId) -> Accessors {
    let fields: Vec<(u16, String, Ty)> = universe
        .class(class)
        .fields
        .iter()
        .enumerate()
        .map(|(i, f)| (i as u16, f.name.clone(), f.ty.clone()))
        .collect();
    let mut accessors = Accessors::default();
    for (index, name, ty) in fields {
        let g_sig = universe.sig(&format!("get_{name}"), vec![]);
        let s_sig = universe.sig(&format!("set_{name}"), vec![ty.clone()]);
        accessors.getters.push(g_sig);
        accessors.setters.push(s_sig);
        let fr = FieldRef {
            owner: class,
            index,
        };
        let getter = public_method(
            format!("get_{name}"),
            g_sig,
            vec![],
            ty.clone(),
            simple(
                vec![Insn::LoadLocal(0), Insn::GetField(fr), Insn::ReturnValue],
                1,
            ),
        );
        let setter = public_method(
            format!("set_{name}"),
            s_sig,
            vec![ty],
            Ty::Void,
            simple(
                vec![
                    Insn::LoadLocal(0),
                    Insn::LoadLocal(1),
                    Insn::PutField(fr),
                    Insn::Return,
                ],
                2,
            ),
        );
        let c = universe.class_mut(class);
        c.methods.push(getter);
        c.methods.push(setter);
    }
    accessors
}

/// Generate `A_Wrapper` for `class`: one `target` field, a constructor
/// taking the wrapped object, and a forwarding method for every instance
/// method (including the accessors added by [`add_accessors`]).
pub fn generate_wrapper(
    universe: &mut ClassUniverse,
    class: ClassId,
) -> (ClassId, u16 /* ctor ordinal */) {
    let base = universe.class(class).clone();
    let wrapper_name = format!("{}_Wrapper", base.name);
    let wrapper = universe.declare(&wrapper_name, ClassKind::Class);
    let target_fr = FieldRef {
        owner: wrapper,
        index: 0,
    };
    let mut methods: Vec<Method> = Vec::new();
    // Wrapper(target)
    let ctor_sig = universe.sig("<init>$0", vec![Ty::Object(class)]);
    methods.push(Method {
        name: "<init>$0".to_owned(),
        sig: ctor_sig,
        params: vec![Ty::Object(class)],
        ret: Ty::Void,
        visibility: Visibility::Public,
        is_static: false,
        is_native: false,
        body: Some(simple(
            vec![
                Insn::LoadLocal(0),
                Insn::LoadLocal(1),
                Insn::PutField(target_fr),
                Insn::Return,
            ],
            2,
        )),
    });
    // Forwarders for every instance method (walking the superclass chain so
    // inherited behaviour is intercepted too, most-derived first).
    let mut seen: HashMap<SigId, ()> = HashMap::new();
    let mut cur = Some(class);
    while let Some(c) = cur {
        let cls = universe.class(c).clone();
        for m in &cls.methods {
            if m.is_static || m.is_ctor() || seen.contains_key(&m.sig) {
                continue;
            }
            seen.insert(m.sig, ());
            let argc = m.params.len() as u8;
            let mut code = vec![Insn::LoadLocal(0), Insn::GetField(target_fr)];
            for i in 0..argc {
                code.push(Insn::LoadLocal(u16::from(i) + 1));
            }
            code.push(Insn::Invoke { sig: m.sig, argc });
            code.push(Insn::ReturnValue);
            methods.push(public_method(
                m.name.clone(),
                m.sig,
                m.params.clone(),
                m.ret.clone(),
                simple(code, u16::from(argc) + 1),
            ));
        }
        cur = cls.superclass;
    }
    universe.define(
        wrapper,
        Class {
            name: wrapper_name,
            kind: ClassKind::Class,
            superclass: None,
            interfaces: vec![],
            fields: vec![Field {
                name: "target".to_owned(),
                ty: Ty::Object(class),
                visibility: Visibility::Private,
                is_final: true,
            }],
            static_fields: vec![],
            methods,
            ctors: vec![0],
            clinit: None,
            is_special: false,
            is_abstract: false,
            origin: ClassOrigin::Generated {
                from: class,
                kind: GenKind::Wrapper,
            },
        },
    );
    (wrapper, 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rafda_classmodel::{sample, verify_universe};

    #[test]
    fn accessors_are_added_with_direct_bodies() {
        let mut u = ClassUniverse::new();
        let ids = sample::build_figure2(&mut u);
        let acc = add_accessors(&mut u, ids.x);
        assert_eq!(acc.getters.len(), 1);
        let x = u.class(ids.x);
        let g = &x.methods[x.method_index("get_y").unwrap() as usize];
        assert!(matches!(
            g.body.as_ref().unwrap().code[1],
            Insn::GetField(_)
        ));
        verify_universe(&u).unwrap();
    }

    #[test]
    fn wrapper_forwards_every_instance_method() {
        let mut u = ClassUniverse::new();
        let ids = sample::build_figure2(&mut u);
        add_accessors(&mut u, ids.x);
        let (w, ctor) = generate_wrapper(&mut u, ids.x);
        assert_eq!(ctor, 0);
        let wc = u.class(w);
        assert_eq!(wc.name, "X_Wrapper");
        // m + get_y + set_y + ctor
        assert!(wc.method_index("m").is_some());
        assert!(wc.method_index("get_y").is_some());
        assert!(wc.method_index("set_y").is_some());
        assert_eq!(wc.fields.len(), 1);
        verify_universe(&u).unwrap();
    }

    #[test]
    fn wrapper_covers_inherited_methods_once() {
        let mut u = ClassUniverse::new();
        use rafda_classmodel::builder::{ClassBuilder, MethodBuilder};
        let a = u.declare("A", ClassKind::Class);
        {
            let mut cb = ClassBuilder::new(&u, a);
            let mut mb = MethodBuilder::new(1);
            mb.ret();
            cb.ctor(&mut u, vec![], Some(mb.finish()));
            let mut mb = MethodBuilder::new(1);
            mb.const_int(1).ret_value();
            cb.method(&mut u, "f", vec![], Ty::Int, Some(mb.finish()));
            cb.finish(&mut u);
        }
        let b = u.declare("B", ClassKind::Class);
        {
            let mut cb = ClassBuilder::new(&u, b);
            cb.superclass(a);
            let mut mb = MethodBuilder::new(1);
            mb.ret();
            cb.ctor(&mut u, vec![], Some(mb.finish()));
            // override
            let mut mb = MethodBuilder::new(1);
            mb.const_int(2).ret_value();
            cb.method(&mut u, "f", vec![], Ty::Int, Some(mb.finish()));
            cb.finish(&mut u);
        }
        let (w, _) = generate_wrapper(&mut u, b);
        let wc = u.class(w);
        let count = wc.methods.iter().filter(|m| m.name == "f").count();
        assert_eq!(count, 1, "override must not duplicate the forwarder");
        verify_universe(&u).unwrap();
    }
}
