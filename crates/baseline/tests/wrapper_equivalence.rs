//! The wrapped program must behave like the original (on workloads that do
//! not rely on object identity, which the paper notes wrappers break), and
//! its overhead must exceed the original's — the data behind the paper's
//! "significantly greater overhead" judgement (E4 measures the full
//! three-way comparison against the RAFDA transformation).

use rafda_baseline::WrapperTransformer;
use rafda_classmodel::ClassUniverse;
use rafda_corpus::{generate_app, AppSpec, ObserverHooks};
use rafda_vm::{Value, Vm};
use std::sync::Arc;

fn build(seed: u64) -> (ClassUniverse, rafda_vm::ObserverIds) {
    let mut u = ClassUniverse::new();
    let obs = Vm::install_observer(&mut u);
    generate_app(
        &mut u,
        ObserverHooks {
            class: obs.class,
            emit: obs.emit,
        },
        &AppSpec {
            inheritance: false,
            arrays: false,
            classes: 5,
            int_fields: 2,
            statics: true,
            seed,
        },
    );
    (u, obs)
}

fn run(u: ClassUniverse, obs: &rafda_vm::ObserverIds, seed: i32) -> (rafda_vm::Trace, u64, u64) {
    let vm = Vm::new(Arc::new(u));
    vm.bind_observer(obs);
    let trace = vm.run_observed("Driver", "main", vec![Value::Int(seed)]);
    let stats = vm.stats();
    (trace, stats.steps, stats.heap.objects_allocated)
}

#[test]
fn wrapped_trace_equals_original_trace() {
    for seed in [1u64, 7, 13, 40] {
        let (orig_u, obs) = build(seed);
        let (orig_trace, orig_steps, orig_allocs) = run(orig_u, &obs, seed as i32);
        assert!(!orig_trace.is_empty());

        let (mut wrapped_u, obs2) = build(seed);
        WrapperTransformer::new().run(&mut wrapped_u).unwrap();
        let (wrapped_trace, wrapped_steps, wrapped_allocs) = run(wrapped_u, &obs2, seed as i32);

        assert_eq!(orig_trace, wrapped_trace, "seed {seed}");
        assert!(
            wrapped_steps > orig_steps,
            "wrapper must cost more: {wrapped_steps} vs {orig_steps}"
        );
        assert!(
            wrapped_allocs >= orig_allocs * 2 - 2,
            "one wrapper per object: {wrapped_allocs} vs {orig_allocs}"
        );
    }
}

#[test]
fn wrapper_overhead_is_substantial_on_call_heavy_workload() {
    let seed = 3u64;
    let spec = AppSpec {
        inheritance: false,
        arrays: false,
        classes: 10,
        int_fields: 1,
        statics: false,
        seed,
    };
    let build_spec = |wrap: bool| {
        let mut u = ClassUniverse::new();
        let obs = Vm::install_observer(&mut u);
        generate_app(
            &mut u,
            ObserverHooks {
                class: obs.class,
                emit: obs.emit,
            },
            &spec,
        );
        if wrap {
            WrapperTransformer::new().run(&mut u).unwrap();
        }
        (u, obs)
    };
    let (u, obs) = build_spec(false);
    let (t1, s1, _) = run(u, &obs, seed as i32);
    let (u, obs) = build_spec(true);
    let (t2, s2, _) = run(u, &obs, seed as i32);
    assert_eq!(t1, t2);
    let overhead = s2 as f64 / s1 as f64;
    assert!(
        overhead > 1.5,
        "expected significant wrapper overhead, got {overhead:.2}x"
    );
}
