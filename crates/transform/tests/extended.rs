//! Extended transformation coverage: the §2.4 "language specific issues"
//! the paper says solutions exist for (user-defined interfaces, arrays),
//! abstract classes, and robustness properties of the analysis.

use proptest::prelude::*;
use rafda_classmodel::builder::{ClassBuilder, MethodBuilder};
use rafda_classmodel::{sample, verify_universe, ClassKind, ClassUniverse, Field, Ty, Visibility};
use rafda_transform::{analyze, Transformer};

// ----------------------------------------------------------------------
// Arrays of transformed types (§2.4 "arrays")
// ----------------------------------------------------------------------

#[test]
fn array_types_are_rewritten_to_interface_arrays() {
    let mut u = ClassUniverse::new();
    let ids = sample::build_figure2(&mut u);
    // class Pool { Y[] items; Y[] all() { return items; } void fill(int n) { items = new Y[n]; } }
    let pool = u.declare("Pool", ClassKind::Class);
    {
        let mut cb = ClassBuilder::new(&u, pool);
        let items = cb.field(Field::new("items", Ty::Object(ids.y).array_of()));
        let mut mb = MethodBuilder::new(1);
        mb.ret();
        cb.ctor(&mut u, vec![], Some(mb.finish()));
        let mut mb = MethodBuilder::new(1);
        mb.load_this().get_field(pool, items).ret_value();
        cb.method(
            &mut u,
            "all",
            vec![],
            Ty::Object(ids.y).array_of(),
            Some(mb.finish()),
        );
        let mut mb = MethodBuilder::new(2);
        mb.load_this();
        mb.load_local(1).new_array(Ty::Object(ids.y));
        mb.put_field(pool, items);
        mb.ret();
        cb.method(&mut u, "fill", vec![Ty::Int], Ty::Void, Some(mb.finish()));
        cb.finish(&mut u);
    }
    let outcome = Transformer::new().protocols(&["RMI"]).run(&mut u).unwrap();
    verify_universe(&u).unwrap();
    let fy = outcome.plan.family(ids.y).unwrap();
    let fp = outcome.plan.family(pool).unwrap();
    let c = u.class(fp.obj_local);
    // The field type became Y_O_Int[].
    assert_eq!(c.fields[0].ty, Ty::Object(fy.obj_int).array_of());
    // NewArray sites were rewritten.
    let fill = &c.methods[c.method_index("fill").unwrap() as usize];
    assert!(fill
        .body
        .as_ref()
        .unwrap()
        .code
        .iter()
        .any(|i| matches!(i, rafda_classmodel::Insn::NewArray(Ty::Object(t)) if *t == fy.obj_int)));
}

// ----------------------------------------------------------------------
// User-defined interfaces (§2.4 "user-defined interfaces")
// ----------------------------------------------------------------------

#[test]
fn user_interfaces_are_kept_and_implemented_by_locals() {
    let mut u = ClassUniverse::new();
    let iface = u.declare("Greeter", ClassKind::Interface);
    let greet_sig = u.sig("greet", vec![Ty::Int]);
    u.class_mut(iface).methods.push(rafda_classmodel::Method {
        name: "greet".into(),
        sig: greet_sig,
        params: vec![Ty::Int],
        ret: Ty::Int,
        visibility: Visibility::Public,
        is_static: false,
        is_native: false,
        body: None,
    });
    let impl_class = u.declare("Hello", ClassKind::Class);
    {
        let mut cb = ClassBuilder::new(&u, impl_class);
        cb.implements(iface);
        let mut mb = MethodBuilder::new(1);
        mb.ret();
        cb.ctor(&mut u, vec![], Some(mb.finish()));
        let mut mb = MethodBuilder::new(2);
        mb.load_local(1).const_int(1).add().ret_value();
        cb.method(&mut u, "greet", vec![Ty::Int], Ty::Int, Some(mb.finish()));
        cb.finish(&mut u);
    }
    let outcome = Transformer::new().protocols(&["RMI"]).run(&mut u).unwrap();
    verify_universe(&u).unwrap();
    let fh = outcome.plan.family(impl_class).unwrap();
    // Hello_O_Local implements both Hello_O_Int and the user interface, so
    // instanceof/checkcast against Greeter keep working.
    assert!(u.is_subtype(fh.obj_local, fh.obj_int));
    assert!(u.is_subtype(fh.obj_local, iface));
    // The user interface itself was not familied (only classes are
    // substitutable).
    assert!(u.by_name("Greeter_O_Int").is_none());
}

#[test]
fn instanceof_and_checkcast_sites_use_the_extracted_interface() {
    let mut u = ClassUniverse::new();
    let ids = sample::build_figure2(&mut u);
    let probe = u.declare("Probe", ClassKind::Class);
    {
        let mut cb = ClassBuilder::new(&u, probe);
        let mut mb = MethodBuilder::new(1);
        mb.ret();
        cb.ctor(&mut u, vec![], Some(mb.finish()));
        // boolean is_y(Y o) { return o instanceof Y; }
        let mut mb = MethodBuilder::new(2);
        mb.load_local(1);
        mb.emit(rafda_classmodel::Insn::InstanceOf(ids.y));
        mb.ret_value();
        cb.method(
            &mut u,
            "is_y",
            vec![Ty::Object(ids.y)],
            Ty::Bool,
            Some(mb.finish()),
        );
        cb.finish(&mut u);
    }
    let outcome = Transformer::new().protocols(&["RMI"]).run(&mut u).unwrap();
    let fy = outcome.plan.family(ids.y).unwrap();
    let fp = outcome.plan.family(probe).unwrap();
    let c = u.class(fp.obj_local);
    let m = &c.methods[c.method_index("is_y").unwrap() as usize];
    assert!(m
        .body
        .as_ref()
        .unwrap()
        .code
        .iter()
        .any(|i| matches!(i, rafda_classmodel::Insn::InstanceOf(t) if *t == fy.obj_int)));
}

// ----------------------------------------------------------------------
// Abstract classes
// ----------------------------------------------------------------------

#[test]
fn abstract_classes_produce_abstract_locals() {
    let mut u = ClassUniverse::new();
    let base = u.declare("Shape", ClassKind::Class);
    {
        let mut cb = ClassBuilder::new(&u, base);
        cb.abstract_();
        let mut mb = MethodBuilder::new(1);
        mb.ret();
        cb.ctor(&mut u, vec![], Some(mb.finish()));
        // abstract int area();
        let area_sig = u.sig("area", vec![]);
        cb.add_method(rafda_classmodel::Method {
            name: "area".into(),
            sig: area_sig,
            params: vec![],
            ret: Ty::Int,
            visibility: Visibility::Public,
            is_static: false,
            is_native: false,
            body: None,
        });
        cb.finish(&mut u);
    }
    let square = u.declare("Square", ClassKind::Class);
    {
        let mut cb = ClassBuilder::new(&u, square);
        cb.superclass(base);
        let side = cb.field(Field::new("side", Ty::Int));
        let mut mb = MethodBuilder::new(2);
        mb.load_this().load_local(1).put_field(square, side).ret();
        cb.ctor(&mut u, vec![Ty::Int], Some(mb.finish()));
        let mut mb = MethodBuilder::new(1);
        mb.load_this().get_field(square, side);
        mb.load_this().get_field(square, side);
        mb.mul().ret_value();
        cb.method(&mut u, "area", vec![], Ty::Int, Some(mb.finish()));
        cb.finish(&mut u);
    }
    let outcome = Transformer::new().protocols(&["RMI"]).run(&mut u).unwrap();
    verify_universe(&u).unwrap();
    let fb = outcome.plan.family(base).unwrap();
    let fs = outcome.plan.family(square).unwrap();
    assert!(u.class(fb.obj_local).is_abstract);
    assert!(!u.class(fs.obj_local).is_abstract);
    // Square_O_Local extends Shape_O_Local; interface mirrors hierarchy.
    assert_eq!(u.class(fs.obj_local).superclass, Some(fb.obj_local));
    assert!(u.is_subtype(fs.obj_int, fb.obj_int));
}

// ----------------------------------------------------------------------
// Analysis properties
// ----------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Adding a native method can only grow the non-transformable set.
    #[test]
    fn analysis_is_monotone_in_native_seeds(seed in 1u64..1000, poison_idx in 0usize..20) {
        let build = |poison: Option<usize>| {
            let mut u = ClassUniverse::new();
            // A small random-ish chain with cross references.
            let n = 20;
            let ids: Vec<_> = (0..n)
                .map(|i| u.declare(&format!("K{i}"), ClassKind::Class))
                .collect();
            for (i, &id) in ids.iter().enumerate() {
                let mut cb = ClassBuilder::new(&u, id);
                let mut mb = MethodBuilder::new(1);
                mb.ret();
                cb.ctor(&mut u, vec![], Some(mb.finish()));
                // reference a pseudo-random other class
                let target = ids[(i * 7 + seed as usize) % n];
                if target != id {
                    cb.field(Field::new("r", Ty::Object(target)));
                }
                if poison == Some(i) {
                    cb.native_method(&mut u, "nat", vec![], Ty::Void);
                }
                cb.finish(&mut u);
            }
            let report = analyze(&u);
            (0..n)
                .filter(|&i| !report.is_transformable(ids[i]))
                .collect::<Vec<_>>()
        };
        let clean = build(None);
        let poisoned = build(Some(poison_idx));
        for i in &clean {
            prop_assert!(poisoned.contains(i), "poisoning removed {i} from NT set");
        }
        prop_assert!(poisoned.contains(&poison_idx));
    }

    /// Transforming any generated app yields a verifiable universe with a
    /// complete family per class.
    #[test]
    fn transform_always_verifies_on_generated_programs(
        seed in 1u64..2000,
        classes in 1usize..10,
        statics in any::<bool>(),
    ) {
        let mut u = ClassUniverse::new();
        // Observer stand-in so the generator has an emit target.
        let obs_class = u.declare("Obs", ClassKind::Class);
        let emit = u.sig("emit", vec![Ty::Long]);
        u.class_mut(obs_class).is_special = true;
        u.class_mut(obs_class).methods.push(rafda_classmodel::Method {
            name: "emit".into(),
            sig: emit,
            params: vec![Ty::Long],
            ret: Ty::Void,
            visibility: Visibility::Public,
            is_static: true,
            is_native: true,
            body: None,
        });
        let info = rafda_corpus::generate_app(
            &mut u,
            rafda_corpus::ObserverHooks { class: obs_class, emit },
            &rafda_corpus::AppSpec { classes, int_fields: 2, statics, inheritance: seed % 2 == 0, arrays: seed % 3 == 0, seed },
        );
        let outcome = Transformer::new()
            .protocols(&["RMI", "SOAP", "CORBA"])
            .run(&mut u)
            .unwrap();
        verify_universe(&u).unwrap();
        prop_assert_eq!(
            outcome.report.substitutable_count,
            info.classes.len() + info.subclasses.len() + 1 // + Driver
        );
        // Every family has a complete O-side.
        for family in outcome.plan.families.values() {
            prop_assert_eq!(family.obj_proxies.len(), 3);
            prop_assert_eq!(
                family.getters.len(),
                u.class(family.base).fields.len()
            );
        }
    }
}
