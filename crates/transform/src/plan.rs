//! Planning pass: declare every generated class and pre-intern every
//! signature the rewriter and generators will need.
//!
//! Generation is two-phase because the artefact family is mutually
//! recursive: `X_O_Int.get_y()` returns `Y_O_Int`, so all interfaces must be
//! *declared* (ids reserved) before any member types can be computed.

use crate::analysis::TransformabilityReport;
use crate::naming;
use rafda_classmodel::{ClassId, ClassKind, ClassUniverse, SigId, Ty};
use std::collections::{HashMap, HashSet};

/// The generated artefact family of one substitutable class `A`.
#[derive(Debug, Clone)]
pub struct Family {
    /// The original class.
    pub base: ClassId,
    /// `A_O_Int`.
    pub obj_int: ClassId,
    /// `A_O_Local`.
    pub obj_local: ClassId,
    /// `A_O_Proxy_<P>` per protocol, in protocol order.
    pub obj_proxies: Vec<(String, ClassId)>,
    /// `A_O_Factory`.
    pub obj_factory: ClassId,
    /// Whether `A` has static members (and hence a `_C_` family).
    pub has_statics: bool,
    /// `A_C_Int`.
    pub cls_int: Option<ClassId>,
    /// `A_C_Local`.
    pub cls_local: Option<ClassId>,
    /// `A_C_Proxy_<P>` per protocol.
    pub cls_proxies: Vec<(String, ClassId)>,
    /// `A_C_Factory`.
    pub cls_factory: Option<ClassId>,
    /// Property getter signatures per declared instance field.
    pub getters: Vec<SigId>,
    /// Property setter signatures per declared instance field.
    pub setters: Vec<SigId>,
    /// Property getter signatures per declared static field.
    pub static_getters: Vec<SigId>,
    /// Property setter signatures per declared static field.
    pub static_setters: Vec<SigId>,
    /// `make()` signature.
    pub make_sig: SigId,
    /// `init$k(that, …)` signature per constructor ordinal.
    pub init_sigs: Vec<SigId>,
    /// `discover()` signature (present iff `has_statics`).
    pub discover_sig: Option<SigId>,
    /// `clinit(that)` signature (present iff the original has `<clinit>`).
    pub clinit_sig: Option<SigId>,
}

/// The full transformation plan.
#[derive(Debug, Clone, Default)]
pub struct TransformPlan {
    /// Families keyed by the original (substitutable) class.
    pub families: HashMap<ClassId, Family>,
    /// All transformable original classes (substitutable or not): their
    /// bodies and signatures are rewritten.
    pub transformable: HashSet<ClassId>,
    /// Map from every pre-existing signature to its type-rewritten version
    /// (identity when no substitutable class appears in the parameters).
    pub sig_map: HashMap<SigId, SigId>,
    /// Rewritten *instance-ised* signature of each method, keyed by
    /// `(declaring class, method index)`. For static methods this is the
    /// signature they carry after being made non-static.
    pub method_sigs: HashMap<(ClassId, u16), SigId>,
    /// Protocols proxies are generated for.
    pub protocols: Vec<String>,
}

impl TransformPlan {
    /// The family generated for `base`, if it was substitutable.
    pub fn family(&self, base: ClassId) -> Option<&Family> {
        self.families.get(&base)
    }

    /// Whether `class` is substitutable.
    pub fn is_substitutable(&self, class: ClassId) -> bool {
        self.families.contains_key(&class)
    }

    /// Rewrite a type: references to substitutable classes become references
    /// to the extracted instance interface.
    pub fn rewrite_ty(&self, ty: &Ty) -> Ty {
        match ty {
            Ty::Object(c) => match self.families.get(c) {
                Some(f) => Ty::Object(f.obj_int),
                None => ty.clone(),
            },
            Ty::Array(e) => Ty::Array(Box::new(self.rewrite_ty(e))),
            other => other.clone(),
        }
    }

    /// Rewrite a signature id (identity for unknown sigs).
    pub fn rewrite_sig(&self, sig: SigId) -> SigId {
        self.sig_map.get(&sig).copied().unwrap_or(sig)
    }
}

/// Build the plan: declare all generated classes and intern all signatures.
///
/// `substitutable` must contain only transformable, non-interface original
/// classes and be closed under (transformable) superclasses — validated by
/// the engine before calling this.
pub fn build_plan(
    universe: &mut ClassUniverse,
    report: &TransformabilityReport,
    substitutable: &[ClassId],
    protocols: &[String],
) -> TransformPlan {
    let mut plan = TransformPlan {
        protocols: protocols.to_vec(),
        ..Default::default()
    };
    for (id, _) in universe.iter() {
        if report.is_transformable(id) {
            plan.transformable.insert(id);
        }
    }

    // Phase 1: declare every generated class so ids exist for typing.
    let mut decls: Vec<(ClassId, Family)> = Vec::new();
    for &base in substitutable {
        let name = universe.class(base).name.clone();
        let has_statics = {
            let c = universe.class(base);
            !c.static_fields.is_empty()
                || c.clinit.is_some()
                || c.methods.iter().any(|m| m.is_static && !m.is_clinit())
        };
        let obj_int = universe.declare(&naming::obj_interface(&name), ClassKind::Interface);
        let obj_local = universe.declare(&naming::obj_local(&name), ClassKind::Class);
        let obj_proxies = protocols
            .iter()
            .map(|p| {
                (
                    p.clone(),
                    universe.declare(&naming::obj_proxy(&name, p), ClassKind::Class),
                )
            })
            .collect();
        let obj_factory = universe.declare(&naming::obj_factory(&name), ClassKind::Class);
        let (cls_int, cls_local, cls_proxies, cls_factory) = if has_statics {
            let ci = universe.declare(&naming::class_interface(&name), ClassKind::Interface);
            let cl = universe.declare(&naming::class_local(&name), ClassKind::Class);
            let cp = protocols
                .iter()
                .map(|p| {
                    (
                        p.clone(),
                        universe.declare(&naming::class_proxy(&name, p), ClassKind::Class),
                    )
                })
                .collect();
            let cf = universe.declare(&naming::class_factory(&name), ClassKind::Class);
            (Some(ci), Some(cl), cp, Some(cf))
        } else {
            (None, None, Vec::new(), None)
        };
        decls.push((
            base,
            Family {
                base,
                obj_int,
                obj_local,
                obj_proxies,
                obj_factory,
                has_statics,
                cls_int,
                cls_local,
                cls_proxies,
                cls_factory,
                getters: Vec::new(),
                setters: Vec::new(),
                static_getters: Vec::new(),
                static_setters: Vec::new(),
                make_sig: SigId(0),
                init_sigs: Vec::new(),
                discover_sig: None,
                clinit_sig: None,
            },
        ));
    }
    for (base, family) in decls {
        plan.families.insert(base, family);
    }

    // Phase 2: rewrite all pre-existing signatures.
    let pre_existing = universe.sig_count();
    for raw in 0..pre_existing as u32 {
        let sig = SigId(raw);
        let info = universe.sig_info(sig).clone();
        let new_params: Vec<Ty> = info.params.iter().map(|t| plan.rewrite_ty(t)).collect();
        let new_sig = if new_params == info.params {
            sig
        } else {
            universe.sig(&info.name, new_params)
        };
        plan.sig_map.insert(sig, new_sig);
    }

    // Phase 3: per-method rewritten signatures for every transformable class.
    let transformable: Vec<ClassId> = plan.transformable.iter().copied().collect();
    for class in transformable {
        let count = universe.class(class).methods.len();
        for idx in 0..count {
            let sig = universe.class(class).methods[idx].sig;
            let new_sig = plan.rewrite_sig(sig);
            plan.method_sigs.insert((class, idx as u16), new_sig);
        }
    }

    // Phase 4: family member signatures. Sorted: this loop interns fresh
    // signature ids, and `families` is a HashMap — iterating it raw would
    // assign accessor sig ids in a different order on every run, leaking
    // nondeterminism into wire bytes and traces.
    let mut bases: Vec<ClassId> = plan.families.keys().copied().collect();
    bases.sort();
    let make_sig = universe.sig(naming::MAKE, vec![]);
    let discover_sig = universe.sig(naming::DISCOVER, vec![]);
    for base in bases {
        type FieldList = Vec<(String, Ty)>;
        let (fields, static_fields, ctor_params, has_clinit): (
            FieldList,
            FieldList,
            Vec<Vec<Ty>>,
            bool,
        ) = {
            let c = universe.class(base);
            (
                c.fields
                    .iter()
                    .map(|f| (f.name.clone(), f.ty.clone()))
                    .collect(),
                c.static_fields
                    .iter()
                    .map(|f| (f.name.clone(), f.ty.clone()))
                    .collect(),
                c.ctors
                    .iter()
                    .map(|&mi| c.methods[mi as usize].params.clone())
                    .collect(),
                c.clinit.is_some(),
            )
        };
        let obj_int_ty = Ty::Object(plan.families[&base].obj_int);
        let cls_int_ty = plan.families[&base].cls_int.map(Ty::Object);

        let mut getters = Vec::new();
        let mut setters = Vec::new();
        for (fname, fty) in &fields {
            let rty = plan.rewrite_ty(fty);
            getters.push(universe.sig(&naming::getter(fname), vec![]));
            setters.push(universe.sig(&naming::setter(fname), vec![rty]));
        }
        let mut static_getters = Vec::new();
        let mut static_setters = Vec::new();
        for (fname, fty) in &static_fields {
            let rty = plan.rewrite_ty(fty);
            static_getters.push(universe.sig(&naming::getter(fname), vec![]));
            static_setters.push(universe.sig(&naming::setter(fname), vec![rty]));
        }
        let mut init_sigs = Vec::new();
        for (k, params) in ctor_params.iter().enumerate() {
            let mut ps = vec![obj_int_ty.clone()];
            ps.extend(params.iter().map(|t| plan.rewrite_ty(t)));
            init_sigs.push(universe.sig(&naming::init_method(k), ps));
        }
        let clinit_sig = if has_clinit {
            Some(universe.sig(
                naming::CLINIT,
                vec![cls_int_ty.clone().expect("clinit implies statics")],
            ))
        } else {
            None
        };

        let family = plan.families.get_mut(&base).expect("planned");
        family.getters = getters;
        family.setters = setters;
        family.static_getters = static_getters;
        family.static_setters = static_setters;
        family.make_sig = make_sig;
        family.init_sigs = init_sigs;
        family.discover_sig = family.has_statics.then_some(discover_sig);
        family.clinit_sig = clinit_sig;
    }

    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::analyze;
    use rafda_classmodel::sample;

    fn plan_figure2() -> (ClassUniverse, TransformPlan, sample::SampleIds) {
        let mut u = ClassUniverse::new();
        let ids = sample::build_figure2(&mut u);
        let report = analyze(&u);
        let subs = vec![ids.x, ids.y, ids.z];
        let plan = build_plan(
            &mut u,
            &report,
            &subs,
            &["SOAP".to_owned(), "RMI".to_owned()],
        );
        (u, plan, ids)
    }

    #[test]
    fn declares_full_family_for_x() {
        let (u, plan, ids) = plan_figure2();
        let fx = plan.family(ids.x).unwrap();
        assert_eq!(u.class(fx.obj_int).name, "X_O_Int");
        assert_eq!(u.class(fx.obj_local).name, "X_O_Local");
        assert_eq!(u.class(fx.obj_factory).name, "X_O_Factory");
        assert_eq!(fx.obj_proxies.len(), 2);
        assert!(fx.has_statics);
        assert_eq!(u.class(fx.cls_int.unwrap()).name, "X_C_Int");
        assert_eq!(u.class(fx.cls_factory.unwrap()).name, "X_C_Factory");
        assert!(fx.clinit_sig.is_some());
    }

    #[test]
    fn z_has_no_static_family() {
        let (_u, plan, ids) = plan_figure2();
        let fz = plan.family(ids.z).unwrap();
        assert!(!fz.has_statics);
        assert!(fz.cls_int.is_none());
        assert!(fz.cls_factory.is_none());
        assert!(fz.cls_proxies.is_empty());
        // Y has a static field K, so it gets a static family.
        let fy = plan.family(ids.y).unwrap();
        assert!(fy.has_statics);
        assert_eq!(fy.static_getters.len(), 1);
    }

    #[test]
    fn rewrite_ty_maps_substitutable_references() {
        let (_u, plan, ids) = plan_figure2();
        let fy = plan.family(ids.y).unwrap();
        assert_eq!(plan.rewrite_ty(&Ty::Object(ids.y)), Ty::Object(fy.obj_int));
        assert_eq!(
            plan.rewrite_ty(&Ty::Object(ids.y).array_of()),
            Ty::Object(fy.obj_int).array_of()
        );
        assert_eq!(plan.rewrite_ty(&Ty::Int), Ty::Int);
    }

    #[test]
    fn sig_map_rewrites_object_params_only() {
        let mut u = ClassUniverse::new();
        let ids = sample::build_figure2(&mut u);
        let n_sig = u.sig("n", vec![Ty::Long]);
        let takes_y = u.sig("t", vec![Ty::Object(ids.y)]);
        let report = analyze(&u);
        let plan = build_plan(&mut u, &report, &[ids.x, ids.y, ids.z], &["RMI".to_owned()]);
        assert_eq!(plan.rewrite_sig(n_sig), n_sig);
        let rewritten = plan.rewrite_sig(takes_y);
        assert_ne!(rewritten, takes_y);
        let info = u.sig_info(rewritten);
        let fy = plan.family(ids.y).unwrap();
        assert_eq!(info.params, vec![Ty::Object(fy.obj_int)]);
    }

    #[test]
    fn init_sigs_take_interface_receiver_first() {
        let (u, plan, ids) = plan_figure2();
        let fx = plan.family(ids.x).unwrap();
        assert_eq!(fx.init_sigs.len(), 1);
        let info = u.sig_info(fx.init_sigs[0]);
        assert_eq!(info.name, "init$0");
        let fy = plan.family(ids.y).unwrap();
        assert_eq!(
            info.params,
            vec![Ty::Object(fx.obj_int), Ty::Object(fy.obj_int)]
        );
    }

    #[test]
    fn make_and_discover_sigs_are_shared() {
        let (_u, plan, ids) = plan_figure2();
        let fx = plan.family(ids.x).unwrap();
        let fy = plan.family(ids.y).unwrap();
        assert_eq!(fx.make_sig, fy.make_sig);
        assert_eq!(fx.discover_sig, fy.discover_sig);
    }
}
